// Quickstart: locate one object in one room, end to end, in ~40 lines.
//
//   1. describe the room,
//   2. collect CSI from each AP (here: simulated by nomloc::channel —
//      on real hardware this is where your CSI extraction tool plugs in),
//   3. hand the observations to NomLocEngine.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "channel/csi_model.h"
#include "core/nomloc.h"
#include "geometry/polygon.h"

int main() {
  using namespace nomloc;

  // 1. The floor area (a 12 x 8 m room) and the AP positions.  NomLoc is
  //    calibration-free: this geometry is ALL the prior knowledge it needs.
  const geometry::Polygon room = geometry::Polygon::Rectangle(0, 0, 12, 8);
  const std::vector<geometry::Vec2> aps{{1, 1}, {11, 1}, {11, 7}, {1, 7}};

  auto engine = core::NomLocEngine::Create(room);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  // 2. One CSI batch per AP.  We simulate a person standing at (4, 3)
  //    whose phone pings the network; each AP captures 100 frames.
  auto env = channel::IndoorEnvironment::Create(room);
  const channel::CsiSimulator radio(*env, {});
  common::Rng rng(2014);
  const geometry::Vec2 person{4.0, 3.0};

  std::vector<core::ApObservation> observations;
  for (const geometry::Vec2 ap : aps) {
    core::ApObservation obs;
    obs.reported_position = ap;
    obs.frames = radio.MakeLink(person, ap).SampleBatch(100, rng);
    observations.push_back(std::move(obs));
  }

  // 3. Locate.
  auto estimate = engine->Locate(observations);
  if (!estimate.ok()) {
    std::fprintf(stderr, "%s\n", estimate.status().ToString().c_str());
    return 1;
  }
  std::printf("true position      : (%.2f, %.2f)\n", person.x, person.y);
  std::printf("estimated position : (%.2f, %.2f)\n", estimate->position.x,
              estimate->position.y);
  std::printf("error              : %.2f m\n",
              Distance(estimate->position, person));
  std::printf("constraints relaxed: %zu (cost %.4f)\n",
              estimate->violated_constraints, estimate->relaxation_cost);
  return 0;
}
