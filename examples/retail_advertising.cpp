// Retail advertising scenario (paper §I): a marketplace wants per-zone
// customer counts to price advertising space.  Spatial localizability
// variance makes zone statistics from a static deployment misleading —
// customers in "blind" zones get mislocated into neighbouring zones.
//
// This example simulates a day of customers in the Lobby, builds a zone
// heatmap under (a) the static deployment and (b) NomLoc with the shop
// greeter's phone as a nomadic AP, and compares both against ground truth.
//
// Build & run:  ./build/examples/retail_advertising
#include <cstdio>
#include <vector>

#include "common/strings.h"
#include "eval/runner.h"
#include "eval/scenario.h"

using namespace nomloc;

namespace {

// The lobby is divided into 4 advertising zones along the L.
int ZoneOf(geometry::Vec2 p) {
  if (p.y <= 6.0) {
    if (p.x < 7.0) return 0;   // Entrance.
    if (p.x < 14.0) return 1;  // Central corridor.
    return 2;                  // East wing.
  }
  return 3;                    // North wing.
}

const char* kZoneNames[] = {"entrance", "corridor", "east wing",
                            "north wing"};

struct ZoneCounts {
  int counts[4] = {0, 0, 0, 0};
  int Total() const { return counts[0] + counts[1] + counts[2] + counts[3]; }
};

void PrintZones(const char* label, const ZoneCounts& z, const ZoneCounts& truth) {
  std::printf("%-24s", label);
  int misplaced = 0;
  for (int i = 0; i < 4; ++i) {
    std::printf("  %-10s %3d", kZoneNames[i], z.counts[i]);
    misplaced += std::abs(z.counts[i] - truth.counts[i]);
  }
  std::printf("   (zone-count distortion: %d)\n", misplaced / 2);
}

}  // namespace

int main() {
  std::printf("=== Retail advertising: zone statistics under UEI ===\n\n");

  const eval::Scenario lobby = eval::LobbyScenario();

  eval::RunConfig nomadic;
  nomadic.packets_per_batch = 40;
  nomadic.trials = 1;
  nomadic.dwell_count = 8;
  nomadic.seed = 99;
  eval::RunConfig fixed = nomadic;
  fixed.deployment = eval::Deployment::kStatic;

  core::NomLocConfig engine_cfg;
  engine_cfg.bandwidth_hz = nomadic.channel.bandwidth_hz;
  auto engine = core::NomLocEngine::Create(lobby.env.Boundary(), engine_cfg);
  if (!engine.ok()) return 1;

  // A stream of customers: every test site hosts several, jittered.
  common::Rng rng(7);
  std::vector<geometry::Vec2> customers;
  for (const geometry::Vec2 site : lobby.test_sites) {
    for (int k = 0; k < 3; ++k) {
      geometry::Vec2 c{site.x + rng.Uniform(-0.5, 0.5),
                       site.y + rng.Uniform(-0.5, 0.5)};
      if (lobby.env.IsFreeSpace(c)) customers.push_back(c);
    }
  }

  ZoneCounts truth, zones_static, zones_nomadic;
  double err_static = 0.0, err_nomadic = 0.0;
  for (const geometry::Vec2 customer : customers) {
    ++truth.counts[ZoneOf(customer)];
    auto est_s = LocalizeEpoch(lobby, fixed, *engine, customer, rng);
    auto est_n = LocalizeEpoch(lobby, nomadic, *engine, customer, rng);
    if (!est_s.ok() || !est_n.ok()) return 1;
    ++zones_static.counts[ZoneOf(est_s->position)];
    ++zones_nomadic.counts[ZoneOf(est_n->position)];
    err_static += Distance(est_s->position, customer);
    err_nomadic += Distance(est_n->position, customer);
  }

  std::printf("%zu customers localized.\n\n", customers.size());
  PrintZones("ground truth", truth, truth);
  PrintZones("static deployment", zones_static, truth);
  PrintZones("NomLoc (greeter roams)", zones_nomadic, truth);
  std::printf("\nmean error: static %.2f m, NomLoc %.2f m\n",
              err_static / double(customers.size()),
              err_nomadic / double(customers.size()));
  std::printf(
      "\nTakeaway: with NomLoc the zone histogram tracks ground truth more\n"
      "closely, so ad pricing decisions rest on better data (paper §I's\n"
      "'crash profits' example).\n");
  return 0;
}
