// Intrusion watch: device-free motion detection on the lab's AP links —
// the companion capability of the NomLoc authors' FIMD/Pilot systems
// (paper references [21][24]).  No tag on the intruder: the APs' own CSI
// streams reveal a person crossing their links.
//
// Timeline: the office is quiet, then an intruder walks a diagonal path
// through the lab, then leaves.  The watcher runs a MotionDetector per
// AP-to-AP link and prints which links see motion at each instant.
//
// Build & run:  ./build/examples/intrusion_watch
#include <cstdio>
#include <vector>

#include "eval/scenario.h"
#include "localization/devicefree.h"

using namespace nomloc;

int main() {
  std::printf("=== Intrusion watch: device-free detection ===\n\n");

  const eval::Scenario lab = eval::LabScenario();
  channel::ChannelConfig cfg;
  cfg.rician_k_db = 30.0;
  cfg.bounce_rician_k_db = 30.0;  // Static furniture: stable multipath.
  const channel::CsiSimulator sim(lab.env, cfg);
  common::Rng rng(404);

  // Monitored links: every AP pair.
  struct Link {
    geometry::Vec2 tx, rx;
    localization::MotionDetector detector;
  };
  std::vector<Link> links;
  for (std::size_t i = 0; i < lab.static_aps.size(); ++i)
    for (std::size_t j = i + 1; j < lab.static_aps.size(); ++j)
      links.push_back({lab.static_aps[i], lab.static_aps[j],
                       localization::MotionDetector{}});

  // The intruder's path: outside (no person), then a diagonal crossing,
  // then gone again.
  const int kQuietBefore = 12, kSteps = 25, kQuietAfter = 12;
  auto intruder_at = [&](int t) -> std::optional<geometry::Vec2> {
    if (t < kQuietBefore || t >= kQuietBefore + kSteps) return std::nullopt;
    const double u = double(t - kQuietBefore) / double(kSteps - 1);
    return geometry::Vec2{1.0 + 10.0 * u, 1.0 + 6.0 * u};
  };

  std::printf("time  intruder      links-with-motion\n");
  int first_detection = -1;
  for (int t = 0; t < kQuietBefore + kSteps + kQuietAfter; ++t) {
    const auto person = intruder_at(t);
    int moving_links = 0;
    std::string which;
    for (std::size_t l = 0; l < links.size(); ++l) {
      dsp::CsiFrame frame =
          person ? localization::SampleWithPerson(sim, links[l].tx,
                                                  links[l].rx, *person, rng)
                 : sim.MakeLink(links[l].tx, links[l].rx).Sample(rng);
      const auto decision = links[l].detector.Feed(frame);
      if (decision && decision->motion) {
        ++moving_links;
        which += " L" + std::to_string(l);
      }
    }
    if (moving_links > 0 && first_detection < 0) first_detection = t;
    if (person) {
      std::printf("%4d  (%4.1f,%4.1f)  %d%s\n", t, person->x, person->y,
                  moving_links, which.c_str());
    } else {
      std::printf("%4d  --            %d%s\n", t, moving_links,
                  which.c_str());
    }
  }

  std::printf("\nfirst detection at t=%d (intruder enters at t=%d)\n",
              first_detection, kQuietBefore);
  std::printf(
      "\nTakeaway: the same CSI streams NomLoc uses for localization double\n"
      "as a device-free tripwire — no extra hardware, no tag on the\n"
      "intruder (the security-patrol story of paper §I, automated).\n");
  return 0;
}
