// Museum guide scenario: continuous tracking of a visitor through the
// L-shaped lobby using the full distributed-system stack (net/NomLocSystem)
// — probe packets, per-AP CSI capture, batched reports, nomadic movement —
// rather than the direct measurement shortcut the benches use.  A docent
// carrying a tablet acts as the nomadic AP.
//
// Demonstrates the paper's future-work direction of aggregating multiple
// nomadic APs: run with an argument to enable the second docent:
//   ./build/examples/museum_guide 2
#include <cstdio>
#include <cstdlib>

#include "core/tracker.h"
#include "eval/scenario.h"
#include "net/system.h"

using namespace nomloc;

int main(int argc, char** argv) {
  const int docents = argc > 1 ? std::atoi(argv[1]) : 1;
  std::printf("=== Museum guide: visitor tour tracking (%d docent%s) ===\n\n",
              docents, docents == 1 ? "" : "s");

  const eval::Scenario lobby = eval::LobbyScenario();

  net::SystemConfig cfg;
  cfg.probe_interval_s = 2e-3;     // Visitor's phone pings at 500 Hz.
  cfg.frames_per_report = 32;      // APs batch 32 frames per report.
  cfg.dwell_duration_s = 0.12;
  cfg.trace.dwell_count = 6;

  std::vector<std::vector<geometry::Vec2>> nomadic_sets;
  nomadic_sets.push_back(lobby.nomadic_sites);  // Docent 1.
  if (docents >= 2) {
    // Docent 2 patrols the north wing.
    nomadic_sets.push_back(
        {{2.0, 12.0}, {6.0, 11.0}, {3.0, 8.0}, {6.0, 7.0}});
  }
  std::vector<geometry::Vec2> static_aps(
      lobby.static_aps.begin() + std::ptrdiff_t(nomadic_sets.size()),
      lobby.static_aps.end());

  auto system = net::NomLocSystem::Create(lobby.env, static_aps,
                                          nomadic_sets, cfg, 77);
  if (!system.ok()) {
    std::fprintf(stderr, "%s\n", system.status().ToString().c_str());
    return 1;
  }

  // The visitor's tour: exhibit stops, walked at a steady pace — the
  // system localizes twice along every leg, so consecutive fixes are
  // kinematically related and the tracker has something to work with.
  const std::vector<geometry::Vec2> stops{{2.0, 2.0}, {7.0, 3.0},
                                          {12.0, 2.5}, {17.0, 3.5},
                                          {6.0, 5.0},  {5.0, 8.0},
                                          {3.0, 11.0}, {6.0, 13.0}};
  std::vector<geometry::Vec2> tour;
  for (std::size_t i = 0; i + 1 < stops.size(); ++i) {
    tour.push_back(stops[i]);
    tour.push_back(Lerp(stops[i], stops[i + 1], 1.0 / 3.0));
    tour.push_back(Lerp(stops[i], stops[i + 1], 2.0 / 3.0));
  }
  tour.push_back(stops.back());

  // A constant-velocity Kalman tracker fuses the raw per-epoch fixes
  // (every ~10 s of wall-clock time as the visitor walks).  SP errors are
  // dominated by cell-center bias rather than white noise, so the tracker
  // buys continuity and a velocity estimate more than raw accuracy.
  core::TrackerOptions topts;
  topts.measurement_sigma = 2.0;
  topts.acceleration_sigma = 0.05;
  core::Tracker tracker(topts);

  std::printf("  %-6s %-16s %-16s %-9s %-9s\n", "stop", "true", "estimated",
              "raw err", "tracked");
  double total_error = 0.0, tracked_error = 0.0;
  for (std::size_t i = 0; i < tour.size(); ++i) {
    auto est = system->LocalizeOnce(tour[i]);
    if (!est.ok()) {
      std::fprintf(stderr, "%s\n", est.status().ToString().c_str());
      return 1;
    }
    if (tracker.Initialized()) {
      tracker.Step(10.0, est->position);
    } else {
      tracker.Update(est->position);
    }
    tracker.ClampTo(lobby.env.Boundary());
    const double err = Distance(est->position, tour[i]);
    const double terr = Distance(tracker.Position(), tour[i]);
    total_error += err;
    tracked_error += terr;
    std::printf("  %-6zu (%5.1f, %5.1f)   (%5.1f, %5.1f)  %6.2f m  %6.2f m\n",
                i + 1, tour[i].x, tour[i].y, est->position.x,
                est->position.y, err, terr);
  }

  const auto& stats = system->Stats();
  std::printf("\nmean tour error : %.2f m raw, %.2f m tracked\n",
              total_error / double(tour.size()),
              tracked_error / double(tour.size()));
  std::printf("probes sent     : %llu\n",
              static_cast<unsigned long long>(stats.probes_sent));
  std::printf("frames captured : %llu\n",
              static_cast<unsigned long long>(stats.frames_captured));
  std::printf("reports received: %llu\n",
              static_cast<unsigned long long>(stats.reports_received));
  std::printf("nomadic moves   : %llu\n",
              static_cast<unsigned long long>(stats.nomadic_moves));
  return 0;
}
