// Deployment planning: the site-survey workflow a NomLoc operator would
// run before going live, combining four library pieces —
//
//   1. localization/deployment.h  — optimize the static AP placement,
//   2. localization/planner.h     — choose the nomadic AP's dwell sites,
//   3. geometry/pathfinding.h     — the patrol route between those sites
//                                   (walking around the furniture),
//   4. eval/render.h              — an ASCII floor plan of the result.
//
// Build & run:  ./build/examples/deployment_planning
#include <cstdio>

#include "eval/render.h"
#include "eval/runner.h"
#include "eval/scenario.h"
#include "geometry/hull.h"
#include "geometry/pathfinding.h"
#include "localization/deployment.h"
#include "localization/planner.h"

using namespace nomloc;

int main() {
  std::printf("=== Deployment planning for the office floor ===\n\n");

  eval::Scenario office = eval::OfficeScenario();

  // Candidate positions: a 2 m grid of mountable spots.
  std::vector<geometry::Vec2> candidates;
  for (const geometry::Vec2 p :
       geometry::GridPointsIn(office.env.Boundary(), 2.0))
    if (office.env.IsFreeSpace(p)) candidates.push_back(p);
  std::printf("candidate positions: %zu (2 m grid)\n", candidates.size());

  // 1. Static placement.
  localization::DeploymentConfig dcfg;
  dcfg.ap_count = 4;
  dcfg.sample_points = 40;
  dcfg.seed = 11;
  auto placement = localization::OptimizeStaticDeployment(
      office.env.Boundary(), candidates, dcfg);
  if (!placement.ok()) {
    std::fprintf(stderr, "%s\n", placement.status().ToString().c_str());
    return 1;
  }
  std::printf("optimized static APs (expected cell error %.2f m):",
              placement->objective_value_m);
  for (const geometry::Vec2 p : placement->positions)
    std::printf(" (%.0f,%.0f)", p.x, p.y);
  std::printf("\n");

  // 2. Nomadic waypoints on top of that placement.
  localization::PlannerConfig pcfg;
  pcfg.sites_to_select = 3;
  pcfg.sample_points = 40;
  pcfg.seed = 11;
  auto plan = localization::PlanNomadicSites(
      office.env.Boundary(), placement->positions, candidates, pcfg);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("nomadic waypoints (expected error %.2f -> %.2f m):",
              plan->baseline_error_m, plan->error_after_m.back());
  std::vector<geometry::Vec2> waypoints{placement->positions.front()};
  for (std::size_t idx : plan->selected) {
    waypoints.push_back(candidates[idx]);
    std::printf(" (%.0f,%.0f)", candidates[idx].x, candidates[idx].y);
  }
  std::printf("\n");

  // 3. The patrol route (home -> waypoints -> home), walked around the
  //    furniture and through the door gaps.
  std::vector<geometry::Polygon> obstacle_shapes;
  for (const auto& obstacle : office.env.Obstacles())
    obstacle_shapes.push_back(obstacle.shape);
  std::vector<geometry::Vec2> tour = waypoints;
  tour.push_back(waypoints.front());
  auto route_length = geometry::TourLength(office.env.Boundary(),
                                           obstacle_shapes, tour);
  if (route_length.ok()) {
    std::printf("patrol round trip: %.1f m walking distance (~%.0f s at "
                "1.4 m/s)\n",
                *route_length, *route_length / 1.4);
  } else {
    std::printf("patrol route: %s\n",
                route_length.status().ToString().c_str());
  }

  // 4. Validate the plan against the measurement pipeline and draw it.
  office.static_aps = placement->positions;
  office.nomadic_sites = waypoints;
  eval::RunConfig run_cfg;
  run_cfg.packets_per_batch = 30;
  run_cfg.trials = 6;
  run_cfg.seed = 11;
  auto measured = eval::RunLocalization(office, run_cfg);
  if (!measured.ok()) {
    std::fprintf(stderr, "%s\n", measured.status().ToString().c_str());
    return 1;
  }
  std::printf("measured with the full pipeline: mean %.2f m, SLV %.3f m^2\n",
              measured->MeanError(), measured->slv);

  std::printf("\n%s\n", eval::RenderScenario(office).c_str());
  std::printf("legend: # wall, o obstacle, A optimized AP, N planned "
              "nomadic site, x test site\n");
  return 0;
}
