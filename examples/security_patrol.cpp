// Security patrol scenario (paper §I): inspectors must monitor every spot
// of a cluttered lab; spatial localizability variance leaves blind areas
// where a suspect "can slip in" — sites whose localization error exceeds
// the detection radius.
//
// This example walks an intruder through every test site of the Lab and
// checks whether the localization system places them within the detection
// radius, comparing the static deployment against NomLoc where the
// patroller's intercom acts as the nomadic AP (exactly the paper's story).
//
// Build & run:  ./build/examples/security_patrol
#include <cstdio>

#include "eval/runner.h"
#include "eval/scenario.h"

using namespace nomloc;

int main() {
  std::printf("=== Security patrol: blind-spot detection in the Lab ===\n\n");

  const double kDetectionRadiusM = 2.5;
  const eval::Scenario lab = eval::LabScenario();

  eval::RunConfig nomadic;
  nomadic.packets_per_batch = 40;
  nomadic.trials = 6;
  nomadic.dwell_count = 8;
  nomadic.seed = 4242;
  eval::RunConfig fixed = nomadic;
  fixed.deployment = eval::Deployment::kStatic;

  auto rs = eval::RunLocalization(lab, fixed);
  auto rn = eval::RunLocalization(lab, nomadic);
  if (!rs.ok() || !rn.ok()) {
    std::fprintf(stderr, "run failed\n");
    return 1;
  }

  std::printf("detection radius: %.1f m\n\n", kDetectionRadiusM);
  std::printf("  %-6s %-14s %-22s %-22s\n", "site", "position",
              "static mean err", "NomLoc mean err");
  int blind_static = 0, blind_nomadic = 0;
  for (std::size_t i = 0; i < lab.test_sites.size(); ++i) {
    const auto& ss = rs->sites[i];
    const auto& sn = rn->sites[i];
    const bool bs = ss.mean_error_m > kDetectionRadiusM;
    const bool bn = sn.mean_error_m > kDetectionRadiusM;
    blind_static += bs;
    blind_nomadic += bn;
    std::printf("  %-6zu (%4.1f,%4.1f)   %8.2f m %-10s %8.2f m %-10s\n",
                i + 1, ss.site.x, ss.site.y, ss.mean_error_m,
                bs ? "  BLIND" : "", sn.mean_error_m, bn ? "  BLIND" : "");
  }

  std::printf("\nblind spots: static %d / %zu, NomLoc %d / %zu\n",
              blind_static, lab.test_sites.size(), blind_nomadic,
              lab.test_sites.size());
  std::printf("SLV:         static %.3f m^2, NomLoc %.3f m^2\n", rs->slv,
              rn->slv);
  std::printf(
      "\nTakeaway: the patroller's own movement closes the blind areas the\n"
      "fixed deployment leaves open — no extra infrastructure, no\n"
      "calibration survey.\n");
  return 0;
}
