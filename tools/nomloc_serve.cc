// nomloc_serve — streaming serving-layer driver.
//
//   nomloc_serve [--scenario lab|lobby|office] [--objects N] [--epochs N]
//                [--interval S] [--workers N] [--queue-capacity N]
//                [--deadline S] [--dropout R] [--loss R] [--delay-rate R]
//                [--delay S] [--packets N] [--dwells N] [--seed N]
//                [--breaker-threshold N] [--breaker-backoff S]
//                [--retry-budget N] [--no-lkg] [--incremental]
//                [--chaos SEED] [--chaos-events N] [--wire binary|json]
//                [--check] [--check-perturb] [--metrics]
//
// Replays a measurement campaign (objects x epochs, from the scenario's
// test sites) as a timestamped packet stream through StreamingLocalizer
// and prints admission counts, per-response outcomes, localization error,
// degradation-ladder counts, throughput, and latency percentiles.
//
// --wire binary|json round-trips the whole packet stream through the
// hot-ingest wire codec (serving/wire.h) before replay, so the served
// stream is exactly what a decoder would hand the service.  Combined
// with --check this proves end-to-end that a wire-framed stream is
// bit-identical to the in-memory path — run it with both formats and the
// binary and JSON paths are bit-identical to each other by transitivity.
//
// --check (faults must be off) additionally runs the same anchor sets
// through NomLocEngine::LocateBatch and exits non-zero unless every
// streamed estimate is bit-identical to its batch twin — the serving
// layer's end-to-end equivalence proof.  --check-perturb intentionally
// nudges one streamed estimate before comparing, proving the detector
// trips (the process must exit non-zero).
//
// Fault flags (--dropout / --loss / --delay-rate) exercise graceful
// degradation: dead APs and lost packets shrink the constraint set, the
// solver falls back to the reduced program, and each response carries a
// confidence plus a `degraded` flag; --metrics shows the serving.* series
// (queue depth, shard occupancy, rejections, degradation events).
//
// --incremental switches the per-object solver sessions to
// SpSessionMode::kIncremental (warm constraint deltas instead of a cold
// LP per update — see DESIGN.md "Incremental session solver"); --metrics
// then shows the solver.fastpath / solver.warm_lp hit rates.
//
// Resilience knobs: --breaker-threshold / --breaker-backoff shape the
// per-anchor circuit breakers, --retry-budget re-queues failed queries,
// --no-lkg disables the last-known-good fallback.  --chaos SEED replays
// the deterministic chaos schedule (anchor death/flap, trace corruption,
// clock jumps, queue saturation) from serving::RunChaos instead of the
// plain stream and reports injections, degradation counts, and recovery
// latency.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/degradation.h"
#include "common/metrics.h"
#include "common/stats.h"
#include "core/nomloc.h"
#include "eval/runner.h"
#include "eval/scenario.h"
#include "serving/chaos.h"
#include "serving/clock.h"
#include "serving/replay.h"
#include "serving/service.h"
#include "serving/wire.h"

using namespace nomloc;

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--scenario lab|lobby|office] [--objects N] [--epochs N]\n"
      "          [--interval S] [--workers N] [--queue-capacity N]\n"
      "          [--deadline S] [--dropout R] [--loss R] [--delay-rate R]\n"
      "          [--delay S] [--packets N] [--dwells N] [--seed N]\n"
      "          [--breaker-threshold N] [--breaker-backoff S]\n"
      "          [--retry-budget N] [--no-lkg] [--incremental]\n"
      "          [--chaos SEED] [--chaos-events N] [--wire binary|json]\n"
      "          [--check] [--check-perturb] [--metrics]\n",
      argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name = "lab";
  serving::ReplayConfig replay;
  replay.run.packets_per_batch = 20;
  replay.run.dwell_count = 6;
  serving::ServingConfig serve;
  serving::ChaosConfig chaos;
  bool chaos_mode = false;
  bool use_wire = false;
  serving::WireFormat wire_format = serving::WireFormat::kBinary;
  bool check = false;
  bool check_perturb = false;
  bool metrics = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--scenario") {
      scenario_name = next();
    } else if (arg == "--objects") {
      replay.objects = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--epochs") {
      replay.epochs = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--interval") {
      replay.epoch_interval_s = std::strtod(next(), nullptr);
    } else if (arg == "--deadline") {
      replay.deadline_s = std::strtod(next(), nullptr);
    } else if (arg == "--workers") {
      serve.workers = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--queue-capacity") {
      serve.queue_capacity = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--dropout") {
      serve.faults.ap_dropout_rate = std::strtod(next(), nullptr);
    } else if (arg == "--loss") {
      serve.faults.packet_loss_rate = std::strtod(next(), nullptr);
    } else if (arg == "--delay-rate") {
      serve.faults.delay_rate = std::strtod(next(), nullptr);
    } else if (arg == "--delay") {
      serve.faults.delay_s = std::strtod(next(), nullptr);
    } else if (arg == "--packets") {
      replay.run.packets_per_batch = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--dwells") {
      replay.run.dwell_count = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--seed") {
      replay.run.seed = std::strtoull(next(), nullptr, 10);
      serve.faults.seed = replay.run.seed + 0x5e21;
    } else if (arg == "--breaker-threshold") {
      serve.breaker.failure_threshold = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--breaker-backoff") {
      serve.breaker.base_backoff_s = std::strtod(next(), nullptr);
      serve.breaker.max_backoff_s =
          std::max(serve.breaker.max_backoff_s, serve.breaker.base_backoff_s);
    } else if (arg == "--retry-budget") {
      serve.query_retry_budget = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--no-lkg") {
      serve.last_known_good_fallback = false;
    } else if (arg == "--incremental") {
      serve.solver_mode = localization::SpSessionMode::kIncremental;
    } else if (arg == "--chaos") {
      chaos.seed = std::strtoull(next(), nullptr, 10);
      chaos_mode = true;
    } else if (arg == "--chaos-events") {
      chaos.events = std::strtoul(next(), nullptr, 10);
      chaos_mode = true;
    } else if (arg == "--wire") {
      auto parsed = serving::ParseWireFormatName(next());
      if (!parsed.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     parsed.status().ToString().c_str());
        return 2;
      }
      wire_format = *parsed;
      use_wire = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--check-perturb") {
      check = true;
      check_perturb = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else {
      Usage(argv[0]);
    }
  }

  if (check && serve.faults.Enabled()) {
    std::fprintf(stderr,
                 "error: --check requires fault injection to be off\n");
    return 2;
  }
  if (check && chaos_mode) {
    std::fprintf(stderr, "error: --check requires --chaos to be off\n");
    return 2;
  }
  if (use_wire && chaos_mode) {
    // Chaos builds its own corrupted stream; the wire round-trip only
    // makes sense on the plain replay.
    std::fprintf(stderr, "error: --wire requires --chaos to be off\n");
    return 2;
  }
  if (check && serve.solver_mode != localization::SpSessionMode::kColdEachSolve) {
    // Warm sessions are equivalent within solver tolerance, not
    // bit-identical; the equivalence suite covers that contract.
    std::fprintf(stderr, "error: --check requires the default solver mode\n");
    return 2;
  }

  auto scenario = eval::ScenarioByName(scenario_name);
  if (!scenario.ok()) {
    std::fprintf(stderr, "error: %s\n", scenario.status().ToString().c_str());
    return 1;
  }

  auto plan = serving::BuildReplayPlan(*scenario, replay);
  if (!plan.ok()) {
    std::fprintf(stderr, "error: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  core::NomLocConfig engine_cfg = replay.run.engine;
  engine_cfg.bandwidth_hz = replay.run.channel.bandwidth_hz;
  auto engine =
      core::NomLocEngine::Create(scenario->env.Boundary(), engine_cfg);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  if (chaos_mode) {
    auto report = serving::RunChaos(*engine, *plan, replay.epoch_interval_s,
                                    chaos, serve);
    if (!report.ok()) {
      std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("chaos: seed=%llu events=%zu (last clears at %.2f s)\n",
                static_cast<unsigned long long>(chaos.seed),
                report->schedule.events.size(),
                report->schedule.last_event_end_s);
    for (const serving::ChaosEvent& event : report->schedule.events) {
      std::printf("  %-16s ap=%d  [%.2f, %.2f] s  magnitude=%.3f\n",
                  std::string(serving::ChaosEventKindName(event.kind)).c_str(),
                  event.ap_id, event.start_s, event.end_s, event.magnitude);
    }
    std::printf("injected: %zu dropped, %zu corrupted, %zu clock jumps, "
                "%zu saturation bursts\n",
                report->injected_drops, report->injected_corruptions,
                report->clock_jumps, report->saturation_bursts);
    std::printf("ingest: %zu accepted, %zu corrupt, %zu breaker-open, "
                "%zu queue-full\n",
                report->admit_accepted, report->admit_rejected_corrupt,
                report->admit_rejected_breaker,
                report->admit_rejected_queue_full);
    std::printf("degradation: none %zu, relaxed %zu, centroid %zu, "
                "last-known-good %zu\n",
                report->degradation_counts[0], report->degradation_counts[1],
                report->degradation_counts[2], report->degradation_counts[3]);
    std::vector<double> errors_m;
    for (const serving::ChaosQueryOutcome& outcome : report->outcomes)
      if (outcome.status == serving::ServeStatus::kOk)
        errors_m.push_back(outcome.error_m);
    if (!errors_m.empty()) {
      std::printf("error: mean %.2f m | p50 %.2f m | p90 %.2f m "
                  "(%zu of %zu ok)\n",
                  common::Mean(errors_m), common::Percentile(errors_m, 0.5),
                  common::Percentile(errors_m, 0.9), errors_m.size(),
                  report->outcomes.size());
    }
    if (report->recovery_latency_s >= 0.0)
      std::printf("recovery: full fidelity %.3f s after last fault cleared\n",
                  report->recovery_latency_s);
    if (metrics) {
      serving::TouchMetrics();
      std::printf("\n%s", common::MetricRegistry::Global().DumpText().c_str());
    }
    return 0;
  }

  serve.store.anchor_ttl_s = plan->suggested_anchor_ttl_s;
  serve.store.session_idle_ttl_s = 10.0 * replay.epoch_interval_s;
  serve.expected_anchors = plan->expected_anchors;

  serving::ManualClock clock;
  auto service = serving::StreamingLocalizer::Create(*engine, serve, &clock);
  if (!service.ok()) {
    std::fprintf(stderr, "error: %s\n", service.status().ToString().c_str());
    return 1;
  }

  // --wire: serve the stream a decoder hands back, not the in-memory one.
  std::vector<serving::IngestPacket> stream = plan->packets;
  if (use_wire) {
    const std::string encoded = serving::EncodeWire(plan->packets,
                                                    wire_format);
    auto decoded = serving::DecodeWire(encoded, wire_format);
    if (!decoded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   decoded.status().ToString().c_str());
      return 1;
    }
    stream = std::move(*decoded);
    std::printf("wire: %s round-trip, %zu packets in %zu bytes "
                "(%.1f B/packet)\n",
                std::string(serving::WireFormatName(wire_format)).c_str(),
                stream.size(), encoded.size(),
                stream.empty() ? 0.0
                               : double(encoded.size()) / double(stream.size()));
  }

  // Replay on the logical timeline.  Flushing at each epoch boundary
  // pins the logical time every query is served at (its own timestamp),
  // which is what makes the no-fault stream reproducible: the session
  // TTL sees exactly the ages the plan promises.
  std::size_t accepted = 0, dropped = 0, rejected = 0;
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t next_packet = 0;
  for (std::size_t e = 0; e < plan->epoch_count; ++e) {
    const double epoch_end_s = double(e + 1) * replay.epoch_interval_s;
    while (next_packet < stream.size() &&
           stream[next_packet].timestamp_s < epoch_end_s) {
      const serving::IngestPacket& packet = stream[next_packet++];
      clock.Set(packet.timestamp_s);
      switch ((*service)->Ingest(packet)) {
        case serving::AdmitStatus::kAccepted: ++accepted; break;
        case serving::AdmitStatus::kDroppedByFault: ++dropped; break;
        default: ++rejected; break;
      }
    }
    (*service)->Flush();
  }
  (*service)->Shutdown();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  auto responses = (*service)->TakeResponses();
  std::sort(responses.begin(), responses.end(),
            [](const serving::ServeResponse& a,
               const serving::ServeResponse& b) { return a.seq < b.seq; });

  std::size_t ok = 0, failed = 0, deadline_missed = 0, degraded = 0;
  std::size_t ladder[4] = {0, 0, 0, 0};
  std::vector<double> errors_m, latencies_ms, confidences;
  for (const serving::ServeResponse& r : responses) {
    latencies_ms.push_back(1e3 * r.latency_s);
    if (r.degraded) ++degraded;
    if (std::size_t(r.degradation) < 4) ++ladder[std::size_t(r.degradation)];
    if (r.status == serving::ServeStatus::kOk) {
      ++ok;
      confidences.push_back(r.confidence);
      const std::size_t epoch =
          std::size_t(r.timestamp_s / replay.epoch_interval_s);
      const auto& golden =
          plan->epochs[epoch * plan->objects + std::size_t(r.object_id)];
      errors_m.push_back(
          (r.estimate.position - golden.true_position).Norm());
    } else if (r.status == serving::ServeStatus::kRejectedDeadline) {
      ++deadline_missed;
    } else {
      ++failed;
    }
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());

  std::printf("scenario=%s objects=%zu epochs=%zu workers=%zu faults=%s\n",
              scenario_name.c_str(), plan->objects, plan->epoch_count,
              (*service)->WorkerCount(),
              serve.faults.Enabled() ? "on" : "off");
  std::printf("ingest: %zu accepted, %zu dropped by fault, %zu rejected\n",
              accepted, dropped, rejected);
  std::printf("responses: %zu ok, %zu failed, %zu past deadline, "
              "%zu degraded\n",
              ok, failed, deadline_missed, degraded);
  std::printf("degradation: none %zu, relaxed %zu, centroid %zu, "
              "last-known-good %zu\n",
              ladder[0], ladder[1], ladder[2], ladder[3]);
  if (!errors_m.empty()) {
    std::printf("error: mean %.2f m | p50 %.2f m | p90 %.2f m | "
                "mean confidence %.3f\n",
                common::Mean(errors_m), common::Percentile(errors_m, 0.5),
                common::Percentile(errors_m, 0.9),
                common::Mean(confidences));
  }
  std::printf("throughput: %.0f packets/s (%zu packets in %.3f s)\n",
              wall_s > 0.0 ? double(accepted) / wall_s : 0.0, accepted,
              wall_s);
  if (!latencies_ms.empty()) {
    std::printf("latency: p50 %.3f ms | p95 %.3f ms | p99 %.3f ms\n",
                common::Percentile(latencies_ms, 0.5),
                common::Percentile(latencies_ms, 0.95),
                common::Percentile(latencies_ms, 0.99));
  }

  int exit_code = 0;
  if (check_perturb) {
    // Self-test of the divergence detector: nudge one streamed estimate
    // by one ulp-scale step; the bit-compare below must now fail.
    for (serving::ServeResponse& r : responses) {
      if (r.status != serving::ServeStatus::kOk) continue;
      r.estimate.position.x += 1e-9;
      std::printf("check: perturbed object %llu by 1e-9 m\n",
                  static_cast<unsigned long long>(r.object_id));
      break;
    }
  }
  if (check) {
    // Batch twin: the exact anchor sets the plan promised each query.
    std::vector<core::LocateRequest> requests(plan->epochs.size());
    for (std::size_t i = 0; i < plan->epochs.size(); ++i)
      requests[i].anchors = plan->epochs[i].anchors;
    auto batch = (*engine).LocateBatch(requests, serve.workers);
    if (!batch.ok()) {
      std::fprintf(stderr, "error: %s\n", batch.status().ToString().c_str());
      return 1;
    }
    std::size_t compared = 0, mismatched = 0;
    for (const serving::ServeResponse& r : responses) {
      if (r.status != serving::ServeStatus::kOk) {
        ++mismatched;  // the batch twin always succeeds
        continue;
      }
      const std::size_t epoch =
          std::size_t(r.timestamp_s / replay.epoch_interval_s);
      const std::size_t row = epoch * plan->objects + std::size_t(r.object_id);
      const core::LocationEstimate& want = (*batch)[row].estimate;
      ++compared;
      if (std::memcmp(&r.estimate.position, &want.position,
                      sizeof(want.position)) != 0 ||
          r.estimate.relaxation_cost != want.relaxation_cost ||
          r.estimate.feasible_area_m2 != want.feasible_area_m2) {
        ++mismatched;
        std::fprintf(stderr,
                     "check: object %llu epoch %zu: streamed (%.17g, %.17g) "
                     "!= batch (%.17g, %.17g)\n",
                     static_cast<unsigned long long>(r.object_id), epoch,
                     r.estimate.position.x, r.estimate.position.y,
                     want.position.x, want.position.y);
      }
    }
    if (compared != plan->epochs.size() || mismatched != 0) {
      std::fprintf(stderr,
                   "check: FAILED (%zu of %zu compared, %zu mismatched)\n",
                   compared, plan->epochs.size(), mismatched);
      exit_code = 1;
    } else {
      std::printf("check: %zu streamed estimates bit-identical to "
                  "LocateBatch\n",
                  compared);
    }
  }

  if (metrics) {
    serving::TouchMetrics();
    auto& registry = common::MetricRegistry::Global();
    std::printf("\n%s", registry.DumpText().c_str());
    std::printf("summary: wire bytes in=%llu out=%llu\n",
                static_cast<unsigned long long>(
                    registry.Counter("serving.wire.bytes_in").Value()),
                static_cast<unsigned long long>(
                    registry.Counter("serving.wire.bytes_out").Value()));
  }
  return exit_code;
}
