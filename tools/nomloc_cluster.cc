// nomloc_cluster — multi-shard serving topology driver.
//
//   nomloc_cluster [--scenario lab|lobby|office] [--objects N] [--epochs N]
//                  [--interval S] [--workers N] [--packets N] [--dwells N]
//                  [--seed N] [--shards N] [--transport loopback|unix|tcp]
//                  [--breaker-threshold N] [--breaker-backoff S]
//                  [--migrate] [--kill] [--replicate] [--kill-primary]
//                  [--wal DIR] [--retry-budget N] [--chaos [SEED]]
//                  [--chaos-events N] [--check] [--metrics]
//
// Replays the same measurement campaign nomloc_serve drives, but through
// a Cluster: N shard hosts (each a StreamingLocalizer behind a byte-stream
// transport speaking the NLW wire format) fronted by the rendezvous-hash
// router.  Prints the shard topology, routing/admission tallies,
// localization error, and throughput.
//
// --check runs the identical stream through one unsharded
// StreamingLocalizer and exits non-zero unless every sharded response is
// bit-identical to its golden twin (position, relaxation cost, feasible
// area, confidence — all compared as raw bits).  Because the replay
// stream is globally timestamp-sorted and every epoch is self-contained
// under the anchor TTL, sharding, live migration (--migrate), and even a
// kill/checkpoint-restore cycle (--kill) must not change a single bit.
//
// --migrate live-migrates one shard at the middle epoch boundary (drain,
// filtered checkpoint, restore into a fresh host, atomic flip).  --kill
// checkpoints and kills a shard at the middle boundary and restores it
// one epoch later; in between the router routes its objects around the
// dead shard along their rendezvous preference order.
//
// --replicate turns on the standby dual-write path (requires >= 2
// shards).  --kill-primary then crash-kills shard 0 at the middle epoch
// boundary WITHOUT a checkpoint — the router fails over to the standby —
// and Recover()s it one epoch later (WAL replay when --wal is set, then
// anti-entropy repair).  Under --check the whole episode must stay
// bit-identical to the unsharded golden run: the standby saw every
// accepted observation, so nothing is lost.
//
// --wal DIR makes every shard durable under DIR/shard-N (WAL segments +
// checkpoint files).  --retry-budget N enables router-side write retries
// with exponential backoff + jitter before a typed backpressure reject.
//
// --chaos [SEED] runs the seeded shard-level chaos schedule (kills with
// later restores, migrations, transport stalls) from
// cluster::RunClusterChaos instead of the plain replay and reports event
// and admission tallies plus post-recovery accuracy.  With --replicate
// the event mix switches to the parity-preserving kinds (crash kills +
// migrations), and --check runs the golden twin inside the harness —
// the run fails unless every response is bit-identical.
#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "cluster/chaos.h"
#include "cluster/cluster.h"
#include "common/metrics.h"
#include "common/stats.h"
#include "core/nomloc.h"
#include "eval/runner.h"
#include "eval/scenario.h"
#include "serving/clock.h"
#include "serving/replay.h"
#include "serving/service.h"
#include "serving/wire.h"

using namespace nomloc;

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--scenario lab|lobby|office] [--objects N] [--epochs N]\n"
      "          [--interval S] [--workers N] [--packets N] [--dwells N]\n"
      "          [--seed N] [--shards N] [--transport loopback|unix|tcp]\n"
      "          [--breaker-threshold N] [--breaker-backoff S]\n"
      "          [--migrate] [--kill] [--replicate] [--kill-primary]\n"
      "          [--wal DIR] [--retry-budget N] [--chaos [SEED]]\n"
      "          [--chaos-events N] [--check] [--metrics]\n",
      argv0);
  std::exit(2);
}

/// Bit-compare key: a response answers exactly one (object, query time).
using ResponseKey = std::pair<std::uint64_t, std::uint64_t>;

ResponseKey KeyOf(std::uint64_t object_id, double timestamp_s) {
  std::uint64_t bits;
  std::memcpy(&bits, &timestamp_s, sizeof(bits));
  return {object_id, bits};
}

bool BitsEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(a)) == 0;
}

void PrintMetricsSummary() {
  auto& registry = common::MetricRegistry::Global();
  std::printf("summary: routed=%llu rerouted=%llu shard_trips=%llu "
              "migrations=%llu\n",
              static_cast<unsigned long long>(
                  registry.Counter("cluster.routed").Value()),
              static_cast<unsigned long long>(
                  registry.Counter("cluster.rerouted").Value()),
              static_cast<unsigned long long>(
                  registry.Counter("cluster.shard_trips").Value()),
              static_cast<unsigned long long>(
                  registry.Counter("cluster.migrations").Value()));
  std::printf("summary: replicated=%llu failovers=%llu recoveries=%llu "
              "stale_epoch=%llu write_retries=%llu\n",
              static_cast<unsigned long long>(
                  registry.Counter("cluster.replicated").Value()),
              static_cast<unsigned long long>(
                  registry.Counter("cluster.failovers").Value()),
              static_cast<unsigned long long>(
                  registry.Counter("cluster.recoveries").Value()),
              static_cast<unsigned long long>(
                  registry.Counter("cluster.placement.stale_epoch").Value()),
              static_cast<unsigned long long>(
                  registry.Counter("cluster.write_retries").Value()));
  std::printf("summary: wire bytes in=%llu out=%llu\n",
              static_cast<unsigned long long>(
                  registry.Counter("serving.wire.bytes_in").Value()),
              static_cast<unsigned long long>(
                  registry.Counter("serving.wire.bytes_out").Value()));
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name = "lab";
  serving::ReplayConfig replay;
  replay.run.packets_per_batch = 20;
  replay.run.dwell_count = 6;
  cluster::ClusterConfig config;
  cluster::ClusterChaosConfig chaos;
  bool chaos_mode = false;
  bool migrate = false;
  bool kill = false;
  bool kill_primary = false;
  bool check = false;
  bool metrics = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--scenario") {
      scenario_name = next();
    } else if (arg == "--objects") {
      replay.objects = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--epochs") {
      replay.epochs = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--interval") {
      replay.epoch_interval_s = std::strtod(next(), nullptr);
    } else if (arg == "--workers") {
      config.serving.workers = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--packets") {
      replay.run.packets_per_batch = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--dwells") {
      replay.run.dwell_count = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--seed") {
      replay.run.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--shards") {
      config.shards = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--transport") {
      auto parsed = cluster::ParseTransportKindName(next());
      if (!parsed.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     parsed.status().ToString().c_str());
        return 2;
      }
      config.transport.kind = *parsed;
    } else if (arg == "--breaker-threshold") {
      config.shard_breaker.failure_threshold =
          std::strtoul(next(), nullptr, 10);
    } else if (arg == "--breaker-backoff") {
      config.shard_breaker.base_backoff_s = std::strtod(next(), nullptr);
      config.shard_breaker.max_backoff_s =
          std::max(config.shard_breaker.max_backoff_s,
                   config.shard_breaker.base_backoff_s);
    } else if (arg == "--migrate") {
      migrate = true;
    } else if (arg == "--kill") {
      kill = true;
    } else if (arg == "--replicate") {
      config.replicate = true;
    } else if (arg == "--kill-primary") {
      kill_primary = true;
    } else if (arg == "--wal") {
      config.durable_dir = next();
    } else if (arg == "--retry-budget") {
      config.write_retry_budget = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--chaos") {
      // The seed is optional so `--chaos --check` reads naturally.
      if (i + 1 < argc && std::isdigit(argv[i + 1][0]))
        chaos.seed = std::strtoull(argv[++i], nullptr, 10);
      chaos_mode = true;
    } else if (arg == "--chaos-events") {
      chaos.events = std::strtoul(next(), nullptr, 10);
      chaos_mode = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else {
      Usage(argv[0]);
    }
  }

  if (chaos_mode && (migrate || kill || kill_primary)) {
    std::fprintf(stderr,
                 "error: --chaos schedules its own topology events\n");
    return 2;
  }
  if (kill_primary && !config.replicate) {
    std::fprintf(stderr,
                 "error: --kill-primary needs --replicate (a crash-killed "
                 "shard recovers through its standby)\n");
    return 2;
  }
  if (config.replicate && config.shards < 2) {
    std::fprintf(stderr, "error: --replicate needs at least 2 shards\n");
    return 2;
  }
  if (chaos_mode && config.replicate) {
    // Parity-preserving mix: crash kills + migrations.  A clean kill's
    // Restart(restore) legitimately drops post-checkpoint sessions and a
    // stall's typed rejections are fine but pointless here.
    chaos.kill_weight = 0.0;
    chaos.stall_weight = 0.0;
    if (chaos.kill_unclean_weight <= 0.0) chaos.kill_unclean_weight = 3.0;
    if (check) chaos.check_parity = true;
  }
  if (chaos_mode && check && !config.replicate) {
    std::fprintf(stderr,
                 "error: --chaos --check needs --replicate (bit-parity "
                 "under crash kills is the replication invariant)\n");
    return 2;
  }

  auto scenario = eval::ScenarioByName(scenario_name);
  if (!scenario.ok()) {
    std::fprintf(stderr, "error: %s\n", scenario.status().ToString().c_str());
    return 1;
  }
  auto plan = serving::BuildReplayPlan(*scenario, replay);
  if (!plan.ok()) {
    std::fprintf(stderr, "error: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  core::NomLocConfig engine_cfg = replay.run.engine;
  engine_cfg.bandwidth_hz = replay.run.channel.bandwidth_hz;
  auto engine =
      core::NomLocEngine::Create(scenario->env.Boundary(), engine_cfg);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  if (chaos_mode) {
    auto report = cluster::RunClusterChaos(*engine, *plan,
                                           replay.epoch_interval_s, chaos,
                                           config);
    if (!report.ok()) {
      std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("chaos: seed=%llu events=%zu (last clears at %.2f s)\n",
                static_cast<unsigned long long>(chaos.seed),
                report->schedule.events.size(),
                report->schedule.last_event_end_s);
    for (const cluster::ClusterChaosEvent& event : report->schedule.events) {
      std::printf(
          "  %-16s shard=%zu  [%.2f, %.2f] s\n",
          std::string(cluster::ClusterChaosEventKindName(event.kind)).c_str(),
          event.shard, event.start_s, event.end_s);
    }
    std::printf("executed: %zu kills, %zu restores, %zu crash kills, "
                "%zu recoveries, %zu migrations, %zu stall windows\n",
                report->kills, report->restores, report->kills_unclean,
                report->recoveries, report->migrations,
                report->stall_windows);
    std::printf("ingest: %zu accepted, %zu backpressure, %zu breaker-open, "
                "%zu past deadline\n",
                report->admit_accepted, report->admit_rejected_backpressure,
                report->admit_rejected_breaker,
                report->admit_rejected_deadline);
    std::printf("responses: %zu (accepted queries %zu)\n",
                report->outcomes.size(), report->accepted_queries);
    if (report->tail_mean_error_m >= 0.0)
      std::printf("recovery: tail mean error %.2f m\n",
                  report->tail_mean_error_m);
    int chaos_exit = 0;
    if (report->parity_checked) {
      if (report->parity_mismatches == 0) {
        std::printf("check: %zu responses bit-identical to the unsharded "
                    "golden run (under %zu crash kills)\n",
                    report->parity_compared, report->kills_unclean);
      } else {
        std::fprintf(stderr, "check: FAILED (%zu compared, %zu mismatched)\n",
                     report->parity_compared, report->parity_mismatches);
        chaos_exit = 1;
      }
    }
    if (metrics) {
      serving::TouchMetrics();
      cluster::TouchMetrics();
      std::printf("\n%s", common::MetricRegistry::Global().DumpText().c_str());
      PrintMetricsSummary();
    }
    return chaos_exit;
  }

  config.serving.store.anchor_ttl_s = plan->suggested_anchor_ttl_s;
  config.serving.store.session_idle_ttl_s = 10.0 * replay.epoch_interval_s;
  config.serving.expected_anchors = plan->expected_anchors;

  serving::ManualClock clock;
  auto cluster_result = cluster::Cluster::Create(*engine, config, &clock);
  if (!cluster_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 cluster_result.status().ToString().c_str());
    return 1;
  }
  cluster::Cluster& cluster = **cluster_result;

  // Topology events fire on flushed epoch boundaries: migration after the
  // middle epoch, kill after the middle epoch + restore one epoch later.
  const std::size_t event_boundary = plan->epoch_count / 2;
  const std::size_t event_shard = 0;

  std::size_t accepted = 0, rejected = 0;
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t next_packet = 0;
  const auto& stream = plan->packets;
  for (std::size_t e = 0; e < plan->epoch_count; ++e) {
    const double epoch_end_s = double(e + 1) * replay.epoch_interval_s;
    while (next_packet < stream.size() &&
           stream[next_packet].timestamp_s < epoch_end_s) {
      const serving::IngestPacket& packet = stream[next_packet++];
      clock.Set(packet.timestamp_s);
      if (cluster.Ingest(packet) == serving::AdmitStatus::kAccepted)
        ++accepted;
      else
        ++rejected;
    }
    cluster.Flush();
    if (e + 1 == event_boundary) {
      if (migrate) {
        if (auto ok = cluster.Migrate(event_shard); !ok.ok()) {
          std::fprintf(stderr, "error: %s\n", ok.status().ToString().c_str());
          return 1;
        }
        std::printf("migrated shard %zu after epoch %zu\n", event_shard,
                    e + 1);
      }
      if (kill) {
        if (auto ok = cluster.Checkpoint(event_shard); !ok.ok()) {
          std::fprintf(stderr, "error: %s\n", ok.status().ToString().c_str());
          return 1;
        }
        cluster.Kill(event_shard);
        std::printf("killed shard %zu after epoch %zu\n", event_shard, e + 1);
      }
      if (kill_primary) {
        // Crash, not a planned drain: no checkpoint.  The first packet
        // that finds the shard dead triggers failover to its standby.
        cluster.Kill(event_shard, /*unclean=*/true);
        std::printf("crash-killed shard %zu after epoch %zu\n", event_shard,
                    e + 1);
      }
    } else if (e == event_boundary && !cluster.ShardLive(event_shard)) {
      if (kill) {
        if (auto ok = cluster.Restart(event_shard, /*restore=*/true);
            !ok.ok()) {
          std::fprintf(stderr, "error: %s\n",
                       ok.status().ToString().c_str());
          return 1;
        }
        std::printf("restored shard %zu after epoch %zu\n", event_shard,
                    e + 1);
      }
      if (kill_primary) {
        if (auto ok = cluster.Recover(event_shard); !ok.ok()) {
          std::fprintf(stderr, "error: %s\n",
                       ok.status().ToString().c_str());
          return 1;
        }
        std::printf("recovered shard %zu after epoch %zu\n", event_shard,
                    e + 1);
      }
    }
  }
  cluster.Flush();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::vector<cluster::ClusterResponse> responses = cluster.TakeResponses();
  cluster.Shutdown();

  std::printf("scenario=%s objects=%zu epochs=%zu shards=%zu transport=%s\n",
              scenario_name.c_str(), plan->objects, plan->epoch_count,
              cluster.ShardCount(),
              std::string(cluster::TransportKindName(config.transport.kind))
                  .c_str());
  std::printf("ingest: %zu accepted, %zu rejected\n", accepted, rejected);

  const auto ok_status = static_cast<std::uint8_t>(serving::ServeStatus::kOk);
  std::size_t ok_count = 0;
  std::vector<double> errors_m;
  for (const cluster::ClusterResponse& received : responses) {
    const serving::WireResponse& r = received.response;
    if (r.status != ok_status) continue;
    ++ok_count;
    const std::size_t epoch =
        std::size_t(r.timestamp_s / replay.epoch_interval_s);
    const std::size_t row = epoch * plan->objects + std::size_t(r.object_id);
    if (row < plan->epochs.size())
      errors_m.push_back(
          (r.position - plan->epochs[row].true_position).Norm());
  }
  std::printf("responses: %zu (%zu ok)\n", responses.size(), ok_count);
  if (!errors_m.empty())
    std::printf("error: mean %.2f m | p50 %.2f m | p90 %.2f m\n",
                common::Mean(errors_m), common::Percentile(errors_m, 0.5),
                common::Percentile(errors_m, 0.9));
  std::printf("throughput: %.0f packets/s (%zu packets in %.3f s)\n",
              wall_s > 0.0 ? double(accepted) / wall_s : 0.0, accepted,
              wall_s);

  int exit_code = 0;
  if (check) {
    // Golden twin: the identical stream through one unsharded localizer.
    serving::ManualClock golden_clock;
    serving::ServingConfig golden_config = config.serving;
    auto golden = serving::StreamingLocalizer::Create(*engine, golden_config,
                                                      &golden_clock);
    if (!golden.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   golden.status().ToString().c_str());
      return 1;
    }
    std::size_t golden_next = 0;
    for (std::size_t e = 0; e < plan->epoch_count; ++e) {
      const double epoch_end_s = double(e + 1) * replay.epoch_interval_s;
      while (golden_next < stream.size() &&
             stream[golden_next].timestamp_s < epoch_end_s) {
        const serving::IngestPacket& packet = stream[golden_next++];
        golden_clock.Set(packet.timestamp_s);
        (void)(*golden)->Ingest(packet);
      }
      (*golden)->Flush();
    }
    (*golden)->Shutdown();

    std::map<ResponseKey, serving::ServeResponse> golden_by_key;
    for (const serving::ServeResponse& r : (*golden)->TakeResponses())
      golden_by_key[KeyOf(r.object_id, r.timestamp_s)] = r;

    std::size_t compared = 0, mismatched = 0;
    std::map<ResponseKey, std::size_t> seen;
    for (const cluster::ClusterResponse& received : responses) {
      const serving::WireResponse& r = received.response;
      const ResponseKey key = KeyOf(r.object_id, r.timestamp_s);
      if (++seen[key] > 1) {
        ++mismatched;
        std::fprintf(stderr, "check: duplicate response for object %llu\n",
                     static_cast<unsigned long long>(r.object_id));
        continue;
      }
      auto golden_it = golden_by_key.find(key);
      if (golden_it == golden_by_key.end()) {
        ++mismatched;
        std::fprintf(stderr,
                     "check: object %llu t=%.6f has no golden twin\n",
                     static_cast<unsigned long long>(r.object_id),
                     r.timestamp_s);
        continue;
      }
      const serving::ServeResponse& want = golden_it->second;
      ++compared;
      if (r.status != static_cast<std::uint8_t>(want.status) ||
          !BitsEqual(r.position.x, want.estimate.position.x) ||
          !BitsEqual(r.position.y, want.estimate.position.y) ||
          !BitsEqual(r.relaxation_cost, want.estimate.relaxation_cost) ||
          !BitsEqual(r.feasible_area_m2, want.estimate.feasible_area_m2) ||
          !BitsEqual(r.confidence, want.confidence)) {
        ++mismatched;
        std::fprintf(stderr,
                     "check: object %llu t=%.6f: sharded (%.17g, %.17g) "
                     "!= golden (%.17g, %.17g)\n",
                     static_cast<unsigned long long>(r.object_id),
                     r.timestamp_s, r.position.x, r.position.y,
                     want.estimate.position.x, want.estimate.position.y);
      }
    }
    if (compared != golden_by_key.size() || mismatched != 0) {
      std::fprintf(stderr,
                   "check: FAILED (%zu of %zu compared, %zu mismatched)\n",
                   compared, golden_by_key.size(), mismatched);
      exit_code = 1;
    } else {
      std::printf("check: %zu sharded responses bit-identical to the "
                  "unsharded golden run\n",
                  compared);
    }
  }

  if (metrics) {
    serving::TouchMetrics();
    cluster::TouchMetrics();
    std::printf("\n%s", common::MetricRegistry::Global().DumpText().c_str());
    PrintMetricsSummary();
  }
  return exit_code;
}
