#!/bin/sh
# Sanitizer smoke: configure, build, and run the `sanitize-smoke` ctest
# subset (status/json/trace-io/cir plus the whole serving + cluster +
# chaos suite — WAL, replication, and failover included, loopback
# transports throughout) under each requested sanitizer.  asan and ubsan
# additionally sweep the `chaos-replication` label: seeded crash kills
# landing off flushed epoch boundaries with golden bit-parity checks.
#
#   tools/sanitize_smoke.sh [asan|ubsan|tsan ...]
#
# With no arguments all three are run.  Each sanitizer uses its own build
# tree (build-<name>), matching the CMakePresets.json presets of the same
# names, so `cmake --preset ubsan && cmake --build --preset ubsan &&
# ctest --preset ubsan` is the long-hand equivalent.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
sanitizers=${*:-"asan ubsan tsan"}

flags_for() {
  case "$1" in
    asan) echo "address" ;;
    ubsan) echo "undefined" ;;
    tsan) echo "thread" ;;
    *) echo "unknown sanitizer '$1' (expected asan, ubsan, or tsan)" >&2
       exit 2 ;;
  esac
}

for san in $sanitizers; do
  sanitize=$(flags_for "$san")
  build="$repo/build-$san"
  echo "== $san: configuring $build (NOMLOC_SANITIZE=$sanitize)"
  cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DNOMLOC_SANITIZE="$sanitize" -DNOMLOC_BUILD_BENCH=OFF \
        -DNOMLOC_BUILD_EXAMPLES=OFF >/dev/null
  echo "== $san: building"
  cmake --build "$build" -j >/dev/null
  echo "== $san: ctest -L sanitize-smoke"
  ctest --test-dir "$build" -L sanitize-smoke --output-on-failure
  case "$san" in
    asan|ubsan)
      echo "== $san: ctest -L chaos-replication"
      ctest --test-dir "$build" -L chaos-replication --output-on-failure ;;
  esac
done
echo "== sanitize smoke passed: $sanitizers"
