// nomloc_trace — record and replay measurement campaigns.
//
//   nomloc_trace record [--scenario lab|lobby|office] [--trials N]
//                       [--packets N] [--seed N] --out FILE
//   nomloc_trace replay --in FILE [--center centroid|chebyshev|analytic]
//                       [--lp simplex|ipm]
//
// `record` runs the measurement pipeline once per test site per trial and
// archives the resulting anchors (position + PDP) with ground truth as
// JSON.  `replay` re-runs any engine configuration on the archived data —
// no channel simulation, exactly like working from a recorded CSI dataset.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "channel/csi_model.h"
#include "common/stats.h"
#include "eval/scenario.h"
#include "localization/proximity.h"
#include "net/trace_io.h"

using namespace nomloc;

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s record [--scenario S] [--trials N] [--packets N] "
               "[--seed N] --out FILE\n"
               "       %s replay --in FILE [--center centroid|chebyshev|"
               "analytic] [--lp simplex|ipm]\n",
               argv0, argv0);
  std::exit(2);
}

int Record(int argc, char** argv) {
  std::string scenario_name = "lab", out_path;
  std::size_t trials = 3, packets = 50;
  std::uint64_t seed = 1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--scenario") scenario_name = next();
    else if (arg == "--trials") trials = std::strtoul(next(), nullptr, 10);
    else if (arg == "--packets") packets = std::strtoul(next(), nullptr, 10);
    else if (arg == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--out") out_path = next();
    else Usage(argv[0]);
  }
  if (out_path.empty()) Usage(argv[0]);

  auto scenario = eval::ScenarioByName(scenario_name);
  if (!scenario.ok()) {
    std::fprintf(stderr, "error: %s\n", scenario.status().ToString().c_str());
    return 1;
  }

  const channel::CsiSimulator sim(scenario->env, {});
  common::Rng rng(seed);
  net::MeasurementTrace trace;
  trace.description = scenario_name + " campaign, " +
                      std::to_string(trials) + " trials x " +
                      std::to_string(packets) + " packets";
  for (const geometry::Vec2 site : scenario->test_sites) {
    for (std::size_t trial = 0; trial < trials; ++trial) {
      net::EpochRecord epoch;
      epoch.ground_truth = site;
      for (const geometry::Vec2 ap : scenario->static_aps) {
        const auto frames = sim.MakeLink(site, ap).SampleBatch(packets, rng);
        epoch.anchors.push_back(localization::MakeAnchor(
            ap, frames, common::kBandwidth20MHz));
      }
      trace.epochs.push_back(std::move(epoch));
    }
  }

  if (auto saved = net::SaveTraceFile(trace, out_path); !saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.status().ToString().c_str());
    return 1;
  }
  std::printf("recorded %zu epochs (%zu anchors each) to %s\n",
              trace.epochs.size(), scenario->static_aps.size(),
              out_path.c_str());
  return 0;
}

int Replay(int argc, char** argv) {
  std::string in_path;
  localization::SpSolverOptions solver;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--in") in_path = next();
    else if (arg == "--center") {
      const std::string c = next();
      if (c == "centroid") solver.center = localization::CenterMethod::kCentroid;
      else if (c == "chebyshev")
        solver.center = localization::CenterMethod::kChebyshev;
      else if (c == "analytic")
        solver.center = localization::CenterMethod::kAnalytic;
      else Usage(argv[0]);
    } else if (arg == "--lp") {
      const std::string l = next();
      if (l == "simplex") solver.lp_backend = localization::LpBackend::kSimplex;
      else if (l == "ipm")
        solver.lp_backend = localization::LpBackend::kInteriorPoint;
      else Usage(argv[0]);
    } else {
      Usage(argv[0]);
    }
  }
  if (in_path.empty()) Usage(argv[0]);

  // LoadTraceFile rejects truncated/garbage files with a typed
  // kDataCorruption error naming the byte offset where parsing broke.
  auto trace = net::LoadTraceFile(in_path);
  if (!trace.ok()) {
    std::fprintf(stderr, "error: %s\n", trace.status().ToString().c_str());
    return 1;
  }

  // The replay area: the bounding box of everything in the trace, padded.
  geometry::Aabb box{{1e9, 1e9}, {-1e9, -1e9}};
  for (const auto& epoch : trace->epochs) {
    box.Expand(epoch.ground_truth);
    for (const auto& anchor : epoch.anchors) box.Expand(anchor.position);
  }
  core::NomLocConfig engine_cfg;
  engine_cfg.solver = solver;
  auto engine = core::NomLocEngine::Create(
      geometry::Polygon::Rectangle(box.lo.x - 0.5, box.lo.y - 0.5,
                                   box.hi.x + 0.5, box.hi.y + 0.5),
      engine_cfg);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  auto result = net::ReplayTrace(*trace, *engine);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("trace: %s\n", trace->description.c_str());
  std::printf("epochs: %zu\n", result->errors_m.size());
  std::printf("mean error: %.2f m | median %.2f m | 90th pct %.2f m\n",
              result->mean_error_m,
              common::Percentile(result->errors_m, 0.5),
              common::Percentile(result->errors_m, 0.9));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage(argv[0]);
  const std::string mode = argv[1];
  if (mode == "record") return Record(argc, argv);
  if (mode == "replay") return Replay(argc, argv);
  Usage(argv[0]);
}
