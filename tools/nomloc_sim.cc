// nomloc_sim — command-line experiment driver.
//
//   nomloc_sim [--scenario lab|lobby|office] [--deployment static|nomadic]
//              [--world office|corridor|atrium|multifloor] [--rooms N]
//              [--floors N] [--world-seed N] [--sites N]
//              [--trials N] [--packets N] [--dwells N] [--er METERS]
//              [--pattern markov|stay|patrol|stationary] [--seed N]
//              [--nomadic-aps N] [--threads N] [--csv] [--metrics]
//
// --world replaces the hand-drawn --scenario testbeds with a procedurally
// generated building (world/worldgen.h): --rooms sizes it, --floors
// applies to multifloor, --world-seed fixes the geometry, and --sites
// caps the object test sites (default 12, strided across the building).
//
// Runs the full measurement + localization pipeline and prints per-site
// mean errors, SLV, and CDF quantiles.  --csv emits machine-readable rows
// instead of the human table.  --threads parallelises the measurement and
// solve phases (bit-identical results for any count).  --metrics appends
// the pipeline observability dump: per-stage timers (dsp.pdp.extract,
// engine.judge, engine.solve, eval.measure, eval.solve, …), counters, and
// distribution histograms.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <fstream>

#include "common/metrics.h"
#include "common/stats.h"
#include "common/strings.h"
#include "eval/export.h"
#include "eval/render.h"
#include "eval/runner.h"
#include "eval/scenario.h"
#include "simd/dispatch.h"
#include "world/worldgen.h"

using namespace nomloc;

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--scenario lab|lobby|office] [--deployment static|nomadic]\n"
      "          [--world office|corridor|atrium|multifloor] [--rooms N]\n"
      "          [--floors N] [--world-seed N] [--sites N]\n"
      "          [--trials N] [--packets N] [--dwells N] [--er METERS]\n"
      "          [--pattern markov|stay|patrol|stationary] [--seed N]\n"
      "          [--nomadic-aps N] [--threads N] [--csv] [--map]\n"
      "          [--json FILE] [--metrics]\n",
      argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name = "lab";
  std::string world_name;
  world::WorldSpec world_spec;
  world_spec.max_test_sites = 12;
  eval::RunConfig cfg;
  cfg.packets_per_batch = 50;
  cfg.trials = 12;
  cfg.dwell_count = 8;
  cfg.seed = 1;
  bool csv = false;
  bool map = false;
  bool metrics = false;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--scenario") {
      scenario_name = next();
    } else if (arg == "--world") {
      world_name = next();
    } else if (arg == "--rooms") {
      world_spec.rooms = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--floors") {
      world_spec.floors = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--world-seed") {
      world_spec.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--sites") {
      world_spec.max_test_sites = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--deployment") {
      const std::string d = next();
      if (d == "static") cfg.deployment = eval::Deployment::kStatic;
      else if (d == "nomadic") cfg.deployment = eval::Deployment::kNomadic;
      else Usage(argv[0]);
    } else if (arg == "--trials") {
      cfg.trials = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--packets") {
      cfg.packets_per_batch = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--dwells") {
      cfg.dwell_count = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--er") {
      cfg.position_error_m = std::strtod(next(), nullptr);
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--nomadic-aps") {
      cfg.nomadic_ap_count = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--threads") {
      cfg.threads = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--pattern") {
      const std::string p = next();
      if (p == "markov") cfg.pattern = mobility::MobilityPattern::kMarkovWalk;
      else if (p == "stay") cfg.pattern = mobility::MobilityPattern::kStayBiased;
      else if (p == "patrol") cfg.pattern = mobility::MobilityPattern::kPatrol;
      else if (p == "stationary")
        cfg.pattern = mobility::MobilityPattern::kStationary;
      else Usage(argv[0]);
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--map") {
      map = true;
    } else if (arg == "--json") {
      json_path = next();
    } else {
      Usage(argv[0]);
    }
  }

  auto scenario = [&]() -> common::Result<eval::Scenario> {
    if (world_name.empty()) return eval::ScenarioByName(scenario_name);
    auto layout = world::LayoutByName(world_name);
    if (!layout.ok()) return layout.status();
    world_spec.layout = *layout;
    return eval::GeneratedScenario(world_spec);
  }();
  if (!scenario.ok()) {
    std::fprintf(stderr, "error: %s\n", scenario.status().ToString().c_str());
    return 1;
  }
  if (!world_name.empty()) scenario_name = scenario->name;

  if (map) {
    std::printf("%s\nlegend: # wall, o obstacle, A static AP, N nomadic "
                "site, x test site\n\n",
                eval::RenderScenario(*scenario).c_str());
  }

  // Metrics epilogue shared by the csv and table paths: flush the
  // per-kernel SIMD call counters into the registry, dump every series,
  // and name the dispatch target the run used.
  const auto print_metrics = [] {
    simd::PublishMetrics();
    std::printf("%s", common::MetricRegistry::Global().DumpText().c_str());
    std::printf("simd dispatch target: %s\n",
                simd::TargetName(simd::ActiveTarget()));
  };

  // Hot-path cache effectiveness, derived from the counter pairs the
  // cache layers export (see DESIGN.md "Hot-path caches").
  const auto print_cache_hit_rates = [] {
    auto& registry = common::MetricRegistry::Global();
    struct Pair {
      const char* label;
      const char* hits;
      const char* misses;
    };
    static constexpr Pair kPairs[] = {
        {"dsp.fft.plan", "dsp.fft.plan.hits", "dsp.fft.plan.misses"},
        {"channel.trace.cache", "channel.trace.cache.hits",
         "channel.trace.cache.misses"},
        {"channel.trace.images.hit_rate", "channel.trace.images.hits",
         "channel.trace.images.misses"},
        {"lp.workspace", "lp.workspace.reused", "lp.workspace.fresh"},
        // Session-solver short-circuits: a "hit" avoided a cold LP solve
        // (geometric fast path, or a warm dual-simplex delta).
        {"solver.fastpath", "solver.fastpath_hits", "solver.cold_solves"},
        {"solver.warm_lp", "solver.warm_hits", "solver.cold_solves"},
    };
    std::printf("cache hit rates:\n");
    for (const Pair& p : kPairs) {
      const std::uint64_t hits = registry.Counter(p.hits).Value();
      const std::uint64_t misses = registry.Counter(p.misses).Value();
      const std::uint64_t total = hits + misses;
      if (total == 0) {
        std::printf("  %-29s unused\n", p.label);
      } else {
        std::printf("  %-29s %5.1f %% (%llu of %llu)\n", p.label,
                    100.0 * double(hits) / double(total),
                    static_cast<unsigned long long>(hits),
                    static_cast<unsigned long long>(total));
      }
    }
  };

  auto result = eval::RunLocalization(*scenario, cfg);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  if (!json_path.empty()) {
    common::JsonObject doc;
    doc["scenario"] = eval::ScenarioToJson(*scenario);
    doc["result"] = eval::RunResultToJson(*result);
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << common::Json(std::move(doc)).DumpPretty() << "\n";
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }

  const auto site_errors = result->SiteMeanErrors();
  if (csv) {
    std::printf("site_index,x,y,mean_error_m\n");
    for (std::size_t i = 0; i < result->sites.size(); ++i) {
      const auto& s = result->sites[i];
      std::printf("%zu,%.3f,%.3f,%.4f\n", i, s.site.x, s.site.y,
                  s.mean_error_m);
    }
    std::printf("# slv=%.4f mean=%.4f p50=%.4f p90=%.4f\n", result->slv,
                result->MeanError(), common::Percentile(site_errors, 0.5),
                common::Percentile(site_errors, 0.9));
    if (metrics) {
      print_metrics();
      print_cache_hit_rates();
    }
    return 0;
  }

  std::printf("scenario=%s deployment=%s trials=%zu packets=%zu dwells=%zu "
              "er=%.1fm seed=%llu\n\n",
              scenario_name.c_str(),
              cfg.deployment == eval::Deployment::kStatic ? "static"
                                                          : "nomadic",
              cfg.trials, cfg.packets_per_batch, cfg.dwell_count,
              cfg.position_error_m,
              static_cast<unsigned long long>(cfg.seed));
  std::vector<std::string> header{"site", "position", "mean error"};
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < result->sites.size(); ++i) {
    const auto& s = result->sites[i];
    rows.push_back({std::to_string(i + 1),
                    common::StrFormat("(%.1f, %.1f)", s.site.x, s.site.y),
                    common::StrFormat("%.2f m", s.mean_error_m)});
  }
  std::printf("%s", common::AsciiTable(header, rows).c_str());
  std::printf("\nmean error %.2f m | median %.2f m | 90th pct %.2f m | "
              "SLV %.3f m^2\n",
              result->MeanError(), common::Percentile(site_errors, 0.5),
              common::Percentile(site_errors, 0.9), result->slv);
  if (metrics) {
    std::printf("\n");
    print_metrics();
    print_cache_hit_rates();
  }
  return 0;
}
