// Fig. 3 reproduction: channel response delay profile for LOS vs NLOS.
//
// Paper: two CIR amplitude-vs-delay plots (0–1.5 µs).  Under LOS the first
// path dominates; under NLOS the early taps collapse and the profile is
// dominated by (weaker) reflections.  We build one link in an empty-ish
// room (LOS) and the same link with a metal cabinet dropped onto the
// direct path (NLOS), then print the mean CIR amplitude per 50 ns tap.
#include <algorithm>
#include <cstdio>

#include "channel/csi_model.h"
#include "common/strings.h"
#include "dsp/cir.h"
#include "geometry/polygon.h"

using namespace nomloc;

namespace {

void PrintProfile(const char* label,
                  const channel::IndoorEnvironment& env,
                  const channel::ChannelConfig& cfg) {
  const channel::CsiSimulator sim(env, cfg);
  const geometry::Vec2 tx{2.0, 4.0}, rx{10.0, 4.0};
  const auto link = sim.MakeLink(tx, rx);

  // Average |h[n]| over packets, like an oscilloscope persistence view.
  common::Rng rng(2014);
  const std::size_t packets = 200;
  std::vector<double> avg(64, 0.0);
  for (std::size_t p = 0; p < packets; ++p) {
    const auto cir = dsp::CsiToCir(link.Sample(rng), cfg.bandwidth_hz);
    for (std::size_t n = 0; n < cir.taps.size(); ++n)
      avg[n] += std::abs(cir.taps[n]);
  }
  for (double& v : avg) v /= double(packets);

  double peak = 0.0;
  for (double v : avg) peak = std::max(peak, v);

  std::printf("Channel response delay profile — %s\n", label);
  std::printf("  %-10s %-12s %s\n", "delay", "amplitude", "");
  for (std::size_t n = 0; n <= 30; ++n) {  // 0 .. 1.5 us at 50 ns/tap.
    std::printf("  %6.2f us  %10.4g  |%s|\n", double(n) * 0.05, avg[n],
                common::AsciiBar(avg[n], peak, 40).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Fig. 3: channel response delay profile, LOS vs NLOS ===\n\n");

  channel::ChannelConfig cfg;
  cfg.propagation.max_reflection_order = 2;

  // LOS: open room with light clutter.
  {
    auto env = channel::IndoorEnvironment::Create(
        geometry::Polygon::Rectangle(0, 0, 12, 8));
    common::Rng rng(7);
    env->PlaceScatterers(10, rng);
    PrintProfile("LOS", *env, cfg);
  }

  // NLOS: a metal cabinet blocks the direct path of the same link.
  {
    std::vector<channel::Obstacle> obstacles;
    obstacles.push_back({geometry::Polygon::Rectangle(5.5, 3.0, 6.5, 5.0),
                         channel::materials::Metal()});
    auto env = channel::IndoorEnvironment::Create(
        geometry::Polygon::Rectangle(0, 0, 12, 8), {}, std::move(obstacles));
    common::Rng rng(7);
    env->PlaceScatterers(10, rng);
    PrintProfile("NLOS (metal cabinet on the direct path)", *env, cfg);
  }

  std::printf(
      "Expected shape (paper Fig. 3): LOS profile peaks hard at the first\n"
      "taps; NLOS first-tap amplitude drops sharply while the multipath\n"
      "tail remains, so the maximum-tap PDP of the NLOS link is far lower.\n");
  return 0;
}
