// Ablation: channel bandwidth vs PDP quality.
//
// The paper leans on the "20 MHz bandwidth of the 802.11n system" to
// resolve multipath (§III-B); 20 MHz gives 50 ns taps = 15 m of path
// resolution, so indoor reflections largely pile into the first taps.
// This bench sweeps the sounding bandwidth and measures what sharper
// delay resolution buys the proximity stage and the end-to-end error.
#include <cstdio>

#include "bench_util.h"

using namespace nomloc;

int main() {
  std::printf("=== Ablation: sounding bandwidth ===\n\n");

  for (const eval::Scenario& scenario :
       {eval::LabScenario(), eval::LobbyScenario()}) {
    std::printf("%s:\n", scenario.name.c_str());
    std::printf("  %-12s %-12s %-18s %-14s %-8s\n", "bandwidth",
                "tap = m", "prox. accuracy", "mean error", "SLV");
    for (double mhz : {5.0, 10.0, 20.0, 40.0, 80.0}) {
      eval::RunConfig cfg = bench::PaperConfig(2501);
      cfg.channel.bandwidth_hz = mhz * 1e6;
      auto prox = eval::RunProximityAccuracy(scenario, cfg);
      auto loc = eval::RunLocalization(scenario, cfg);
      if (!prox.ok() || !loc.ok()) {
        std::fprintf(stderr, "run failed at %.0f MHz\n", mhz);
        return 1;
      }
      std::printf("  %6.0f MHz %9.1f m %12.3f %14.2f m %8.3f m^2\n", mhz,
                  common::kSpeedOfLight / (mhz * 1e6),
                  common::Mean(prox->per_site_accuracy), loc->MeanError(),
                  loc->slv);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected: essentially flat across two orders of magnitude.  At room\n"
      "scale the direct path dominates the strongest tap at *any* of these\n"
      "bandwidths, so the max-tap PDP is insensitive to delay resolution —\n"
      "the strongest form of the paper's claim that commodity 20 MHz\n"
      "802.11n suffices for the PDP mechanism (unlike time-of-arrival\n"
      "ranging, which would need the resolution).\n");
  return 0;
}
