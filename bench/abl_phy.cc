// Ablation: oracle CSI vs the full PHY measurement chain.
//
// Every other bench samples CSI directly from the channel's frequency
// response.  Real hardware estimates it from the 802.11 training symbol
// (dsp/ofdm.h): IFFT -> cyclic prefix -> multipath convolution -> AWGN ->
// FFT -> least-squares division.  This bench runs the paper's proximity
// stage both ways and quantifies what the shortcut hides: discretised
// fractional delays and estimation noise.
#include <cstdio>

#include "bench_util.h"
#include "channel/csi_model.h"
#include "dsp/cir.h"
#include "localization/proximity.h"

using namespace nomloc;

int main() {
  std::printf("=== Ablation: oracle CSI vs full PHY chain ===\n\n");

  for (const eval::Scenario& scenario :
       {eval::LabScenario(), eval::LobbyScenario()}) {
    eval::RunConfig cfg = bench::PaperConfig(2401);
    cfg.trials = 15;
    const std::size_t packets = 10;  // PHY chain is ~10x costlier/packet.
    const channel::CsiSimulator sim(scenario.env, cfg.channel);
    common::Rng rng(cfg.seed);

    std::size_t agree = 0, oracle_right = 0, phy_right = 0, total = 0;
    for (const geometry::Vec2 site : scenario.test_sites) {
      for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
        std::vector<double> pdp_oracle, pdp_phy;
        for (const geometry::Vec2 ap : scenario.static_aps) {
          const auto link = sim.MakeLink(site, ap);
          double oracle_acc = 0.0, phy_acc = 0.0;
          for (std::size_t p = 0; p < packets; ++p) {
            oracle_acc += dsp::PdpOfCir(
                dsp::CsiToCir(link.Sample(rng), cfg.channel.bandwidth_hz),
                cfg.engine.pdp);
            auto phy = link.MeasurePhyCsi(&rng);
            if (phy.ok()) {
              phy_acc += dsp::PdpOfCir(
                  dsp::CsiToCir(*phy, cfg.channel.bandwidth_hz),
                  cfg.engine.pdp);
            }
          }
          pdp_oracle.push_back(oracle_acc / double(packets));
          pdp_phy.push_back(phy_acc / double(packets));
        }
        for (std::size_t i = 0; i < pdp_oracle.size(); ++i) {
          for (std::size_t j = i + 1; j < pdp_oracle.size(); ++j) {
            const bool truth =
                Distance(site, scenario.static_aps[i]) <=
                Distance(site, scenario.static_aps[j]);
            const bool o = pdp_oracle[i] >= pdp_oracle[j];
            const bool p = pdp_phy[i] >= pdp_phy[j];
            agree += o == p;
            oracle_right += o == truth;
            phy_right += p == truth;
            ++total;
          }
        }
      }
    }
    std::printf("%s (%zu judgements, %zu packets/link):\n",
                scenario.name.c_str(), total, packets);
    std::printf("  oracle vs PHY agreement : %5.1f %%\n",
                100.0 * double(agree) / double(total));
    std::printf("  oracle proximity correct: %5.1f %%\n",
                100.0 * double(oracle_right) / double(total));
    std::printf("  PHY    proximity correct: %5.1f %%\n\n",
                100.0 * double(phy_right) / double(total));
  }

  std::printf(
      "Expected: the two measurement paths agree on the overwhelming\n"
      "majority of judgements and achieve the same proximity accuracy —\n"
      "validating the oracle shortcut the other benches use, and closing\n"
      "the repro gap ('driver-level CSI extraction') flagged for this\n"
      "paper: CSI here is produced the way the hardware produces it.\n");
  return 0;
}
