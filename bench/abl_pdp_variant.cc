// Ablation of the §IV-A design choice: approximating the power of the
// direct path by the *maximum* tap of the power-delay profile, versus the
// first-path tap and versus total power (RSS-like).
//
// The paper argues the max-tap choice "naturally alleviates CIR of the
// NLOS paths" and filters multipath; total power should behave like RSS
// (multipath-sensitive), and first-path should suffer under NLOS where the
// attenuated first arrival is misleading.
#include <cstdio>

#include "bench_util.h"

using namespace nomloc;

int main() {
  std::printf("=== Ablation: PDP extraction method ===\n\n");

  const struct {
    dsp::PdpMethod method;
    const char* name;
  } methods[] = {{dsp::PdpMethod::kMaxTap, "max-tap (paper)"},
                 {dsp::PdpMethod::kFirstPath, "first-path"},
                 {dsp::PdpMethod::kTotalPower, "total-power"}};

  for (const eval::Scenario& scenario :
       {eval::LabScenario(), eval::LobbyScenario()}) {
    std::printf("%s:\n", scenario.name.c_str());
    std::printf("  %-18s %-16s %-14s %-8s\n", "method", "prox. accuracy",
                "mean error", "SLV");
    for (const auto& m : methods) {
      eval::RunConfig cfg = bench::PaperConfig(1401);
      cfg.engine.pdp.method = m.method;
      auto prox = eval::RunProximityAccuracy(scenario, cfg);
      auto loc = eval::RunLocalization(scenario, cfg);
      if (!prox.ok() || !loc.ok()) {
        std::fprintf(stderr, "error for %s\n", m.name);
        return 1;
      }
      std::printf("  %-18s %10.3f %12.2f m %8.3f m^2\n", m.name,
                  common::Mean(prox->per_site_accuracy), loc->MeanError(),
                  loc->slv);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected: max-tap is the robust choice across both venues.  When\n"
      "obstructions are mild (waist-high desks) an aggressive first-path\n"
      "picker can win, but it collapses where hard NLOS or IFFT sidelobes\n"
      "corrupt the earliest taps (Lobby); total-power behaves RSS-like and\n"
      "stays close to max-tap only because clutter here is moderate.\n");
  return 0;
}
