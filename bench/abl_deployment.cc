// Ablation: optimized *static* deployment vs the nomadic AP.
//
// The paper argues static deployments cannot be optimal everywhere; the
// natural rebuttal is "just place the APs better".  This bench optimizes
// the 4-AP static layout with both objectives of
// localization/deployment.h and compares against (a) the scenario's
// corner layout and (b) the corner layout + one nomadic AP — showing how
// much of the nomadic gain clever static placement can and cannot buy.
#include <cstdio>

#include "bench_util.h"
#include "geometry/hull.h"
#include "localization/deployment.h"

using namespace nomloc;

int main() {
  std::printf("=== Ablation: optimized static placement vs nomadic ===\n\n");

  for (const eval::Scenario& base : {eval::LabScenario()}) {
    eval::RunConfig cfg = bench::PaperConfig(2101);

    // Candidate positions: 2 m grid, clear of walls and obstacles.
    std::vector<geometry::Vec2> candidates;
    for (const geometry::Vec2 p :
         geometry::GridPointsIn(base.env.Boundary(), 2.0))
      if (base.env.IsFreeSpace(p)) candidates.push_back(p);

    auto optimize = [&](localization::DeploymentObjective objective) {
      localization::DeploymentConfig dcfg;
      dcfg.ap_count = base.static_aps.size();
      dcfg.objective = objective;
      dcfg.sample_points = 40;
      dcfg.seed = 2101;
      return localization::OptimizeStaticDeployment(base.env.Boundary(),
                                                    candidates, dcfg);
    };
    auto mean_opt = optimize(localization::DeploymentObjective::kMeanError);
    auto max_opt = optimize(localization::DeploymentObjective::kMaxError);
    if (!mean_opt.ok() || !max_opt.ok()) {
      std::fprintf(stderr, "deployment optimization failed\n");
      return 1;
    }

    struct Row {
      const char* name;
      std::vector<geometry::Vec2> aps;
      eval::Deployment deployment;
    };
    std::vector<Row> layout_rows;
    layout_rows.push_back(
        {"corners (paper)", base.static_aps, eval::Deployment::kStatic});
    layout_rows.push_back({"optimized mean-error", mean_opt->positions,
                           eval::Deployment::kStatic});
    layout_rows.push_back({"optimized maxL-minE", max_opt->positions,
                           eval::Deployment::kStatic});
    layout_rows.push_back(
        {"corners + nomadic AP", base.static_aps,
         eval::Deployment::kNomadic});

    std::printf("%s:\n", base.name.c_str());
    std::printf("  %-24s %-14s %-10s\n", "layout", "mean error", "SLV");
    for (const Row& row : layout_rows) {
      eval::Scenario scenario = base;
      scenario.static_aps = row.aps;
      eval::RunConfig run_cfg = cfg;
      run_cfg.deployment = row.deployment;
      auto result = eval::RunLocalization(scenario, run_cfg);
      if (!result.ok()) {
        std::fprintf(stderr, "run failed for %s\n", row.name);
        return 1;
      }
      std::printf("  %-24s %8.2f m %10.3f m^2\n", row.name,
                  result->MeanError(), result->slv);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected: mean-error-optimized static placement beats corners (the\n"
      "max-error objective is brittle under greedy selection and small\n"
      "sample sets), but the nomadic AP still reaches better accuracy\n"
      "*without touching the infrastructure* — and unlike a static optimum\n"
      "it keeps adapting when the environment changes (the paper's core\n"
      "argument).\n");
  return 0;
}
