// Ablation: planned vs hand-picked vs degenerate nomadic dwell sites.
//
// The paper picks P1–P3 by hand and defers "the impact of moving patterns"
// to future work.  This bench runs the greedy planner
// (localization/planner.h) over a candidate grid and compares the full
// measurement pipeline on: (a) the scenario's hand-picked sites, (b) the
// planner's selection, and (c) an adversarial clustered selection.
#include <cstdio>

#include "bench_util.h"
#include "geometry/hull.h"
#include "localization/planner.h"

using namespace nomloc;

namespace {

common::Result<eval::RunResult> RunWithSites(
    eval::Scenario scenario, std::vector<geometry::Vec2> sites,
    const eval::RunConfig& cfg) {
  // Site 0 stays the AP's home; the rest are replaced.
  sites.insert(sites.begin(), scenario.nomadic_sites.front());
  scenario.nomadic_sites = std::move(sites);
  return eval::RunLocalization(scenario, cfg);
}

}  // namespace

int main() {
  std::printf("=== Ablation: nomadic site planning ===\n\n");

  for (const eval::Scenario& scenario :
       {eval::LabScenario(), eval::LobbyScenario()}) {
    eval::RunConfig cfg = bench::PaperConfig(1801);

    // Candidate grid: every 2 m inside the area, away from the walls.
    std::vector<geometry::Vec2> candidates;
    for (const geometry::Vec2 p :
         geometry::GridPointsIn(scenario.env.Boundary(), 2.0)) {
      if (scenario.env.IsFreeSpace(p) &&
          scenario.env.Boundary().BoundaryDistance(p) > 0.8)
        candidates.push_back(p);
    }

    localization::PlannerConfig plan_cfg;
    plan_cfg.sites_to_select = scenario.nomadic_sites.size() - 1;
    plan_cfg.sample_points = 48;
    plan_cfg.seed = 1801;
    auto plan = localization::PlanNomadicSites(
        scenario.env.Boundary(), scenario.static_aps, candidates, plan_cfg);
    if (!plan.ok()) {
      std::fprintf(stderr, "planner failed: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }

    std::vector<geometry::Vec2> planned;
    for (std::size_t idx : plan->selected) planned.push_back(candidates[idx]);

    // Adversarial selection: all waypoints bunched next to the home AP.
    std::vector<geometry::Vec2> clustered;
    const geometry::Vec2 home = scenario.nomadic_sites.front();
    for (std::size_t k = 1; k < scenario.nomadic_sites.size(); ++k)
      clustered.push_back(
          {home.x + 0.4 * double(k), home.y + 0.3 * double(k)});

    const std::vector<geometry::Vec2> hand(
        scenario.nomadic_sites.begin() + 1, scenario.nomadic_sites.end());

    std::printf("%s (planner picked:", scenario.name.c_str());
    for (const geometry::Vec2 p : planned)
      std::printf(" (%.1f,%.1f)", p.x, p.y);
    std::printf("; predicted error %.2f -> %.2f m)\n",
                plan->baseline_error_m, plan->error_after_m.back());

    std::printf("  %-22s %-14s %-10s\n", "site set", "mean error", "SLV");
    const struct {
      const char* name;
      const std::vector<geometry::Vec2>* sites;
    } rows[] = {{"hand-picked (paper)", &hand},
                {"planned (greedy)", &planned},
                {"clustered (adversarial)", &clustered}};
    for (const auto& row : rows) {
      auto result = RunWithSites(scenario, *row.sites, cfg);
      if (!result.ok()) {
        std::fprintf(stderr, "run failed for %s\n", row.name);
        return 1;
      }
      std::printf("  %-22s %8.2f m %10.3f m^2\n", row.name,
                  result->MeanError(), result->slv);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected: the geometry-driven planner beats hand-picked waypoints in\n"
      "the cluttered Lab; in the Lobby its ideal-judgement objective (which\n"
      "ignores NLOS) can trail well-placed manual sites slightly.  The\n"
      "clustered selection is always worst: where the AP walks matters as\n"
      "much as that it walks.\n");
  return 0;
}
