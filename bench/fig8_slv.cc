// Fig. 8 reproduction: spatial localizability variance (SLV, Eq. 22) for
// the static AP deployment vs NomLoc (nomadic) in Lab and Lobby.
//
// Paper's result: NomLoc's SLV is much smaller in both scenarios, and the
// gap is larger in the Lobby (where static SLV is largest).
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace nomloc;

int main() {
  std::printf("=== Fig. 8: spatial localizability variance (SLV) ===\n\n");

  struct Row {
    std::string scenario;
    double slv_static, slv_nomadic;
  };
  std::vector<Row> rows;

  for (const eval::Scenario& scenario :
       {eval::LabScenario(), eval::LobbyScenario()}) {
    eval::RunConfig nomadic = bench::PaperConfig(801);
    eval::RunConfig fixed = nomadic;
    fixed.deployment = eval::Deployment::kStatic;

    auto rn = eval::RunLocalization(scenario, nomadic);
    auto rs = eval::RunLocalization(scenario, fixed);
    if (!rn.ok() || !rs.ok()) {
      std::fprintf(stderr, "error: %s %s\n",
                   rn.status().ToString().c_str(),
                   rs.status().ToString().c_str());
      return 1;
    }
    rows.push_back({scenario.name, rs->slv, rn->slv});
  }

  double max_slv = 0.0;
  for (const Row& r : rows)
    max_slv = std::max({max_slv, r.slv_static, r.slv_nomadic});

  for (const Row& r : rows) {
    std::printf("%s:\n", r.scenario.c_str());
    std::printf("  static  SLV = %6.3f m^2 |%s|\n", r.slv_static,
                common::AsciiBar(r.slv_static, max_slv, 40).c_str());
    std::printf("  nomadic SLV = %6.3f m^2 |%s|\n", r.slv_nomadic,
                common::AsciiBar(r.slv_nomadic, max_slv, 40).c_str());
    std::printf("  reduction   = %.1fx\n\n",
                r.slv_static / std::max(r.slv_nomadic, 1e-9));
  }

  std::printf(
      "Expected shape (paper Fig. 8): nomadic SLV << static SLV in both\n"
      "scenarios; static SLV largest in the Lobby, where the reduction is\n"
      "most pronounced.\n");
  return 0;
}
