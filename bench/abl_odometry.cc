// Ablation: how the nomadic AP knows its own position.
//
// Fig. 10 injects i.i.d. uniform-disc error per dwell.  A real carrier
// self-localizes by dead reckoning, whose error *accumulates* with walked
// distance and resets at known calibration points (paper §III-B suggests
// Bluetooth/RFID beacons).  This bench compares the two error processes at
// matched magnitudes and shows why the home-site reset matters.
#include <cstdio>

#include "bench_util.h"

using namespace nomloc;

int main() {
  std::printf("=== Ablation: nomadic self-localization error model ===\n\n");

  for (const eval::Scenario& scenario :
       {eval::LabScenario(), eval::LobbyScenario()}) {
    std::printf("%s:\n", scenario.name.c_str());
    std::printf("  %-34s %-14s %-10s\n", "error model", "mean error", "SLV");

    struct Row {
      const char* name;
      mobility::PositionErrorModel model;
      double uniform_er;
      double drift;
    };
    const Row rows[] = {
        {"exact positions", mobility::PositionErrorModel::kUniformDisc, 0.0,
         0.0},
        {"uniform disc ER=1m (paper)",
         mobility::PositionErrorModel::kUniformDisc, 1.0, 0.0},
        {"dead reckoning 0.2 m/sqrt(m)",
         mobility::PositionErrorModel::kDeadReckoning, 0.0, 0.2},
        {"dead reckoning 0.5 m/sqrt(m)",
         mobility::PositionErrorModel::kDeadReckoning, 0.0, 0.5},
    };
    for (const Row& row : rows) {
      eval::RunConfig run = bench::PaperConfig(2301);
      run.error_model = row.model;
      run.position_error_m = row.uniform_er;
      run.odometry_drift_per_m = row.drift;
      auto result = eval::RunLocalization(scenario, run);
      if (!result.ok()) {
        std::fprintf(stderr, "run failed for %s\n", row.name);
        return 1;
      }
      std::printf("  %-34s %8.2f m %10.3f m^2\n", row.name,
                  result->MeanError(), result->slv);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected: moderate dead-reckoning drift behaves like a small\n"
      "uniform ER thanks to the home-site reset every few dwells; heavy\n"
      "drift degrades more than the matched uniform model because errors\n"
      "at consecutive sites are *correlated*, biasing whole constraint\n"
      "groups the relaxation cannot vote down.\n");
  return 0;
}
