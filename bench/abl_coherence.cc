// Ablation: channel coherence vs batch averaging.
//
// The paper's object "collects thousands of packages at each site" and
// averages the PDP.  That averaging only helps if the packets see
// independent fading; packets sent within the channel coherence time are
// correlated and add little information.  This bench sweeps the AR(1)
// fading correlation and the batch size and reports the Lab's proximity
// accuracy — the quantity the averaging exists to stabilise.
#include <cstdio>

#include "bench_util.h"

using namespace nomloc;

int main() {
  std::printf("=== Ablation: fading coherence vs batch averaging ===\n\n");

  const eval::Scenario lab = eval::LabScenario();

  std::printf("%-14s", "corr \\ pkts");
  for (std::size_t packets : {1u, 10u, 50u, 200u})
    std::printf(" %8zu", packets);
  std::printf("   (mean PDP proximity accuracy)\n");

  for (double rho : {0.0, 0.9, 0.99}) {
    std::printf("rho = %-8.2f", rho);
    for (std::size_t packets : {1u, 10u, 50u, 200u}) {
      eval::RunConfig cfg = bench::PaperConfig(2001);
      cfg.trials = 10;
      cfg.packets_per_batch = packets;
      cfg.channel.fading_correlation = rho;
      auto result = eval::RunProximityAccuracy(lab, cfg);
      if (!result.ok()) {
        std::fprintf(stderr, "run failed\n");
        return 1;
      }
      std::printf(" %8.3f", common::Mean(result->per_site_accuracy));
    }
    std::printf("\n");
  }

  std::printf(
      "\nExpected: with i.i.d. fading (rho = 0) accuracy saturates within\n"
      "tens of packets; with strongly correlated fading (rho -> 1) extra\n"
      "packets within the batch buy far less — matching why the paper\n"
      "collects over a long window rather than a fast burst.\n");
  return 0;
}
