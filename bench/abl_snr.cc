// Ablation: measurement-noise sensitivity — noise-floor sweep and
// packets-per-batch sweep.  The paper collects "thousands of packages at
// each site"; this bench shows how much averaging the PDP actually needs.
#include <cstdio>

#include "bench_util.h"

using namespace nomloc;

int main() {
  std::printf("=== Ablation: noise floor and packet count ===\n\n");

  const eval::Scenario lab = eval::LabScenario();

  std::printf("noise-floor sweep (lab, %zu packets/batch):\n",
              bench::PaperConfig(0).packets_per_batch);
  std::printf("  %-12s %-14s %-10s\n", "floor dBm", "mean error", "SLV");
  for (double floor_dbm : {-95.0, -85.0, -75.0, -65.0, -55.0}) {
    eval::RunConfig cfg = bench::PaperConfig(1501);
    cfg.channel.noise_floor_dbm = floor_dbm;
    auto result = eval::RunLocalization(lab, cfg);
    if (!result.ok()) return 1;
    std::printf("  %-12.0f %8.2f m %10.3f m^2\n", floor_dbm,
                result->MeanError(), result->slv);
  }

  std::printf("\npackets-per-batch sweep (lab, -92 dBm floor):\n");
  std::printf("  %-10s %-14s %-10s\n", "packets", "mean error", "SLV");
  for (std::size_t packets : {1u, 5u, 20u, 50u, 200u}) {
    eval::RunConfig cfg = bench::PaperConfig(1502);
    cfg.packets_per_batch = packets;
    auto result = eval::RunLocalization(lab, cfg);
    if (!result.ok()) return 1;
    std::printf("  %-10zu %8.2f m %10.3f m^2\n", packets,
                result->MeanError(), result->slv);
  }

  std::printf(
      "\nExpected: accuracy flat across realistic noise floors (PDP is a\n"
      "power average over many packets); even single-packet operation only\n"
      "costs a few decimetres — variations between packet counts are trial\n"
      "noise, i.e. the paper's thousands-of-PINGs are far more than the\n"
      "estimator needs in this channel.\n");
  return 0;
}
