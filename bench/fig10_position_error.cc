// Fig. 10 reproduction: effect of nomadic-AP position error (ER) on the
// localization error CDF, ER in {0, 1, 2, 3} m, Lab (a) and Lobby (b).
//
// Paper's result: larger ER degrades accuracy, but small ER is ignorable —
// the SP method does not depend on precise AP coordinates the way ranging
// does, and the relaxed program absorbs residual inconsistency.
#include <cstdio>

#include "bench_util.h"

using namespace nomloc;

int main() {
  std::printf("=== Fig. 10: effect of nomadic-AP position error (ER) ===\n\n");

  const struct {
    eval::Scenario scenario;
    double x_max;
  } cases[] = {{eval::LabScenario(), 2.5}, {eval::LobbyScenario(), 4.5}};

  for (const auto& c : cases) {
    std::printf("%s:\n", c.scenario.name.c_str());
    for (double er : {0.0, 1.0, 2.0, 3.0}) {
      eval::RunConfig cfg = bench::PaperConfig(1001);
      cfg.position_error_m = er;
      auto result = eval::RunLocalization(c.scenario, cfg);
      if (!result.ok()) {
        std::fprintf(stderr, "error at ER=%.0f\n", er);
        return 1;
      }
      bench::PrintCdf(common::StrFormat("ER = %.0f m", er),
                      result->SiteMeanErrors(), c.x_max);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shape (paper Fig. 10): curves ordered by ER with ER=0 best;\n"
      "ER=1 nearly indistinguishable from ER=0; graceful (not catastrophic)\n"
      "degradation at ER=3.\n");
  return 0;
}
