// Shared helpers for the figure-reproduction benches: standard run
// configurations and paper-style series printers.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/strings.h"
#include "eval/runner.h"
#include "eval/scenario.h"

namespace nomloc::bench {

/// The full-size configuration used by every figure bench (the unit tests
/// run reduced versions of the same experiments).
inline eval::RunConfig PaperConfig(std::uint64_t seed) {
  eval::RunConfig cfg;
  cfg.packets_per_batch = 50;
  cfg.trials = 20;
  cfg.dwell_count = 8;
  cfg.seed = seed;
  return cfg;
}

/// Prints a CDF as rows of (error, F(error)) over an even grid, matching
/// the axes of the paper's CDF figures.
inline void PrintCdf(const std::string& label,
                     const std::vector<double>& errors, double x_max,
                     int rows = 11) {
  common::EmpiricalCdf cdf(errors);
  std::printf("  %s\n", label.c_str());
  for (int i = 0; i < rows; ++i) {
    const double x = x_max * double(i) / double(rows - 1);
    std::printf("    error <= %5.2f m : %5.1f %%\n", x, 100.0 * cdf.At(x));
  }
  std::printf("    mean %.2f m, median %.2f m, 90th pct %.2f m\n",
              common::Mean(errors), common::Percentile(errors, 0.5),
              common::Percentile(errors, 0.9));
}

/// Prints per-site bars (index, value, bar) — the Fig. 7 layout.
inline void PrintPerSiteBars(const std::string& label,
                             const std::vector<double>& values,
                             double max_value) {
  std::printf("  %s\n", label.c_str());
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::printf("    site %2zu : %6.3f |%s|\n", i + 1, values[i],
                common::AsciiBar(values[i], max_value, 40).c_str());
  }
}

}  // namespace nomloc::bench
