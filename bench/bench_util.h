// Shared helpers for the figure-reproduction benches: standard run
// configurations, paper-style series printers, and the machine-readable
// --json report format shared by the perf benches (BENCH_*.json).
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/stats.h"
#include "common/strings.h"
#include "eval/runner.h"
#include "eval/scenario.h"

namespace nomloc::bench {

/// The full-size configuration used by every figure bench (the unit tests
/// run reduced versions of the same experiments).
inline eval::RunConfig PaperConfig(std::uint64_t seed) {
  eval::RunConfig cfg;
  cfg.packets_per_batch = 50;
  cfg.trials = 20;
  cfg.dwell_count = 8;
  cfg.seed = seed;
  return cfg;
}

/// Prints a CDF as rows of (error, F(error)) over an even grid, matching
/// the axes of the paper's CDF figures.
inline void PrintCdf(const std::string& label,
                     const std::vector<double>& errors, double x_max,
                     int rows = 11) {
  common::EmpiricalCdf cdf(errors);
  std::printf("  %s\n", label.c_str());
  for (int i = 0; i < rows; ++i) {
    const double x = x_max * double(i) / double(rows - 1);
    std::printf("    error <= %5.2f m : %5.1f %%\n", x, 100.0 * cdf.At(x));
  }
  std::printf("    mean %.2f m, median %.2f m, 90th pct %.2f m\n",
              common::Mean(errors), common::Percentile(errors, 0.5),
              common::Percentile(errors, 0.9));
}

/// One cold-vs-warm timing pair from a perf bench.  `cold_ms`/`warm_ms`
/// are totals over `iterations` repetitions.
struct BenchTiming {
  std::string name;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  std::size_t iterations = 0;
};

inline double SpeedUp(const BenchTiming& t) {
  return t.warm_ms > 0.0 ? t.cold_ms / t.warm_ms : 0.0;
}

/// The shared --json report: deterministic key order (JsonObject is a
/// std::map), so snapshots diff cleanly.  `extra` entries (e.g. cache
/// counter readings) are merged into the top-level object.
inline common::Json BenchReportJson(const std::string& bench, bool quick,
                                    const std::vector<BenchTiming>& series,
                                    common::JsonObject extra = {}) {
  common::JsonArray rows;
  for (const BenchTiming& t : series) {
    common::JsonObject row;
    row["name"] = t.name;
    row["iterations"] = t.iterations;
    row["cold_ms"] = t.cold_ms;
    row["warm_ms"] = t.warm_ms;
    row["speedup"] = SpeedUp(t);
    rows.push_back(common::Json(std::move(row)));
  }
  common::JsonObject root;
  root["bench"] = bench;
  root["quick"] = quick;
  root["series"] = common::Json(std::move(rows));
  for (auto& [key, value] : extra) root[key] = std::move(value);
  return common::Json(std::move(root));
}

/// Prints a timing series as an ASCII table (the human-readable twin of
/// BenchReportJson).
inline void PrintTimings(const std::vector<BenchTiming>& series) {
  std::printf("  %-28s %10s %10s %8s\n", "series", "cold [ms]", "warm [ms]",
              "speedup");
  for (const BenchTiming& t : series) {
    std::printf("  %-28s %10.3f %10.3f %7.2fx\n", t.name.c_str(), t.cold_ms,
                t.warm_ms, SpeedUp(t));
  }
}

/// Prints per-site bars (index, value, bar) — the Fig. 7 layout.
inline void PrintPerSiteBars(const std::string& label,
                             const std::vector<double>& values,
                             double max_value) {
  std::printf("  %s\n", label.c_str());
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::printf("    site %2zu : %6.3f |%s|\n", i + 1, values[i],
                common::AsciiBar(values[i], max_value, 40).c_str());
  }
}

}  // namespace nomloc::bench
