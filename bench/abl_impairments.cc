// Ablation: commodity-hardware CSI impairments (random common phase, STO
// phase slope, AGC jitter) versus NomLoc accuracy.
//
// The paper runs on Intel 5300 CSI, which carries all three impairments;
// its pipeline never needs phase calibration because the PDP is taken
// from |IFFT| and power *ratios*.  This bench injects increasing levels
// of impairment into every frame and shows the end-to-end accuracy is
// nearly flat — with and without the SpotFi-style sanitizer.
#include <cstdio>

#include "bench_util.h"
#include "channel/csi_model.h"
#include "dsp/impairments.h"

using namespace nomloc;

namespace {

// Runs Lab localization with impairments applied to every sampled frame.
common::Result<eval::RunResult> RunImpaired(
    const eval::Scenario& scenario, const eval::RunConfig& cfg,
    const dsp::ImpairmentConfig& imp, bool sanitize) {
  core::NomLocConfig engine_cfg = cfg.engine;
  engine_cfg.bandwidth_hz = cfg.channel.bandwidth_hz;
  NOMLOC_ASSIGN_OR_RETURN(
      auto engine,
      core::NomLocEngine::Create(scenario.env.Boundary(), engine_cfg));

  const channel::CsiSimulator sim(scenario.env, cfg.channel);
  common::Rng rng(cfg.seed);

  eval::RunResult result;
  for (const geometry::Vec2 site : scenario.test_sites) {
    eval::SiteResult sr;
    sr.site = site;
    for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
      std::vector<core::ApObservation> obs;
      for (const geometry::Vec2 ap : scenario.static_aps) {
        core::ApObservation o;
        o.reported_position = ap;
        const auto link = sim.MakeLink(site, ap);
        for (std::size_t p = 0; p < cfg.packets_per_batch; ++p) {
          dsp::CsiFrame frame =
              dsp::ApplyImpairments(link.Sample(rng), imp, rng);
          if (sanitize) frame = dsp::SanitizePhase(frame);
          o.frames.push_back(std::move(frame));
        }
        obs.push_back(std::move(o));
      }
      NOMLOC_ASSIGN_OR_RETURN(auto est, engine.Locate(obs));
      sr.trial_errors_m.push_back(Distance(est.position, site));
    }
    sr.mean_error_m = common::Mean(sr.trial_errors_m);
    result.sites.push_back(std::move(sr));
  }
  result.slv = common::SpatialLocalizabilityVariance(result.SiteMeanErrors());
  return result;
}

}  // namespace

int main() {
  std::printf("=== Ablation: CSI impairments (CFO/STO/AGC) ===\n\n");

  const eval::Scenario lab = eval::LabScenario();
  eval::RunConfig cfg = bench::PaperConfig(1901);
  cfg.trials = 8;
  cfg.packets_per_batch = 30;

  struct Level {
    const char* name;
    dsp::ImpairmentConfig imp;
  };
  std::vector<Level> levels;
  levels.push_back({"clean", {.random_common_phase = false,
                              .max_phase_slope_rad = 0.0,
                              .agc_jitter = 0.0}});
  levels.push_back({"phase only", {.random_common_phase = true,
                                   .max_phase_slope_rad = 0.0,
                                   .agc_jitter = 0.0}});
  levels.push_back({"phase + STO", {.random_common_phase = true,
                                    .max_phase_slope_rad = 0.2,
                                    .agc_jitter = 0.0}});
  levels.push_back({"full (incl. AGC 25%)", {.random_common_phase = true,
                                             .max_phase_slope_rad = 0.2,
                                             .agc_jitter = 0.25}});
  levels.push_back({"harsh (STO x3, AGC 60%)", {.random_common_phase = true,
                                                .max_phase_slope_rad = 0.6,
                                                .agc_jitter = 0.6}});

  std::printf("%-26s %-22s %-22s\n", "impairment level", "raw: mean / SLV",
              "sanitized: mean / SLV");
  for (const Level& level : levels) {
    auto raw = RunImpaired(lab, cfg, level.imp, /*sanitize=*/false);
    auto fixed = RunImpaired(lab, cfg, level.imp, /*sanitize=*/true);
    if (!raw.ok() || !fixed.ok()) {
      std::fprintf(stderr, "run failed at %s\n", level.name);
      return 1;
    }
    std::printf("%-26s %6.2f m / %6.3f     %6.2f m / %6.3f\n", level.name,
                raw->MeanError(), raw->slv, fixed->MeanError(), fixed->slv);
  }

  std::printf(
      "\nExpected: accuracy essentially flat through realistic impairment\n"
      "levels — the PDP consumes |IFFT| and power ratios, so common phase\n"
      "cancels exactly and STO slopes only shift the delay peak.  AGC\n"
      "jitter averages out over the batch.  Sanitization is therefore\n"
      "optional for NomLoc (unlike for phase-based AoA systems).\n");
  return 0;
}
