// Ablation: receive-antenna diversity.
//
// The paper's Intel 5300 exposes 3 RX chains; the text never says how (or
// whether) they were combined.  This bench quantifies what diversity is
// worth to NomLoc: the PDP of each packet is taken from the non-coherent
// sum of the antennas' power-delay profiles (dsp::PdpOfMimoBatch),
// covering per-antenna fades.
#include <cstdio>

#include "bench_util.h"

using namespace nomloc;

int main() {
  std::printf("=== Ablation: RX antenna diversity ===\n\n");

  for (const eval::Scenario& scenario :
       {eval::LabScenario(), eval::LobbyScenario()}) {
    std::printf("%s:\n", scenario.name.c_str());
    std::printf("  %-10s %-18s %-14s %-10s\n", "antennas",
                "prox. accuracy", "mean error", "SLV");
    for (int antennas : {1, 2, 3}) {
      eval::RunConfig cfg = bench::PaperConfig(2201);
      cfg.channel.rx_antennas = antennas;
      // Make the regime fading-limited so diversity has something to fix:
      // deep Rayleigh-ish fading and too few packets to average it out.
      cfg.channel.rician_k_db = 0.0;
      cfg.packets_per_batch = 2;
      cfg.trials = 20;
      auto prox = eval::RunProximityAccuracy(scenario, cfg);
      auto loc = eval::RunLocalization(scenario, cfg);
      if (!prox.ok() || !loc.ok()) {
        std::fprintf(stderr, "run failed at %d antennas\n", antennas);
        return 1;
      }
      std::printf("  %-10d %12.3f %14.2f m %8.3f m^2\n", antennas,
                  common::Mean(prox->per_site_accuracy), loc->MeanError(),
                  loc->slv);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected: diversity stabilises the per-packet PDP under heavy\n"
      "fading, nudging proximity accuracy and localization error in the\n"
      "right direction; with large batches (which already average fading\n"
      "out) the gain is modest — batching and diversity are substitutes.\n");
  return 0;
}
