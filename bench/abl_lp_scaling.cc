// Micro-benchmark: solver scalability (§IV-B4 claims the LP is solvable in
// weakly polynomial time and that "the scalability of the proposed NomLoc
// system is very high").  Measures the two-phase simplex on relaxation
// programs of growing size, the full SolveSpPart pipeline, and the
// geometric center extraction.
#include <benchmark/benchmark.h>

#include <optional>

#include "common/rng.h"
#include "geometry/polygon.h"
#include "localization/sp_solver.h"
#include "lp/center.h"
#include "lp/interior_point.h"
#include "lp/simplex.h"

using namespace nomloc;

namespace {

// A random bisector constraint in a 20x20 box.  When `truth` is given the
// direction is chosen consistently with it, so any number of constraints
// share a non-empty feasible region (truth's cell).
localization::SpConstraint RandomConstraint(
    common::Rng& rng,
    std::optional<geometry::Vec2> truth = std::nullopt) {
  geometry::Vec2 a{rng.Uniform(1.0, 19.0), rng.Uniform(1.0, 19.0)};
  geometry::Vec2 b{rng.Uniform(1.0, 19.0), rng.Uniform(1.0, 19.0)};
  while (Distance(a, b) < 0.5)
    b = {rng.Uniform(1.0, 19.0), rng.Uniform(1.0, 19.0)};
  if (truth && Distance(*truth, b) < Distance(*truth, a)) std::swap(a, b);
  return {geometry::HalfPlane::CloserTo(a, b), rng.Uniform(0.5, 1.0), false};
}

void BM_SimplexRelaxation(benchmark::State& state) {
  const std::size_t m = std::size_t(state.range(0));
  common::Rng rng(42);
  std::vector<localization::SpConstraint> constraints;
  for (std::size_t i = 0; i < m; ++i) constraints.push_back(RandomConstraint(rng));

  lp::InequalityLp prog;
  prog.a = lp::Matrix(m, 2 + m);
  prog.b.resize(m);
  prog.c.assign(2 + m, 0.0);
  prog.nonneg.assign(2 + m, true);
  prog.nonneg[0] = prog.nonneg[1] = false;
  for (std::size_t i = 0; i < m; ++i) {
    prog.a(i, 0) = constraints[i].half_plane.a.x;
    prog.a(i, 1) = constraints[i].half_plane.a.y;
    prog.a(i, 2 + i) = -1.0;
    prog.b[i] = constraints[i].half_plane.c;
    prog.c[2 + i] = constraints[i].weight;
  }
  for (auto _ : state) {
    auto sol = lp::SolveSimplex(prog);
    benchmark::DoNotOptimize(sol);
  }
  state.SetComplexityN(int64_t(m));
}
BENCHMARK(BM_SimplexRelaxation)->RangeMultiplier(2)->Range(4, 256)->Complexity();

// The same relaxation program solved by the interior-point method (what
// the paper's CVX setup used) — compare growth against the simplex.
void BM_InteriorPointRelaxation(benchmark::State& state) {
  const std::size_t m = std::size_t(state.range(0));
  common::Rng rng(46);
  const geometry::Vec2 truth{10.0, 10.0};
  lp::InequalityLp prog;
  prog.a = lp::Matrix(m, 2 + m);
  prog.b.resize(m);
  prog.c.assign(2 + m, 0.0);
  prog.nonneg.assign(2 + m, true);
  prog.nonneg[0] = prog.nonneg[1] = false;
  for (std::size_t i = 0; i < m; ++i) {
    const auto sc = RandomConstraint(rng, truth);
    prog.a(i, 0) = sc.half_plane.a.x;
    prog.a(i, 1) = sc.half_plane.a.y;
    prog.a(i, 2 + i) = -1.0;
    prog.b[i] = sc.half_plane.c;
    prog.c[2 + i] = sc.weight;
  }
  for (auto _ : state) {
    auto sol = lp::SolveInteriorPoint(prog);
    benchmark::DoNotOptimize(sol);
  }
  state.SetComplexityN(int64_t(m));
}
BENCHMARK(BM_InteriorPointRelaxation)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Complexity();

void BM_SolveSpPart(benchmark::State& state) {
  const std::size_t m = std::size_t(state.range(0));
  common::Rng rng(43);
  const geometry::Polygon room =
      geometry::Polygon::Rectangle(0.0, 0.0, 20.0, 20.0);
  std::vector<localization::SpConstraint> constraints;
  for (std::size_t i = 0; i < m; ++i)
    constraints.push_back(RandomConstraint(rng));
  for (auto _ : state) {
    auto sol = localization::SolveSpPart(room, constraints, {});
    benchmark::DoNotOptimize(sol);
  }
  state.SetComplexityN(int64_t(m));
}
BENCHMARK(BM_SolveSpPart)->RangeMultiplier(2)->Range(4, 128)->Complexity();

void BM_ChebyshevCenter(benchmark::State& state) {
  const std::size_t m = std::size_t(state.range(0));
  common::Rng rng(44);
  std::vector<geometry::HalfPlane> hps = geometry::ToHalfPlanes(
      geometry::Polygon::Rectangle(0.0, 0.0, 20.0, 20.0));
  for (std::size_t i = 0; i < m; ++i)
    hps.push_back(RandomConstraint(rng).half_plane);
  for (auto _ : state) {
    auto c = lp::ChebyshevCenter(hps);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ChebyshevCenter)->RangeMultiplier(4)->Range(4, 256);

void BM_AnalyticCenter(benchmark::State& state) {
  const std::size_t m = std::size_t(state.range(0));
  common::Rng rng(45);
  const geometry::Vec2 truth{10.0, 10.0};
  std::vector<geometry::HalfPlane> hps = geometry::ToHalfPlanes(
      geometry::Polygon::Rectangle(0.0, 0.0, 20.0, 20.0));
  for (std::size_t i = 0; i < m; ++i)
    hps.push_back(RandomConstraint(rng, truth).half_plane);
  auto start = lp::ChebyshevCenter(hps);
  if (!start.ok() || start->radius <= 0.0) {
    state.SkipWithError("degenerate region");
    return;
  }
  for (auto _ : state) {
    auto c = lp::AnalyticCenter(hps, start->center);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_AnalyticCenter)->RangeMultiplier(4)->Range(4, 64);

}  // namespace

BENCHMARK_MAIN();
