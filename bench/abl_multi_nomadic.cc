// Ablation (paper §VI future work): aggregating multiple nomadic APs.
// k = 0 is the static baseline; k = 1 is the paper's configuration;
// k = 2, 3 turn additional static APs into roaming ones.
#include <cstdio>

#include "bench_util.h"

using namespace nomloc;

int main() {
  std::printf("=== Ablation: number of nomadic APs ===\n\n");

  for (const eval::Scenario& scenario :
       {eval::LabScenario(), eval::LobbyScenario()}) {
    std::printf("%s:\n", scenario.name.c_str());
    std::printf("  %-10s %-14s %-10s\n", "nomadic", "mean error", "SLV");
    for (std::size_t k = 0; k <= 3; ++k) {
      eval::RunConfig cfg = bench::PaperConfig(1201);
      if (k == 0) {
        cfg.deployment = eval::Deployment::kStatic;
      } else {
        cfg.nomadic_ap_count = k;
      }
      auto result = eval::RunLocalization(scenario, cfg);
      if (!result.ok()) {
        std::fprintf(stderr, "error at k=%zu\n", k);
        return 1;
      }
      std::printf("  %-10zu %8.2f m %11.3f m^2\n", k, result->MeanError(),
                  result->slv);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected: k = 1 already beats the static deployment (the paper's\n"
      "result); a second nomadic AP helps mildly.  Beyond that the fixed\n"
      "anchor set thins out (k roaming APs leave 4-k fixed ones) and the\n"
      "shared waypoint cluster stops adding geometric diversity, so gains\n"
      "saturate or even reverse — aggregation needs coordinated site\n"
      "planning, which is exactly the open problem the paper defers.\n");
  return 0;
}
