// Cold-vs-warm timings for the three hot-path cache layers:
//
//   trace.repeated_link — CsiSimulator::MakeLink on recurring (tx, rx)
//       pairs.  Cold drops the cached traces before every link
//       (ClearTraces — the per-tx image trees stay memoized, as they do
//       in production), so each call pays a full back-trace; warm hits
//       the trace cache and only rebuilds the LinkModel.
//   cir.batch — PDP extraction over a per-anchor CSI probe burst.  Cold
//       models the pre-cache pipeline: every frame re-derives the FFT
//       bit-reversal/twiddle tables and goes through the allocating
//       per-frame CIR API; warm is PdpOfBatch running entirely from
//       cached plans and reused scratch.
//   solver.simplex / solver.interior_point — the SP relaxation LP (paper
//       Eq. 19) solved without (cold) and with (warm) a reusable
//       SolveWorkspace.  (Named solver.* because the contrast is the
//       workspace reuse in the solver drivers, not the lp library per se.)
//
// --simd switches to the SIMD kernel microbenches: each series runs the
// same body with the kernel table forced to scalar (reported as "cold")
// and with the best runtime-dispatched target (reported as "warm"), so
// the speedup column is the vectorization gain.  The committed snapshot
// is BENCH_simd.json.
//
// --incremental switches to the streaming SP-solve benches: each series
// replays a cyclic schedule of per-epoch constraint deltas, solving cold
// (from-scratch SolveSp / engine Locate per epoch) vs warm (a stateful
// SpSolverSession fed the delta via ReplaceConstraints).  The committed
// snapshot is BENCH_incremental.json:
//
//   solver.fastpath.delta — consistent judgements; the warm side never
//       touches the LP (geometric fast path).
//   solver.dual_simplex.delta — contradictory judgements each epoch; the
//       warm side re-optimizes the kept basis with dual-simplex pivots.
//   serve.resolve.incremental — the serving resolve path end to end:
//       anchors with drifting PDPs through NomLocEngine::Locate, stateless
//       vs session-routed.
//
// --bigworld switches to the campus-scale cold-trace benches over
// procedurally generated worlds (world/worldgen.h): per room count, the
// same TracePaths links are traced with the geometry backend forced to
// the brute linear wall scan (reported as "cold") and to the spatial
// index (reported as "warm"), so the speedup column is the indexing
// gain on a from-scratch trace.  A companion series contrasts
// PropagationCache::Clear against ClearTraces on repeated cold links —
// the cost of thrashing the shared per-tx image trees.  The committed
// snapshot is BENCH_bigworld.json.
//
// Flags: --quick shrinks iteration counts (CI smoke), --json prints the
// shared BenchReportJson document to stdout, --out PATH also writes it to
// a file (the committed BENCH_hotpath.json / BENCH_simd.json /
// BENCH_incremental.json / BENCH_bigworld.json snapshots).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "channel/csi_model.h"
#include "channel/propagation.h"
#include "channel/propagation_cache.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/nomloc.h"
#include "dsp/cir.h"
#include "dsp/fft_plan.h"
#include "eval/scenario.h"
#include "dsp/fft.h"
#include "geometry/halfplane.h"
#include "localization/sp_session.h"
#include "localization/sp_solver.h"
#include "lp/interior_point.h"
#include "lp/matrix.h"
#include "lp/simplex.h"
#include "lp/workspace.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "world/worldgen.h"

namespace {

using nomloc::bench::BenchTiming;

double RunMs(std::size_t iterations, const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iterations; ++i) body();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

// Best-of-N timing: the minimum over repeats is the least noise-polluted
// estimate of the true cost (interruptions only ever add time).
double BestMs(std::size_t repeats, std::size_t iterations,
              const std::function<void()>& body) {
  double best = RunMs(iterations, body);
  for (std::size_t r = 1; r < repeats; ++r)
    best = std::min(best, RunMs(iterations, body));
  return best;
}

// The SP relaxation program (Eq. 19) at a size typical of one area part:
// variables [zx, zy, t_1..t_n], one row per proximity/boundary constraint.
nomloc::lp::InequalityLp RelaxationLp(std::size_t n) {
  nomloc::common::Rng rng(0xbe7c);
  nomloc::lp::InequalityLp prog;
  prog.a = nomloc::lp::Matrix(n, 2 + n);
  prog.b.resize(n);
  prog.c.assign(2 + n, 0.0);
  prog.nonneg.assign(2 + n, true);
  prog.nonneg[0] = prog.nonneg[1] = false;
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = rng.Uniform(0.0, 6.28318);
    prog.a(i, 0) = std::cos(angle);
    prog.a(i, 1) = std::sin(angle);
    prog.a(i, 2 + i) = -1.0;
    prog.b[i] = rng.Uniform(1.0, 6.0);
    prog.c[2 + i] = rng.Uniform(0.5, 2.0);
  }
  return prog;
}

// Sink that keeps reduction results alive across optimization.
volatile double g_sink = 0.0;

// Times `body` with the kernel table forced to scalar (cold) and to the
// best runtime-dispatched target (warm).  Restores the dispatched table.
nomloc::bench::BenchTiming SimdPair(const char* name, std::size_t repeats,
                                    std::size_t iterations,
                                    const std::function<void()>& body) {
  namespace simd = nomloc::simd;
  const simd::Target best = simd::ResolveTarget();
  BenchTiming t;
  t.name = name;
  t.iterations = iterations;
  simd::ForceTarget(simd::Target::kScalar);
  body();  // Warm up caches/scratch on the scalar table.
  t.cold_ms = BestMs(repeats, iterations, body);
  simd::ForceTarget(best);
  body();
  t.warm_ms = BestMs(repeats, iterations, body);
  return t;
}

int RunSimdBench(bool quick, bool json, const std::string& out_path) {
  namespace channel = nomloc::channel;
  namespace dsp = nomloc::dsp;
  namespace lp = nomloc::lp;
  namespace simd = nomloc::simd;

  const std::size_t repeats = quick ? 3 : 5;
  std::vector<BenchTiming> series;

  // --- kernel microbenches -------------------------------------------------
  // L1-resident working set (1024 complexes = 16 KiB in, 8 KiB out) so the
  // series measures kernel arithmetic, not the memory system.
  const std::size_t n = 1024;
  nomloc::common::Rng rng(0x51d0);
  std::vector<dsp::Cplx> taps(n);
  for (auto& v : taps) v = rng.ComplexGaussian(1.0);
  std::vector<double> va(n), vb(n), vout(n);
  for (std::size_t i = 0; i < n; ++i) {
    va[i] = rng.Uniform(-1.0, 1.0);
    vb[i] = rng.Uniform(-1.0, 1.0);
  }
  const std::size_t kiters = quick ? 8000 : 80000;

  series.push_back(SimdPair("kernel.power_spectrum", repeats, kiters, [&] {
    simd::PowerSpectrum(n, taps.data(), vout.data());
  }));
  series.push_back(SimdPair("kernel.pdp_max", repeats, kiters, [&] {
    g_sink = simd::MaxNorm(n, taps.data());
  }));
  series.push_back(SimdPair("kernel.dot", repeats, kiters, [&] {
    g_sink = simd::Dot(va.data(), vb.data(), n);
  }));
  series.push_back(SimdPair("kernel.axpy", repeats, kiters, [&] {
    simd::Axpy(n, 0.5, va.data(), vb.data());
  }));
  {
    const std::size_t rows = 64, cols = 64;
    std::vector<double> mat(rows * cols), x(cols), y(rows);
    for (auto& v : mat) v = rng.Uniform(-1.0, 1.0);
    for (auto& v : x) v = rng.Uniform(-1.0, 1.0);
    series.push_back(SimdPair("kernel.mat_vec", repeats, kiters, [&] {
      simd::MatVec(mat.data(), rows, cols, x.data(), y.data());
    }));
  }
  {
    std::vector<dsp::Cplx> grid(256);
    for (auto& v : grid) v = rng.ComplexGaussian(1.0);
    series.push_back(SimdPair("kernel.fft256", repeats, quick ? 500 : 5000,
                              [&] {
                                dsp::FftInPlace(std::span<dsp::Cplx>(grid));
                              }));
  }

  // --- end-to-end: the two pipeline stages the kernels feed ---------------
  {
    const nomloc::eval::Scenario scenario = nomloc::eval::LabScenario();
    const channel::ChannelConfig channel_config;
    const channel::CsiSimulator sim(scenario.env, channel_config);
    nomloc::common::Rng frame_rng(0xc18);
    const channel::LinkModel link =
        sim.MakeLink(scenario.static_aps.front(), scenario.test_sites.front());
    const std::vector<dsp::CsiFrame> frames = link.SampleBatch(16, frame_rng);
    series.push_back(
        SimdPair("cir.batch", repeats, quick ? 100 : 1000, [&] {
          g_sink = dsp::PdpOfBatch(frames, channel_config.bandwidth_hz);
        }));
  }
  {
    const lp::InequalityLp prog = RelaxationLp(16);
    lp::SolveWorkspace ws;
    series.push_back(
        SimdPair("solver.interior_point", repeats, quick ? 200 : 2000, [&] {
          (void)lp::SolveInteriorPoint(prog, {}, &ws).ok();
        }));
  }

  nomloc::common::JsonObject extra;
  extra["simd_target"] = std::string(simd::TargetName(simd::ResolveTarget()));
  const nomloc::common::Json report =
      nomloc::bench::BenchReportJson("simd", quick, series, std::move(extra));

  if (json) {
    std::printf("%s\n", report.DumpPretty().c_str());
  } else {
    std::printf("simd kernel benchmark (%s; cold=scalar, warm=%s)\n",
                quick ? "quick" : "full",
                simd::TargetName(simd::ResolveTarget()));
    nomloc::bench::PrintTimings(series);
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << report.DumpPretty() << "\n";
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
  }
  return 0;
}

int RunIncrementalBench(bool quick, bool json, const std::string& out_path) {
  namespace core = nomloc::core;
  namespace geometry = nomloc::geometry;
  namespace localization = nomloc::localization;
  using geometry::Vec2;
  using localization::SpConstraint;

  const std::size_t repeats = quick ? 3 : 5;
  std::vector<BenchTiming> series;

  const geometry::Polygon room =
      geometry::Polygon::Rectangle(0.0, 0.0, 20.0, 16.0);
  const std::vector<geometry::Polygon> parts{room};
  // 12 anchors (static APs + nomadic dwell sites) — 66 pairwise
  // judgements, the constraint count of a well-instrumented floor after a
  // nomadic AP has visited a handful of dwell sites.
  std::vector<Vec2> aps;
  for (int k = 0; k < 12; ++k) {
    const double a = 6.28318530718 * double(k) / 12.0;
    const double r = (k % 2 == 0) ? 1.0 : 0.72;
    aps.push_back(
        {10.0 + 8.0 * r * std::cos(a), 8.0 + 6.5 * r * std::sin(a)});
  }
  const std::size_t kEpochs = 32;
  // The tracked object orbits the floor center; `radius` sets how far it
  // moves per epoch and therefore how many pairwise judgements flip per
  // update (the delta size the warm session absorbs).
  const auto truth_at = [&](std::size_t e, double radius) {
    const double a = 6.28318530718 * double(e) / double(kEpochs);
    return Vec2{10.0 + radius * std::cos(a),
                8.0 + 0.75 * radius * std::sin(a)};
  };
  // Pairwise judgements with a fixed weight: a pair's half-plane only
  // changes bits when the closer AP flips, so consecutive epochs share
  // most constraints — exactly the streaming regime ReplaceConstraints
  // keeps warm.
  const std::size_t pair_count = aps.size() * (aps.size() - 1) / 2;
  const auto pairwise = [&](Vec2 truth, std::size_t flips, std::size_t e) {
    std::vector<SpConstraint> out;
    std::size_t pair = 0;
    for (std::size_t i = 0; i < aps.size(); ++i) {
      for (std::size_t j = i + 1; j < aps.size(); ++j, ++pair) {
        bool i_closer =
            Distance(truth, aps[i]) <= Distance(truth, aps[j]);
        // Contradictory series: a few low-confidence judgements are
        // flipped (a marginal link judged wrong), so the LP must relax
        // something.  The flipped subset rotates every 8 epochs — bad
        // judgements persist for a while, as they do in a real stream —
        // while the moving truth keeps flipping honest pairs each epoch.
        double weight = 0.9;
        for (std::size_t f = 0; f < flips; ++f) {
          if (pair == ((e / 8) * 7 + f * 11) % pair_count) {
            i_closer = !i_closer;
            weight = 0.4;
          }
        }
        const Vec2 w = i_closer ? aps[i] : aps[j];
        const Vec2 l = i_closer ? aps[j] : aps[i];
        out.push_back({geometry::HalfPlane::CloserTo(w, l), weight, false});
      }
    }
    return out;
  };

  const std::size_t iterations = quick ? 64 : 512;
  localization::SpSolverOptions batch_options;
  localization::SpSolverOptions session_options;
  session_options.session_mode = localization::SpSessionMode::kIncremental;

  const auto delta_series = [&](const char* name, std::size_t flips,
                                double radius) {
    std::vector<std::vector<SpConstraint>> epochs(kEpochs);
    for (std::size_t e = 0; e < kEpochs; ++e)
      epochs[e] = pairwise(truth_at(e, radius), flips, e);
    BenchTiming t;
    t.name = name;
    t.iterations = iterations;
    std::size_t i = 0;
    const auto cold = [&] {
      (void)localization::SolveSp(parts, epochs[i++ % kEpochs],
                                  batch_options);
    };
    cold();
    t.cold_ms = BestMs(repeats, iterations, cold);
    localization::SpSolverSession session(parts, session_options);
    std::size_t j = 0;
    const auto warm = [&] {
      (void)session.ReplaceConstraints(epochs[j++ % kEpochs]);
      (void)session.Solve();
    };
    warm();
    t.warm_ms = BestMs(repeats, iterations, warm);
    series.push_back(t);
  };

  // Fast orbit: several honest pairs flip per epoch, all judgements
  // consistent — every update stays on the geometric fast path.
  delta_series("solver.fastpath.delta", 0, 4.0);
  // Slow orbit with two persistent contradictions: the LP is engaged, and
  // each epoch changes only a handful of rows — the dual-simplex delta
  // regime the warm basis is built for.
  delta_series("solver.dual_simplex.delta", 2, 1.5);

  // --- serve.resolve.incremental ------------------------------------------
  // The serving resolve path end to end: per epoch one anchor's PDP
  // updates (the others pass through bit-exactly, as in the session
  // store), then the engine localizes — stateless Locate vs the same
  // request routed through a warm solver session.
  {
    auto engine_result = core::NomLocEngine::Create(room);
    if (!engine_result.ok()) {
      std::fprintf(stderr, "engine: %s\n",
                   engine_result.status().ToString().c_str());
      return 1;
    }
    const core::NomLocEngine& engine = *engine_result;
    const auto pdp_at = [&](Vec2 truth, Vec2 ap) {
      return 1.0 / (1.0 + geometry::DistanceSq(truth, ap));
    };
    std::vector<std::vector<localization::Anchor>> anchor_epochs(kEpochs);
    std::vector<localization::Anchor> current;
    for (const Vec2 ap : aps)
      current.push_back({ap, pdp_at(truth_at(0, 1.5), ap), false});
    anchor_epochs[0] = current;
    for (std::size_t e = 1; e < kEpochs; ++e) {
      localization::Anchor& moved = current[e % aps.size()];
      moved.pdp = pdp_at(truth_at(e, 1.5), moved.position);
      anchor_epochs[e] = current;
    }
    BenchTiming t;
    t.name = "serve.resolve.incremental";
    t.iterations = iterations;
    std::size_t i = 0;
    const auto cold = [&] {
      core::LocateRequest request;
      request.anchors = anchor_epochs[i++ % kEpochs];
      (void)engine.Locate(request);
    };
    cold();
    t.cold_ms = BestMs(repeats, iterations, cold);
    auto session = engine.MakeSolverSession(
        localization::SpSessionMode::kIncremental);
    std::size_t j = 0;
    const auto warm = [&] {
      core::LocateRequest request;
      request.anchors = anchor_epochs[j++ % kEpochs];
      (void)engine.Locate(request, &session);
    };
    warm();
    t.warm_ms = BestMs(repeats, iterations, warm);
    series.push_back(t);
  }

  // Solver counter readings accumulated over the run: the fast-path /
  // warm-basis hit split is the explanation for the speedup column.
  auto& registry = nomloc::common::MetricRegistry::Global();
  nomloc::common::JsonObject counters;
  for (const char* name :
       {"solver.fastpath_hits", "solver.warm_hits", "solver.cold_solves",
        "solver.lp_fallback", "lp.incremental.reset",
        "lp.incremental.add_rows", "lp.incremental.deactivated"}) {
    counters[name] = std::size_t(registry.Counter(name).Value());
  }
  nomloc::common::JsonObject extra;
  extra["counters"] = nomloc::common::Json(std::move(counters));

  const nomloc::common::Json report = nomloc::bench::BenchReportJson(
      "incremental", quick, series, std::move(extra));
  if (json) {
    std::printf("%s\n", report.DumpPretty().c_str());
  } else {
    std::printf("incremental SP-solve benchmark (%s)\n",
                quick ? "quick" : "full");
    nomloc::bench::PrintTimings(series);
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << report.DumpPretty() << "\n";
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
  }
  return 0;
}

int RunBigworldBench(bool quick, bool json, const std::string& out_path) {
  namespace channel = nomloc::channel;
  namespace world = nomloc::world;
  using nomloc::geometry::Vec2;

  const std::size_t repeats = quick ? 3 : 5;
  std::vector<std::size_t> sizes{10, 100};
  if (!quick) sizes.push_back(500);

  // Restore whatever the dispatcher picked (env override included) on exit.
  const channel::TraceGeometry dispatched = channel::ActiveTraceGeometry();

  std::vector<BenchTiming> series;
  nomloc::common::JsonObject worlds;

  for (const std::size_t rooms : sizes) {
    world::WorldSpec spec;
    spec.layout = world::Layout::kOfficeGrid;
    spec.rooms = rooms;
    spec.seed = 0xb16 + rooms;
    spec.max_test_sites = 16;
    auto gen = world::Generate(spec);
    if (!gen.ok()) {
      std::fprintf(stderr, "worldgen(%zu rooms): %s\n", rooms,
                   gen.status().ToString().c_str());
      return 1;
    }
    const channel::IndoorEnvironment& env = gen->env;

    {
      nomloc::common::JsonObject w;
      w["rooms"] = rooms;
      w["walls"] = env.Walls().size();
      w["blocking_walls"] = env.BlockingWalls().size();
      w["scatterers"] = env.Scatterers().size();
      w["ap_sites"] = gen->ap_sites.size();
      w["test_sites"] = gen->test_sites.size();
      worlds[gen->name] = nomloc::common::Json(std::move(w));
    }

    // The link set a survey of this floor would trace: every AP against a
    // spread of test sites, cycled one link per iteration.
    std::vector<std::pair<Vec2, Vec2>> links;
    for (const Vec2 tx : gen->ap_sites)
      for (const Vec2 rx : gen->test_sites) links.push_back({tx, rx});

    // Per-tx image trees are built once outside the timed loop: in
    // production the PropagationCache keeps them across cold traces (the
    // ClearTraces() split exists for exactly that), and the tree content
    // is identical under both geometry backends — only the per-trace wall
    // queries differ.  trace.tree_reuse below times the tree builds.
    const channel::PropagationConfig cfg;
    std::vector<channel::TxImageTree> trees;
    for (const Vec2 tx : gen->ap_sites)
      trees.push_back(
          channel::BuildTxImageTree(env, tx, cfg.max_reflection_order));
    // Brute cold traces are O(walls^2) per link, so iteration counts
    // shrink with world size to keep wall-clock bounded.
    const std::size_t iterations = rooms <= 10   ? (quick ? 40 : 200)
                                   : rooms <= 100 ? (quick ? 8 : 40)
                                                  : 8;
    // Stride the link grid down to exactly `iterations` links (the grid
    // is tx-major, so a stride spreads the sample across APs).  Every
    // repeat then cycles the same set whatever phase it starts at, and
    // cold and warm time identical work.
    const std::size_t n_rx = gen->test_sites.size();
    std::vector<std::size_t> sample;
    const std::size_t stride =
        std::max<std::size_t>(1, links.size() / iterations);
    for (std::size_t k = 0; sample.size() < iterations;
         k += stride)
      sample.push_back(k % links.size());
    std::size_t i = 0;
    const auto one_trace = [&] {
      const std::size_t k = sample[i++ % sample.size()];
      (void)channel::TracePaths(env, trees[k / n_rx], links[k].second, cfg);
    };

    BenchTiming t;
    t.name = "trace.cold.bigworld.rooms" + std::to_string(rooms);
    t.iterations = iterations;
    // The cold/warm ratio is the headline number of BENCH_bigworld.json,
    // so it gets extra rounds, and brute/indexed measurements alternate
    // instead of running one side after the other: machine-speed drift
    // over the bench's lifetime then lands on both minima alike and
    // cancels in the ratio instead of skewing it.
    const std::size_t rounds = quick ? 3 : 2 * repeats;
    t.cold_ms = t.warm_ms = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < rounds; ++r) {
      channel::ForceTraceGeometry(channel::TraceGeometry::kBrute);
      one_trace();  // Warm up allocator/caches after the switch.
      t.cold_ms = std::min(t.cold_ms, RunMs(iterations, one_trace));
      channel::ForceTraceGeometry(channel::TraceGeometry::kIndexed);
      one_trace();
      t.warm_ms = std::min(t.warm_ms, RunMs(iterations, one_trace));
    }
    series.push_back(t);

    // trace.tree_reuse — the image-tree thrash the ClearTraces() split
    // exists for: repeated cold links through the simulator with the
    // whole cache dropped per link (cold) vs only the traces dropped,
    // per-tx image trees kept (warm).  One representative size.
    if (rooms == 100) {
      const channel::ChannelConfig channel_config;
      const channel::CsiSimulator sim(env, channel_config);
      channel::PropagationCache& cache = channel::PropagationCache::Global();
      std::size_t j = 0;
      const auto one_link = [&] {
        const auto& [tx, rx] = links[sample[j++ % sample.size()]];
        (void)sim.MakeLink(tx, rx);
      };
      BenchTiming reuse;
      reuse.name = "trace.tree_reuse.rooms" + std::to_string(rooms);
      reuse.iterations = iterations;
      cache.Clear();
      one_link();
      reuse.cold_ms = BestMs(repeats, iterations, [&] {
        cache.Clear();
        one_link();
      });
      cache.Clear();
      one_link();
      reuse.warm_ms = BestMs(repeats, iterations, [&] {
        cache.ClearTraces();
        one_link();
      });
      series.push_back(reuse);
    }
  }
  channel::ForceTraceGeometry(dispatched);

  auto& registry = nomloc::common::MetricRegistry::Global();
  nomloc::common::JsonObject counters;
  for (const char* name :
       {"channel.trace.cache.hits", "channel.trace.cache.misses",
        "channel.trace.images.hits", "channel.trace.images.misses"}) {
    counters[name] = std::size_t(registry.Counter(name).Value());
  }
  nomloc::common::JsonObject extra;
  extra["trace_geometry"] =
      std::string(channel::TraceGeometryName(dispatched));
  extra["worlds"] = nomloc::common::Json(std::move(worlds));
  extra["counters"] = nomloc::common::Json(std::move(counters));

  const nomloc::common::Json report = nomloc::bench::BenchReportJson(
      "bigworld", quick, series, std::move(extra));
  if (json) {
    std::printf("%s\n", report.DumpPretty().c_str());
  } else {
    std::printf(
        "big-world cold-trace benchmark (%s; cold=brute scan, warm=indexed)\n",
        quick ? "quick" : "full");
    nomloc::bench::PrintTimings(series);
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << report.DumpPretty() << "\n";
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  bool simd_mode = false;
  bool incremental_mode = false;
  bool bigworld_mode = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    else if (std::strcmp(argv[i], "--json") == 0) json = true;
    else if (std::strcmp(argv[i], "--simd") == 0) simd_mode = true;
    else if (std::strcmp(argv[i], "--incremental") == 0)
      incremental_mode = true;
    else if (std::strcmp(argv[i], "--bigworld") == 0) bigworld_mode = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json] [--simd] [--incremental] "
                   "[--bigworld] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  if (simd_mode) return RunSimdBench(quick, json, out_path);
  if (incremental_mode) return RunIncrementalBench(quick, json, out_path);
  if (bigworld_mode) return RunBigworldBench(quick, json, out_path);

  const std::size_t repeats = quick ? 3 : 5;

  namespace channel = nomloc::channel;
  namespace dsp = nomloc::dsp;
  namespace lp = nomloc::lp;

  const nomloc::eval::Scenario scenario = nomloc::eval::LabScenario();
  const channel::ChannelConfig channel_config;
  const channel::CsiSimulator sim(scenario.env, channel_config);
  channel::PropagationCache& trace_cache = channel::PropagationCache::Global();
  dsp::FftPlanCache& plan_cache = dsp::FftPlanCache::Global();

  std::vector<BenchTiming> series;

  // --- trace.repeated_link -------------------------------------------------
  {
    const std::size_t iterations = quick ? 40 : 400;
    const auto& rx_sites = scenario.test_sites;
    const nomloc::geometry::Vec2 tx = scenario.static_aps.front();
    std::size_t i = 0;
    auto one_link = [&] {
      const auto link = sim.MakeLink(tx, rx_sites[i++ % rx_sites.size()]);
      (void)link;
    };
    BenchTiming t;
    t.name = "trace.repeated_link";
    t.iterations = iterations;
    trace_cache.Clear();
    // ClearTraces, not Clear: cold pays the per-link back-trace but keeps
    // the shared per-tx image trees, exactly like a production cache miss.
    // (Clear would also rebuild the tx tree every link — that thrash is
    // what trace.tree_reuse in --bigworld quantifies.)
    t.cold_ms = BestMs(repeats, iterations, [&] {
      trace_cache.ClearTraces();
      one_link();
    });
    for (std::size_t k = 0; k < rx_sites.size(); ++k) one_link();  // Warm up.
    t.warm_ms = BestMs(repeats, iterations, one_link);
    series.push_back(t);
  }

  // --- cir.batch -----------------------------------------------------------
  {
    const std::size_t iterations = quick ? 100 : 1000;
    const std::size_t batch = 16;  // One per-anchor probe burst.
    nomloc::common::Rng rng(0xc18);
    const channel::LinkModel link =
        sim.MakeLink(scenario.static_aps.front(), scenario.test_sites.front());
    const std::vector<dsp::CsiFrame> frames = link.SampleBatch(batch, rng);
    const double bandwidth = channel_config.bandwidth_hz;
    const dsp::PdpOptions pdp_options;
    BenchTiming t;
    t.name = "cir.batch";
    t.iterations = iterations;
    // Cold models the pre-cache pipeline: every frame re-derives the FFT
    // kernel (a cache-free world recomputes per transform) and goes
    // through the allocating per-frame CIR API.
    t.cold_ms = BestMs(repeats, iterations, [&] {
      double acc = 0.0;
      for (const dsp::CsiFrame& frame : frames) {
        plan_cache.Clear();
        acc += dsp::PdpOfCir(dsp::CsiToCir(frame, bandwidth), pdp_options);
      }
      (void)acc;
    });
    auto one_batch = [&] { (void)dsp::PdpOfBatch(frames, bandwidth); };
    one_batch();  // Warm up.
    t.warm_ms = BestMs(repeats, iterations, one_batch);
    series.push_back(t);
  }

  // --- solver.simplex / solver.interior_point ------------------------------
  {
    const std::size_t iterations = quick ? 200 : 2000;
    const lp::InequalityLp prog = RelaxationLp(16);
    lp::SolveWorkspace ws;
    {
      BenchTiming t;
      t.name = "solver.simplex";
      t.iterations = iterations;
      t.cold_ms = BestMs(repeats, iterations,
                         [&] { (void)lp::SolveSimplex(prog).ok(); });
      (void)lp::SolveSimplex(prog, {}, &ws).ok();  // Warm up.
      t.warm_ms = BestMs(repeats, iterations,
                         [&] { (void)lp::SolveSimplex(prog, {}, &ws).ok(); });
      series.push_back(t);
    }
    {
      BenchTiming t;
      t.name = "solver.interior_point";
      t.iterations = iterations;
      t.cold_ms = BestMs(repeats, iterations,
                         [&] { (void)lp::SolveInteriorPoint(prog).ok(); });
      (void)lp::SolveInteriorPoint(prog, {}, &ws).ok();  // Warm up.
      t.warm_ms = BestMs(
          repeats, iterations,
          [&] { (void)lp::SolveInteriorPoint(prog, {}, &ws).ok(); });
      series.push_back(t);
    }
  }

  // Cache counter readings accumulated over the run.
  auto& registry = nomloc::common::MetricRegistry::Global();
  nomloc::common::JsonObject counters;
  for (const char* name :
       {"dsp.fft.plan.hits", "dsp.fft.plan.misses", "channel.trace.cache.hits",
        "channel.trace.cache.misses", "channel.trace.images.hits",
        "channel.trace.images.misses", "lp.workspace.reused",
        "lp.workspace.fresh"}) {
    counters[name] = std::size_t(registry.Counter(name).Value());
  }
  nomloc::common::JsonObject extra;
  extra["counters"] = nomloc::common::Json(std::move(counters));

  const nomloc::common::Json report =
      nomloc::bench::BenchReportJson("hotpath", quick, series, std::move(extra));

  if (json) {
    std::printf("%s\n", report.DumpPretty().c_str());
  } else {
    std::printf("hotpath cache benchmark (%s)\n", quick ? "quick" : "full");
    nomloc::bench::PrintTimings(series);
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << report.DumpPretty() << "\n";
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
  }
  return 0;
}
