// Fig. 9 reproduction: CDF of localization error, static vs nomadic
// deployment, in Lab (a) and Lobby (b).
//
// Paper's result: in the Lab both deployments reach < 2 m mean error with
// NomLoc clearly ahead; in the Lobby NomLoc achieves ~2.5 m mean and
// ~3.6 m at the 90th percentile while the static deployment degrades
// significantly.
#include <cstdio>

#include "bench_util.h"

using namespace nomloc;

int main() {
  std::printf("=== Fig. 9: error CDF, static vs nomadic ===\n\n");

  const struct {
    eval::Scenario scenario;
    double x_max;  // Paper's CDF x-axis range.
  } cases[] = {{eval::LabScenario(), 5.0}, {eval::LobbyScenario(), 10.0}};

  for (const auto& c : cases) {
    eval::RunConfig nomadic = bench::PaperConfig(901);
    eval::RunConfig fixed = nomadic;
    fixed.deployment = eval::Deployment::kStatic;

    auto rn = eval::RunLocalization(c.scenario, nomadic);
    auto rs = eval::RunLocalization(c.scenario, fixed);
    if (!rn.ok() || !rs.ok()) {
      std::fprintf(stderr, "error running %s\n", c.scenario.name.c_str());
      return 1;
    }

    std::printf("%s — CDF of mean error across sites:\n",
                c.scenario.name.c_str());
    bench::PrintCdf("static deployment", rs->SiteMeanErrors(), c.x_max);
    bench::PrintCdf("nomadic (NomLoc)", rn->SiteMeanErrors(), c.x_max);
    std::printf("\n");
  }

  std::printf(
      "Expected shape (paper Fig. 9): nomadic curve strictly left of the\n"
      "static curve in both scenarios; Lab errors about meter scale; the\n"
      "static deployment degrades hardest in the Lobby.\n");
  return 0;
}
