// Ablation: how the point estimate is extracted from the feasible region —
// polygon centroid (the literal "center point of the region"), Chebyshev
// center (deepest point), or analytic center (what CVX's log-barrier
// interior point returns, per §IV-B4).
#include <cstdio>

#include "bench_util.h"

using namespace nomloc;

int main() {
  std::printf("=== Ablation: region-center extraction method ===\n\n");

  const struct {
    localization::CenterMethod method;
    const char* name;
  } methods[] = {{localization::CenterMethod::kCentroid, "centroid"},
                 {localization::CenterMethod::kChebyshev, "chebyshev"},
                 {localization::CenterMethod::kAnalytic, "analytic"}};

  for (const eval::Scenario& scenario :
       {eval::LabScenario(), eval::LobbyScenario()}) {
    std::printf("%s:\n", scenario.name.c_str());
    std::printf("  %-12s %-14s %-12s %-10s\n", "method", "mean error",
                "90th pct", "SLV");
    for (const auto& m : methods) {
      eval::RunConfig cfg = bench::PaperConfig(1301);
      cfg.engine.solver.center = m.method;
      auto result = eval::RunLocalization(scenario, cfg);
      if (!result.ok()) {
        std::fprintf(stderr, "error for %s\n", m.name);
        return 1;
      }
      const auto errors = result->SiteMeanErrors();
      std::printf("  %-12s %8.2f m %9.2f m %9.3f m^2\n", m.name,
                  result->MeanError(), common::Percentile(errors, 0.9),
                  result->slv);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected: centroid and Chebyshev agree closely — the estimate is\n"
      "mostly set by the region, not by which center of it is reported.\n"
      "The analytic center is the outlier: repeated near-duplicate\n"
      "constraints (revisited nomadic sites) steepen the barrier on one\n"
      "side and drag it off-centre, visibly so in the two-part Lobby.\n");
  return 0;
}
