// Ablation (paper §VI future work): "understand the impact of moving
// patterns of nomadic APs on the overall performance."
#include <cstdio>

#include "bench_util.h"

using namespace nomloc;

int main() {
  std::printf("=== Ablation: nomadic mobility pattern ===\n\n");

  const struct {
    mobility::MobilityPattern pattern;
    const char* name;
  } patterns[] = {
      {mobility::MobilityPattern::kMarkovWalk, "markov-walk (paper)"},
      {mobility::MobilityPattern::kStayBiased, "stay-biased"},
      {mobility::MobilityPattern::kPatrol, "patrol"},
      {mobility::MobilityPattern::kStationary, "stationary"}};

  for (const eval::Scenario& scenario :
       {eval::LabScenario(), eval::LobbyScenario()}) {
    std::printf("%s:\n", scenario.name.c_str());
    std::printf("  %-22s %-14s %-10s\n", "pattern", "mean error", "SLV");
    for (const auto& p : patterns) {
      eval::RunConfig cfg = bench::PaperConfig(1601);
      cfg.pattern = p.pattern;
      auto result = eval::RunLocalization(scenario, cfg);
      if (!result.ok()) {
        std::fprintf(stderr, "error for %s\n", p.name);
        return 1;
      }
      std::printf("  %-22s %8.2f m %10.3f m^2\n", p.name,
                  result->MeanError(), result->slv);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected: site coverage is what matters — the random walk and the\n"
      "patrol (both cover all sites within an epoch) perform similarly,\n"
      "stay-biased walks cover fewer sites and give up part of the gain,\n"
      "and a stationary 'nomadic' AP degenerates toward the static case\n"
      "(clearest in the Lobby).\n");
  return 0;
}
