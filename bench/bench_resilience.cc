// Resilience benchmark: replays seeded chaos schedules (serving::RunChaos)
// against the streaming serving layer and reports, per seed, the recovery
// latency — logical time from the last fault clearing to the first
// full-fidelity (kOk, DegradationLevel::kNone) response — alongside the
// injection and degradation tallies and the mean error of successful
// queries, compared against the fault-free replay of the same plan.
//
// The BenchTiming rows reuse the shared cold-vs-warm report shape: "cold"
// is the fault-free wall time for the stream, "warm" is the chaos run, so
// the speedup column reads as the (usually ~1x) overhead of riding out
// the fault schedule.
//
// Flags: --quick shrinks the campaign (CI smoke), --json prints the
// shared BenchReportJson document, --out PATH also writes it to a file
// (the committed BENCH_resilience.json snapshot).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/assert.h"
#include "common/stats.h"
#include "core/nomloc.h"
#include "eval/scenario.h"
#include "serving/chaos.h"
#include "serving/replay.h"

namespace {

using nomloc::serving::ChaosConfig;
using nomloc::serving::ChaosQueryOutcome;
using nomloc::serving::ChaosReport;
using nomloc::serving::ServeStatus;

struct ChaosRun {
  ChaosReport report;
  double wall_ms = 0.0;
};

nomloc::serving::ServingConfig ResilienceServingConfig() {
  nomloc::serving::ServingConfig config;
  config.workers = 2;
  // Breakers re-close within one epoch so recovery latency measures the
  // pipeline, not the backoff floor.
  config.breaker.failure_threshold = 2;
  config.breaker.base_backoff_s = 0.2;
  config.breaker.max_backoff_s = 1.0;
  config.query_retry_budget = 1;
  return config;
}

ChaosRun RunOnce(const nomloc::core::NomLocEngine& engine,
                 const nomloc::serving::ReplayPlan& plan,
                 double epoch_interval_s, const ChaosConfig& chaos) {
  const auto start = std::chrono::steady_clock::now();
  auto report = nomloc::serving::RunChaos(engine, plan, epoch_interval_s,
                                          chaos, ResilienceServingConfig());
  const auto stop = std::chrono::steady_clock::now();
  NOMLOC_REQUIRE(report.ok());
  ChaosRun run;
  run.report = std::move(*report);
  run.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  return run;
}

double MeanOkError(const ChaosReport& report) {
  std::vector<double> errors;
  for (const ChaosQueryOutcome& outcome : report.outcomes)
    if (outcome.status == ServeStatus::kOk) errors.push_back(outcome.error_m);
  return errors.empty() ? 0.0 : nomloc::common::Mean(errors);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    else if (std::strcmp(argv[i], "--json") == 0) json = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--quick] [--json] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  auto scenario = nomloc::eval::ScenarioByName("lab");
  NOMLOC_REQUIRE(scenario.ok());

  nomloc::serving::ReplayConfig replay;
  replay.objects = quick ? 2 : 4;
  replay.epochs = quick ? 5 : 8;
  replay.run.packets_per_batch = quick ? 3 : 10;
  replay.run.dwell_count = quick ? 3 : 6;
  replay.run.seed = 7;
  auto plan = nomloc::serving::BuildReplayPlan(*scenario, replay);
  NOMLOC_REQUIRE(plan.ok());

  nomloc::core::NomLocConfig engine_cfg = replay.run.engine;
  engine_cfg.bandwidth_hz = replay.run.channel.bandwidth_hz;
  auto engine = nomloc::core::NomLocEngine::Create(
      scenario->env.Boundary(), engine_cfg);
  NOMLOC_REQUIRE(engine.ok());

  ChaosConfig fault_free;
  fault_free.events = 0;
  const ChaosRun baseline =
      RunOnce(*engine, *plan, replay.epoch_interval_s, fault_free);
  const double baseline_error_m = MeanOkError(baseline.report);

  const std::vector<std::uint64_t> seeds =
      quick ? std::vector<std::uint64_t>{1, 2, 3}
            : std::vector<std::uint64_t>{1, 2, 3, 4, 5};

  std::vector<nomloc::bench::BenchTiming> series;
  std::vector<ChaosReport> reports;
  nomloc::common::JsonArray rows;
  std::vector<double> recoveries_s;
  for (std::uint64_t seed : seeds) {
    ChaosConfig chaos;
    chaos.seed = seed;
    chaos.events = quick ? 6 : 10;
    ChaosRun run = RunOnce(*engine, *plan, replay.epoch_interval_s, chaos);
    const ChaosReport& report = run.report;

    nomloc::bench::BenchTiming timing;
    timing.name = "chaos.seed" + std::to_string(seed);
    timing.iterations = report.outcomes.size();
    timing.cold_ms = baseline.wall_ms;
    timing.warm_ms = run.wall_ms;
    series.push_back(timing);

    if (report.recovery_latency_s >= 0.0)
      recoveries_s.push_back(report.recovery_latency_s);

    nomloc::common::JsonObject row;
    row["seed"] = seed;
    row["events"] = report.schedule.events.size();
    row["recovery_latency_s"] = report.recovery_latency_s;
    row["injected_drops"] = report.injected_drops;
    row["injected_corruptions"] = report.injected_corruptions;
    row["clock_jumps"] = report.clock_jumps;
    row["saturation_bursts"] = report.saturation_bursts;
    row["admit_accepted"] = report.admit_accepted;
    row["admit_rejected_corrupt"] = report.admit_rejected_corrupt;
    row["admit_rejected_breaker"] = report.admit_rejected_breaker;
    row["degraded_none"] = report.degradation_counts[0];
    row["degraded_relaxed"] = report.degradation_counts[1];
    row["degraded_centroid"] = report.degradation_counts[2];
    row["degraded_last_known_good"] = report.degradation_counts[3];
    row["mean_ok_error_m"] = MeanOkError(report);
    rows.push_back(nomloc::common::Json(std::move(row)));
    reports.push_back(std::move(run.report));
  }

  nomloc::common::JsonObject summary;
  summary["fault_free_mean_error_m"] = baseline_error_m;
  summary["fault_free_queries"] = baseline.report.outcomes.size();
  summary["seeds"] = seeds.size();
  summary["recovered_seeds"] = recoveries_s.size();
  summary["mean_recovery_latency_s"] =
      recoveries_s.empty() ? -1.0 : nomloc::common::Mean(recoveries_s);

  nomloc::common::JsonObject extra;
  extra["resilience"] = nomloc::common::Json(std::move(rows));
  extra["resilience_summary"] = nomloc::common::Json(std::move(summary));
  const nomloc::common::Json report = nomloc::bench::BenchReportJson(
      "resilience", quick, series, std::move(extra));

  if (json) {
    std::printf("%s\n", report.DumpPretty().c_str());
  } else {
    std::printf("resilience benchmark (%s): %zu packets, %zu queries, "
                "fault-free mean error %.3f m\n",
                quick ? "quick" : "full", plan->packets.size(),
                baseline.report.outcomes.size(), baseline_error_m);
    nomloc::bench::PrintTimings(series);
    std::printf("  %-14s %12s %8s %10s %10s %11s\n", "series",
                "recovery [s]", "drops", "corrupted", "degraded", "error [m]");
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const ChaosReport& r = reports[i];
      const std::size_t degraded = r.degradation_counts[1] +
                                   r.degradation_counts[2] +
                                   r.degradation_counts[3];
      std::printf("  %-14s %12.3f %8zu %10zu %10zu %11.3f\n",
                  series[i].name.c_str(), r.recovery_latency_s,
                  r.injected_drops, r.injected_corruptions, degraded,
                  MeanOkError(r));
    }
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << report.DumpPretty() << "\n";
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
  }
  return 0;
}
