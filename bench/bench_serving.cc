// Streaming serving-layer throughput bench: replays the same no-fault
// packet stream (built once with serving::BuildReplayPlan) through
// StreamingLocalizer at 1, 2, and hardware-concurrency workers and
// reports packets/sec plus end-to-end latency percentiles per worker
// count.
//
// The BenchTiming rows reuse the shared cold-vs-warm report shape:
// "cold" is the single-worker wall time for the whole stream, "warm" is
// the series' own worker count, so the speedup column reads as the
// scaling factor over serial serving.  Per-series throughput and latency
// percentiles are attached under "serving" in the JSON document.
//
// Flags: --quick shrinks the campaign (CI smoke), --json prints the
// shared BenchReportJson document, --out PATH also writes it to a file
// (the committed BENCH_serving.json snapshot).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/assert.h"
#include "common/stats.h"
#include "core/nomloc.h"
#include "eval/scenario.h"
#include "serving/clock.h"
#include "serving/replay.h"
#include "serving/service.h"

namespace {

using nomloc::bench::BenchTiming;

struct StreamRun {
  double wall_ms = 0.0;
  double packets_per_s = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t responses = 0;
};

// One full replay of the plan at `workers` threads.  A fresh service per
// run keeps the session store clean (the logical clock restarts at 0, so
// leftovers from a previous run would never age out).
StreamRun RunStream(const nomloc::core::NomLocEngine& engine,
                    const nomloc::serving::ReplayPlan& plan,
                    std::size_t workers) {
  nomloc::serving::ServingConfig config;
  config.workers = workers;
  config.queue_capacity = plan.packets.size() + 1;  // no backpressure here
  config.store.anchor_ttl_s = plan.suggested_anchor_ttl_s;
  config.expected_anchors = plan.expected_anchors;

  nomloc::serving::ManualClock clock;
  auto service =
      nomloc::serving::StreamingLocalizer::Create(engine, config, &clock);
  NOMLOC_REQUIRE(service.ok());

  const auto start = std::chrono::steady_clock::now();
  for (const nomloc::serving::IngestPacket& packet : plan.packets) {
    clock.Set(packet.timestamp_s);
    (*service)->Ingest(packet);
  }
  (*service)->Flush();
  const auto stop = std::chrono::steady_clock::now();
  (*service)->Shutdown();

  StreamRun run;
  run.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  run.packets_per_s = run.wall_ms > 0.0
                          ? 1e3 * double(plan.packets.size()) / run.wall_ms
                          : 0.0;
  std::vector<double> latencies_ms;
  for (const auto& response : (*service)->TakeResponses())
    latencies_ms.push_back(1e3 * response.latency_s);
  run.responses = latencies_ms.size();
  if (!latencies_ms.empty()) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    run.p50_ms = nomloc::common::Percentile(latencies_ms, 0.5);
    run.p95_ms = nomloc::common::Percentile(latencies_ms, 0.95);
    run.p99_ms = nomloc::common::Percentile(latencies_ms, 0.99);
  }
  return run;
}

// Best wall time over `repeats`; the other fields come from the fastest
// run (least scheduler pollution).
StreamRun BestRun(const nomloc::core::NomLocEngine& engine,
                  const nomloc::serving::ReplayPlan& plan,
                  std::size_t workers, std::size_t repeats) {
  StreamRun best = RunStream(engine, plan, workers);
  for (std::size_t r = 1; r < repeats; ++r) {
    StreamRun run = RunStream(engine, plan, workers);
    if (run.wall_ms < best.wall_ms) best = run;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    else if (std::strcmp(argv[i], "--json") == 0) json = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--quick] [--json] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  auto scenario = nomloc::eval::ScenarioByName("lab");
  NOMLOC_REQUIRE(scenario.ok());

  nomloc::serving::ReplayConfig replay;
  replay.objects = quick ? 3 : 6;
  replay.epochs = quick ? 2 : 8;
  replay.run.packets_per_batch = quick ? 5 : 20;
  replay.run.dwell_count = quick ? 4 : 8;
  replay.run.seed = 7;
  auto plan = nomloc::serving::BuildReplayPlan(*scenario, replay);
  NOMLOC_REQUIRE(plan.ok());

  nomloc::core::NomLocConfig engine_cfg = replay.run.engine;
  engine_cfg.bandwidth_hz = replay.run.channel.bandwidth_hz;
  auto engine = nomloc::core::NomLocEngine::Create(
      scenario->env.Boundary(), engine_cfg);
  NOMLOC_REQUIRE(engine.ok());

  const std::size_t hw = std::max<std::size_t>(
      std::thread::hardware_concurrency(), 1);
  // 1 and 2 workers always (2 exercises the sharded MPSC path even on a
  // single core), plus the full hardware width when it adds a new point.
  std::vector<std::size_t> worker_counts{1, 2};
  if (hw > 2) worker_counts.push_back(hw);

  const std::size_t repeats = quick ? 2 : 5;
  const StreamRun serial = BestRun(*engine, *plan, 1, repeats);

  std::vector<BenchTiming> series;
  std::vector<StreamRun> runs;
  nomloc::common::JsonArray rows;
  for (std::size_t workers : worker_counts) {
    const StreamRun run =
        workers == 1 ? serial : BestRun(*engine, *plan, workers, repeats);
    runs.push_back(run);
    BenchTiming timing;
    timing.name = "serve.stream.w" + std::to_string(workers);
    timing.iterations = plan->packets.size();
    timing.cold_ms = serial.wall_ms;
    timing.warm_ms = run.wall_ms;
    series.push_back(timing);

    nomloc::common::JsonObject row;
    row["workers"] = workers;
    row["packets"] = plan->packets.size();
    row["responses"] = run.responses;
    row["packets_per_s"] = run.packets_per_s;
    row["latency_p50_ms"] = run.p50_ms;
    row["latency_p95_ms"] = run.p95_ms;
    row["latency_p99_ms"] = run.p99_ms;
    rows.push_back(nomloc::common::Json(std::move(row)));
  }

  nomloc::common::JsonObject extra;
  extra["serving"] = nomloc::common::Json(std::move(rows));
  const nomloc::common::Json report = nomloc::bench::BenchReportJson(
      "serving", quick, series, std::move(extra));

  if (json) {
    std::printf("%s\n", report.DumpPretty().c_str());
  } else {
    std::printf("serving stream benchmark (%s): %zu packets, "
                "%zu queries per run\n",
                quick ? "quick" : "full", plan->packets.size(),
                serial.responses);
    nomloc::bench::PrintTimings(series);
    std::printf("  %-28s %12s %9s %9s %9s\n", "series", "packets/s",
                "p50 [ms]", "p95 [ms]", "p99 [ms]");
    for (std::size_t i = 0; i < series.size(); ++i) {
      std::printf("  %-28s %12.0f %9.3f %9.3f %9.3f\n",
                  series[i].name.c_str(), runs[i].packets_per_s,
                  runs[i].p50_ms, runs[i].p95_ms, runs[i].p99_ms);
    }
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << report.DumpPretty() << "\n";
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
  }
  return 0;
}
