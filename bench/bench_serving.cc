// Streaming serving-layer throughput bench: replays the same no-fault
// packet stream (built once with serving::BuildReplayPlan) through
// StreamingLocalizer at 1, 2, and hardware-concurrency workers and
// reports packets/sec plus end-to-end latency percentiles per worker
// count.
//
// Latency percentiles are coordinated-omission free: every packet is
// stamped with its intended send time (IngestPacket::scheduled_wall)
// before submission, so time the sender spends blocked on admission is
// charged to the packet instead of silently vanishing.  The bench JSON
// notes this via "latency_origin": "scheduled_send".
//
// The BenchTiming rows reuse the shared cold-vs-warm report shape:
// "cold" is the single-worker wall time for the whole stream, "warm" is
// the series' own worker count, so the speedup column reads as the
// scaling factor over serial serving.  Per-series throughput and latency
// percentiles are attached under "serving" in the JSON document.
//
// --open-loop additionally runs the million-session scale campaign
// (serving/loadgen.h): per session count it stands up the population,
// measures closed-loop ingest capacity, replays a paced open-loop
// schedule for CO-free latency percentiles, race-tests binary vs JSON
// wire decoding, and reports bytes/session from SessionStore::Memory().
// Results land under "scale" in the JSON document.
//
// --cluster replays the same stream through a Cluster (src/cluster/) at
// 1, 2, and 4 loopback shards and reports routed packets/s plus CO-free
// response latency: query send stamps are kept router-side in a map
// keyed (object id, timestamp bits) — the stamp cannot cross the wire —
// and closed by ClusterResponse::received_wall when the response frame
// arrives.  Responses ride the per-epoch flush cadence, so the
// percentiles measure the sharded serving loop end to end (encode,
// transport, host serve, response frame, decode), not a bare RPC.
// Results land under "cluster" in the JSON document.
//
// Flags: --quick shrinks the campaign (CI smoke), --json prints the
// shared BenchReportJson document, --out PATH also writes it to a file
// (the committed BENCH_serving.json snapshot).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "common/assert.h"
#include "common/metrics.h"
#include "common/stats.h"
#include "core/nomloc.h"
#include "eval/scenario.h"
#include "serving/clock.h"
#include "serving/loadgen.h"
#include "serving/replay.h"
#include "serving/service.h"
#include "serving/wire.h"

namespace {

using nomloc::bench::BenchTiming;

struct StreamRun {
  double wall_ms = 0.0;
  double packets_per_s = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t responses = 0;
};

// One full replay of the plan at `workers` threads.  A fresh service per
// run keeps the session store clean (the logical clock restarts at 0, so
// leftovers from a previous run would never age out).
StreamRun RunStream(const nomloc::core::NomLocEngine& engine,
                    const nomloc::serving::ReplayPlan& plan,
                    std::size_t workers) {
  nomloc::serving::ServingConfig config;
  config.workers = workers;
  config.queue_capacity = plan.packets.size() + 1;  // no backpressure here
  config.store.anchor_ttl_s = plan.suggested_anchor_ttl_s;
  config.expected_anchors = plan.expected_anchors;

  nomloc::serving::ManualClock clock;
  auto service =
      nomloc::serving::StreamingLocalizer::Create(engine, config, &clock);
  NOMLOC_REQUIRE(service.ok());

  const auto start = std::chrono::steady_clock::now();
  for (const nomloc::serving::IngestPacket& packet : plan.packets) {
    clock.Set(packet.timestamp_s);
    nomloc::serving::IngestPacket stamped = packet;
    // Intended send time, stamped before submission: admission stalls
    // count against the packet (no coordinated omission).
    stamped.scheduled_wall = std::chrono::steady_clock::now();
    (*service)->Ingest(stamped);
  }
  (*service)->Flush();
  const auto stop = std::chrono::steady_clock::now();
  (*service)->Shutdown();

  StreamRun run;
  run.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  run.packets_per_s = run.wall_ms > 0.0
                          ? 1e3 * double(plan.packets.size()) / run.wall_ms
                          : 0.0;
  std::vector<double> latencies_ms;
  for (const auto& response : (*service)->TakeResponses())
    latencies_ms.push_back(1e3 * response.latency_s);
  run.responses = latencies_ms.size();
  if (!latencies_ms.empty()) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    run.p50_ms = nomloc::common::Percentile(latencies_ms, 0.5);
    run.p95_ms = nomloc::common::Percentile(latencies_ms, 0.95);
    run.p99_ms = nomloc::common::Percentile(latencies_ms, 0.99);
  }
  return run;
}

// Best wall time over `repeats`; the other fields come from the fastest
// run (least scheduler pollution).
StreamRun BestRun(const nomloc::core::NomLocEngine& engine,
                  const nomloc::serving::ReplayPlan& plan,
                  std::size_t workers, std::size_t repeats) {
  StreamRun best = RunStream(engine, plan, workers);
  for (std::size_t r = 1; r < repeats; ++r) {
    StreamRun run = RunStream(engine, plan, workers);
    if (run.wall_ms < best.wall_ms) best = run;
  }
  return best;
}

// ---------------------------------------------------------------------
// Cluster sharding campaign.

struct ClusterRunResult {
  std::size_t shards = 0;
  double wall_ms = 0.0;
  double packets_per_s = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t responses = 0;
};

// One full replay through an N-shard loopback cluster, flushed on every
// epoch boundary (the serving cadence responses actually ride on).
ClusterRunResult RunCluster(const nomloc::core::NomLocEngine& engine,
                            const nomloc::serving::ReplayPlan& plan,
                            double epoch_interval_s, std::size_t shards,
                            bool replicate = false) {
  nomloc::cluster::ClusterConfig config;
  config.shards = shards;
  config.replicate = replicate;
  config.serving.workers = 1;
  config.serving.queue_capacity = plan.packets.size() + 1;
  config.serving.store.anchor_ttl_s = plan.suggested_anchor_ttl_s;
  config.serving.expected_anchors = plan.expected_anchors;

  nomloc::serving::ManualClock clock;
  auto cluster = nomloc::cluster::Cluster::Create(engine, config, &clock);
  NOMLOC_REQUIRE(cluster.ok());

  // Query send stamps, router-side: the wall stamp cannot cross the wire,
  // so the latency loop closes here against received_wall.
  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::chrono::steady_clock::time_point>
      sent;
  const auto key_of = [](std::uint64_t object_id, double timestamp_s) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &timestamp_s, sizeof bits);
    return std::make_pair(object_id, bits);
  };

  const auto start = std::chrono::steady_clock::now();
  std::size_t next = 0;
  for (std::size_t e = 0; e < plan.epoch_count; ++e) {
    const double epoch_end_s = double(e + 1) * epoch_interval_s;
    while (next < plan.packets.size() &&
           plan.packets[next].timestamp_s < epoch_end_s) {
      const nomloc::serving::IngestPacket& packet = plan.packets[next++];
      clock.Set(packet.timestamp_s);
      if (packet.kind == nomloc::serving::PacketKind::kQuery)
        sent[key_of(packet.object_id, packet.timestamp_s)] =
            std::chrono::steady_clock::now();
      (*cluster)->Ingest(packet);
    }
    (*cluster)->Flush();
  }
  const auto stop = std::chrono::steady_clock::now();

  std::vector<double> latencies_ms;
  for (const nomloc::cluster::ClusterResponse& response :
       (*cluster)->TakeResponses()) {
    const auto it = sent.find(
        key_of(response.response.object_id, response.response.timestamp_s));
    if (it == sent.end()) continue;
    latencies_ms.push_back(std::chrono::duration<double, std::milli>(
                               response.received_wall - it->second)
                               .count());
  }
  (*cluster)->Shutdown();

  ClusterRunResult run;
  run.shards = shards;
  run.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  run.packets_per_s = run.wall_ms > 0.0
                          ? 1e3 * double(plan.packets.size()) / run.wall_ms
                          : 0.0;
  run.responses = latencies_ms.size();
  if (!latencies_ms.empty()) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    run.p50_ms = nomloc::common::Percentile(latencies_ms, 0.5);
    run.p95_ms = nomloc::common::Percentile(latencies_ms, 0.95);
    run.p99_ms = nomloc::common::Percentile(latencies_ms, 0.99);
  }
  return run;
}

ClusterRunResult BestClusterRun(const nomloc::core::NomLocEngine& engine,
                                const nomloc::serving::ReplayPlan& plan,
                                double epoch_interval_s, std::size_t shards,
                                std::size_t repeats, bool replicate = false) {
  ClusterRunResult best =
      RunCluster(engine, plan, epoch_interval_s, shards, replicate);
  for (std::size_t r = 1; r < repeats; ++r) {
    ClusterRunResult run =
        RunCluster(engine, plan, epoch_interval_s, shards, replicate);
    if (run.wall_ms < best.wall_ms) best = run;
  }
  return best;
}

// ---------------------------------------------------------------------
// Replication campaign: what synchronous dual-writes cost in throughput,
// and how long a crash-failover takes end to end.

struct ReplicationResult {
  std::size_t shards = 0;
  double baseline_packets_per_s = 0.0;    ///< replicate off
  double replicated_packets_per_s = 0.0;  ///< replicate on (dual-write)
  double dual_write_overhead_pct = 0.0;
  /// Wall time of the ingest that trips failover: flush fence, epoch
  /// bump + broadcast, anti-entropy standby promotion — all inline.
  double failover_promote_ms = 0.0;
  /// Wall time of Recover(): host restart + anti-entropy hand-back.
  double recover_ms = 0.0;
};

// Crash-kill probe: replay to the middle epoch boundary, kill the shard
// owning the next packet WITHOUT a checkpoint, then time (a) the first
// ingest that routes to it (inline promotion) and (b) the Recover() one
// epoch later.  Best (fastest) of `repeats`.
ReplicationResult RunReplicationProbe(const nomloc::core::NomLocEngine& engine,
                                      const nomloc::serving::ReplayPlan& plan,
                                      double epoch_interval_s,
                                      std::size_t shards,
                                      std::size_t repeats) {
  ReplicationResult result;
  result.shards = shards;

  for (std::size_t r = 0; r < repeats; ++r) {
    nomloc::cluster::ClusterConfig config;
    config.shards = shards;
    config.replicate = true;
    config.serving.workers = 1;
    config.serving.queue_capacity = plan.packets.size() + 1;
    config.serving.store.anchor_ttl_s = plan.suggested_anchor_ttl_s;
    config.serving.expected_anchors = plan.expected_anchors;
    nomloc::serving::ManualClock clock;
    auto cluster = nomloc::cluster::Cluster::Create(engine, config, &clock);
    NOMLOC_REQUIRE(cluster.ok());

    const std::size_t kill_epoch = plan.epoch_count / 2;
    std::size_t victim = shards;  // sentinel: not yet chosen
    bool promoted = false;
    double promote_ms = 0.0;
    double recover_ms = 0.0;
    std::size_t next = 0;
    for (std::size_t e = 0; e < plan.epoch_count; ++e) {
      if (e == kill_epoch && next < plan.packets.size()) {
        victim = (*cluster)->ShardOf(plan.packets[next].object_id);
        (*cluster)->Kill(victim, /*unclean=*/true);
      }
      if (victim < shards && e == kill_epoch + 1 &&
          !(*cluster)->ShardLive(victim)) {
        const auto start = std::chrono::steady_clock::now();
        NOMLOC_REQUIRE((*cluster)->Recover(victim).ok());
        recover_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
      }
      const double epoch_end_s = double(e + 1) * epoch_interval_s;
      while (next < plan.packets.size() &&
             plan.packets[next].timestamp_s < epoch_end_s) {
        const nomloc::serving::IngestPacket& packet = plan.packets[next++];
        clock.Set(packet.timestamp_s);
        if (!promoted && victim < shards &&
            (*cluster)->ShardOf(packet.object_id) == victim) {
          // This ingest finds the owner dead and promotes its standbys
          // before the route-around delivers the packet.
          const auto start = std::chrono::steady_clock::now();
          (*cluster)->Ingest(packet);
          promote_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
          promoted = true;
          continue;
        }
        (*cluster)->Ingest(packet);
      }
      (*cluster)->Flush();
    }
    (*cluster)->Shutdown();
    NOMLOC_REQUIRE(promoted);
    if (r == 0 || promote_ms < result.failover_promote_ms)
      result.failover_promote_ms = promote_ms;
    if (r == 0 || recover_ms < result.recover_ms)
      result.recover_ms = recover_ms;
  }
  return result;
}

// ---------------------------------------------------------------------
// Open-loop scale campaign.

struct ScaleRun {
  std::size_t sessions = 0;
  double populate_packets_per_s = 0.0;
  double capacity_packets_per_s = 0.0;
  double paced_rate_per_s = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t responses = 0;
  std::size_t live_bytes = 0;
  std::size_t resident_bytes = 0;
  double bytes_per_session = 0.0;
  std::size_t shard_bytes_budget = 0;
  std::uint64_t evictions_pressure = 0;
  std::uint64_t sessions_evicted = 0;
  double wire_binary_packets_per_s = 0.0;
  double wire_json_packets_per_s = 0.0;
  double wire_speedup = 0.0;
};

// Decode-only throughput of one wire encoding (best of `repeats`).
double DecodeThroughput(const std::string& bytes,
                        nomloc::serving::WireFormat format,
                        std::size_t packets, std::size_t repeats) {
  double best_s = 0.0;
  for (std::size_t r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    auto decoded = nomloc::serving::DecodeWire(bytes, format);
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    NOMLOC_REQUIRE(decoded.ok());
    NOMLOC_REQUIRE(decoded->size() == packets);
    if (r == 0 || s < best_s) best_s = s;
  }
  return best_s > 0.0 ? double(packets) / best_s : 0.0;
}

ScaleRun RunScale(const nomloc::core::NomLocEngine& engine,
                  std::size_t sessions, bool quick) {
  auto& registry = nomloc::common::MetricRegistry::Global();
  auto& pressure_counter = registry.Counter("serving.evictions.pressure");
  auto& evicted_counter = registry.Counter("serving.sessions.evicted");
  const std::uint64_t pressure_before = pressure_counter.Value();
  const std::uint64_t evicted_before = evicted_counter.Value();

  nomloc::serving::LoadGenConfig load;
  load.objects = sessions;
  load.anchors_per_object = 3;
  load.packets = quick ? 20'000 : 200'000;
  load.rate_per_s = 100'000.0;  // logical-timeline rate
  load.arrival = nomloc::serving::ArrivalProcess::kPoisson;
  load.zipf_s = 0.99;
  load.query_fraction = 0.02;
  load.seed = 7;
  const nomloc::serving::LoadSchedule schedule =
      nomloc::serving::BuildLoadSchedule(load);

  nomloc::serving::ServingConfig config;
  config.workers = 1;
  config.queue_capacity =
      std::max(schedule.populate.size(), schedule.steady.size()) + 1;
  config.store.shards = 64;
  config.store.reserve_sessions = sessions;
  config.store.reserve_anchors = sessions * load.anchors_per_object;
  config.store.reserve_observations =
      sessions * load.anchors_per_object + schedule.steady.size();
  // The stated budget: 512 B/session across the shard's share of the
  // population (headroom factor 2 keeps steady-state churn off the
  // eviction path; the scale test exercises the eviction path itself).
  config.store.shard_bytes_budget =
      2 * 512 * std::max<std::size_t>(sessions / config.store.shards, 1);
  config.expected_anchors = load.anchors_per_object;

  nomloc::serving::ManualClock clock;
  auto service =
      nomloc::serving::StreamingLocalizer::Create(engine, config, &clock);
  NOMLOC_REQUIRE(service.ok());

  ScaleRun run;
  run.sessions = sessions;
  run.shard_bytes_budget = config.store.shard_bytes_budget;

  // Phase 1: populate the full session population at maximum rate.
  clock.Set(0.0);
  auto populate_start = std::chrono::steady_clock::now();
  for (const nomloc::serving::IngestPacket& packet : schedule.populate) {
    nomloc::serving::IngestPacket stamped = packet;
    stamped.scheduled_wall = std::chrono::steady_clock::now();
    NOMLOC_REQUIRE((*service)->Ingest(stamped) ==
                   nomloc::serving::AdmitStatus::kAccepted);
  }
  (*service)->Flush();
  const double populate_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    populate_start)
          .count();
  run.populate_packets_per_s =
      populate_s > 0.0 ? double(schedule.populate.size()) / populate_s : 0.0;

  const nomloc::serving::MemoryStats memory = (*service)->Store().Memory();
  run.live_bytes = memory.live_bytes;
  run.resident_bytes = memory.resident_bytes;
  run.bytes_per_session =
      memory.sessions > 0 ? double(memory.live_bytes) / double(memory.sessions)
                          : 0.0;

  // Phase 2: closed-loop capacity probe over the steady schedule.
  const auto capacity_start = std::chrono::steady_clock::now();
  for (const nomloc::serving::ScheduledPacket& scheduled : schedule.steady) {
    clock.Set(scheduled.packet.timestamp_s);
    nomloc::serving::IngestPacket stamped = scheduled.packet;
    stamped.scheduled_wall = std::chrono::steady_clock::now();
    (*service)->Ingest(stamped);
  }
  (*service)->Flush();
  const double capacity_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    capacity_start)
          .count();
  run.capacity_packets_per_s =
      capacity_s > 0.0 ? double(schedule.steady.size()) / capacity_s : 0.0;
  (void)(*service)->TakeResponses();  // drain the capacity probe

  // Phase 3: paced open-loop replay at half of measured capacity.
  // Wall send times follow the schedule (scaled from the logical
  // timeline); latency runs from the *scheduled* stamp even when the
  // sender falls behind, so backlog is charged to the percentiles.
  run.paced_rate_per_s = 0.5 * run.capacity_packets_per_s;
  if (run.paced_rate_per_s > 0.0) {
    const double stretch = load.rate_per_s / run.paced_rate_per_s;
    const auto paced_start = std::chrono::steady_clock::now();
    for (const nomloc::serving::ScheduledPacket& scheduled :
         schedule.steady) {
      const auto due =
          paced_start + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                scheduled.send_offset_s * stretch));
      while (std::chrono::steady_clock::now() < due) {
        // Open loop: spin — never skip or defer a scheduled send.
      }
      clock.Set(scheduled.packet.timestamp_s);
      nomloc::serving::IngestPacket stamped = scheduled.packet;
      stamped.scheduled_wall = due;
      (*service)->Ingest(stamped);
    }
    (*service)->Flush();
    std::vector<double> latencies_ms;
    for (const auto& response : (*service)->TakeResponses())
      latencies_ms.push_back(1e3 * response.latency_s);
    run.responses = latencies_ms.size();
    if (!latencies_ms.empty()) {
      std::sort(latencies_ms.begin(), latencies_ms.end());
      run.p50_ms = nomloc::common::Percentile(latencies_ms, 0.5);
      run.p95_ms = nomloc::common::Percentile(latencies_ms, 0.95);
      run.p99_ms = nomloc::common::Percentile(latencies_ms, 0.99);
    }
  }
  (*service)->Shutdown();

  run.evictions_pressure = pressure_counter.Value() - pressure_before;
  run.sessions_evicted = evicted_counter.Value() - evicted_before;

  // Phase 4: binary vs JSON wire decode throughput over the steady slice.
  std::vector<nomloc::serving::IngestPacket> slice;
  slice.reserve(schedule.steady.size());
  for (const nomloc::serving::ScheduledPacket& scheduled : schedule.steady)
    slice.push_back(scheduled.packet);
  const std::string binary = nomloc::serving::EncodeWireBinary(slice);
  const std::string ndjson = nomloc::serving::EncodeWireJson(slice);
  const std::size_t repeats = quick ? 2 : 3;
  run.wire_binary_packets_per_s = DecodeThroughput(
      binary, nomloc::serving::WireFormat::kBinary, slice.size(), repeats);
  run.wire_json_packets_per_s = DecodeThroughput(
      ndjson, nomloc::serving::WireFormat::kJson, slice.size(), repeats);
  run.wire_speedup = run.wire_json_packets_per_s > 0.0
                         ? run.wire_binary_packets_per_s /
                               run.wire_json_packets_per_s
                         : 0.0;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  bool open_loop = false;
  bool cluster_mode = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    else if (std::strcmp(argv[i], "--json") == 0) json = true;
    else if (std::strcmp(argv[i], "--open-loop") == 0) open_loop = true;
    else if (std::strcmp(argv[i], "--cluster") == 0) cluster_mode = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--open-loop] [--cluster] [--json] "
                   "[--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  auto scenario = nomloc::eval::ScenarioByName("lab");
  NOMLOC_REQUIRE(scenario.ok());

  nomloc::serving::ReplayConfig replay;
  replay.objects = quick ? 3 : 6;
  replay.epochs = quick ? 2 : 8;
  replay.run.packets_per_batch = quick ? 5 : 20;
  replay.run.dwell_count = quick ? 4 : 8;
  replay.run.seed = 7;
  auto plan = nomloc::serving::BuildReplayPlan(*scenario, replay);
  NOMLOC_REQUIRE(plan.ok());

  nomloc::core::NomLocConfig engine_cfg = replay.run.engine;
  engine_cfg.bandwidth_hz = replay.run.channel.bandwidth_hz;
  auto engine = nomloc::core::NomLocEngine::Create(
      scenario->env.Boundary(), engine_cfg);
  NOMLOC_REQUIRE(engine.ok());

  const std::size_t hw = std::max<std::size_t>(
      std::thread::hardware_concurrency(), 1);
  // 1 and 2 workers always (2 exercises the sharded MPSC path even on a
  // single core), plus the full hardware width when it adds a new point.
  std::vector<std::size_t> worker_counts{1, 2};
  if (hw > 2) worker_counts.push_back(hw);

  const std::size_t repeats = quick ? 2 : 5;
  const StreamRun serial = BestRun(*engine, *plan, 1, repeats);

  std::vector<BenchTiming> series;
  std::vector<StreamRun> runs;
  nomloc::common::JsonArray rows;
  for (std::size_t workers : worker_counts) {
    const StreamRun run =
        workers == 1 ? serial : BestRun(*engine, *plan, workers, repeats);
    runs.push_back(run);
    BenchTiming timing;
    timing.name = "serve.stream.w" + std::to_string(workers);
    timing.iterations = plan->packets.size();
    timing.cold_ms = serial.wall_ms;
    timing.warm_ms = run.wall_ms;
    series.push_back(timing);

    nomloc::common::JsonObject row;
    row["workers"] = workers;
    row["packets"] = plan->packets.size();
    row["responses"] = run.responses;
    row["packets_per_s"] = run.packets_per_s;
    row["latency_p50_ms"] = run.p50_ms;
    row["latency_p95_ms"] = run.p95_ms;
    row["latency_p99_ms"] = run.p99_ms;
    rows.push_back(nomloc::common::Json(std::move(row)));
  }

  std::vector<ClusterRunResult> cluster_runs;
  ReplicationResult replication;
  ClusterRunResult replicated_run;
  if (cluster_mode) {
    for (std::size_t shards : {std::size_t(1), std::size_t(2), std::size_t(4)})
      cluster_runs.push_back(BestClusterRun(
          *engine, *plan, replay.epoch_interval_s, shards, repeats));
    // Replication campaign: same 4-shard replay with synchronous
    // dual-writes on, plus the crash-failover latency probe.
    const std::size_t rep_shards = 4;
    replicated_run =
        BestClusterRun(*engine, *plan, replay.epoch_interval_s, rep_shards,
                       repeats, /*replicate=*/true);
    replication = RunReplicationProbe(*engine, *plan, replay.epoch_interval_s,
                                      rep_shards, repeats);
    replication.baseline_packets_per_s = cluster_runs.back().packets_per_s;
    replication.replicated_packets_per_s = replicated_run.packets_per_s;
    if (replication.baseline_packets_per_s > 0.0)
      replication.dual_write_overhead_pct =
          100.0 * (1.0 - replication.replicated_packets_per_s /
                             replication.baseline_packets_per_s);
  }

  std::vector<ScaleRun> scale_runs;
  if (open_loop) {
    std::vector<std::size_t> scales{10'000};
    if (!quick) {
      scales.push_back(100'000);
      scales.push_back(1'000'000);
    }
    for (std::size_t sessions : scales)
      scale_runs.push_back(RunScale(*engine, sessions, quick));
  }

  nomloc::common::JsonObject extra;
  extra["serving"] = nomloc::common::Json(std::move(rows));
  // Latency percentiles are measured from the scheduled send time, not
  // the successful submit (coordinated-omission fix; PR 8).
  extra["latency_origin"] = nomloc::common::Json("scheduled_send");
  if (!cluster_runs.empty()) {
    nomloc::common::JsonArray cluster_rows;
    const double one_shard_pps = cluster_runs.front().packets_per_s;
    for (const ClusterRunResult& run : cluster_runs) {
      nomloc::common::JsonObject row;
      row["shards"] = run.shards;
      row["packets"] = plan->packets.size();
      row["responses"] = run.responses;
      row["packets_per_s"] = run.packets_per_s;
      row["speedup_vs_1shard"] =
          one_shard_pps > 0.0 ? run.packets_per_s / one_shard_pps : 0.0;
      row["latency_p50_ms"] = run.p50_ms;
      row["latency_p95_ms"] = run.p95_ms;
      row["latency_p99_ms"] = run.p99_ms;
      cluster_rows.push_back(nomloc::common::Json(std::move(row)));
    }
    nomloc::common::JsonObject cluster_doc;
    cluster_doc["transport"] = nomloc::common::Json("loopback");
    cluster_doc["host_workers"] = std::size_t(1);
    // Latency closes router-side: query send stamp (it cannot cross the
    // wire) to ClusterResponse::received_wall, flush cadence included.
    cluster_doc["latency_origin"] =
        nomloc::common::Json("send_wall_to_received_wall");
    cluster_doc["hardware_cores"] = hw;
    cluster_doc["series"] = nomloc::common::Json(std::move(cluster_rows));
    extra["cluster"] = nomloc::common::Json(std::move(cluster_doc));

    nomloc::common::JsonObject rep;
    rep["shards"] = replication.shards;
    rep["baseline_packets_per_s"] = replication.baseline_packets_per_s;
    rep["replicated_packets_per_s"] = replication.replicated_packets_per_s;
    rep["dual_write_overhead_pct"] = replication.dual_write_overhead_pct;
    rep["replicated_responses"] = replicated_run.responses;
    rep["replicated_latency_p50_ms"] = replicated_run.p50_ms;
    rep["replicated_latency_p99_ms"] = replicated_run.p99_ms;
    // Failover probe: crash-kill the owner of the next packet at the
    // middle epoch boundary; promote latency is the single ingest that
    // trips failover (flush fence + epoch bump + standby promotion),
    // recover latency is the Recover() call one epoch later.
    rep["failover_promote_ms"] = replication.failover_promote_ms;
    rep["recover_ms"] = replication.recover_ms;
    extra["replication"] = nomloc::common::Json(std::move(rep));
  }
  if (!scale_runs.empty()) {
    nomloc::common::JsonArray scale_rows;
    for (const ScaleRun& run : scale_runs) {
      nomloc::common::JsonObject row;
      row["sessions"] = run.sessions;
      row["populate_packets_per_s"] = run.populate_packets_per_s;
      row["capacity_packets_per_s"] = run.capacity_packets_per_s;
      row["paced_rate_per_s"] = run.paced_rate_per_s;
      row["responses"] = run.responses;
      row["latency_p50_ms"] = run.p50_ms;
      row["latency_p95_ms"] = run.p95_ms;
      row["latency_p99_ms"] = run.p99_ms;
      row["live_bytes"] = run.live_bytes;
      row["resident_bytes"] = run.resident_bytes;
      row["bytes_per_session"] = run.bytes_per_session;
      row["shard_bytes_budget"] = run.shard_bytes_budget;
      row["evictions_pressure"] = std::size_t(run.evictions_pressure);
      row["sessions_evicted"] = std::size_t(run.sessions_evicted);
      row["wire_binary_packets_per_s"] = run.wire_binary_packets_per_s;
      row["wire_json_packets_per_s"] = run.wire_json_packets_per_s;
      row["wire_speedup"] = run.wire_speedup;
      scale_rows.push_back(nomloc::common::Json(std::move(row)));
    }
    extra["scale"] = nomloc::common::Json(std::move(scale_rows));
  }
  const nomloc::common::Json report = nomloc::bench::BenchReportJson(
      "serving", quick, series, std::move(extra));

  if (json) {
    std::printf("%s\n", report.DumpPretty().c_str());
  } else {
    std::printf("serving stream benchmark (%s): %zu packets, "
                "%zu queries per run\n",
                quick ? "quick" : "full", plan->packets.size(),
                serial.responses);
    nomloc::bench::PrintTimings(series);
    std::printf("  %-28s %12s %9s %9s %9s\n", "series", "packets/s",
                "p50 [ms]", "p95 [ms]", "p99 [ms]");
    for (std::size_t i = 0; i < series.size(); ++i) {
      std::printf("  %-28s %12.0f %9.3f %9.3f %9.3f\n",
                  series[i].name.c_str(), runs[i].packets_per_s,
                  runs[i].p50_ms, runs[i].p95_ms, runs[i].p99_ms);
    }
    if (!cluster_runs.empty()) {
      std::printf("\n  cluster sharding campaign "
                  "(loopback transport, 1 worker per shard host)\n");
      std::printf("  %8s %12s %9s %9s %9s %9s\n", "shards", "packets/s",
                  "speedup", "p50 [ms]", "p95 [ms]", "p99 [ms]");
      const double one_shard_pps = cluster_runs.front().packets_per_s;
      for (const ClusterRunResult& run : cluster_runs) {
        std::printf("  %8zu %12.0f %9.2f %9.3f %9.3f %9.3f\n", run.shards,
                    run.packets_per_s,
                    one_shard_pps > 0.0 ? run.packets_per_s / one_shard_pps
                                        : 0.0,
                    run.p50_ms, run.p95_ms, run.p99_ms);
      }
      std::printf("\n  replication (4 shards, synchronous dual-write)\n");
      std::printf("  %-28s %12.0f\n  %-28s %12.0f\n  %-28s %11.2f%%\n"
                  "  %-28s %12.3f\n  %-28s %12.3f\n",
                  "baseline packets/s", replication.baseline_packets_per_s,
                  "replicated packets/s", replication.replicated_packets_per_s,
                  "dual-write overhead", replication.dual_write_overhead_pct,
                  "failover promote [ms]", replication.failover_promote_ms,
                  "recover [ms]", replication.recover_ms);
    }
    if (!scale_runs.empty()) {
      std::printf("\n  open-loop scale campaign "
                  "(CO-free latency from scheduled send)\n");
      std::printf("  %10s %12s %12s %9s %9s %11s %9s %9s\n", "sessions",
                  "ingest/s", "paced/s", "p50 [ms]", "p99 [ms]", "B/session",
                  "evict", "wire x");
      for (const ScaleRun& run : scale_runs) {
        std::printf("  %10zu %12.0f %12.0f %9.3f %9.3f %11.1f %9zu %9.2f\n",
                    run.sessions, run.capacity_packets_per_s,
                    run.paced_rate_per_s, run.p50_ms, run.p99_ms,
                    run.bytes_per_session,
                    std::size_t(run.evictions_pressure), run.wire_speedup);
      }
    }
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << report.DumpPretty() << "\n";
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
  }
  return 0;
}
