// Fig. 7 reproduction: accuracy of PDP-based proximity determination per
// position index — Lab (10 sites) and Lobby (12 sites), C(4,2) = 6
// judgements per site against ground-truth distance ordering.
//
// Paper's result: most sites above 85 %; dips where a site is roughly
// equidistant from two APs; Lobby slightly better than Lab because its AP
// deployment is sparser.
#include <cstdio>

#include "bench_util.h"

using namespace nomloc;

int main() {
  std::printf("=== Fig. 7: PDP-based proximity determination accuracy ===\n\n");
  bench::PaperConfig(0);  // Touch to keep helpers linked uniformly.

  for (const eval::Scenario& scenario :
       {eval::LobbyScenario(), eval::LabScenario()}) {
    eval::RunConfig cfg = bench::PaperConfig(701);
    cfg.trials = 25;
    cfg.packets_per_batch = 50;
    auto result = eval::RunProximityAccuracy(scenario, cfg);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s (%zu sites, %zu trials x 6 pairs each):\n",
                scenario.name.c_str(), scenario.test_sites.size(),
                cfg.trials);
    bench::PrintPerSiteBars("PDP accuracy per position index",
                            result->per_site_accuracy, 1.0);
    std::printf("  mean accuracy: %.3f\n\n",
                common::Mean(result->per_site_accuracy));
  }

  std::printf(
      "Expected shape (paper Fig. 7): most sites >= ~0.85; isolated dips at\n"
      "sites nearly equidistant from two APs; Lobby mean >= Lab mean.\n");
  return 0;
}
