// Ablation: NomLoc's calibration-free SP method versus classic baselines —
// log-distance ranging + trilateration (FILA-style, *requires calibration*,
// which we grant it for free from ground-truth sampling), power-weighted
// centroid, and nearest-AP snapping.  All methods consume exactly the same
// static-deployment PDP measurements.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "channel/csi_model.h"
#include "localization/baselines.h"
#include "localization/sequence.h"

using namespace nomloc;

namespace {

struct MethodErrors {
  std::vector<double> nomloc, nomloc_nomadic, sequence, trilat, centroid,
      nearest;
};

// Calibrates the ranging model the way a surveyor would: LOS sample links
// at known distances inside the scenario.
common::Result<localization::RangingModel> Calibrate(
    const eval::Scenario& scenario, const eval::RunConfig& cfg,
    common::Rng& rng) {
  const channel::CsiSimulator sim(scenario.env, cfg.channel);
  std::vector<std::pair<double, double>> pairs;
  const geometry::Vec2 ref = scenario.static_aps[0];
  for (double d = 1.0; d <= 6.0; d += 1.0) {
    const geometry::Vec2 p{ref.x + d, ref.y + 0.3};
    if (!scenario.env.IsFreeSpace(p)) continue;
    const auto frames =
        sim.MakeLink(p, ref).SampleBatch(cfg.packets_per_batch, rng);
    pairs.emplace_back(d, dsp::PdpOfBatch(frames, cfg.channel.bandwidth_hz,
                                          cfg.engine.pdp));
  }
  return localization::FitRangingModel(pairs);
}

}  // namespace

int main() {
  std::printf("=== Ablation: NomLoc vs classic baselines ===\n\n");

  for (const eval::Scenario& scenario :
       {eval::LabScenario(), eval::LobbyScenario()}) {
    eval::RunConfig cfg = bench::PaperConfig(1701);
    cfg.deployment = eval::Deployment::kStatic;  // Same data for everyone.

    core::NomLocConfig engine_cfg = cfg.engine;
    engine_cfg.bandwidth_hz = cfg.channel.bandwidth_hz;
    auto engine =
        core::NomLocEngine::Create(scenario.env.Boundary(), engine_cfg);
    if (!engine.ok()) return 1;

    common::Rng rng(cfg.seed);
    auto model = Calibrate(scenario, cfg, rng);
    if (!model.ok()) {
      std::fprintf(stderr, "calibration failed: %s\n",
                   model.status().ToString().c_str());
      return 1;
    }

    const channel::CsiSimulator sim(scenario.env, cfg.channel);
    MethodErrors errors;
    const geometry::Vec2 room_center =
        scenario.env.Boundary().BoundingBox().Center();

    for (const geometry::Vec2 site : scenario.test_sites) {
      for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
        std::vector<localization::Anchor> anchors;
        for (const geometry::Vec2 ap : scenario.static_aps) {
          const auto frames =
              sim.MakeLink(site, ap).SampleBatch(cfg.packets_per_batch, rng);
          anchors.push_back(localization::MakeAnchor(
              ap, frames, cfg.channel.bandwidth_hz, cfg.engine.pdp));
        }
        auto sp = engine->LocateFromAnchors(anchors);
        if (sp.ok())
          errors.nomloc.push_back(Distance(sp->position, site));
        auto tri =
            localization::Trilaterate(anchors, *model, room_center);
        if (tri.ok()) {
          // NLOS-corrupted ranges can push Gauss-Newton far outside the
          // venue; clamp to the floor's bounding box as any deployed
          // system would.
          const geometry::Aabb box =
              scenario.env.Boundary().BoundingBox();
          geometry::Vec2 p = *tri;
          p.x = std::clamp(p.x, box.lo.x, box.hi.x);
          p.y = std::clamp(p.y, box.lo.y, box.hi.y);
          errors.trilat.push_back(Distance(p, site));
        }
        auto seq = localization::SequenceLocalize(scenario.env.Boundary(),
                                                  anchors, {});
        if (seq.ok()) errors.sequence.push_back(Distance(*seq, site));
        errors.centroid.push_back(
            Distance(localization::WeightedCentroid(anchors), site));
        errors.nearest.push_back(
            Distance(localization::NearestAnchor(anchors), site));

        // The full NomLoc configuration (nomadic AP roaming) for context.
        eval::RunConfig nomadic_cfg = cfg;
        nomadic_cfg.deployment = eval::Deployment::kNomadic;
        auto full = eval::LocalizeEpoch(scenario, nomadic_cfg, *engine, site,
                                        rng);
        if (full.ok())
          errors.nomloc_nomadic.push_back(Distance(full->position, site));
      }
    }

    std::printf("%s (static deployment, 4 APs):\n", scenario.name.c_str());
    std::printf("  %-28s %-12s %-12s\n", "method", "mean error", "90th pct");
    const struct {
      const char* name;
      const std::vector<double>* errs;
    } rows[] = {{"SP, static APs only", &errors.nomloc},
                {"SP + nomadic AP (NomLoc)", &errors.nomloc_nomadic},
                {"sequence-based [ref 2]", &errors.sequence},
                {"trilateration (calibrated)", &errors.trilat},
                {"weighted centroid", &errors.centroid},
                {"nearest AP", &errors.nearest}};
    for (const auto& row : rows) {
      if (row.errs->empty()) {
        std::printf("  %-28s %10s\n", row.name, "n/a");
        continue;
      }
      std::printf("  %-28s %8.2f m %9.2f m\n", row.name,
                  common::Mean(*row.errs),
                  common::Percentile(*row.errs, 0.9));
    }
    std::printf("\n");
  }

  std::printf(
      "Expected: with static APs alone, SP trades blows with calibrated\n"
      "trilateration and the centre-biased weighted centroid; the point of\n"
      "NomLoc is the nomadic row — the SP method is the one that converts\n"
      "extra anchor sites into accuracy without any calibration, while\n"
      "ranging needs a survey and still blows up under NLOS (clamped\n"
      "here), and nearest-AP snapping trails everything.\n");
  return 0;
}
