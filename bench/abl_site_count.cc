// Ablation: how many distinct sites the nomadic AP visits.
//
// Paper §IV-B3: "the further the nomadic AP moves, the more CSI
// measurements will be collected … resulting in finer granularity
// segmentation.  In return, higher accuracy can be expected."  We truncate
// the nomadic site set to its first S sites (S = 1 reduces to the static
// deployment, since site 0 is the AP's home).
#include <cstdio>

#include "bench_util.h"

using namespace nomloc;

int main() {
  std::printf("=== Ablation: nomadic site-set size S ===\n\n");

  for (eval::Scenario scenario :
       {eval::LabScenario(), eval::LobbyScenario()}) {
    std::printf("%s:\n", scenario.name.c_str());
    std::printf("  %-4s %-14s %-10s\n", "S", "mean error", "SLV");
    const std::vector<geometry::Vec2> full_sites = scenario.nomadic_sites;
    for (std::size_t s = 1; s <= full_sites.size(); ++s) {
      scenario.nomadic_sites.assign(full_sites.begin(),
                                    full_sites.begin() + std::ptrdiff_t(s));
      eval::RunConfig cfg = bench::PaperConfig(1101);
      auto result = eval::RunLocalization(scenario, cfg);
      if (!result.ok()) {
        std::fprintf(stderr, "error at S=%zu\n", s);
        return 1;
      }
      std::printf("  %-4zu %8.2f m %11.3f m^2\n", s, result->MeanError(),
                  result->slv);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected: mean error and SLV shrink as S grows — each extra site\n"
      "adds n-1 constraints that downscope the feasible region.\n");
  return 0;
}
