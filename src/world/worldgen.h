// Seeded procedural world generation: campus-scale indoor floor plans for
// benchmarking and randomized testing, far beyond the hand-drawn Lab /
// Lobby / Office scenarios (eval/scenario.h).
//
// A WorldSpec names a layout family, a target room count, and a seed; the
// generator deterministically emits an IndoorEnvironment (boundary,
// interior partition walls with door gaps, obstacle clutter, scatterers)
// plus candidate AP sites and per-room test sites.  Layouts:
//
//   * kOfficeGrid    — double-loaded corridor bands: each band is a
//                      corridor with a row of rooms on either side; bands
//                      stack vertically, separated by concrete walls.
//   * kCorridorSpine — a single long double-loaded corridor (office grid
//                      with one band): maximally elongated, so most links
//                      cross many partitions.
//   * kAtrium        — perimeter rooms around a ring corridor enclosing an
//                      open glass-balustraded atrium: mixes long LOS links
//                      across the void with heavily-partitioned ones.
//   * kMultiFloor    — `floors` office-grid blocks laid side by side
//                      (a 2-D projection of a multi-storey building),
//                      separated by concrete slab walls with stair gaps.
//
// Determinism: equal WorldSpec values (including seed) produce bit-equal
// geometry, sites, and scatterers.  Everything is derived from one
// common::Rng stream, so generated worlds are reproducible across runs —
// the property the randomized brute-vs-indexed equivalence suite and the
// trace.cold.bigworld bench depend on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "channel/environment.h"
#include "common/status.h"
#include "geometry/vec2.h"

namespace nomloc::world {

enum class Layout { kOfficeGrid, kCorridorSpine, kAtrium, kMultiFloor };

/// Layout from its CLI name ("office", "corridor", "atrium", "multifloor").
common::Result<Layout> LayoutByName(const std::string& name);
const char* LayoutName(Layout layout) noexcept;

struct WorldSpec {
  Layout layout = Layout::kOfficeGrid;
  /// Target room count (per floor for kMultiFloor).  The generator may
  /// round the realised count up slightly to fill a rectangular grid.
  std::size_t rooms = 10;
  /// Floor count; only kMultiFloor uses values > 1.
  std::size_t floors = 1;
  std::uint64_t seed = 0xb16;

  double room_w_m = 6.0;      ///< Nominal room width along the corridor.
  double room_d_m = 5.0;      ///< Nominal room depth off the corridor.
  double corridor_w_m = 2.4;
  /// Expected diffuse scatterers per room (clutter density).
  double scatterers_per_room = 1.5;
  /// Expected furniture boxes per room (desks, cabinets, racks; each box
  /// adds four blocking wall segments).  Rooms host at most one box per
  /// corner quadrant, so values above 4 saturate.  The default models a
  /// fully furnished office.
  double furniture_per_room = 3.2;
  /// Cap on emitted test sites (0 = one per room).  When capped, sites
  /// are strided across the building rather than clustered at one end.
  std::size_t max_test_sites = 0;
};

struct GeneratedWorld {
  std::string name;           ///< e.g. "office-100-s2748".
  channel::IndoorEnvironment env;
  /// Candidate AP placements (corridor spine / atrium ring positions).
  std::vector<geometry::Vec2> ap_sites;
  /// Object test sites, one per room (jittered off the room centre),
  /// possibly strided down to WorldSpec::max_test_sites.
  std::vector<geometry::Vec2> test_sites;
  std::size_t rooms = 0;      ///< Realised room count (all floors).
  std::size_t floors = 1;
};

/// Generates the world described by `spec`.  Fails on malformed specs
/// (zero rooms/floors, non-positive dimensions); never fails for valid
/// specs of any size.
common::Result<GeneratedWorld> Generate(const WorldSpec& spec);

}  // namespace nomloc::world
