#include "world/worldgen.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assert.h"
#include "common/rng.h"
#include "geometry/polygon.h"

namespace nomloc::world {

using channel::IndoorEnvironment;
using channel::Material;
using channel::Obstacle;
using channel::Wall;
using geometry::Polygon;
using geometry::Vec2;

namespace {

constexpr double kDoorWidthM = 0.9;
constexpr double kDoorEndMarginM = 0.35;
constexpr double kClutterWallMarginM = 0.4;
constexpr double kSiteJitterFrac = 0.12;  // Test-site jitter, room fraction.
struct Out {
  std::vector<Wall>* walls;
  std::vector<Obstacle>* obstacles;
  std::vector<Vec2>* ap_sites;
  std::vector<Vec2>* test_sites;
  /// Per-quadrant furniture probability, WorldSpec::furniture_per_room / 4.
  double clutter_quadrant_prob = 0.8;
};

void EmitWall(Out& out, Vec2 a, Vec2 b, const Material& m) {
  if (Distance(a, b) < 1e-6) return;
  out.walls->push_back({{a, b}, m});
}

// Emits the corridor-facing wall of a room: the edge runs along the fixed
// coordinate from `lo` to `hi`, with a door gap jittered inside
// [allowed_lo, allowed_hi] (the sub-span actually adjacent to the
// corridor — matters for atrium corner rooms).  Falls back to a centred
// gap when the allowed span is too short for a door.
void EmitFrontWall(Out& out, common::Rng& rng, bool vertical, double fixed,
                   double lo, double hi, double allowed_lo, double allowed_hi,
                   const Material& m) {
  const double a = std::max(lo, allowed_lo) + kDoorEndMarginM;
  const double b = std::min(hi, allowed_hi) - kDoorEndMarginM - kDoorWidthM;
  double g0;
  if (b >= a) {
    g0 = rng.Uniform(a, b);
  } else {
    rng.Uniform();  // Keep the stream aligned across branches.
    g0 = std::clamp(0.5 * (lo + hi) - 0.5 * kDoorWidthM, lo, hi - kDoorWidthM);
  }
  const double g1 = g0 + kDoorWidthM;
  const auto at = [&](double t) {
    return vertical ? Vec2{fixed, t} : Vec2{t, fixed};
  };
  EmitWall(out, at(lo), at(g0), m);
  EmitWall(out, at(g1), at(hi), m);
}

Material PartitionMaterial(common::Rng& rng) {
  return rng.Bernoulli(0.15) ? channel::materials::Glass()
                             : channel::materials::Drywall();
}

// Clutter obstacles in the room's corner quadrants plus a jittered
// near-centre test site.  Each quadrant independently hosts a furniture
// box (desk, cabinet, rack); every box keeps kClutterWallMarginM off the
// room walls and is confined to its own quadrant's corner region, which
// stays strictly outside both the other quadrants and the central jitter
// region — so boxes never overlap each other and test sites are free
// space by construction (no rejection sampling).
void EmitRoomInterior(Out& out, common::Rng& rng, double x0, double y0,
                      double x1, double y1) {
  const double w = x1 - x0, d = y1 - y0;
  const double max_w = std::min(1.2, (0.5 - kSiteJitterFrac) * w - 0.5);
  const double max_d = std::min(1.2, (0.5 - kSiteJitterFrac) * d - 0.5);
  for (std::uint64_t quadrant = 0; quadrant < 4; ++quadrant) {
    if (!rng.Bernoulli(out.clutter_quadrant_prob)) continue;
    if (max_w < 0.5 || max_d < 0.5) continue;
    const double sw = rng.Uniform(0.5, max_w);
    const double sd = rng.Uniform(0.5, max_d);
    const double bx0 = (quadrant & 1) ? x1 - kClutterWallMarginM - sw
                                      : x0 + kClutterWallMarginM;
    const double by0 = (quadrant & 2) ? y1 - kClutterWallMarginM - sd
                                      : y0 + kClutterWallMarginM;
    const Material m = rng.Bernoulli(0.3) ? channel::materials::Metal()
                                          : channel::materials::Wood();
    out.obstacles->push_back(
        {Polygon::Rectangle(bx0, by0, bx0 + sw, by0 + sd), m});
  }
  const double jx = rng.Uniform(-kSiteJitterFrac, kSiteJitterFrac);
  const double jy = rng.Uniform(-kSiteJitterFrac, kSiteJitterFrac);
  out.test_sites->push_back({0.5 * (x0 + x1) + jx * w,
                             0.5 * (y0 + y1) + jy * d});
}

struct GridDims {
  std::size_t cols = 1, bands = 1;
  double width = 0.0, height = 0.0, band_h = 0.0;
};

GridDims OfficeDims(const WorldSpec& spec, std::size_t bands) {
  GridDims g;
  g.bands = std::max<std::size_t>(1, bands);
  g.cols = std::max<std::size_t>(
      1, std::size_t(std::ceil(double(spec.rooms) / double(2 * g.bands))));
  g.band_h = 2.0 * spec.room_d_m + spec.corridor_w_m;
  g.width = double(g.cols) * spec.room_w_m;
  g.height = double(g.bands) * g.band_h;
  return g;
}

// Emits one office-grid block (double-loaded corridor bands) with its
// south-west corner at (ox, oy).  Returns the realised room count
// (== spec.rooms; truncation leaves trailing grid slots open).
std::size_t EmitOfficeBlock(Out& out, common::Rng& rng, const WorldSpec& spec,
                            const GridDims& g, double ox, double oy) {
  const double rw = spec.room_w_m, rd = spec.room_d_m, cw = spec.corridor_w_m;
  const Material concrete = channel::materials::Concrete();
  std::size_t emitted = 0;
  for (std::size_t b = 0; b < g.bands && emitted < spec.rooms; ++b) {
    const double band_y = oy + double(b) * g.band_h;
    if (b > 0)  // Back-to-back rooms across bands share a solid wall.
      EmitWall(out, {ox, band_y}, {ox + g.width, band_y}, concrete);
    for (int row = 0; row < 2 && emitted < spec.rooms; ++row) {
      const double ry0 = band_y + (row == 0 ? 0.0 : rd + cw);
      const double front_y = row == 0 ? ry0 + rd : ry0;  // Corridor side.
      for (std::size_t col = 0; col < g.cols && emitted < spec.rooms; ++col) {
        const double rx0 = ox + double(col) * rw;
        const double rx1 = rx0 + rw;
        EmitFrontWall(out, rng, /*vertical=*/false, front_y, rx0, rx1, rx0,
                      rx1, PartitionMaterial(rng));
        if (col > 0)
          EmitWall(out, {rx0, ry0}, {rx0, ry0 + rd},
                   channel::materials::Drywall());
        ++emitted;
        // Close the east side when truncation ends the block mid-row.
        if (emitted == spec.rooms && col + 1 < g.cols)
          EmitWall(out, {rx1, ry0}, {rx1, ry0 + rd},
                   channel::materials::Drywall());
        EmitRoomInterior(out, rng, rx0, ry0, rx1, ry0 + rd);
      }
    }
    // AP sites along the corridor centreline, roughly every three rooms.
    const double ap_y = band_y + rd + 0.5 * cw;
    const double spacing = 3.0 * rw;
    const std::size_t count =
        std::max<std::size_t>(1, std::size_t(std::floor(g.width / spacing)));
    for (std::size_t k = 0; k < count; ++k)
      out.ap_sites->push_back({ox + (double(k) + 0.5) * (g.width / count),
                               ap_y});
  }
  return emitted;
}

std::size_t OfficeBands(std::size_t rooms) {
  return std::max<std::size_t>(
      1, std::size_t(std::llround(std::sqrt(double(rooms) / 8.0))));
}

struct Sites {
  std::vector<Vec2> ap, test;
};

common::Result<GeneratedWorld> Finish(const WorldSpec& spec, Polygon boundary,
                                      std::vector<Wall> walls,
                                      std::vector<Obstacle> obstacles,
                                      Sites sites, std::size_t floors,
                                      common::Rng& rng,
                                      std::size_t realised_rooms) {
  auto env = IndoorEnvironment::Create(std::move(boundary), std::move(walls),
                                       std::move(obstacles));
  if (!env.ok()) return env.status();
  GeneratedWorld world{.name = {},
                       .env = std::move(env).value(),
                       .ap_sites = std::move(sites.ap),
                       .test_sites = std::move(sites.test),
                       .rooms = realised_rooms,
                       .floors = floors};

  const std::size_t scatterers = std::size_t(std::clamp(
      std::llround(spec.scatterers_per_room * double(realised_rooms)), 1LL,
      5000LL));
  world.env.PlaceScatterers(scatterers, rng);

  if (spec.max_test_sites > 0 &&
      world.test_sites.size() > spec.max_test_sites) {
    // Stride across the building instead of clustering at one end.
    std::vector<Vec2> kept;
    kept.reserve(spec.max_test_sites);
    const double stride =
        double(world.test_sites.size()) / double(spec.max_test_sites);
    for (std::size_t i = 0; i < spec.max_test_sites; ++i)
      kept.push_back(world.test_sites[std::size_t(double(i) * stride)]);
    world.test_sites = std::move(kept);
  }

  for (const Vec2 p : world.ap_sites) NOMLOC_ASSERT(world.env.IsFreeSpace(p));
  for (const Vec2 p : world.test_sites) NOMLOC_ASSERT(world.env.IsFreeSpace(p));
  return world;
}

common::Result<GeneratedWorld> GenerateOfficeLike(const WorldSpec& spec,
                                                  std::size_t bands) {
  const GridDims g = OfficeDims(spec, bands);
  common::Rng rng(spec.seed);
  Sites sites;
  std::vector<Wall> walls;
  std::vector<Obstacle> obstacles;
  Out out{&walls, &obstacles, &sites.ap, &sites.test,
          std::clamp(spec.furniture_per_room / 4.0, 0.0, 1.0)};
  const std::size_t realised = EmitOfficeBlock(out, rng, spec, g, 0.0, 0.0);
  return Finish(spec, Polygon::Rectangle(0.0, 0.0, g.width, g.height),
                std::move(walls), std::move(obstacles), std::move(sites), 1,
                rng, realised);
}

common::Result<GeneratedWorld> GenerateMultiFloor(const WorldSpec& spec) {
  const GridDims g = OfficeDims(spec, OfficeBands(spec.rooms));
  common::Rng rng(spec.seed);
  Sites sites;
  std::vector<Wall> walls;
  std::vector<Obstacle> obstacles;
  Out out{&walls, &obstacles, &sites.ap, &sites.test,
          std::clamp(spec.furniture_per_room / 4.0, 0.0, 1.0)};
  const Material concrete = channel::materials::Concrete();
  std::size_t realised = 0;
  for (std::size_t f = 0; f < spec.floors; ++f) {
    const double ox = double(f) * g.width;
    if (f > 0) {
      // Slab wall between floor projections, with a stairwell gap.
      const double gap_h = 1.5;
      const double gy0 = rng.Uniform(0.5, std::max(0.6, g.height - gap_h - 0.5));
      EmitWall(out, {ox, 0.0}, {ox, gy0}, concrete);
      EmitWall(out, {ox, gy0 + gap_h}, {ox, g.height}, concrete);
    }
    realised += EmitOfficeBlock(out, rng, spec, g, ox, 0.0);
  }
  return Finish(spec,
                Polygon::Rectangle(0.0, 0.0, double(spec.floors) * g.width,
                                   g.height),
                std::move(walls), std::move(obstacles), std::move(sites),
                spec.floors, rng, realised);
}

common::Result<GeneratedWorld> GenerateAtrium(const WorldSpec& spec) {
  const double rw = spec.room_w_m, rd = spec.room_d_m, cw = spec.corridor_w_m;
  // Perimeter capacity: cx rooms on each of top/bottom, cy on each side.
  std::size_t cx = std::max<std::size_t>(
      3, std::size_t(std::ceil(double(spec.rooms) / 4.0)));
  while (double(cx) * rw < 2.0 * rd + 2.0 * cw + 3.0) ++cx;
  std::size_t cy = std::max<std::size_t>(
      1, spec.rooms > 2 * cx
             ? std::size_t(std::ceil(double(spec.rooms - 2 * cx) / 2.0))
             : 1);
  while (double(cy) * rw < 2.0 * cw + 3.0) ++cy;
  const double W = double(cx) * rw;
  const double H = 2.0 * rd + double(cy) * rw;

  common::Rng rng(spec.seed);
  Sites sites;
  std::vector<Wall> walls;
  std::vector<Obstacle> obstacles;
  Out out{&walls, &obstacles, &sites.ap, &sites.test,
          std::clamp(spec.furniture_per_room / 4.0, 0.0, 1.0)};
  const Material drywall = channel::materials::Drywall();
  std::size_t emitted = 0;

  // Top and bottom rows (full width; door gaps clamped to the ring
  // corridor's x-range so corner rooms never open into a side room).
  for (int row = 0; row < 2 && emitted < spec.rooms; ++row) {
    const double ry0 = row == 0 ? 0.0 : H - rd;
    const double front_y = row == 0 ? rd : H - rd;
    for (std::size_t col = 0; col < cx && emitted < spec.rooms; ++col) {
      const double rx0 = double(col) * rw, rx1 = rx0 + rw;
      EmitFrontWall(out, rng, /*vertical=*/false, front_y, rx0, rx1, rd,
                    W - rd, PartitionMaterial(rng));
      if (col > 0) EmitWall(out, {rx0, ry0}, {rx0, ry0 + rd}, drywall);
      ++emitted;
      if (emitted == spec.rooms && col + 1 < cx)
        EmitWall(out, {rx1, ry0}, {rx1, ry0 + rd}, drywall);
      EmitRoomInterior(out, rng, rx0, ry0, rx1, ry0 + rd);
    }
  }
  // Left and right columns between the rows.
  const double wy = (H - 2.0 * rd) / double(cy);
  for (int side = 0; side < 2 && emitted < spec.rooms; ++side) {
    const double rx0 = side == 0 ? 0.0 : W - rd;
    const double front_x = side == 0 ? rd : W - rd;
    for (std::size_t j = 0; j < cy && emitted < spec.rooms; ++j) {
      const double ry0 = rd + double(j) * wy, ry1 = ry0 + wy;
      EmitFrontWall(out, rng, /*vertical=*/true, front_x, ry0, ry1, rd,
                    H - rd, PartitionMaterial(rng));
      if (j > 0) EmitWall(out, {rx0, ry0}, {rx0 + rd, ry0}, drywall);
      ++emitted;
      if (emitted == spec.rooms && j + 1 < cy)
        EmitWall(out, {rx0, ry1}, {rx0 + rd, ry1}, drywall);
      EmitRoomInterior(out, rng, rx0, ry0, rx0 + rd, ry1);
    }
  }

  // Glass balustrade around the open atrium, one opening per side.
  const double ax0 = rd + cw, ay0 = rd + cw, ax1 = W - rd - cw,
               ay1 = H - rd - cw;
  const Material glass = channel::materials::Glass();
  const auto balustrade = [&](Vec2 a, Vec2 b) {
    const Vec2 mid = {0.5 * (a.x + b.x), 0.5 * (a.y + b.y)};
    const double open = std::min(2.0, Distance(a, b) / 3.0);
    const Vec2 dir = (b - a).Normalized();
    EmitWall(out, a, mid - dir * (0.5 * open), glass);
    EmitWall(out, mid + dir * (0.5 * open), b, glass);
  };
  balustrade({ax0, ay0}, {ax1, ay0});
  balustrade({ax1, ay0}, {ax1, ay1});
  balustrade({ax1, ay1}, {ax0, ay1});
  balustrade({ax0, ay1}, {ax0, ay0});

  // APs: the four ring-corridor corners plus the atrium centre.
  const double m = rd + 0.5 * cw;
  sites.ap = {{m, m},
              {W - m, m},
              {W - m, H - m},
              {m, H - m},
              {0.5 * W, 0.5 * H}};
  return Finish(spec, Polygon::Rectangle(0.0, 0.0, W, H), std::move(walls),
                std::move(obstacles), std::move(sites), 1, rng, emitted);
}

}  // namespace

common::Result<Layout> LayoutByName(const std::string& name) {
  if (name == "office") return Layout::kOfficeGrid;
  if (name == "corridor") return Layout::kCorridorSpine;
  if (name == "atrium") return Layout::kAtrium;
  if (name == "multifloor") return Layout::kMultiFloor;
  return common::NotFound("unknown world layout: " + name);
}

const char* LayoutName(Layout layout) noexcept {
  switch (layout) {
    case Layout::kOfficeGrid: return "office";
    case Layout::kCorridorSpine: return "corridor";
    case Layout::kAtrium: return "atrium";
    case Layout::kMultiFloor: return "multifloor";
  }
  return "?";
}

common::Result<GeneratedWorld> Generate(const WorldSpec& spec) {
  if (spec.rooms == 0) return common::InvalidArgument("rooms must be >= 1");
  if (spec.floors == 0) return common::InvalidArgument("floors must be >= 1");
  if (spec.room_w_m < 2.5 || spec.room_d_m < 2.5)
    return common::InvalidArgument("rooms must be at least 2.5 m on a side");
  if (spec.corridor_w_m < 1.0)
    return common::InvalidArgument("corridor must be at least 1 m wide");

  auto world = [&] {
    switch (spec.layout) {
      case Layout::kOfficeGrid:
        return GenerateOfficeLike(spec, OfficeBands(spec.rooms));
      case Layout::kCorridorSpine:
        return GenerateOfficeLike(spec, 1);
      case Layout::kAtrium:
        return GenerateAtrium(spec);
      case Layout::kMultiFloor:
        return GenerateMultiFloor(spec);
    }
    return common::Result<GeneratedWorld>(
        common::InvalidArgument("unknown layout"));
  }();
  if (!world.ok()) return world;

  std::string name = LayoutName(spec.layout);
  name += "-" + std::to_string(world.value().rooms);
  if (world.value().floors > 1)
    name += "x" + std::to_string(world.value().floors);
  name += "-s" + std::to_string(spec.seed);
  world.value().name = std::move(name);
  return world;
}

}  // namespace nomloc::world
