#include "net/sim.h"

#include "common/assert.h"

namespace nomloc::net {

void Simulator::ScheduleAt(double time, Callback cb) {
  NOMLOC_REQUIRE(time >= now_);
  NOMLOC_REQUIRE(cb != nullptr);
  queue_.push(Event{time, next_seq_++, std::move(cb)});
}

void Simulator::ScheduleAfter(double delay, Callback cb) {
  NOMLOC_REQUIRE(delay >= 0.0);
  ScheduleAt(now_ + delay, std::move(cb));
}

std::size_t Simulator::Run(double until) {
  stopped_ = false;
  std::size_t executed = 0;
  while (!queue_.empty() && !stopped_) {
    if (queue_.top().time > until) break;
    // Move the event out before popping so the callback may schedule more.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.cb();
    ++executed;
  }
  // A finite horizon advances the clock even when events remain beyond it
  // (they simply have not happened yet).  Stop() leaves time untouched.
  if (!stopped_ && until != std::numeric_limits<double>::infinity() &&
      now_ < until)
    now_ = until;
  return executed;
}

}  // namespace nomloc::net
