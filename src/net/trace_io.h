// Measurement-trace record & replay.
//
// Real CSI research works from recorded datasets: capture once, rerun
// algorithm variants offline.  This module serialises localization epochs
// — the anchors (position + measured PDP) plus ground truth — to JSON, and
// replays them through any NomLocEngine configuration without touching the
// channel simulator again.
#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "core/nomloc.h"

namespace nomloc::net {

/// One recorded localization epoch.
struct EpochRecord {
  geometry::Vec2 ground_truth;
  std::vector<localization::Anchor> anchors;
};

/// A measurement campaign: many epochs plus free-form metadata.
struct MeasurementTrace {
  std::string description;
  std::vector<EpochRecord> epochs;
};

/// Serialises a trace (schema version tagged for forward compatibility).
common::Json TraceToJson(const MeasurementTrace& trace);

/// Parses a trace; fails with kInvalidArgument on schema mismatch and
/// kDataCorruption on non-finite recorded values.
common::Result<MeasurementTrace> TraceFromJson(const common::Json& json);

/// Parses a trace straight from raw bytes.  Truncated or garbage input
/// fails with a typed kDataCorruption error whose message carries the
/// byte offset where parsing broke ("… at offset N"), so a corrupted
/// capture file can be bisected without a hex editor.  Schema and value
/// errors propagate from TraceFromJson.  Every failed parse increments
/// the `trace.parse_failures` counter.
common::Result<MeasurementTrace> ParseTrace(std::string_view text);

/// Reads and parses a trace file: kNotFound when the file cannot be
/// opened, otherwise ParseTrace semantics (byte-offset errors on
/// truncation/garbage).
common::Result<MeasurementTrace> LoadTraceFile(const std::string& path);

/// Serialises `trace` to `path` (pretty-printed, trailing newline).
common::Result<void> SaveTraceFile(const MeasurementTrace& trace,
                                   const std::string& path);

/// Replay statistics: per-epoch errors of the engine on the recorded data.
struct ReplayResult {
  std::vector<double> errors_m;
  double mean_error_m = 0.0;
};

/// Runs every recorded epoch through `engine` and scores against ground
/// truth.  Requires a non-empty trace.
common::Result<ReplayResult> ReplayTrace(const MeasurementTrace& trace,
                                         const core::NomLocEngine& engine);

}  // namespace nomloc::net
