#include "net/system.h"

#include <map>

#include "geometry/pathfinding.h"

#include "common/assert.h"

namespace nomloc::net {

using geometry::Vec2;

common::Result<void> SystemConfig::Validate() const {
  if (probe_interval_s <= 0.0)
    return common::InvalidArgument("probe interval must be positive");
  if (dwell_duration_s <= 0.0)
    return common::InvalidArgument("dwell duration must be positive");
  if (frames_per_report == 0)
    return common::InvalidArgument("frames_per_report must be >= 1");
  if (trace.dwell_count == 0)
    return common::InvalidArgument("trace.dwell_count must be >= 1");
  if (frame_loss_rate < 0.0 || frame_loss_rate >= 1.0)
    return common::InvalidArgument("frame_loss_rate must be in [0, 1)");
  if (report_loss_rate < 0.0 || report_loss_rate >= 1.0)
    return common::InvalidArgument("report_loss_rate must be in [0, 1)");
  if (walking_speed_mps < 0.0)
    return common::InvalidArgument("walking_speed_mps must be >= 0");
  if (solver_threads == 0)
    return common::InvalidArgument("solver_threads must be >= 1");
  return engine.Validate();
}

common::Result<NomLocSystem> NomLocSystem::Create(
    const channel::IndoorEnvironment& env, std::vector<Vec2> static_aps,
    std::vector<std::vector<Vec2>> nomadic_site_sets, SystemConfig config,
    std::uint64_t seed) {
  if (static_aps.size() + nomadic_site_sets.size() < 2)
    return common::InvalidArgument("need at least two APs overall");
  for (const auto& sites : nomadic_site_sets)
    if (sites.empty())
      return common::InvalidArgument("nomadic AP with no sites");
  if (auto valid = config.Validate(); !valid.ok()) return valid.status();

  NomLocSystem sys(env, std::move(static_aps), std::move(nomadic_site_sets),
                   std::move(config), seed);
  // Engine creation validates the area polygon / config.
  NOMLOC_ASSIGN_OR_RETURN(
      auto engine,
      core::NomLocEngine::Create(env.Boundary(), sys.config_.engine));
  sys.engine_.emplace(std::move(engine));
  return sys;
}

NomLocSystem::NomLocSystem(const channel::IndoorEnvironment& env,
                           std::vector<Vec2> static_aps,
                           std::vector<std::vector<Vec2>> nomadic_site_sets,
                           SystemConfig config, std::uint64_t seed)
    : env_(&env),
      static_aps_(std::move(static_aps)),
      nomadic_site_sets_(std::move(nomadic_site_sets)),
      config_(std::move(config)),
      rng_(seed),
      metrics_(std::make_unique<common::MetricRegistry>()) {
  csi_.emplace(*env_, config_.channel);
}

SystemStats NomLocSystem::Stats() const {
  SystemStats s;
  s.probes_sent = metrics_->Counter("net.probes_sent").Value();
  s.frames_captured = metrics_->Counter("net.frames_captured").Value();
  s.frames_lost = metrics_->Counter("net.frames_lost").Value();
  s.reports_received = metrics_->Counter("net.reports_received").Value();
  s.reports_lost = metrics_->Counter("net.reports_lost").Value();
  s.nomadic_moves = metrics_->Counter("net.nomadic_moves").Value();
  return s;
}

common::Result<core::LocationEstimate> NomLocSystem::LocalizeOnce(
    Vec2 object_position) {
  const Vec2 positions[] = {object_position};
  NOMLOC_ASSIGN_OR_RETURN(auto estimates, LocalizeConcurrent(positions));
  return estimates.front();
}

common::Result<std::vector<core::LocationEstimate>>
NomLocSystem::LocalizeConcurrent(std::span<const Vec2> object_positions) {
  if (object_positions.empty())
    return common::InvalidArgument("no objects to localize");
  const std::size_t object_count = object_positions.size();
  reports_.clear();

  auto& probes_sent = metrics_->Counter("net.probes_sent");
  auto& frames_captured = metrics_->Counter("net.frames_captured");
  auto& frames_lost = metrics_->Counter("net.frames_lost");
  auto& reports_received = metrics_->Counter("net.reports_received");
  auto& reports_lost = metrics_->Counter("net.reports_lost");
  auto& nomadic_moves = metrics_->Counter("net.nomadic_moves");
  common::StageTrace epoch_trace(metrics_->Timer("net.epoch"));
  metrics_->Counter("net.epochs").Increment();

  // Per-AP runtime state; ids: statics first, then nomadics.
  struct ApRuntime {
    int id = 0;
    bool is_nomadic = false;
    Vec2 true_position;
    Vec2 reported_position;
    std::size_t dwell_index = 0;
    bool in_transit = false;
    // Per-object link cache and frame buffer.
    std::vector<std::optional<channel::LinkModel>> links;
    std::vector<std::vector<dsp::CsiFrame>> buffers;
  };
  std::vector<ApRuntime> aps;
  int next_id = 0;
  auto init_per_object = [&](ApRuntime& ap) {
    ap.links.resize(object_count);
    ap.buffers.resize(object_count);
  };
  for (const Vec2 p : static_aps_) {
    ApRuntime ap;
    ap.id = next_id++;
    ap.true_position = p;
    ap.reported_position = p;
    init_per_object(ap);
    aps.push_back(std::move(ap));
  }

  // One mobility trace per nomadic AP for this epoch.
  std::vector<std::vector<mobility::DwellRecord>> traces;
  for (const auto& sites : nomadic_site_sets_) {
    NOMLOC_ASSIGN_OR_RETURN(auto trace,
                            mobility::GenerateTrace(sites, config_.trace, rng_));
    ApRuntime ap;
    ap.id = next_id++;
    ap.is_nomadic = true;
    ap.true_position = trace.front().true_position;
    ap.reported_position = trace.front().reported_position;
    init_per_object(ap);
    aps.push_back(std::move(ap));
    traces.push_back(std::move(trace));
  }

  Simulator sim;
  const double epoch_s =
      double(config_.trace.dwell_count) * config_.dwell_duration_s;

  auto flush_object = [&](ApRuntime& ap, std::size_t object) {
    auto& buffer = ap.buffers[object];
    if (buffer.empty()) return;
    if (rng_.Bernoulli(config_.report_loss_rate)) {
      // Backhaul loss: the whole batch vanishes.
      buffer.clear();
      reports_lost.Increment();
      return;
    }
    CsiReport report;
    report.ap_id = ap.id;
    report.object_id = object;
    report.is_nomadic = ap.is_nomadic;
    report.dwell_index = ap.dwell_index;
    report.reported_position = ap.reported_position;
    report.frames = std::move(buffer);
    report.timestamp_s = sim.Now();
    buffer.clear();
    reports_.push_back(std::move(report));
    reports_received.Increment();
  };
  auto flush = [&](ApRuntime& ap) {
    for (std::size_t object = 0; object < object_count; ++object)
      flush_object(ap, object);
  };

  // Obstacle shapes for route planning (only needed when walking).
  std::vector<geometry::Polygon> obstacle_shapes;
  if (config_.walking_speed_mps > 0.0)
    for (const auto& obstacle : env_->Obstacles())
      obstacle_shapes.push_back(obstacle.shape);

  // Nomadic movement events (scheduled before the probe chain so a move at
  // a dwell boundary precedes same-instant probes).
  for (std::size_t n = 0; n < traces.size(); ++n) {
    ApRuntime& ap = aps[static_aps_.size() + n];
    for (std::size_t d = 1; d < traces[n].size(); ++d) {
      const mobility::DwellRecord rec = traces[n][d];
      sim.ScheduleAt(double(d) * config_.dwell_duration_s, [&, rec, d] {
        flush(ap);
        auto arrive = [&, rec, d] {
          ap.true_position = rec.true_position;
          ap.reported_position = rec.reported_position;
          ap.dwell_index = d;
          ap.in_transit = false;
          for (auto& link : ap.links)
            link.reset();  // Channel changed: retrace on next probe.
          nomadic_moves.Increment();
        };
        if (config_.walking_speed_mps <= 0.0 ||
            geometry::AlmostEqual(ap.true_position, rec.true_position,
                                  1e-9)) {
          arrive();
          return;
        }
        // Walk the shortest route; no frames while in transit.
        double distance = Distance(ap.true_position, rec.true_position);
        auto route = geometry::ShortestPath(env_->Boundary(), obstacle_shapes,
                                            ap.true_position,
                                            rec.true_position);
        if (route.ok()) distance = route->length_m;
        ap.in_transit = true;
        sim.ScheduleAfter(distance / config_.walking_speed_mps, arrive);
      });
    }
  }

  // Probe chain: the objects transmit round-robin (CSMA in miniature);
  // every AP captures one CSI frame per probe into the transmitting
  // object's buffer.
  std::size_t probe_slot = 0;
  std::function<void()> probe = [&] {
    probes_sent.Increment();
    const std::size_t object = probe_slot++ % object_count;
    for (ApRuntime& ap : aps) {
      if (ap.in_transit) continue;  // Carrier is walking: radio stowed.
      if (rng_.Bernoulli(config_.frame_loss_rate)) {
        frames_lost.Increment();
        continue;
      }
      if (!ap.links[object])
        ap.links[object] =
            csi_->MakeLink(object_positions[object], ap.true_position);
      ap.buffers[object].push_back(ap.links[object]->Sample(rng_));
      frames_captured.Increment();
      if (ap.buffers[object].size() >= config_.frames_per_report)
        flush_object(ap, object);
    }
    const double next = sim.Now() + config_.probe_interval_s;
    if (next < epoch_s) sim.ScheduleAt(next, probe);
  };
  sim.ScheduleAt(0.0, probe);

  sim.Run(epoch_s);
  for (ApRuntime& ap : aps) flush(ap);

  // Server side: per object, group reports into engine observations.
  // Static APs merge all their frames; nomadic APs contribute one
  // observation per dwell.  The per-object solves are independent and the
  // engine is RNG-free, so they fan out over the engine's batch path with
  // bit-identical estimates for any solver_threads.
  std::vector<std::vector<core::ApObservation>> per_object(object_count);
  for (std::size_t object = 0; object < object_count; ++object) {
    std::map<std::pair<int, std::size_t>, core::ApObservation> grouped;
    for (CsiReport& report : reports_) {
      if (report.object_id != object) continue;
      const std::size_t dwell = report.is_nomadic ? report.dwell_index : 0;
      auto& obs = grouped[{report.ap_id, dwell}];
      obs.reported_position = report.reported_position;
      obs.is_nomadic_site = report.is_nomadic;
      obs.frames.insert(obs.frames.end(),
                        std::make_move_iterator(report.frames.begin()),
                        std::make_move_iterator(report.frames.end()));
    }
    per_object[object].reserve(grouped.size());
    for (auto& [key, obs] : grouped)
      per_object[object].push_back(std::move(obs));
  }
  std::vector<core::LocateRequest> requests(object_count);
  for (std::size_t object = 0; object < object_count; ++object)
    requests[object].observations = per_object[object];
  NOMLOC_ASSIGN_OR_RETURN(
      auto responses,
      engine_->LocateBatch(requests, config_.solver_threads));

  std::vector<core::LocationEstimate> estimates;
  estimates.reserve(object_count);
  for (core::LocateResponse& response : responses)
    estimates.push_back(std::move(response.estimate));
  return estimates;
}

}  // namespace nomloc::net
