// Minimal discrete-event simulator: a time-ordered event queue with
// deterministic FIFO tie-breaking.  Drives the NomLoc deployment model
// (net/system.h): probe transmissions, AP reports, nomadic movement.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "common/status.h"

namespace nomloc::net {

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time [s].
  double Now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `time` (>= Now()).
  void ScheduleAt(double time, Callback cb);

  /// Schedules `cb` after `delay` seconds (>= 0).
  void ScheduleAfter(double delay, Callback cb);

  /// Processes events in time order until the queue drains, `until` is
  /// reached, or Stop() is called.  Returns the number of events run.
  /// Events scheduled exactly at `until` still run.
  std::size_t Run(double until = std::numeric_limits<double>::infinity());

  /// Makes Run() return after the current event finishes.
  void Stop() noexcept { stopped_ = true; }

  std::size_t PendingEvents() const noexcept { return queue_.size(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  ///< FIFO among same-time events.
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace nomloc::net
