#include "net/trace_io.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/assert.h"
#include "common/metrics.h"
#include "common/stats.h"

namespace nomloc::net {

using common::Json;
using common::JsonArray;
using common::JsonObject;

namespace {

constexpr double kSchemaVersion = 1.0;

Json AnchorToJson(const localization::Anchor& anchor) {
  JsonObject obj;
  obj["x"] = Json(anchor.position.x);
  obj["y"] = Json(anchor.position.y);
  obj["pdp"] = Json(anchor.pdp);
  obj["nomadic"] = Json(anchor.is_nomadic_site);
  return Json(std::move(obj));
}

common::Result<localization::Anchor> AnchorFromJson(const Json& json) {
  localization::Anchor anchor;
  NOMLOC_ASSIGN_OR_RETURN(anchor.position.x, json.GetDouble("x"));
  NOMLOC_ASSIGN_OR_RETURN(anchor.position.y, json.GetDouble("y"));
  NOMLOC_ASSIGN_OR_RETURN(anchor.pdp, json.GetDouble("pdp"));
  NOMLOC_ASSIGN_OR_RETURN(anchor.is_nomadic_site, json.GetBool("nomadic"));
  // The JSON grammar cannot encode NaN/Inf, but TraceFromJson also
  // accepts hand-built DOMs — screen them like any untrusted capture.
  if (!std::isfinite(anchor.position.x) || !std::isfinite(anchor.position.y) ||
      !std::isfinite(anchor.pdp))
    return common::DataCorruption("non-finite recorded anchor value");
  if (anchor.pdp <= 0.0)
    return common::InvalidArgument("recorded PDP must be positive");
  return anchor;
}

}  // namespace

Json TraceToJson(const MeasurementTrace& trace) {
  JsonObject obj;
  obj["schema_version"] = Json(kSchemaVersion);
  obj["description"] = Json(trace.description);
  JsonArray epochs;
  for (const EpochRecord& epoch : trace.epochs) {
    JsonObject e;
    e["truth_x"] = Json(epoch.ground_truth.x);
    e["truth_y"] = Json(epoch.ground_truth.y);
    JsonArray anchors;
    for (const auto& anchor : epoch.anchors)
      anchors.push_back(AnchorToJson(anchor));
    e["anchors"] = Json(std::move(anchors));
    epochs.push_back(Json(std::move(e)));
  }
  obj["epochs"] = Json(std::move(epochs));
  return Json(std::move(obj));
}

common::Result<MeasurementTrace> TraceFromJson(const Json& json) {
  NOMLOC_ASSIGN_OR_RETURN(double version, json.GetDouble("schema_version"));
  if (version != kSchemaVersion)
    return common::InvalidArgument("unsupported trace schema version");
  MeasurementTrace trace;
  NOMLOC_ASSIGN_OR_RETURN(trace.description, json.GetString("description"));
  NOMLOC_ASSIGN_OR_RETURN(Json epochs, json.Get("epochs"));
  if (!epochs.is_array())
    return common::InvalidArgument("'epochs' must be an array");
  for (const Json& e : epochs.AsArray()) {
    EpochRecord record;
    NOMLOC_ASSIGN_OR_RETURN(record.ground_truth.x, e.GetDouble("truth_x"));
    NOMLOC_ASSIGN_OR_RETURN(record.ground_truth.y, e.GetDouble("truth_y"));
    NOMLOC_ASSIGN_OR_RETURN(Json anchors, e.Get("anchors"));
    if (!anchors.is_array())
      return common::InvalidArgument("'anchors' must be an array");
    for (const Json& a : anchors.AsArray()) {
      NOMLOC_ASSIGN_OR_RETURN(auto anchor, AnchorFromJson(a));
      record.anchors.push_back(anchor);
    }
    trace.epochs.push_back(std::move(record));
  }
  return trace;
}

common::Result<MeasurementTrace> ParseTrace(std::string_view text) {
  auto& registry = common::MetricRegistry::Global();
  static auto& parse_failures = registry.Counter("trace.parse_failures");
  auto json = Json::Parse(text);
  if (!json.ok()) {
    parse_failures.Increment();
    // Re-type the parser's error: a trace file that does not even parse
    // is corrupt capture data, not a caller mistake.  The parser's
    // message already names the byte offset ("… at offset N").
    return common::DataCorruption("corrupt trace: " +
                                  json.status().message());
  }
  auto trace = TraceFromJson(*json);
  if (!trace.ok()) parse_failures.Increment();
  return trace;
}

common::Result<MeasurementTrace> LoadTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return common::NotFound("cannot open trace file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad())
    return common::DataCorruption("I/O error reading trace file " + path);
  return ParseTrace(buffer.str());
}

common::Result<void> SaveTraceFile(const MeasurementTrace& trace,
                                   const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return common::NotFound("cannot write trace file " + path);
  out << TraceToJson(trace).DumpPretty() << "\n";
  out.flush();
  if (!out)
    return common::DataCorruption("I/O error writing trace file " + path);
  return {};
}

common::Result<ReplayResult> ReplayTrace(const MeasurementTrace& trace,
                                         const core::NomLocEngine& engine) {
  if (trace.epochs.empty())
    return common::InvalidArgument("trace has no epochs");
  ReplayResult result;
  result.errors_m.reserve(trace.epochs.size());
  for (const EpochRecord& epoch : trace.epochs) {
    NOMLOC_ASSIGN_OR_RETURN(core::LocationEstimate est,
                            engine.LocateFromAnchors(epoch.anchors));
    result.errors_m.push_back(Distance(est.position, epoch.ground_truth));
  }
  result.mean_error_m = common::Mean(result.errors_m);
  return result;
}

}  // namespace nomloc::net
