// End-to-end NomLoc deployment model over the discrete-event simulator —
// the three components of the paper's Fig. 2 as communicating nodes:
//
//   * ObjectNode   — transmits probe packets "in millisecond" cadence,
//   * ApNode       — captures one CSI frame per received probe and ships
//                    batched CsiReports to the server; nomadic APs also
//                    move between dwell sites under a mobility trace and
//                    report their (possibly erroneous) coordinates,
//   * Server       — accumulates reports for an epoch, then runs the
//                    NomLocEngine pipeline.
//
// This module is the system-level integration layer; benches that only
// need the algorithm use eval/ which samples batches directly.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "channel/csi_model.h"
#include "common/metrics.h"
#include "core/nomloc.h"
#include "mobility/trace.h"
#include "net/sim.h"

namespace nomloc::net {

/// A batch of CSI measurements one AP ships to the localization server.
struct CsiReport {
  int ap_id = 0;
  /// Which object's probes this batch was captured from.
  std::size_t object_id = 0;
  bool is_nomadic = false;
  std::size_t dwell_index = 0;          ///< Nomadic: which dwell segment.
  geometry::Vec2 reported_position;     ///< AP's self-reported coordinates.
  std::vector<dsp::CsiFrame> frames;
  double timestamp_s = 0.0;
};

struct SystemConfig {
  /// Probe transmission period [s]; the paper sends PINGs "in millisecond".
  double probe_interval_s = 1e-3;
  /// Frames an AP accumulates before shipping a report.
  std::size_t frames_per_report = 64;
  /// How long a nomadic AP dwells at each site [s].
  double dwell_duration_s = 0.25;
  /// Probability an AP fails to capture CSI for a probe (decode failure,
  /// fading outage).  Frames are simply missing from the batch.
  double frame_loss_rate = 0.0;
  /// Probability a CsiReport is lost on the backhaul to the server.
  double report_loss_rate = 0.0;
  /// Walking speed of nomadic-AP carriers [m/s].  0 = instantaneous moves
  /// (the benches' model).  When positive, each move takes the shortest
  /// walkable route (geometry/pathfinding.h) at this speed, and the AP
  /// captures no frames while in transit.
  double walking_speed_mps = 0.0;
  /// Nomadic movement model (dwell_count sets the epoch length).
  mobility::TraceConfig trace;
  channel::ChannelConfig channel;
  core::NomLocConfig engine;
  /// Worker threads for the server's per-object engine solves
  /// (NomLocEngine::LocateBatch).  Estimates are bit-identical for any
  /// value >= 1.
  std::size_t solver_threads = 1;

  /// Typed rejection of nonsense values (non-positive probe interval,
  /// frames_per_report == 0, solver_threads == 0, loss rates outside
  /// [0, 1), …).  Called by NomLocSystem::Create.
  common::Result<void> Validate() const;
};

/// Snapshot of one deployment's event counters.  The counters themselves
/// live in the system's MetricRegistry (`NomLocSystem::Metrics()`); this
/// struct is the convenience view assembled by `Stats()`.
struct SystemStats {
  std::uint64_t probes_sent = 0;
  std::uint64_t frames_captured = 0;
  std::uint64_t frames_lost = 0;
  std::uint64_t reports_received = 0;
  std::uint64_t reports_lost = 0;
  std::uint64_t nomadic_moves = 0;
};

/// One full deployment: environment + static APs + nomadic APs + object.
class NomLocSystem {
 public:
  /// `env` must outlive the system.  Each entry of `nomadic_site_sets` is
  /// the discrete site list of one nomadic AP (front() is its home site).
  static common::Result<NomLocSystem> Create(
      const channel::IndoorEnvironment& env,
      std::vector<geometry::Vec2> static_aps,
      std::vector<std::vector<geometry::Vec2>> nomadic_site_sets,
      SystemConfig config, std::uint64_t seed);

  /// Runs one measurement epoch with the object at `object_position` and
  /// returns the server's location estimate.  Each call is an independent
  /// epoch (fresh simulator time, fresh nomadic trace) but consumes the
  /// system's RNG stream, so repeated calls give independent trials.
  common::Result<core::LocationEstimate> LocalizeOnce(
      geometry::Vec2 object_position);

  /// Localizes several objects *concurrently in one epoch*: their probe
  /// streams interleave (each object probes at the configured interval,
  /// staggered by one probe slot), every AP keeps a per-object frame
  /// buffer, and the server runs the engine once per object on the shared
  /// nomadic trace.  Returns one estimate per object, in input order.
  common::Result<std::vector<core::LocationEstimate>> LocalizeConcurrent(
      std::span<const geometry::Vec2> object_positions);

  /// Reports collected during the last epoch (diagnostics).
  std::span<const CsiReport> LastReports() const noexcept { return reports_; }
  /// Snapshot of the deployment's event counters.
  SystemStats Stats() const;
  /// The system's own metric registry (counters behind Stats() plus
  /// anything future stages record); dump with Metrics().DumpText().
  common::MetricRegistry& Metrics() const noexcept { return *metrics_; }
  const core::NomLocEngine& Engine() const noexcept { return *engine_; }

 private:
  NomLocSystem(const channel::IndoorEnvironment& env,
               std::vector<geometry::Vec2> static_aps,
               std::vector<std::vector<geometry::Vec2>> nomadic_site_sets,
               SystemConfig config, std::uint64_t seed);

  const channel::IndoorEnvironment* env_;
  std::vector<geometry::Vec2> static_aps_;
  std::vector<std::vector<geometry::Vec2>> nomadic_site_sets_;
  SystemConfig config_;
  common::Rng rng_;
  std::optional<channel::CsiSimulator> csi_;
  std::optional<core::NomLocEngine> engine_;
  std::vector<CsiReport> reports_;
  /// unique_ptr keeps the system movable (the registry owns a mutex).
  std::unique_ptr<common::MetricRegistry> metrics_;
};

}  // namespace nomloc::net
