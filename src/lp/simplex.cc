#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"
#include "common/metrics.h"
#include "lp/workspace.h"
#include "simd/kernels.h"

namespace nomloc::lp {

common::Status InequalityLp::Validate() const {
  const std::size_t m = a.Rows();
  const std::size_t n = a.Cols();
  if (n == 0 || m == 0)
    return common::InvalidArgument("LP must have at least one row and column");
  if (b.size() != m) return common::InvalidArgument("b size != row count");
  if (c.size() != n) return common::InvalidArgument("c size != column count");
  if (nonneg.size() != n)
    return common::InvalidArgument("nonneg size != column count");
  for (double v : b)
    if (!std::isfinite(v)) return common::InvalidArgument("non-finite b entry");
  for (double v : c)
    if (!std::isfinite(v)) return common::InvalidArgument("non-finite c entry");
  for (std::size_t r = 0; r < m; ++r)
    for (double v : a.Row(r))
      if (!std::isfinite(v))
        return common::InvalidArgument("non-finite A entry");
  return common::Status::Ok();
}

namespace {

// Dense simplex tableau in equality form:
//   columns [structural | slack | artificial | rhs], one row per constraint.
// Storage is borrowed from the caller (the workspace) and zero-filled on
// construction, so repeated same-shape solves recycle the allocation.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols, std::vector<double>& storage)
      : rows_(rows), cols_(cols), data_(storage) {
    data_.assign(rows * cols, 0.0);
  }

  double& At(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double At(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::size_t Rows() const { return rows_; }
  std::size_t Cols() const { return cols_; }

  // Gauss-Jordan pivot on (row, col).  Row operations run through the
  // SIMD kernels: the divide keeps the historical x /= p rounding and the
  // update is axpy with an exactly negated factor.
  void Pivot(std::size_t row, std::size_t col) {
    const double p = At(row, col);
    NOMLOC_ASSERT(std::abs(p) > 0.0);
    double* pivot_row = &data_[row * cols_];
    simd::InvScale(cols_, p, pivot_row);
    At(row, col) = 1.0;  // Exactly, against round-off.
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == row) continue;
      const double f = At(r, col);
      if (f == 0.0) continue;
      simd::Axpy(cols_, -f, pivot_row, &data_[r * cols_]);
      At(r, col) = 0.0;
    }
  }

 private:
  std::size_t rows_, cols_;
  std::vector<double>& data_;
};

struct Phase {
  // Runs simplex iterations minimizing `cost` (indexed by tableau column,
  // structural+slack+artificial) until optimal/unbounded/budget-exhausted.
  // `allowed[j]` marks columns that may enter the basis.
  static common::Status Run(Tableau& t, std::vector<std::size_t>& basis,
                            const Vector& cost,
                            const std::vector<bool>& allowed, double eps,
                            std::size_t max_iters, std::size_t& iters_used) {
    const std::size_t m = t.Rows();
    const std::size_t ncols = t.Cols() - 1;  // Last column is rhs.
    const std::size_t rhs = ncols;

    for (std::size_t iter = 0; iter < max_iters; ++iter) {
      // Reduced costs: r_j = c_j - c_B · column_j.  Recomputed densely each
      // iteration — O(m·n), fine at NomLoc sizes and immune to drift.
      std::size_t entering = ncols;
      for (std::size_t j = 0; j < ncols; ++j) {
        if (!allowed[j]) continue;
        // Skip current basic columns (their reduced cost is 0 by identity).
        bool is_basic = false;
        for (std::size_t i = 0; i < m; ++i)
          if (basis[i] == j) {
            is_basic = true;
            break;
          }
        if (is_basic) continue;
        double red = cost[j];
        for (std::size_t i = 0; i < m; ++i) red -= cost[basis[i]] * t.At(i, j);
        if (red < -eps) {
          entering = j;  // Bland's rule: first (smallest-index) improving.
          break;
        }
      }
      if (entering == ncols) {
        iters_used += iter;
        return common::Status::Ok();  // Optimal.
      }

      // Ratio test (Bland tie-break on smallest basis index).
      std::size_t leaving = m;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < m; ++i) {
        const double a = t.At(i, entering);
        if (a > eps) {
          const double ratio = t.At(i, rhs) / a;
          if (ratio < best_ratio - eps ||
              (ratio < best_ratio + eps &&
               (leaving == m || basis[i] < basis[leaving]))) {
            best_ratio = ratio;
            leaving = i;
          }
        }
      }
      if (leaving == m) {
        iters_used += iter;
        return common::Unbounded("objective unbounded below");
      }
      t.Pivot(leaving, entering);
      basis[leaving] = entering;
    }
    return common::Exhausted("simplex iteration limit reached");
  }
};

}  // namespace

common::Result<LpSolution> SolveSimplex(const InequalityLp& lp,
                                        const SimplexOptions& options,
                                        SolveWorkspace* ws) {
  NOMLOC_RETURN_IF_ERROR(lp.Validate());
  static auto& ws_reused =
      common::MetricRegistry::Global().Counter("lp.workspace.reused");
  static auto& ws_fresh =
      common::MetricRegistry::Global().Counter("lp.workspace.fresh");
  (ws ? ws_reused : ws_fresh).Increment();
  SolveWorkspace local;
  SolveWorkspace& scratch = ws ? *ws : local;

  const std::size_t m = lp.a.Rows();
  const std::size_t n = lp.a.Cols();

  // Column layout after free-variable splitting:
  //   for each variable i: one column (nonneg) or two columns u_i, v_i with
  //   x_i = u_i - v_i (free).
  std::vector<std::size_t>& col_of = scratch.col_of;  // First column of var i.
  std::vector<bool>& is_split = scratch.is_split;
  col_of.assign(n, 0);
  is_split.assign(n, false);
  std::size_t n_struct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    col_of[i] = n_struct;
    is_split[i] = !lp.nonneg[i];
    n_struct += is_split[i] ? 2 : 1;
  }

  // Count artificials: one per row whose rhs is negative (after slack).
  std::size_t n_art = 0;
  for (double v : lp.b)
    if (v < 0.0) ++n_art;

  const std::size_t slack0 = n_struct;
  const std::size_t art0 = n_struct + m;
  const std::size_t ncols = n_struct + m + n_art;
  Tableau t(m, ncols + 1, scratch.tableau);
  std::vector<std::size_t>& basis = scratch.basis;
  basis.assign(m, 0);

  std::size_t art_next = art0;
  for (std::size_t r = 0; r < m; ++r) {
    const double sign = lp.b[r] < 0.0 ? -1.0 : 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double a = sign * lp.a(r, i);
      t.At(r, col_of[i]) = a;
      if (is_split[i]) t.At(r, col_of[i] + 1) = -a;
    }
    t.At(r, slack0 + r) = sign;           // Slack (negated when row flipped).
    t.At(r, ncols) = sign * lp.b[r];      // rhs >= 0 now.
    if (sign < 0.0) {
      t.At(r, art_next) = 1.0;
      basis[r] = art_next++;
    } else {
      basis[r] = slack0 + r;
    }
  }
  NOMLOC_ASSERT(art_next == art0 + n_art);

  // The cost and admissibility vectors are per-phase and strictly
  // sequential, so the two phases share one pair of scratch buffers.
  Vector& cost = scratch.cost;
  std::vector<bool>& allowed = scratch.allowed;
  std::size_t iters = 0;

  // Phase 1: minimize the sum of artificials; every column may enter.
  if (n_art > 0) {
    cost.assign(ncols, 0.0);
    for (std::size_t j = art0; j < art0 + n_art; ++j) cost[j] = 1.0;
    allowed.assign(ncols, true);
    common::Status st = Phase::Run(t, basis, cost, allowed, options.eps,
                                   options.max_iterations, iters);
    if (!st.ok()) {
      if (st.code() == common::StatusCode::kUnbounded)
        return common::Internal("phase-1 cannot be unbounded");
      return st;
    }
    double phase1_obj = 0.0;
    for (std::size_t i = 0; i < m; ++i)
      if (basis[i] >= art0) phase1_obj += t.At(i, ncols);
    if (phase1_obj > 1e-7)
      return common::Infeasible("no point satisfies all constraints");

    // Drive any degenerate basic artificials out of the basis.
    for (std::size_t i = 0; i < m; ++i) {
      if (basis[i] < art0) continue;
      std::size_t col = ncols;
      for (std::size_t j = 0; j < art0; ++j) {
        if (std::abs(t.At(i, j)) > options.eps) {
          col = j;
          break;
        }
      }
      if (col != ncols) {
        t.Pivot(i, col);
        basis[i] = col;
      }
      // Else the row is redundant; the artificial stays basic at value 0,
      // which is harmless because artificials are barred from phase 2.
    }
  }

  // Phase 2: original objective; artificial columns barred from entering.
  cost.assign(ncols, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    cost[col_of[i]] = lp.c[i];
    if (is_split[i]) cost[col_of[i] + 1] = -lp.c[i];
  }
  allowed.assign(ncols, true);
  for (std::size_t j = art0; j < art0 + n_art; ++j) allowed[j] = false;

  NOMLOC_RETURN_IF_ERROR(Phase::Run(t, basis, cost, allowed, options.eps,
                                    options.max_iterations, iters));

  // Extract the solution.
  Vector& full = scratch.extract;
  full.assign(ncols, 0.0);
  for (std::size_t i = 0; i < m; ++i) full[basis[i]] = t.At(i, ncols);

  LpSolution sol;
  sol.x.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    sol.x[i] = full[col_of[i]];
    if (is_split[i]) sol.x[i] -= full[col_of[i] + 1];
  }
  sol.objective = Dot(lp.c, sol.x);
  sol.iterations = iters;
  static auto& solves =
      common::MetricRegistry::Global().Counter("lp.solves", "backend=simplex");
  static auto& iter_hist = common::MetricRegistry::Global().Histogram(
      "lp.iterations", "backend=simplex", 1.0, 1e5, 60);
  solves.Increment();
  iter_hist.Record(double(iters));
  return sol;
}

}  // namespace nomloc::lp
