// Two-phase primal simplex for small dense LPs.
//
// Problem form:  minimize c·x  subject to  A x <= b,  with each variable
// either free or constrained non-negative.  This covers everything NomLoc
// needs: the relaxed space-partition program (paper Eq. 19) has two free
// coordinates z and N non-negative relaxation variables t.
//
// The solver converts to standard equality form (free variables split into
// positive/negative parts, slack variables added, artificial variables for
// rows with negative right-hand side) and runs a dense tableau simplex
// with Bland's rule, so it cannot cycle.  Interior-point solving of the
// *same* program lives in lp/center.h (analytic center), matching the
// paper's use of CVX.
#pragma once

#include <vector>

#include "common/status.h"
#include "lp/matrix.h"

namespace nomloc::lp {

/// minimize c·x  s.t.  A x <= b;  x_i >= 0 where nonneg[i], else free.
struct InequalityLp {
  Matrix a;                  ///< m x n constraint matrix.
  Vector b;                  ///< m right-hand sides.
  Vector c;                  ///< n objective coefficients.
  std::vector<bool> nonneg;  ///< n flags; true = variable is >= 0.

  /// Checks dimensional consistency.
  common::Status Validate() const;
};

struct LpSolution {
  Vector x;                ///< Optimal point (size n).
  double objective = 0.0;  ///< c·x at the optimum.
  std::size_t iterations = 0;
};

struct SimplexOptions {
  std::size_t max_iterations = 50'000;
  double eps = 1e-9;
};

/// Solves the LP.  Error codes: kInfeasible, kUnbounded, kExhausted
/// (iteration cap), kInvalidArgument (bad shapes).  An optional workspace
/// (lp/workspace.h) recycles the tableau and phase vectors across solves;
/// results are bit-identical either way.
common::Result<LpSolution> SolveSimplex(const InequalityLp& lp,
                                        const SimplexOptions& options = {},
                                        SolveWorkspace* ws = nullptr);

}  // namespace nomloc::lp
