#include "lp/incremental.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"
#include "common/metrics.h"
#include "simd/kernels.h"

namespace nomloc::lp {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
}  // namespace

RelaxationSolver::RelaxationSolver(const IncrementalOptions& options)
    : options_(options) {
  NOMLOC_REQUIRE(options_.eps > 0.0);
  NOMLOC_REQUIRE(options_.never_bind_rhs > 0.0);
}

void RelaxationSolver::EnsureColumns(std::size_t cols) {
  if (cols <= stride_) {
    // Zero any cells newly exposed between the old and new live widths so
    // appended columns start clean (Pivot writes full-stride rows, so
    // stale values can survive in the slack area otherwise).
    for (std::size_t r = 0; r < rhs_.size(); ++r)
      for (std::size_t c = cols_; c < cols; ++c) At(r, c) = 0.0;
    return;
  }
  // Geometric growth, re-striding existing rows in place (back to front).
  std::size_t new_stride = std::max<std::size_t>(stride_ * 2, cols);
  new_stride = std::max<std::size_t>(new_stride, 16);
  const std::size_t rows = rhs_.size();
  tab_.resize(rows * new_stride, 0.0);
  for (std::size_t r = rows; r-- > 0;) {
    double* src = tab_.data() + r * stride_;
    double* dst = tab_.data() + r * new_stride;
    for (std::size_t c = cols_; c-- > 0;) dst[c] = src[c];
    for (std::size_t c = cols_; c < new_stride; ++c) dst[c] = 0.0;
  }
  // The first row's prefix overlaps itself; zero its slack area too.
  if (rows > 0)
    for (std::size_t c = cols_; c < new_stride; ++c) tab_[c] = 0.0;
  stride_ = new_stride;
}

void RelaxationSolver::Pivot(std::size_t row, std::size_t col) {
  const double p = At(row, col);
  NOMLOC_ASSERT(std::abs(p) > 0.0);
  double* pivot_row = &tab_[row * stride_];
  simd::InvScale(cols_, p, pivot_row);
  rhs_[row] /= p;
  At(row, col) = 1.0;  // Exactly, against round-off.
  const std::size_t rows = rhs_.size();
  for (std::size_t r = 0; r < rows; ++r) {
    if (r == row) continue;
    const double f = At(r, col);
    if (f == 0.0) continue;
    simd::Axpy(cols_, -f, pivot_row, &tab_[r * stride_]);
    rhs_[r] -= f * rhs_[row];
    At(r, col) = 0.0;
  }
  const double f = red_[col];
  if (f != 0.0) simd::Axpy(cols_, -f, pivot_row, red_.data());
  red_[col] = 0.0;  // Exactly: the entering column becomes basic.
  row_of_col_[basis_[row]] = kNpos;
  basis_[row] = col;
  row_of_col_[col] = row;
}

void RelaxationSolver::RebuildReducedCosts() {
  red_ = cost_;
  const std::size_t rows = rhs_.size();
  for (std::size_t i = 0; i < rows; ++i) {
    const double c_b = cost_[basis_[i]];
    if (c_b != 0.0) simd::Axpy(cols_, -c_b, &tab_[i * stride_], red_.data());
  }
  for (std::size_t i = 0; i < rows; ++i) red_[basis_[i]] = 0.0;
}

void RelaxationSolver::AppendReducedRow(const Term& term) {
  const std::size_t row = rhs_.size();
  const std::size_t t_col = ColOfT(row);
  const std::size_t s_col = ColOfS(row);
  EnsureColumns(s_col + 1);
  cols_ = s_col + 1;
  cost_.resize(cols_, 0.0);
  cost_[t_col] = term.w;
  cost_[s_col] = 0.0;
  row_of_col_.resize(cols_, kNpos);

  tab_.resize((row + 1) * stride_, 0.0);
  double* raw = &tab_[row * stride_];
  std::fill(raw, raw + stride_, 0.0);
  raw[0] = term.ax;
  raw[1] = -term.ax;
  raw[2] = term.ay;
  raw[3] = -term.ay;
  raw[t_col] = -1.0;
  raw[s_col] = 1.0;
  double rhs = term.b;

  // Reduce against the current basis: subtract f * row_i for each basic
  // column the raw row touches.  Tableau rows carry exact unit columns on
  // the basis, so a single pass cannot reintroduce eliminated entries.
  for (std::size_t i = 0; i < row; ++i) {
    const double f = raw[basis_[i]];
    if (f == 0.0) continue;
    simd::Axpy(cols_, -f, &tab_[i * stride_], raw);
    rhs -= f * rhs_[i];
    raw[basis_[i]] = 0.0;
  }

  rhs_.push_back(rhs);
  basis_.push_back(s_col);
  row_of_col_[s_col] = row;
  // The new columns exist only in the appended row, which enters basic in
  // its (cost-0) slack: existing reduced costs are unchanged, the new t
  // column prices at its own weight, and the basic slack prices at zero.
  red_.resize(cols_, 0.0);
  red_[t_col] = term.w;
  red_[s_col] = 0.0;
}

common::Result<void> RelaxationSolver::PrimalSimplex() {
  const std::size_t rows = rhs_.size();
  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    // Bland's rule: first column with an improving reduced cost.
    std::size_t entering = cols_;
    for (std::size_t j = 0; j < cols_; ++j) {
      if (row_of_col_[j] != kNpos) continue;  // Basic: reduced cost 0.
      if (ReducedCost(j) < -options_.eps) {
        entering = j;
        break;
      }
    }
    if (entering == cols_) {
      last_iterations_ += iter;
      total_iterations_ += iter;
      return {};  // Optimal.
    }
    // Ratio test (Bland tie-break on smallest basis column).
    std::size_t leaving = rows;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < rows; ++i) {
      const double a = At(i, entering);
      if (a > options_.eps) {
        const double ratio = rhs_[i] / a;
        if (ratio < best_ratio - options_.eps ||
            (ratio < best_ratio + options_.eps &&
             (leaving == rows || basis_[i] < basis_[leaving]))) {
          best_ratio = ratio;
          leaving = i;
        }
      }
    }
    if (leaving == rows)
      return common::Unbounded(
          "relaxation program unbounded (missing boundary rows?)");
    Pivot(leaving, entering);
  }
  return common::Exhausted("incremental primal simplex iteration limit");
}

common::Result<void> RelaxationSolver::DualSimplex() {
  const std::size_t rows = rhs_.size();
  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    // Leaving row: Bland-style — smallest basis column among primal-
    // infeasible rows.  Slower than Dantzig's most-negative rule but
    // cycle-free, and these programs are tens of rows.
    std::size_t leaving = rows;
    for (std::size_t i = 0; i < rows; ++i) {
      if (rhs_[i] >= -options_.eps) continue;
      if (leaving == rows || basis_[i] < basis_[leaving]) leaving = i;
    }
    if (leaving == rows) {
      last_iterations_ += iter;
      total_iterations_ += iter;
      return {};  // Primal feasible (and still dual feasible): optimal.
    }
    // Entering column: dual ratio test over columns with a negative entry
    // in the leaving row; smallest reduced-cost ratio, Bland tie-break.
    std::size_t entering = cols_;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < cols_; ++j) {
      if (row_of_col_[j] != kNpos) continue;
      const double a = At(leaving, j);
      if (a < -options_.eps) {
        const double ratio = std::max(0.0, ReducedCost(j)) / (-a);
        if (ratio < best_ratio - options_.eps ||
            (ratio < best_ratio + options_.eps && j < entering)) {
          best_ratio = ratio;
          entering = j;
        }
      }
    }
    if (entering == cols_)
      return common::Infeasible(
          "dual simplex found no entering column (t rows should make the "
          "program feasible)");
    Pivot(leaving, entering);
  }
  return common::Exhausted("incremental dual simplex iteration limit");
}

void RelaxationSolver::ExtractSolution() {
  const std::size_t rows = rhs_.size();
  t_.assign(rows, 0.0);
  double zxp = 0.0, zxn = 0.0, zyp = 0.0, zyn = 0.0;
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t col = basis_[i];
    const double v = rhs_[i];
    if (col == 0) zxp = v;
    else if (col == 1) zxn = v;
    else if (col == 2) zyp = v;
    else if (col == 3) zyn = v;
    else if ((col - kZCols) % 2 == 0) t_[(col - kZCols) / 2] = v;
  }
  zx_ = zxp - zxn;
  zy_ = zyp - zyn;
  solved_ = true;
}

common::Result<void> RelaxationSolver::Reset(std::span<const Term> terms,
                                             double origin_x,
                                             double origin_y) {
  if (!std::isfinite(origin_x) || !std::isfinite(origin_y))
    return common::InvalidArgument("non-finite origin hint");
  for (const Term& term : terms) {
    if (!std::isfinite(term.ax) || !std::isfinite(term.ay) ||
        !std::isfinite(term.b) || !std::isfinite(term.w))
      return common::InvalidArgument("non-finite relaxation term");
    if (term.w < 0.0)
      return common::InvalidArgument("relaxation weight must be >= 0");
  }
  origin_x_ = origin_x;
  origin_y_ = origin_y;
  terms_.assign(terms.begin(), terms.end());
  // Shift rhs into origin-centered coordinates: b' = b - a . origin.
  for (Term& term : terms_)
    term.b -= term.ax * origin_x_ + term.ay * origin_y_;
  row_active_.assign(terms.size(), true);
  active_rows_ = terms.size();
  // Drop old rows before EnsureColumns so re-striding has nothing to copy.
  tab_.clear();
  rhs_.clear();
  cols_ = kZCols + 2 * terms.size();
  EnsureColumns(cols_);
  tab_.assign(terms.size() * stride_, 0.0);
  rhs_.assign(terms.size(), 0.0);
  cost_.assign(cols_, 0.0);
  basis_.assign(terms.size(), 0);
  row_of_col_.assign(cols_, kNpos);
  solved_ = false;
  last_iterations_ = 0;
  total_iterations_ = 0;

  // Primal-feasible start without artificials: rows with b >= 0 take their
  // slack basic; rows with b < 0 are negated so their t is basic at -b.
  for (std::size_t r = 0; r < terms_.size(); ++r) {
    const Term& term = terms_[r];
    const double sign = term.b < 0.0 ? -1.0 : 1.0;
    At(r, 0) = sign * term.ax;
    At(r, 1) = -sign * term.ax;
    At(r, 2) = sign * term.ay;
    At(r, 3) = -sign * term.ay;
    At(r, ColOfT(r)) = -sign;
    At(r, ColOfS(r)) = sign;
    rhs_[r] = sign * term.b;
    cost_[ColOfT(r)] = term.w;
    basis_[r] = sign < 0.0 ? ColOfT(r) : ColOfS(r);
    row_of_col_[basis_[r]] = r;
  }
  RebuildReducedCosts();
  NOMLOC_RETURN_IF_ERROR(PrimalSimplex().status());
  ExtractSolution();
  static auto& cold = common::MetricRegistry::Global().Counter(
      "lp.incremental.reset");
  cold.Increment();
  return {};
}

common::Result<void> RelaxationSolver::AddTerms(std::span<const Term> terms) {
  if (!solved_) return Reset(terms);
  for (const Term& term : terms) {
    if (!std::isfinite(term.ax) || !std::isfinite(term.ay) ||
        !std::isfinite(term.b) || !std::isfinite(term.w))
      return common::InvalidArgument("non-finite relaxation term");
    if (term.w < 0.0)
      return common::InvalidArgument("relaxation weight must be >= 0");
  }
  last_iterations_ = 0;
  for (Term term : terms) {
    term.b -= term.ax * origin_x_ + term.ay * origin_y_;  // Same shift.
    AppendReducedRow(term);
    terms_.push_back(term);
    row_active_.push_back(true);
    ++active_rows_;
  }
  solved_ = false;
  NOMLOC_RETURN_IF_ERROR(DualSimplex().status());
  ExtractSolution();
  static auto& adds = common::MetricRegistry::Global().Counter(
      "lp.incremental.add_rows");
  adds.Increment(terms.size());
  return {};
}

common::Result<void> RelaxationSolver::Deactivate(
    std::span<const std::size_t> rows) {
  if (!solved_)
    return common::FailedPrecondition(
        "Deactivate requires a solved program (Reset first)");
  last_iterations_ = 0;
  bool changed = false;
  for (std::size_t row : rows) {
    if (row >= terms_.size())
      return common::InvalidArgument("Deactivate: row id out of range");
    if (!row_active_[row]) continue;
    row_active_[row] = false;
    --active_rows_;
    changed = true;
    // rhs update: b_row -> never_bind_rhs is a rank-one change along the
    // tableau column of the row's slack (B^-1 e_row).
    const double delta = options_.never_bind_rhs - terms_[row].b;
    NOMLOC_ASSERT(delta > 0.0);
    const std::size_t s_col = ColOfS(row);
    const std::size_t m = rhs_.size();
    for (std::size_t i = 0; i < m; ++i) {
      const double a = At(i, s_col);
      if (a != 0.0) rhs_[i] += delta * a;
    }
    terms_[row].b = options_.never_bind_rhs;
  }
  if (!changed) return {};
  solved_ = false;
  NOMLOC_RETURN_IF_ERROR(DualSimplex().status());
  ExtractSolution();
  static auto& drops = common::MetricRegistry::Global().Counter(
      "lp.incremental.deactivated");
  drops.Increment(rows.size());
  return {};
}

double RelaxationSolver::Zx() const noexcept { return origin_x_ + zx_; }
double RelaxationSolver::Zy() const noexcept { return origin_y_ + zy_; }

double RelaxationSolver::RelaxationOf(std::size_t row) const noexcept {
  if (row >= t_.size() || !row_active_[row]) return 0.0;
  return std::max(0.0, t_[row]);
}

double RelaxationSolver::Objective() const noexcept {
  double total = 0.0;
  for (std::size_t r = 0; r < terms_.size(); ++r)
    if (row_active_[r]) total += terms_[r].w * std::max(0.0, t_[r]);
  return total;
}

}  // namespace nomloc::lp
