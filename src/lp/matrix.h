// Dense linear algebra: just enough for small LPs and Newton steps.
// Row-major storage, bounds-checked element access.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.h"

namespace nomloc::lp {

using Vector = std::vector<double>;

struct SolveWorkspace;  // lp/workspace.h

class Matrix {
 public:
  Matrix() = default;
  /// Zero-initialised rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols);
  /// From row-major data; data.size() must equal rows*cols.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  static Matrix Identity(std::size_t n);

  std::size_t Rows() const noexcept { return rows_; }
  std::size_t Cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Row r as a span.
  std::span<const double> Row(std::size_t r) const;
  std::span<double> Row(std::size_t r);

  /// Reshapes to rows x cols and zero-fills, reusing existing storage.
  void Assign(std::size_t rows, std::size_t cols);

  Matrix Transposed() const;
  /// Matrix-vector product; x.size() must equal Cols().
  Vector MatVec(std::span<const double> x) const;
  /// MatVec into a caller-owned buffer (resized); no allocation when `y`
  /// already has capacity.  Bit-identical to MatVec.
  void MatVecInto(std::span<const double> x, Vector& y) const;
  /// A^T y; y.size() must equal Rows().
  Vector TransposedMatVec(std::span<const double> y) const;
  /// TransposedMatVec into a caller-owned buffer (resized).
  void TransposedMatVecInto(std::span<const double> y, Vector& x) const;
  /// Matrix-matrix product; other.Rows() must equal Cols().
  Matrix MatMul(const Matrix& other) const;

  /// Appends a row (size must equal Cols(), or sets Cols() when empty).
  void AppendRow(std::span<const double> row);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by LU decomposition with partial pivoting.
/// Fails with kNumericalError when A is (near-)singular.  An optional
/// workspace (lp/workspace.h) supplies the factorization scratch so
/// repeated same-shape solves allocate nothing in steady state.
common::Result<Vector> SolveLinear(const Matrix& a, const Vector& b,
                                   SolveWorkspace* ws = nullptr);

/// Destructive core of SolveLinear: factorizes `a` in place, pivots `b`
/// along with it, and writes the solution into `x` (resized).  Exactly the
/// arithmetic of SolveLinear — callers that already own a scratch copy of
/// A (e.g. the interior-point normal matrix, rebuilt every iteration) can
/// skip SolveLinear's defensive copy.
common::Status SolveLinearInPlace(Matrix& a, Vector& b, Vector& x);

/// Euclidean norm.
double Norm2(std::span<const double> x) noexcept;
/// Dot product; spans must have equal size.
double Dot(std::span<const double> a, std::span<const double> b);

}  // namespace nomloc::lp
