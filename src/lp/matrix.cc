#include "lp/matrix.h"

#include <cmath>

#include "common/assert.h"
#include "lp/workspace.h"
#include "simd/kernels.h"

namespace nomloc::lp {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  NOMLOC_REQUIRE(data_.size() == rows_ * cols_);
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  NOMLOC_REQUIRE(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  NOMLOC_REQUIRE(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::span<const double> Matrix::Row(std::size_t r) const {
  NOMLOC_REQUIRE(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<double> Matrix::Row(std::size_t r) {
  NOMLOC_REQUIRE(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

void Matrix::Assign(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Vector Matrix::MatVec(std::span<const double> x) const {
  Vector y;
  MatVecInto(x, y);
  return y;
}

void Matrix::MatVecInto(std::span<const double> x, Vector& y) const {
  NOMLOC_REQUIRE(x.size() == cols_);
  NOMLOC_REQUIRE(x.data() != y.data());
  y.assign(rows_, 0.0);
  simd::MatVec(data_.data(), rows_, cols_, x.data(), y.data());
}

Vector Matrix::TransposedMatVec(std::span<const double> y) const {
  Vector x;
  TransposedMatVecInto(y, x);
  return x;
}

void Matrix::TransposedMatVecInto(std::span<const double> y, Vector& x) const {
  NOMLOC_REQUIRE(y.size() == rows_);
  NOMLOC_REQUIRE(y.data() != x.data());
  x.assign(cols_, 0.0);
  simd::TMatVec(data_.data(), rows_, cols_, y.data(), x.data());
}

Matrix Matrix::MatMul(const Matrix& other) const {
  NOMLOC_REQUIRE(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      simd::Axpy(other.cols_, aik, other.data_.data() + k * other.cols_,
                 out.data_.data() + i * other.cols_);
    }
  return out;
}

void Matrix::AppendRow(std::span<const double> row) {
  if (rows_ == 0 && cols_ == 0) cols_ = row.size();
  NOMLOC_REQUIRE(row.size() == cols_);
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

common::Result<Vector> SolveLinear(const Matrix& a, const Vector& b,
                                   SolveWorkspace* ws) {
  SolveWorkspace local;
  SolveWorkspace& w = ws ? *ws : local;
  w.lu = a;      // Copy-assign reuses capacity on repeated shapes.
  w.lu_rhs = b;
  NOMLOC_RETURN_IF_ERROR(SolveLinearInPlace(w.lu, w.lu_rhs, w.lu_x));
  return w.lu_x;
}

common::Status SolveLinearInPlace(Matrix& a, Vector& b, Vector& x) {
  const std::size_t n = a.Rows();
  if (a.Cols() != n)
    return common::InvalidArgument("SolveLinear needs a square matrix");
  if (b.size() != n)
    return common::InvalidArgument("rhs size mismatch");

  // LU with partial pivoting, in place.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-13)
      return common::NumericalError("matrix is singular to working precision");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) / a(col, col);
      if (f == 0.0) continue;
      a(r, col) = 0.0;
      // a(r, c) += (-f) * a(col, c) is bit-identical to -= f * a(col, c):
      // the sign flip is exact.
      if (col + 1 < n)
        simd::Axpy(n - col - 1, -f, &a(col, col + 1), &a(r, col + 1));
      b[r] -= f * b[col];
    }
  }

  x.assign(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a(i, c) * x[c];
    x[i] = acc / a(i, i);
  }
  return common::Status::Ok();
}

double Norm2(std::span<const double> x) noexcept {
  return std::sqrt(simd::Dot(x.data(), x.data(), x.size()));
}

double Dot(std::span<const double> a, std::span<const double> b) {
  NOMLOC_REQUIRE(a.size() == b.size());
  return simd::Dot(a.data(), b.data(), a.size());
}

}  // namespace nomloc::lp
