// Centers of a convex polyhedron {z : a_i·z <= c_i} in the plane.
//
// The paper's implementation solves the space-partition program with CVX,
// whose interior-point method "returns the center of the feasible region
// by using logarithmic barrier functions" — that point is the analytic
// center.  We provide that, plus the Chebyshev center (deepest point, via
// one LP) and the polygon centroid (in geometry/), so the choice can be
// ablated (bench/abl_center_method).
#pragma once

#include <span>

#include "common/status.h"
#include "geometry/halfplane.h"
#include "geometry/vec2.h"

namespace nomloc::lp {

struct ChebyshevResult {
  geometry::Vec2 center;
  double radius = 0.0;  ///< Distance from center to the nearest facet.
};

/// Chebyshev center: the point maximising the distance to the closest
/// constraint boundary.  Solved as the LP
///   max r  s.t.  a_i·z + |a_i| r <= c_i,  r >= 0.
/// Fails with kInfeasible when the region is empty and kUnbounded when it
/// has unbounded inradius (callers should include boundary constraints).
common::Result<ChebyshevResult> ChebyshevCenter(
    std::span<const geometry::HalfPlane> half_planes);

struct AnalyticCenterOptions {
  std::size_t max_newton_steps = 100;
  double tolerance = 1e-12;  ///< Newton decrement^2 / 2 stopping threshold.
};

/// Analytic center: argmin of the log-barrier -sum_i log(c_i - a_i·z),
/// computed by damped Newton from a strictly interior start (typically the
/// Chebyshev center).  Fails with kFailedPrecondition when `start` is not
/// strictly interior and kNumericalError when Newton degenerates.
common::Result<geometry::Vec2> AnalyticCenter(
    std::span<const geometry::HalfPlane> half_planes, geometry::Vec2 start,
    const AnalyticCenterOptions& options = {});

}  // namespace nomloc::lp
