#include "lp/interior_point.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/metrics.h"
#include "lp/workspace.h"
#include "simd/kernels.h"

namespace nomloc::lp {

common::Result<InteriorPointSolution> SolveInteriorPoint(
    const InequalityLp& lp, const InteriorPointOptions& options,
    SolveWorkspace* ws) {
  NOMLOC_RETURN_IF_ERROR(lp.Validate());
  NOMLOC_REQUIRE(options.sigma > 0.0 && options.sigma < 1.0);
  NOMLOC_REQUIRE(options.step_fraction > 0.0 && options.step_fraction < 1.0);
  static auto& ws_reused =
      common::MetricRegistry::Global().Counter("lp.workspace.reused");
  static auto& ws_fresh =
      common::MetricRegistry::Global().Counter("lp.workspace.fresh");
  (ws ? ws_reused : ws_fresh).Increment();
  SolveWorkspace local;
  SolveWorkspace& scratch = ws ? *ws : local;

  const std::size_t n = lp.a.Cols();

  // Fold x_i >= 0 flags in as -x_i <= 0 rows.
  std::size_t extra = 0;
  for (bool flag : lp.nonneg)
    if (flag) ++extra;
  const std::size_t m = lp.a.Rows() + extra;

  Matrix& a = scratch.fold_a;
  a.Assign(m, n);
  Vector& b = scratch.fold_b;
  b.assign(m, 0.0);
  for (std::size_t r = 0; r < lp.a.Rows(); ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = lp.a(r, c);
    b[r] = lp.b[r];
  }
  {
    std::size_t r = lp.a.Rows();
    for (std::size_t i = 0; i < n; ++i) {
      if (lp.nonneg[i]) {
        a(r, i) = -1.0;
        b[r] = 0.0;
        ++r;
      }
    }
  }

  // Infeasible start: x = 0 (or the retained warm point), s/y positive.
  Vector& x = scratch.ipm_x;
  x.assign(n, 0.0);
  const bool warm = options.warm_start && ws != nullptr &&
                    scratch.has_warm_start && !scratch.warm_x.empty();
  if (warm) {
    const std::size_t k = std::min(n, scratch.warm_x.size());
    for (std::size_t j = 0; j < k; ++j)
      if (std::isfinite(scratch.warm_x[j])) x[j] = scratch.warm_x[j];
    static auto& warm_hits =
        common::MetricRegistry::Global().Counter("lp.ipm.warm_starts");
    warm_hits.Increment();
  }
  Vector& s = scratch.ipm_s;
  s.assign(m, 0.0);
  Vector& y = scratch.ipm_y;
  y.assign(m, 1.0);
  Vector& ax = scratch.ax;
  {
    a.MatVecInto(x, ax);
    for (std::size_t i = 0; i < m; ++i)
      s[i] = std::max(1.0, b[i] - ax[i] + 1.0);
  }

  InteriorPointSolution out;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Residuals.
    a.MatVecInto(x, ax);
    Vector& rp = scratch.rp;  // A x + s - b.
    rp.assign(m, 0.0);
    for (std::size_t i = 0; i < m; ++i) rp[i] = ax[i] + s[i] - b[i];
    Vector& rd = scratch.rd;  // c + A^T y.
    a.TransposedMatVecInto(y, rd);
    for (std::size_t j = 0; j < n; ++j) rd[j] += lp.c[j];

    double mu = simd::Dot(s.data(), y.data(), m);
    mu /= double(m);

    const double rp_norm = Norm2(rp);
    const double rd_norm = Norm2(rd);
    if (mu < options.tolerance && rp_norm < options.tolerance &&
        rd_norm < options.tolerance) {
      out.x = x;
      out.objective = Dot(lp.c, x);
      out.iterations = iter;
      out.duality_gap = mu;
      static auto& solves =
          common::MetricRegistry::Global().Counter("lp.solves", "backend=ipm");
      static auto& iter_hist = common::MetricRegistry::Global().Histogram(
          "lp.iterations", "backend=ipm", 1.0, 1e5, 60);
      solves.Increment();
      iter_hist.Record(double(iter));
      if (options.warm_start && ws != nullptr) {
        ws->warm_x = x;
        ws->has_warm_start = true;
      }
      return out;
    }

    // Normal equations: (A^T D A) dx = -rd - A^T [ D rp + (sigma mu e - S Y e)/s ].
    const double target = options.sigma * mu;
    Vector& w = scratch.w;  // The bracketed per-row term, scaled by y/s later.
    w.assign(m, 0.0);
    for (std::size_t i = 0; i < m; ++i)
      w[i] = (y[i] / s[i]) * rp[i] + (target - y[i] * s[i]) / s[i];

    Matrix& normal = scratch.normal;
    normal.Assign(n, n);
    for (std::size_t i = 0; i < m; ++i) {
      const double d = y[i] / s[i];
      const auto row = a.Row(i);
      for (std::size_t p = 0; p < n; ++p) {
        if (row[p] == 0.0) continue;
        simd::Axpy(n, d * row[p], row.data(), &normal(p, 0));
      }
    }
    Vector& rhs = scratch.rhs;
    rhs.assign(n, 0.0);
    for (std::size_t i = 0; i < m; ++i)
      simd::Axpy(n, -w[i], a.Row(i).data(), rhs.data());
    for (std::size_t p = 0; p < n; ++p) rhs[p] -= rd[p];

    // The normal matrix is rebuilt next iteration anyway, so factor it in
    // place — no defensive copy.
    Vector& dx = scratch.dx;
    const common::Status solve_status = SolveLinearInPlace(normal, rhs, dx);
    if (!solve_status.ok()) {
      // Infeasible problems drive the duals to infinity until the normal
      // matrix degenerates — classify before surfacing a numeric error.
      double max_violation = 0.0;
      for (std::size_t i = 0; i < m; ++i)
        max_violation = std::max(max_violation, rp[i] - s[i]);
      if (max_violation > 1e-4)
        return common::Infeasible(
            "interior point diverged with persistent primal infeasibility");
      return common::NumericalError("interior-point normal equations: " +
                                    solve_status.message());
    }

    Vector& adx = scratch.adx;
    a.MatVecInto(dx, adx);
    Vector& dy = scratch.dy;
    Vector& ds = scratch.ds;
    dy.assign(m, 0.0);
    ds.assign(m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      dy[i] = (y[i] / s[i]) * (adx[i] + rp[i]) +
              (target - y[i] * s[i]) / s[i];
      ds[i] = (target - y[i] * s[i] - s[i] * dy[i]) / y[i];
    }

    // Step lengths keeping s, y strictly positive.
    double alpha_p = 1.0, alpha_d = 1.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (ds[i] < 0.0) alpha_p = std::min(alpha_p, -s[i] / ds[i]);
      if (dy[i] < 0.0) alpha_d = std::min(alpha_d, -y[i] / dy[i]);
    }
    alpha_p = std::min(1.0, options.step_fraction * alpha_p);
    alpha_d = std::min(1.0, options.step_fraction * alpha_d);

    simd::Axpy(n, alpha_p, dx.data(), x.data());
    simd::Axpy(m, alpha_p, ds.data(), s.data());
    simd::Axpy(m, alpha_d, dy.data(), y.data());

    // Divergence heuristics.
    if (!std::isfinite(Dot(lp.c, x)))
      return common::NumericalError("interior-point iterate diverged");
  }

  // Did not converge: classify.
  a.MatVecInto(x, ax);
  double max_violation = 0.0;
  for (std::size_t i = 0; i < m; ++i)
    max_violation = std::max(max_violation, ax[i] - b[i]);
  if (max_violation > 1e-4)
    return common::Infeasible(
        "interior point could not reach primal feasibility");
  return common::Exhausted("interior point iteration limit reached");
}

}  // namespace nomloc::lp
