#include "lp/center.h"

#include <cmath>

#include "common/assert.h"
#include "lp/simplex.h"

namespace nomloc::lp {

using geometry::HalfPlane;
using geometry::Vec2;

common::Result<ChebyshevResult> ChebyshevCenter(
    std::span<const HalfPlane> half_planes) {
  NOMLOC_REQUIRE(!half_planes.empty());

  // Variables: [zx, zy, r]; minimize -r.
  InequalityLp lp;
  lp.a = Matrix(half_planes.size(), 3);
  lp.b.resize(half_planes.size());
  for (std::size_t i = 0; i < half_planes.size(); ++i) {
    const HalfPlane& hp = half_planes[i];
    const double norm = hp.a.Norm();
    if (norm <= 0.0)
      return common::InvalidArgument("half-plane with zero normal");
    lp.a(i, 0) = hp.a.x;
    lp.a(i, 1) = hp.a.y;
    lp.a(i, 2) = norm;
    lp.b[i] = hp.c;
  }
  lp.c = {0.0, 0.0, -1.0};
  lp.nonneg = {false, false, true};

  NOMLOC_ASSIGN_OR_RETURN(LpSolution sol, SolveSimplex(lp));
  ChebyshevResult out;
  out.center = {sol.x[0], sol.x[1]};
  out.radius = sol.x[2];
  return out;
}

common::Result<Vec2> AnalyticCenter(std::span<const HalfPlane> half_planes,
                                    Vec2 start,
                                    const AnalyticCenterOptions& options) {
  NOMLOC_REQUIRE(!half_planes.empty());

  auto slacks_ok = [&](Vec2 z) {
    for (const HalfPlane& hp : half_planes)
      if (hp.Slack(z) <= 0.0) return false;
    return true;
  };
  if (!slacks_ok(start))
    return common::FailedPrecondition(
        "analytic center start point is not strictly interior");

  Vec2 z = start;
  for (std::size_t step = 0; step < options.max_newton_steps; ++step) {
    // Gradient and Hessian of the barrier phi(z) = -sum log(c_i - a_i·z).
    double gx = 0.0, gy = 0.0;
    double hxx = 0.0, hxy = 0.0, hyy = 0.0;
    for (const HalfPlane& hp : half_planes) {
      const double s = hp.Slack(z);
      NOMLOC_ASSERT(s > 0.0);
      const double inv = 1.0 / s;
      gx += hp.a.x * inv;
      gy += hp.a.y * inv;
      const double inv2 = inv * inv;
      hxx += hp.a.x * hp.a.x * inv2;
      hxy += hp.a.x * hp.a.y * inv2;
      hyy += hp.a.y * hp.a.y * inv2;
    }
    const double det = hxx * hyy - hxy * hxy;
    if (!(std::abs(det) > 1e-18))
      return common::NumericalError("barrier Hessian is singular");
    // Newton step: dz = -H^{-1} g.
    const double dx = -(hyy * gx - hxy * gy) / det;
    const double dy = -(-hxy * gx + hxx * gy) / det;
    const double decrement = -(gx * dx + gy * dy);  // lambda^2 = g·H^{-1}g.
    if (decrement / 2.0 <= options.tolerance) return z;

    // Backtracking line search keeping z strictly interior.
    double t = 1.0;
    const Vec2 dir{dx, dy};
    while (t > 1e-12 && !slacks_ok(z + dir * t)) t *= 0.5;
    if (t <= 1e-12)
      return common::NumericalError("line search stalled at boundary");
    z += dir * t;
  }
  return common::Exhausted("analytic center Newton did not converge");
}

}  // namespace nomloc::lp
