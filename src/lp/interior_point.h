// Primal-dual path-following interior-point solver for the same
// inequality-form LP as lp/simplex.h.
//
// The paper solves its space-partition program with CVX, "based on the
// interior-point method … solved within weakly polynomial time" (§IV-B4).
// This is that method: an infeasible-start primal-dual path follower on
//
//    min c·x   s.t.  A x + s = b,  s >= 0,
//
// with dual multipliers y >= 0 and complementarity y_i s_i -> 0 along the
// central path.  Each iteration solves the (n x n) normal equations
// (A^T D A) dx = rhs with D = diag(y/s).  Non-negative variables are
// folded in as extra -x_i <= 0 rows, so the interface matches SolveSimplex
// exactly and the two can be cross-checked (see tests and
// bench/abl_lp_scaling).
#pragma once

#include "common/status.h"
#include "lp/simplex.h"

namespace nomloc::lp {

struct InteriorPointOptions {
  std::size_t max_iterations = 200;
  /// Convergence: duality measure mu and residual norms below this.
  double tolerance = 1e-9;
  /// Centering parameter sigma in (0, 1).
  double sigma = 0.1;
  /// Fraction of the max step to the boundary taken each iteration.
  double step_fraction = 0.95;
  /// Opt-in warm start: seed the primal iterate from the workspace's
  /// retained `warm_x` (prefix-matched when the variable count changed)
  /// and store the converged point back.  Requires a workspace; default
  /// off keeps plain solves bit-identical.  Slacks/duals are re-derived,
  /// so a stale start degrades to extra iterations, never to a wrong
  /// answer.
  bool warm_start = false;
};

struct InteriorPointSolution {
  Vector x;
  double objective = 0.0;
  std::size_t iterations = 0;
  /// Final duality measure (s·y / m) — a certificate of optimality.
  double duality_gap = 0.0;
};

/// Solves the LP.  Error codes: kInfeasible (primal residual cannot be
/// driven to zero), kExhausted (iteration cap), kNumericalError (normal
/// equations singular), kInvalidArgument (bad shapes).  Unbounded
/// problems typically surface as kExhausted with a diverging objective.
/// An optional workspace (lp/workspace.h) recycles the folded problem,
/// normal matrix, and iterate vectors; results are bit-identical.
common::Result<InteriorPointSolution> SolveInteriorPoint(
    const InequalityLp& lp, const InteriorPointOptions& options = {},
    SolveWorkspace* ws = nullptr);

}  // namespace nomloc::lp
