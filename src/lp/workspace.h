// Reusable solver scratch.  The SP localizer solves one small LP per area
// part per fix; without reuse every solve allocates a fresh tableau,
// normal-equation matrix, and half a dozen iterate vectors.  A
// SolveWorkspace owns all of that scratch: pass the same instance to
// repeated SolveSimplex / SolveInteriorPoint / SolveLinear calls and the
// buffers are recycled (std::vector::assign reuses capacity), so repeated
// solves of same-shaped programs allocate nothing in steady state.
//
// Results are bit-identical with and without a workspace — the buffers are
// fully overwritten before use; only where the memory comes from changes.
//
// Not thread-safe: use one workspace per thread (they are cheap when
// empty).  Metrics (common/metrics.h): lp.workspace.{reused,fresh} count
// solves that did / did not receive a workspace.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/matrix.h"

namespace nomloc::lp {

struct SolveWorkspace {
  // SolveLinear: factorization copy, pivoted rhs, solution.
  Matrix lu;
  Vector lu_rhs;
  Vector lu_x;

  // SolveSimplex: dense tableau storage and per-phase vectors.
  std::vector<double> tableau;
  std::vector<std::size_t> basis;
  Vector cost;
  std::vector<bool> allowed;
  Vector extract;
  std::vector<std::size_t> col_of;
  std::vector<bool> is_split;

  // SolveInteriorPoint: folded problem, iterates, and Newton scratch.
  Matrix fold_a;
  Matrix normal;
  Vector fold_b, ipm_x, ipm_s, ipm_y;
  Vector ax, rp, rd, w, rhs, dx, adx, dy, ds;

  // SolveInteriorPoint warm start.  Unlike the scratch above, this is
  // *state*, not scratch: the converged primal point of the last solve,
  // kept across calls.  Only consulted when
  // InteriorPointOptions::warm_start is set (default off, so plain solves
  // stay bit-identical); session solvers opt in because consecutive SP
  // programs differ by a few constraints and the old optimum is an
  // excellent start.
  Vector warm_x;
  bool has_warm_start = false;
};

}  // namespace nomloc::lp
