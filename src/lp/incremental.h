// Incremental simplex for the SP relaxation program (paper Eq. 19).
//
// The streaming serving layer re-solves one small LP per session update,
// but consecutive programs differ by only a handful of rows: a nomadic-AP
// judgement *adds* a few half-plane constraints and time-decay *retires*
// a few old ones.  SolveSimplex/SolveInteriorPoint rebuild and re-solve
// from scratch each time; this solver keeps the optimal basis (and the
// full reduced tableau) alive across updates and re-optimizes with dual
// simplex pivots instead:
//
//   AddTerms    — new rows enter with their slack basic, which preserves
//                 dual feasibility exactly; primal feasibility is restored
//                 by dual-simplex pivots from the retained basis.
//   Deactivate  — a retired constraint is not deleted (row deletion would
//                 invalidate the basis factorization); its right-hand side
//                 is pushed to a never-binding bound, which is a pure rhs
//                 update (rhs += delta * tableau-column of the row's
//                 slack), again re-optimized by dual simplex.  Callers
//                 compact (Reset) once deactivated rows pile up.
//
// The program structure makes this clean: variables are [zx, zy, t_0 ..],
// each row r reads  a_r·z - t_r <= b_r  with relaxation weight w_r >= 0.
// Splitting the free z into positive parts and choosing t_r basic for
// rows with negative rhs gives a primal-feasible start with NO artificial
// variables (z = 0, t_r = max(0, -b_r) is always feasible), so Reset is a
// single-phase primal simplex.
//
// Determinism: Bland-style smallest-index rules everywhere, so a given
// operation sequence always reproduces the same pivots.  Not thread-safe;
// one instance per (session, area part).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.h"

namespace nomloc::lp {

struct IncrementalOptions {
  /// Pivot budget per operation (Reset / AddTerms / Deactivate).
  std::size_t max_iterations = 50'000;
  double eps = 1e-9;
  /// Right-hand side a deactivated row is relaxed to.  Must dominate every
  /// |a_r·z| the program can reach so the row can never bind again.
  double never_bind_rhs = 1e6;
};

/// Incremental dual-simplex solver for  minimize sum_r w_r t_r  subject to
/// a_r·z - t_r <= b_r, t_r >= 0, z in R^2.  See file comment.
class RelaxationSolver {
 public:
  /// One constraint row:  ax*zx + ay*zy - t <= b, relaxation weight w.
  struct Term {
    double ax = 0.0;
    double ay = 0.0;
    double b = 0.0;
    double w = 1.0;
  };

  explicit RelaxationSolver(const IncrementalOptions& options = {});

  /// Discards all state and solves the program over `terms` from scratch
  /// (single-phase primal simplex).  Row ids are 0 .. terms.size()-1.
  /// (origin_x, origin_y) shifts the solve into coordinates centered on a
  /// hint point: rows satisfied at the hint start with nonnegative rhs and
  /// keep their slack basic, so pivot count tracks the number of rows the
  /// hint VIOLATES, not the row total.  Pass the previous optimum (or any
  /// interior point) to make a re-factorization effectively warm; the
  /// reported Zx()/Zy() are in original coordinates either way.
  /// Errors: kExhausted (pivot budget), kInvalidArgument (non-finite or
  /// negative-weight terms).
  common::Result<void> Reset(std::span<const Term> terms,
                             double origin_x = 0.0, double origin_y = 0.0);

  /// Appends rows (ids continue from Rows()) and re-optimizes with dual
  /// simplex from the current basis.  Requires a prior successful Reset
  /// (or an empty solver, in which case this behaves like Reset).
  common::Result<void> AddTerms(std::span<const Term> terms);

  /// Deactivates rows by id: each row's rhs is pushed to the never-binding
  /// bound and the program is re-optimized with dual simplex.  Deactivated
  /// rows report RelaxationOf() == 0 and no longer contribute to
  /// Objective().  Deactivating an already-inactive row is a no-op.
  common::Result<void> Deactivate(std::span<const std::size_t> rows);

  bool Solved() const noexcept { return solved_; }
  std::size_t Rows() const noexcept { return terms_.size(); }
  std::size_t ActiveRows() const noexcept { return active_rows_; }
  std::size_t DeactivatedRows() const noexcept {
    return terms_.size() - active_rows_;
  }

  /// Optimal point (valid after a successful operation).
  double Zx() const noexcept;
  double Zy() const noexcept;
  /// Relaxation t_r of row `row` at the optimum (0 for deactivated rows).
  double RelaxationOf(std::size_t row) const noexcept;
  /// sum of w_r * t_r over active rows, recomputed from the solution (so
  /// phantom deactivated rows cannot leak numerical dust into it).
  double Objective() const noexcept;

  /// Simplex pivots consumed by the most recent operation.
  std::size_t LastIterations() const noexcept { return last_iterations_; }
  /// Pivots consumed since the last Reset (inclusive).
  std::size_t TotalIterations() const noexcept { return total_iterations_; }

 private:
  // Column layout: [zx+, zx-, zy+, zy-, t_0, s_0, t_1, s_1, ...].
  static constexpr std::size_t kZCols = 4;
  std::size_t ColOfT(std::size_t row) const noexcept {
    return kZCols + 2 * row;
  }
  std::size_t ColOfS(std::size_t row) const noexcept {
    return kZCols + 2 * row + 1;
  }

  double& At(std::size_t r, std::size_t c) noexcept {
    return tab_[r * stride_ + c];
  }
  double At(std::size_t r, std::size_t c) const noexcept {
    return tab_[r * stride_ + c];
  }

  /// Grows the column stride (re-striding rows) to hold `cols` columns.
  void EnsureColumns(std::size_t cols);
  /// Gauss-Jordan pivot on (row, col), updating basis maps, rhs, and the
  /// maintained reduced-cost row.
  void Pivot(std::size_t row, std::size_t col);
  /// Reduced cost of column `col` under the current basis (O(1): read from
  /// the maintained row).
  double ReducedCost(std::size_t col) const noexcept { return red_[col]; }
  /// Recomputes the reduced-cost row from scratch (used by Reset).
  void RebuildReducedCosts();
  /// Builds, reduces against the current basis, and appends one raw row.
  void AppendReducedRow(const Term& term);
  /// Primal simplex to optimality (Bland's rule).
  common::Result<void> PrimalSimplex();
  /// Dual simplex until primal-feasible (Bland-style tie-breaks).
  common::Result<void> DualSimplex();
  /// Refreshes the cached solution values after a successful solve.
  void ExtractSolution();

  IncrementalOptions options_;
  std::vector<Term> terms_;          ///< All rows ever added (incl. inactive).
  std::vector<bool> row_active_;
  std::size_t active_rows_ = 0;

  std::size_t cols_ = 0;             ///< Live columns (kZCols + 2 * rows).
  std::size_t stride_ = 0;           ///< Allocated columns per row.
  std::vector<double> tab_;          ///< Row-major reduced tableau.
  std::vector<double> rhs_;          ///< B^-1 b, one per row.
  std::vector<double> cost_;         ///< Objective coefficient per column.
  std::vector<double> red_;          ///< Reduced cost per column, updated on
                                     ///< every pivot (the objective row of a
                                     ///< classic tableau).  Pricing a column
                                     ///< is O(1) instead of O(rows).
  std::vector<std::size_t> basis_;   ///< Basic column of each row.
  std::vector<std::size_t> row_of_col_;  ///< Basis row of a column, or npos.

  bool solved_ = false;
  double origin_x_ = 0.0, origin_y_ = 0.0;  ///< Coordinate shift (hint).
  double zx_ = 0.0, zy_ = 0.0;              ///< Optimum relative to origin.
  std::vector<double> t_;            ///< Per-row relaxation at the optimum.
  std::size_t last_iterations_ = 0;
  std::size_t total_iterations_ = 0;
};

}  // namespace nomloc::lp
