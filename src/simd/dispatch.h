// Runtime CPU-feature dispatch for the SIMD kernel layer (kernels.h).
//
// The first call to ActiveKernels()/ActiveTarget() resolves the best
// available target once:
//
//   1. NOMLOC_FORCE_SCALAR=1 (or true/yes/on)  -> scalar, always.
//   2. NOMLOC_SIMD_TARGET=scalar|sse2|avx2|neon -> that target if this
//      build and CPU support it, scalar otherwise.
//   3. Otherwise the widest target the CPU supports (AVX2 > SSE2/NEON >
//      scalar), probed via __builtin_cpu_supports on x86.
//
// The selection is exported through common::metrics as a
// `simd.dispatch{target=…}` counter; benches and tests can override it at
// runtime with ForceTarget().
#pragma once

#include "simd/kernels.h"

namespace nomloc::simd {

/// Lower-case target name ("scalar", "sse2", "avx2", "neon").
const char* TargetName(Target t) noexcept;

/// True when this build contains the target's kernels AND the running CPU
/// supports the instruction set.  kScalar is always supported.
bool TargetSupported(Target t) noexcept;

/// Applies the dispatch policy above from scratch (environment + CPU
/// probe).  Pure: does not touch the cached active table.
Target ResolveTarget() noexcept;

/// Target of the table ActiveKernels() currently returns.
Target ActiveTarget();

/// Replaces the active kernel table (bench/test hook; requires
/// TargetSupported(t)).  Takes effect for all subsequent kernel calls.
void ForceTarget(Target t);

/// Copies the per-kernel call counters and the dispatch decision into the
/// global common::MetricRegistry (`simd.kernel.calls{kernel=…}`,
/// `simd.dispatch{target=…}`).  Call before dumping metrics.
void PublishMetrics();

}  // namespace nomloc::simd
