// Fixed-width double-lane vector type, one implementation per target.
//
// This header is included only by the per-target kernel translation units
// (kernels_scalar.cc, kernels_sse2.cc, kernels_avx2.cc, kernels_neon.cc).
// Each TU defines exactly one NOMLOC_VEC_* selector plus NOMLOC_SIMD_NS
// (a TU-unique namespace, so the identically-named structs never collide
// across targets) before including it, then includes kernels_body.inc to
// instantiate the generic kernel bodies over this VecD.
//
// The interface is the minimal algebra the kernels need:
//   Load/Store (unaligned), Broadcast, Zero, + - * /, Max, Sqrt,
//   PairSum(a, b)  — adjacent-lane sums of a then b, in order; the
//                    complex-norm building block ([a0+a1, a2+a3, b0+b1,
//                    b2+b3] at width 4, [a0+a1, b0+b1] at width 2),
//   HSum / HMax    — horizontal reduction of one vector.
//
// Width-1 (scalar) defines the same interface so the generic bodies
// compile unchanged; its vector loops degenerate to exactly the original
// element-order scalar loops, which is what makes NOMLOC_FORCE_SCALAR=1
// bit-identical to the pre-SIMD code.
#pragma once

#include <cmath>
#include <cstddef>

#if defined(NOMLOC_VEC_AVX2)
#include <immintrin.h>
#elif defined(NOMLOC_VEC_SSE2)
#include <emmintrin.h>
#elif defined(NOMLOC_VEC_NEON)
#include <arm_neon.h>
#endif

#if !defined(NOMLOC_SIMD_NS)
#error "Define NOMLOC_SIMD_NS before including simd/vec.h"
#endif

namespace nomloc::simd {
namespace NOMLOC_SIMD_NS {

#if defined(NOMLOC_VEC_AVX2)

struct VecD {
  __m256d v;
  static constexpr std::size_t kWidth = 4;

  static VecD Load(const double* p) noexcept { return {_mm256_loadu_pd(p)}; }
  static VecD Broadcast(double x) noexcept { return {_mm256_set1_pd(x)}; }
  static VecD Zero() noexcept { return {_mm256_setzero_pd()}; }
  void Store(double* p) const noexcept { _mm256_storeu_pd(p, v); }

  VecD operator+(VecD o) const noexcept { return {_mm256_add_pd(v, o.v)}; }
  VecD operator-(VecD o) const noexcept { return {_mm256_sub_pd(v, o.v)}; }
  VecD operator*(VecD o) const noexcept { return {_mm256_mul_pd(v, o.v)}; }
  VecD operator/(VecD o) const noexcept { return {_mm256_div_pd(v, o.v)}; }

  static VecD Max(VecD a, VecD b) noexcept {
    return {_mm256_max_pd(a.v, b.v)};
  }
  static VecD Sqrt(VecD a) noexcept { return {_mm256_sqrt_pd(a.v)}; }

  static VecD PairSum(VecD a, VecD b) noexcept {
    // hadd gives [a0+a1, b0+b1, a2+a3, b2+b3]; permute restores source
    // order [a0+a1, a2+a3, b0+b1, b2+b3].
    const __m256d h = _mm256_hadd_pd(a.v, b.v);
    return {_mm256_permute4x64_pd(h, _MM_SHUFFLE(3, 1, 2, 0))};
  }

  double HSum() const noexcept {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d s = _mm_add_pd(lo, hi);  // [v0+v2, v1+v3]
    return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
  }
  double HMax() const noexcept {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d m = _mm_max_pd(lo, hi);
    return _mm_cvtsd_f64(_mm_max_sd(m, _mm_unpackhi_pd(m, m)));
  }
};

#elif defined(NOMLOC_VEC_SSE2)

struct VecD {
  __m128d v;
  static constexpr std::size_t kWidth = 2;

  static VecD Load(const double* p) noexcept { return {_mm_loadu_pd(p)}; }
  static VecD Broadcast(double x) noexcept { return {_mm_set1_pd(x)}; }
  static VecD Zero() noexcept { return {_mm_setzero_pd()}; }
  void Store(double* p) const noexcept { _mm_storeu_pd(p, v); }

  VecD operator+(VecD o) const noexcept { return {_mm_add_pd(v, o.v)}; }
  VecD operator-(VecD o) const noexcept { return {_mm_sub_pd(v, o.v)}; }
  VecD operator*(VecD o) const noexcept { return {_mm_mul_pd(v, o.v)}; }
  VecD operator/(VecD o) const noexcept { return {_mm_div_pd(v, o.v)}; }

  static VecD Max(VecD a, VecD b) noexcept { return {_mm_max_pd(a.v, b.v)}; }
  static VecD Sqrt(VecD a) noexcept { return {_mm_sqrt_pd(a.v)}; }

  static VecD PairSum(VecD a, VecD b) noexcept {
    const __m128d lo = _mm_unpacklo_pd(a.v, b.v);  // [a0, b0]
    const __m128d hi = _mm_unpackhi_pd(a.v, b.v);  // [a1, b1]
    return {_mm_add_pd(lo, hi)};                   // [a0+a1, b0+b1]
  }

  double HSum() const noexcept {
    return _mm_cvtsd_f64(_mm_add_sd(v, _mm_unpackhi_pd(v, v)));
  }
  double HMax() const noexcept {
    return _mm_cvtsd_f64(_mm_max_sd(v, _mm_unpackhi_pd(v, v)));
  }
};

#elif defined(NOMLOC_VEC_NEON)

struct VecD {
  float64x2_t v;
  static constexpr std::size_t kWidth = 2;

  static VecD Load(const double* p) noexcept { return {vld1q_f64(p)}; }
  static VecD Broadcast(double x) noexcept { return {vdupq_n_f64(x)}; }
  static VecD Zero() noexcept { return {vdupq_n_f64(0.0)}; }
  void Store(double* p) const noexcept { vst1q_f64(p, v); }

  VecD operator+(VecD o) const noexcept { return {vaddq_f64(v, o.v)}; }
  VecD operator-(VecD o) const noexcept { return {vsubq_f64(v, o.v)}; }
  VecD operator*(VecD o) const noexcept { return {vmulq_f64(v, o.v)}; }
  VecD operator/(VecD o) const noexcept { return {vdivq_f64(v, o.v)}; }

  static VecD Max(VecD a, VecD b) noexcept { return {vmaxq_f64(a.v, b.v)}; }
  static VecD Sqrt(VecD a) noexcept { return {vsqrtq_f64(a.v)}; }

  static VecD PairSum(VecD a, VecD b) noexcept {
    return {vpaddq_f64(a.v, b.v)};  // [a0+a1, b0+b1]
  }

  double HSum() const noexcept { return vaddvq_f64(v); }
  double HMax() const noexcept { return vmaxvq_f64(v); }
};

#else  // Scalar: width-1 lanes; the vector loops become the plain loops.

struct VecD {
  double v;
  static constexpr std::size_t kWidth = 1;

  static VecD Load(const double* p) noexcept { return {*p}; }
  static VecD Broadcast(double x) noexcept { return {x}; }
  static VecD Zero() noexcept { return {0.0}; }
  void Store(double* p) const noexcept { *p = v; }

  VecD operator+(VecD o) const noexcept { return {v + o.v}; }
  VecD operator-(VecD o) const noexcept { return {v - o.v}; }
  VecD operator*(VecD o) const noexcept { return {v * o.v}; }
  VecD operator/(VecD o) const noexcept { return {v / o.v}; }

  static VecD Max(VecD a, VecD b) noexcept {
    return {a.v < b.v ? b.v : a.v};
  }
  static VecD Sqrt(VecD a) noexcept { return {std::sqrt(a.v)}; }

  // Never reached at width 1 (the generic bodies guard on kWidth > 1),
  // but must compile: `if constexpr` in a non-template function still
  // type-checks the dead branch.
  static VecD PairSum(VecD a, VecD) noexcept { return a; }

  double HSum() const noexcept { return v; }
  double HMax() const noexcept { return v; }
};

#endif

}  // namespace NOMLOC_SIMD_NS
}  // namespace nomloc::simd
