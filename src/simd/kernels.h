// Portable SIMD kernel layer — the compute substrate under the DSP and LP
// hot loops.
//
// Each kernel exists in one variant per instruction-set target (scalar,
// SSE2, AVX2, NEON), compiled in its own translation unit with the right
// -m flags and exposed through a KernelTable of function pointers.  The
// table in use is resolved once at startup from the CPU's capabilities
// (see dispatch.h); every call site goes through the inline wrappers
// below, which also maintain per-kernel call counters for
// `nomloc_sim --metrics`.
//
// Numerical contract (see DESIGN.md "SIMD kernel layer"):
//   * The scalar table is bit-identical to the pre-SIMD loops it replaced
//     (same operation order, no FMA contraction) — NOMLOC_FORCE_SCALAR=1
//     reproduces historical results exactly.
//   * Element-wise kernels (axpy, scale, power_spectrum, cplx_axpy,
//     fft_pass, …) are bit-identical across targets: each output lane is
//     the same mul/add sequence, just computed W lanes at a time.
//   * Reduction kernels (dot, sum_norm, max_norm, mat_vec rows) reassociate
//     the sum across lanes; results match scalar to a tested bound
//     (tests/simd_kernels_test.cc).
#pragma once

#include <atomic>
#include <complex>
#include <cstddef>
#include <cstdint>

namespace nomloc::simd {

/// Instruction-set targets, in increasing preference order.
enum class Target : int { kScalar = 0, kSse2 = 1, kNeon = 2, kAvx2 = 3 };

/// One function pointer per kernel.  `xs` parameters are interleaved
/// complex data (re, im, re, im, …); `re`/`im`/`tr`/`ti` parameters are
/// split-complex (SoA) arrays.
struct KernelTable {
  Target target;

  /// sum_i a[i] * b[i].
  double (*dot)(const double* a, const double* b, std::size_t n);
  /// y[i] += a * x[i].
  void (*axpy)(std::size_t n, double a, const double* x, double* y);
  /// x[i] *= a.
  void (*scale)(std::size_t n, double a, double* x);
  /// x[i] /= d  (division, not multiplication by 1/d — matches the
  /// historical inverse-FFT and simplex-pivot rounding).
  void (*inv_scale)(std::size_t n, double d, double* x);
  /// y = A x for row-major A (rows x cols); y must hold `rows` doubles.
  void (*mat_vec)(const double* a, std::size_t rows, std::size_t cols,
                  const double* x, double* y);
  /// x += A^T y for row-major A; x must be pre-zeroed (`cols` doubles).
  void (*t_mat_vec)(const double* a, std::size_t rows, std::size_t cols,
                    const double* y, double* x);
  /// out[i] = re_i^2 + im_i^2 over n interleaved complexes.
  void (*power_spectrum)(std::size_t n, const double* xs, double* out);
  /// out[i] += re_i^2 + im_i^2 (non-coherent MIMO profile accumulation).
  void (*power_spectrum_add)(std::size_t n, const double* xs, double* out);
  /// out[i] = |x_i| (scalar path uses std::abs for historical rounding).
  void (*magnitudes)(std::size_t n, const double* xs, double* out);
  /// max_i (re_i^2 + im_i^2); n >= 1.  Fused max-tap PDP extraction.
  double (*max_norm)(std::size_t n, const double* xs);
  /// sum_i (re_i^2 + im_i^2).  Fused total-power PDP extraction.
  double (*sum_norm)(std::size_t n, const double* xs);
  /// One radix-2 butterfly stage over split-complex data of length n with
  /// half-length `half`: for every block and k in [0, half),
  ///   v = x[i+k+half] * (wr[k], wsign*wi[k]);  x[i+k] = u + v;
  ///   x[i+k+half] = u - v.
  void (*fft_pass)(double* re, double* im, std::size_t n, std::size_t half,
                   const double* wr, const double* wi, double wsign);
  /// Split-complex axpy: out += (br, bi) * (tr[i], ti[i]).
  void (*cplx_axpy)(std::size_t n, double br, double bi, const double* tr,
                    const double* ti, double* outr, double* outi);
  /// Interleaved -> split-complex copy, with an optional source
  /// permutation (perm == nullptr means identity): re[i] = xs[2*p(i)].
  void (*deinterleave)(std::size_t n, const double* xs,
                       const std::size_t* perm, double* re, double* im);
  /// Split-complex -> interleaved copy.
  void (*interleave)(std::size_t n, const double* re, const double* im,
                     double* xs);
};

/// The kernel table selected by runtime dispatch (dispatch.h).  First call
/// resolves the target; later calls are one atomic load.
const KernelTable& ActiveKernels();

/// Per-kernel call counters (relaxed atomics; exported into
/// common::metrics by PublishMetrics()).
enum class KernelId : int {
  kDot = 0,
  kAxpy,
  kScale,
  kInvScale,
  kMatVec,
  kTMatVec,
  kPowerSpectrum,
  kPowerSpectrumAdd,
  kMagnitudes,
  kMaxNorm,
  kSumNorm,
  kFftPass,
  kCplxAxpy,
  kDeinterleave,
  kInterleave,
  kCount
};

/// Kernel name as used in the `simd.kernel.calls{kernel=…}` metric label.
const char* KernelName(KernelId id);

namespace detail {

std::atomic<std::uint64_t>& CallCounter(KernelId id) noexcept;

inline void Count(KernelId id) noexcept {
  CallCounter(id).fetch_add(1, std::memory_order_relaxed);
}

// Per-target tables.  Only the variants compiled into this build are
// defined; dispatch.cc gates references on the NOMLOC_SIMD_HAVE_* macros.
const KernelTable& ScalarKernels();
const KernelTable& Sse2Kernels();
const KernelTable& Avx2Kernels();
const KernelTable& NeonKernels();

}  // namespace detail

// ---------------------------------------------------------------------------
// Call-site wrappers.  These are the only entry points the rest of the
// code base uses; they add the call accounting and centralise the
// interleaved-complex pointer casts (std::complex<double> is
// array-layout-compatible with double[2]).

inline double Dot(const double* a, const double* b, std::size_t n) {
  detail::Count(KernelId::kDot);
  return ActiveKernels().dot(a, b, n);
}

inline void Axpy(std::size_t n, double a, const double* x, double* y) {
  detail::Count(KernelId::kAxpy);
  ActiveKernels().axpy(n, a, x, y);
}

inline void Scale(std::size_t n, double a, double* x) {
  detail::Count(KernelId::kScale);
  ActiveKernels().scale(n, a, x);
}

inline void InvScale(std::size_t n, double d, double* x) {
  detail::Count(KernelId::kInvScale);
  ActiveKernels().inv_scale(n, d, x);
}

inline void MatVec(const double* a, std::size_t rows, std::size_t cols,
                   const double* x, double* y) {
  detail::Count(KernelId::kMatVec);
  ActiveKernels().mat_vec(a, rows, cols, x, y);
}

inline void TMatVec(const double* a, std::size_t rows, std::size_t cols,
                    const double* y, double* x) {
  detail::Count(KernelId::kTMatVec);
  ActiveKernels().t_mat_vec(a, rows, cols, y, x);
}

inline void PowerSpectrum(std::size_t n, const std::complex<double>* xs,
                          double* out) {
  detail::Count(KernelId::kPowerSpectrum);
  ActiveKernels().power_spectrum(n, reinterpret_cast<const double*>(xs), out);
}

inline void PowerSpectrumAdd(std::size_t n, const std::complex<double>* xs,
                             double* out) {
  detail::Count(KernelId::kPowerSpectrumAdd);
  ActiveKernels().power_spectrum_add(n, reinterpret_cast<const double*>(xs),
                                     out);
}

inline void Magnitudes(std::size_t n, const std::complex<double>* xs,
                       double* out) {
  detail::Count(KernelId::kMagnitudes);
  ActiveKernels().magnitudes(n, reinterpret_cast<const double*>(xs), out);
}

inline double MaxNorm(std::size_t n, const std::complex<double>* xs) {
  detail::Count(KernelId::kMaxNorm);
  return ActiveKernels().max_norm(n, reinterpret_cast<const double*>(xs));
}

inline double SumNorm(std::size_t n, const std::complex<double>* xs) {
  detail::Count(KernelId::kSumNorm);
  return ActiveKernels().sum_norm(n, reinterpret_cast<const double*>(xs));
}

inline void FftPass(double* re, double* im, std::size_t n, std::size_t half,
                    const double* wr, const double* wi, double wsign) {
  detail::Count(KernelId::kFftPass);
  ActiveKernels().fft_pass(re, im, n, half, wr, wi, wsign);
}

inline void CplxAxpy(std::size_t n, double br, double bi, const double* tr,
                     const double* ti, double* outr, double* outi) {
  detail::Count(KernelId::kCplxAxpy);
  ActiveKernels().cplx_axpy(n, br, bi, tr, ti, outr, outi);
}

inline void Deinterleave(std::size_t n, const std::complex<double>* xs,
                         const std::size_t* perm, double* re, double* im) {
  detail::Count(KernelId::kDeinterleave);
  ActiveKernels().deinterleave(n, reinterpret_cast<const double*>(xs), perm,
                               re, im);
}

inline void Interleave(std::size_t n, const double* re, const double* im,
                       std::complex<double>* xs) {
  detail::Count(KernelId::kInterleave);
  ActiveKernels().interleave(n, re, im, reinterpret_cast<double*>(xs));
}

}  // namespace nomloc::simd
