// NEON kernel table (128-bit, 2 double lanes).  Double-precision NEON is
// architectural on AArch64, so no extra compile flags or runtime probe
// are needed; CMake adds this TU on ARM builds only.
#define NOMLOC_VEC_NEON 1
#define NOMLOC_SIMD_NS neon_impl
#define NOMLOC_SIMD_TARGET_ENUM Target::kNeon
#define NOMLOC_SIMD_TABLE_FN NeonKernels
#include "simd/kernels_body.inc"
