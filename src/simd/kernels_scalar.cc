// Scalar kernel table: width-1 lanes, i.e. exactly the pre-SIMD loops.
// This is the NOMLOC_FORCE_SCALAR=1 fallback and the bit-identity
// reference every other target is tested against.
#define NOMLOC_SIMD_NS scalar_impl
#define NOMLOC_SIMD_TARGET_ENUM Target::kScalar
#define NOMLOC_SIMD_TABLE_FN ScalarKernels
#include "simd/kernels_body.inc"
