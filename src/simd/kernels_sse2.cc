// SSE2 kernel table (128-bit, 2 double lanes).  SSE2 is part of the
// x86-64 baseline, so this TU needs no extra -m flags and is always a
// safe wide(r) fallback when AVX2 is unavailable.
#define NOMLOC_VEC_SSE2 1
#define NOMLOC_SIMD_NS sse2_impl
#define NOMLOC_SIMD_TARGET_ENUM Target::kSse2
#define NOMLOC_SIMD_TABLE_FN Sse2Kernels
#include "simd/kernels_body.inc"
