// AVX2 kernel table (256-bit, 4 double lanes).  Compiled with -mavx2
// (see src/simd/CMakeLists.txt); only ever called after runtime dispatch
// confirms CPU support, so the rest of the binary stays baseline-ISA.
// No FMA intrinsics are used: separate mul/add keeps every element-wise
// kernel rounding-identical to the scalar table.
#define NOMLOC_VEC_AVX2 1
#define NOMLOC_SIMD_NS avx2_impl
#define NOMLOC_SIMD_TARGET_ENUM Target::kAvx2
#define NOMLOC_SIMD_TABLE_FN Avx2Kernels
#include "simd/kernels_body.inc"
