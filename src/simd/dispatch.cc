#include "simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/assert.h"
#include "common/metrics.h"

namespace nomloc::simd {

namespace {

const KernelTable* TableFor(Target t) {
  switch (t) {
    case Target::kScalar:
      return &detail::ScalarKernels();
#if defined(NOMLOC_SIMD_HAVE_X86)
    case Target::kSse2:
      return &detail::Sse2Kernels();
    case Target::kAvx2:
      return &detail::Avx2Kernels();
#endif
#if defined(NOMLOC_SIMD_HAVE_NEON)
    case Target::kNeon:
      return &detail::NeonKernels();
#endif
    default:
      return nullptr;
  }
}

bool EnvFlagSet(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "yes") == 0 || std::strcmp(v, "on") == 0;
}

// The table every kernel wrapper reads.  Null until first resolution.
std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* ResolveAndPublish() {
  const Target t = ResolveTarget();
  const KernelTable* table = TableFor(t);
  const KernelTable* expected = nullptr;
  if (g_active.compare_exchange_strong(expected, table,
                                       std::memory_order_acq_rel)) {
    // Record the startup decision once (the loser of a racing first call
    // adopts the winner's table and skips the metric).
    common::MetricRegistry::Global()
        .Counter("simd.dispatch", std::string("target=") + TargetName(t))
        .Increment();
    return table;
  }
  return expected;
}

}  // namespace

const char* TargetName(Target t) noexcept {
  switch (t) {
    case Target::kScalar:
      return "scalar";
    case Target::kSse2:
      return "sse2";
    case Target::kNeon:
      return "neon";
    case Target::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool TargetSupported(Target t) noexcept {
  switch (t) {
    case Target::kScalar:
      return true;
#if defined(NOMLOC_SIMD_HAVE_X86)
    case Target::kSse2:
      return true;  // Part of the x86-64 baseline.
    case Target::kAvx2:
#if defined(__GNUC__) || defined(__clang__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
#endif
#if defined(NOMLOC_SIMD_HAVE_NEON)
    case Target::kNeon:
      return true;  // Architectural on AArch64.
#endif
    default:
      return false;
  }
}

Target ResolveTarget() noexcept {
  if (EnvFlagSet("NOMLOC_FORCE_SCALAR")) return Target::kScalar;
  if (const char* name = std::getenv("NOMLOC_SIMD_TARGET")) {
    for (Target t : {Target::kScalar, Target::kSse2, Target::kNeon,
                     Target::kAvx2}) {
      if (std::strcmp(name, TargetName(t)) == 0)
        return TargetSupported(t) ? t : Target::kScalar;
    }
    return Target::kScalar;  // Unknown name: fail safe, not fast.
  }
  for (Target t : {Target::kAvx2, Target::kSse2, Target::kNeon}) {
    if (TargetSupported(t)) return t;
  }
  return Target::kScalar;
}

const KernelTable& ActiveKernels() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) table = ResolveAndPublish();
  return *table;
}

Target ActiveTarget() { return ActiveKernels().target; }

void ForceTarget(Target t) {
  NOMLOC_REQUIRE(TargetSupported(t));
  const KernelTable* table = TableFor(t);
  NOMLOC_REQUIRE(table != nullptr);
  g_active.store(table, std::memory_order_release);
}

const char* KernelName(KernelId id) {
  switch (id) {
    case KernelId::kDot:
      return "dot";
    case KernelId::kAxpy:
      return "axpy";
    case KernelId::kScale:
      return "scale";
    case KernelId::kInvScale:
      return "inv_scale";
    case KernelId::kMatVec:
      return "mat_vec";
    case KernelId::kTMatVec:
      return "t_mat_vec";
    case KernelId::kPowerSpectrum:
      return "power_spectrum";
    case KernelId::kPowerSpectrumAdd:
      return "power_spectrum_add";
    case KernelId::kMagnitudes:
      return "magnitudes";
    case KernelId::kMaxNorm:
      return "max_norm";
    case KernelId::kSumNorm:
      return "sum_norm";
    case KernelId::kFftPass:
      return "fft_pass";
    case KernelId::kCplxAxpy:
      return "cplx_axpy";
    case KernelId::kDeinterleave:
      return "deinterleave";
    case KernelId::kInterleave:
      return "interleave";
    case KernelId::kCount:
      break;
  }
  return "unknown";
}

namespace detail {

std::atomic<std::uint64_t>& CallCounter(KernelId id) noexcept {
  static std::atomic<std::uint64_t> counters[std::size_t(KernelId::kCount)];
  return counters[std::size_t(id)];
}

}  // namespace detail

void PublishMetrics() {
  auto& registry = common::MetricRegistry::Global();
  // Ensure the dispatch series exists even if no kernel ran yet.
  (void)ActiveKernels();
  for (std::size_t i = 0; i < std::size_t(KernelId::kCount); ++i) {
    const KernelId id = KernelId(i);
    auto& counter = registry.Counter(
        "simd.kernel.calls", std::string("kernel=") + KernelName(id));
    const std::uint64_t calls =
        detail::CallCounter(id).load(std::memory_order_relaxed);
    // Counter is monotonic; publish the delta since the last snapshot.
    const std::uint64_t published = counter.Value();
    if (calls > published) counter.Increment(calls - published);
  }
}

}  // namespace nomloc::simd
