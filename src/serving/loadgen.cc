#include "serving/loadgen.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace nomloc::serving {

namespace {

std::uint64_t NextRandom(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t x = state;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform in [0, 1).
double UniformDouble(std::uint64_t& state) noexcept {
  return double(NextRandom(state) >> 11) * 0x1.0p-53;
}

/// Exponential inter-arrival with mean 1/rate.
double Exponential(std::uint64_t& state, double rate) noexcept {
  return -std::log1p(-UniformDouble(state)) / rate;
}

/// Zipf(s) sampler over ranks [0, n): precomputed CDF + binary search.
/// O(n) setup, O(log n) per draw, exact distribution.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    double total = 0.0;
    for (std::size_t rank = 0; rank < n; ++rank) {
      total += s == 0.0 ? 1.0 : std::pow(double(rank + 1), -s);
      cdf_[rank] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  std::size_t Draw(std::uint64_t& state) const noexcept {
    const double u = UniformDouble(state);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return std::size_t(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

std::string_view ArrivalProcessName(ArrivalProcess process) noexcept {
  switch (process) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kDiurnal: return "diurnal";
    case ArrivalProcess::kFlashCrowd: return "flash";
  }
  return "unknown";
}

common::Result<ArrivalProcess> ParseArrivalProcessName(
    std::string_view name) {
  if (name == "poisson") return ArrivalProcess::kPoisson;
  if (name == "diurnal") return ArrivalProcess::kDiurnal;
  if (name == "flash") return ArrivalProcess::kFlashCrowd;
  return common::InvalidArgument("unknown arrival process '" +
                                 std::string(name) +
                                 "' (expected poisson|diurnal|flash)");
}

common::Result<void> LoadGenConfig::Validate() const {
  if (objects == 0) return common::InvalidArgument("objects must be >= 1");
  if (anchors_per_object == 0)
    return common::InvalidArgument("anchors_per_object must be >= 1");
  if (!(rate_per_s > 0.0))
    return common::InvalidArgument("rate_per_s must be positive");
  if (zipf_s < 0.0)
    return common::InvalidArgument("zipf_s must be non-negative");
  if (query_fraction < 0.0 || query_fraction > 1.0)
    return common::InvalidArgument("query_fraction must be in [0, 1]");
  if (diurnal_amplitude < 0.0 || diurnal_amplitude >= 1.0)
    return common::InvalidArgument("diurnal_amplitude must be in [0, 1)");
  if (!(diurnal_period_s > 0.0))
    return common::InvalidArgument("diurnal_period_s must be positive");
  if (flash_multiplier < 1.0)
    return common::InvalidArgument("flash_multiplier must be >= 1");
  if (flash_duration_s < 0.0 || flash_start_s < 0.0)
    return common::InvalidArgument("flash window must be non-negative");
  if (!(area_m > 0.0))
    return common::InvalidArgument("area_m must be positive");
  return {};
}

LoadSchedule BuildLoadSchedule(const LoadGenConfig& config) {
  NOMLOC_REQUIRE(config.Validate().ok());
  LoadSchedule schedule;
  std::uint64_t rng = config.seed * 0x9e3779b97f4a7c15ULL + 1;

  // Populate: one observation per (object, anchor) at t = 0.  Anchor
  // geometry is per-AP, shared across objects (a floor has few APs, many
  // objects); PDP values are positive and finite so the ingest corruption
  // screen admits everything.
  schedule.populate.reserve(config.objects * config.anchors_per_object);
  std::vector<geometry::Vec2> anchor_positions(config.anchors_per_object);
  for (geometry::Vec2& position : anchor_positions)
    position = {UniformDouble(rng) * config.area_m,
                UniformDouble(rng) * config.area_m};
  for (std::size_t object = 0; object < config.objects; ++object) {
    for (std::size_t a = 0; a < config.anchors_per_object; ++a) {
      IngestPacket packet;
      packet.kind = PacketKind::kObservation;
      packet.object_id = object;
      packet.ap_id = int(a);
      packet.site_index = 0;
      packet.is_nomadic = a == 0;  // one nomadic source per constraint set
      packet.reported_position = anchor_positions[a];
      packet.pdp = 0.5 + UniformDouble(rng);
      packet.weight = 1.0;
      packet.timestamp_s = 0.0;
      schedule.populate.push_back(packet);
    }
  }

  // Steady phase: arrival offsets by the chosen process.  Diurnal and
  // flash-crowd rates are inhomogeneous-Poisson via thinning: candidates
  // arrive at the peak rate and survive with probability
  // lambda(t) / lambda_peak.
  const double peak_rate =
      config.arrival == ArrivalProcess::kDiurnal
          ? config.rate_per_s * (1.0 + config.diurnal_amplitude)
          : config.arrival == ArrivalProcess::kFlashCrowd
                ? config.rate_per_s * config.flash_multiplier
                : config.rate_per_s;
  auto rate_at = [&](double t) {
    switch (config.arrival) {
      case ArrivalProcess::kPoisson:
        return config.rate_per_s;
      case ArrivalProcess::kDiurnal:
        return config.rate_per_s *
               (1.0 + config.diurnal_amplitude *
                          std::sin(2.0 * M_PI * t / config.diurnal_period_s));
      case ArrivalProcess::kFlashCrowd:
        return t >= config.flash_start_s &&
                       t < config.flash_start_s + config.flash_duration_s
                   ? config.rate_per_s * config.flash_multiplier
                   : config.rate_per_s;
    }
    return config.rate_per_s;
  };

  const ZipfSampler popularity(config.objects, config.zipf_s);
  schedule.steady.reserve(config.packets);
  double t = 0.0;
  while (schedule.steady.size() < config.packets) {
    t += Exponential(rng, peak_rate);
    if (UniformDouble(rng) * peak_rate > rate_at(t)) continue;  // thinned
    ScheduledPacket scheduled;
    scheduled.send_offset_s = t;
    IngestPacket& packet = scheduled.packet;
    packet.object_id = popularity.Draw(rng);
    packet.timestamp_s = t;
    if (UniformDouble(rng) < config.query_fraction) {
      packet.kind = PacketKind::kQuery;
    } else {
      packet.kind = PacketKind::kObservation;
      const auto a = std::size_t(NextRandom(rng) % config.anchors_per_object);
      packet.ap_id = int(a);
      packet.site_index = 0;
      packet.is_nomadic = a == 0;
      packet.reported_position = anchor_positions[a];
      packet.pdp = 0.5 + UniformDouble(rng);
      packet.weight = 1.0;
    }
    schedule.steady.push_back(scheduled);
  }
  schedule.horizon_s = t;
  return schedule;
}

}  // namespace nomloc::serving
