#include "serving/chaos.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "geometry/vec2.h"

namespace nomloc::serving {

std::string_view ChaosEventKindName(ChaosEventKind kind) noexcept {
  switch (kind) {
    case ChaosEventKind::kAnchorDeath: return "ANCHOR_DEATH";
    case ChaosEventKind::kAnchorFlap: return "ANCHOR_FLAP";
    case ChaosEventKind::kTraceCorruption: return "TRACE_CORRUPTION";
    case ChaosEventKind::kClockJump: return "CLOCK_JUMP";
    case ChaosEventKind::kQueueSaturation: return "QUEUE_SATURATION";
  }
  return "UNKNOWN";
}

common::Result<void> ChaosConfig::Validate() const {
  const double weights = anchor_death_weight + anchor_flap_weight +
                         corruption_weight + clock_jump_weight +
                         queue_saturation_weight;
  if (anchor_death_weight < 0.0 || anchor_flap_weight < 0.0 ||
      corruption_weight < 0.0 || clock_jump_weight < 0.0 ||
      queue_saturation_weight < 0.0)
    return common::InvalidArgument("event weights must be >= 0");
  if (events > 0 && weights <= 0.0)
    return common::InvalidArgument("at least one event weight must be > 0");
  if (max_window_fraction <= 0.0 || max_window_fraction > 1.0)
    return common::InvalidArgument("max_window_fraction must be in (0, 1]");
  if (max_clock_jump_s < 0.0)
    return common::InvalidArgument("max_clock_jump_s must be >= 0");
  return {};
}

ChaosSchedule BuildChaosSchedule(const ChaosConfig& config,
                                 const ReplayPlan& plan,
                                 double epoch_interval_s) {
  ChaosSchedule schedule;
  if (config.events == 0) return schedule;
  common::Rng rng(config.seed);
  const double duration_s = double(plan.epoch_count) * epoch_interval_s;
  const std::size_t anchors = std::max<std::size_t>(1, plan.expected_anchors);
  const std::array<double, 5> weights = {
      config.anchor_death_weight, config.anchor_flap_weight,
      config.corruption_weight, config.clock_jump_weight,
      config.queue_saturation_weight};

  schedule.events.reserve(config.events);
  for (std::size_t i = 0; i < config.events; ++i) {
    ChaosEvent event;
    event.kind = ChaosEventKind(rng.Categorical(weights));
    // Faults land in the run's first 70% so the tail epochs always
    // measure post-clearance recovery.
    event.start_s = rng.Uniform(0.1 * duration_s, 0.7 * duration_s);
    const double window_s =
        rng.Uniform(0.1, config.max_window_fraction) * epoch_interval_s;
    switch (event.kind) {
      case ChaosEventKind::kAnchorDeath:
        event.end_s = event.start_s + window_s;
        event.ap_id = int(rng.UniformInt(anchors));
        break;
      case ChaosEventKind::kAnchorFlap:
        event.end_s = event.start_s + window_s;
        event.ap_id = int(rng.UniformInt(anchors));
        // Up/down period: a handful of flips per window.
        event.magnitude = window_s / rng.Uniform(3.0, 8.0);
        break;
      case ChaosEventKind::kTraceCorruption:
        event.end_s = event.start_s + window_s;
        event.ap_id = int(rng.UniformInt(anchors));
        break;
      case ChaosEventKind::kClockJump:
        // The jump skews whichever timestamp group comes next, so its
        // effect window conservatively spans one epoch interval.
        event.end_s = event.start_s + epoch_interval_s;
        event.magnitude =
            rng.Uniform(-config.max_clock_jump_s, config.max_clock_jump_s);
        break;
      case ChaosEventKind::kQueueSaturation:
        event.end_s = event.start_s;
        event.magnitude = double(config.saturation_burst);
        break;
    }
    // Keep the whole effect window inside the first 70% of the run so the
    // tail epochs always measure post-clearance recovery.
    const double overshoot = event.end_s - 0.7 * duration_s;
    if (overshoot > 0.0) {
      const double shift = std::min(overshoot, event.start_s - 0.1 * duration_s);
      event.start_s -= shift;
      event.end_s -= shift;
    }
    schedule.last_event_end_s =
        std::max(schedule.last_event_end_s, event.end_s);
    schedule.events.push_back(event);
  }
  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.start_s < b.start_s;
                   });
  return schedule;
}

namespace {

/// Object id for queue-saturation filler traffic — far above any replay
/// object id, so filler sessions never collide with real ones.
constexpr std::uint64_t kFillerObjectId = 0xC4405F111E7ULL;

bool WindowCovers(const ChaosEvent& event, double t) {
  return t >= event.start_s && t <= event.end_s;
}

/// Death drops everything in the window; flap drops the "down" half of
/// each period.
bool EatenByAnchorFault(const ChaosEvent& event, const IngestPacket& packet) {
  if (packet.kind != PacketKind::kObservation) return false;
  if (event.ap_id != packet.ap_id) return false;
  if (!WindowCovers(event, packet.timestamp_s)) return false;
  if (event.kind == ChaosEventKind::kAnchorDeath) return true;
  if (event.kind != ChaosEventKind::kAnchorFlap) return false;
  const double phase = (packet.timestamp_s - event.start_s) /
                       std::max(event.magnitude, 1e-9);
  return (std::int64_t(phase) % 2) == 1;
}

}  // namespace

common::Result<ChaosReport> RunChaos(const core::NomLocEngine& engine,
                                     const ReplayPlan& plan,
                                     double epoch_interval_s,
                                     const ChaosConfig& chaos,
                                     ServingConfig serving) {
  if (auto valid = chaos.Validate(); !valid.ok()) return valid.status();
  if (plan.packets.empty())
    return common::InvalidArgument("replay plan has no packets");

  ChaosReport report;
  report.schedule = BuildChaosSchedule(chaos, plan, epoch_interval_s);

  serving.expected_anchors = plan.expected_anchors;
  if (serving.store.anchor_ttl_s <= 0.0 ||
      serving.store.anchor_ttl_s == SessionStoreConfig{}.anchor_ttl_s)
    serving.store.anchor_ttl_s = plan.suggested_anchor_ttl_s;
  serving.start_paused = false;

  ManualClock clock(0.0);
  NOMLOC_ASSIGN_OR_RETURN(auto service,
                          StreamingLocalizer::Create(engine, serving, &clock));

  // A clock jump skews the next timestamp group only: the service sees one
  // batch at stepped time (stressing eviction and deadline math in both
  // directions), then the harness resyncs.  A permanent skew would age
  // every later epoch's anchors against their packet timestamps and keep
  // the run degraded forever — that is drift, not a jump.
  double pending_jump_s = 0.0;
  std::size_t next_event = 0;
  const auto& events = report.schedule.events;

  std::size_t i = 0;
  while (i < plan.packets.size()) {
    const double t = plan.packets[i].timestamp_s;

    // Fire instantaneous events scheduled before this timestamp group.
    while (next_event < events.size() && events[next_event].start_s <= t) {
      const ChaosEvent& event = events[next_event];
      if (event.kind == ChaosEventKind::kClockJump) {
        pending_jump_s += event.magnitude;
        ++report.clock_jumps;
      } else if (event.kind == ChaosEventKind::kQueueSaturation) {
        ++report.saturation_bursts;
        clock.Set(event.start_s);
        IngestPacket filler;
        filler.kind = PacketKind::kObservation;
        filler.object_id = kFillerObjectId;
        filler.ap_id = 0;
        filler.reported_position = {0.0, 0.0};
        filler.pdp = 1.0;
        filler.timestamp_s = event.start_s;
        for (std::size_t b = 0; b < std::size_t(event.magnitude); ++b)
          (void)service->Ingest(filler);  // Queue-full rejections expected.
        // Drain the burst so saturation stresses admission control
        // without starving the real stream downstream of the event.
        service->Flush();
      }
      ++next_event;
    }

    clock.Set(t + pending_jump_s);
    pending_jump_s = 0.0;

    // Ingest the whole same-timestamp group, then flush: every serve of
    // this group runs at this exact logical time, independent of worker
    // scheduling — chaos runs are reproducible.
    for (; i < plan.packets.size() && plan.packets[i].timestamp_s == t; ++i) {
      IngestPacket packet = plan.packets[i];
      bool eaten = false;
      bool corrupted = false;
      for (const ChaosEvent& event : events) {
        if (EatenByAnchorFault(event, packet)) {
          eaten = true;
          break;
        }
        if (event.kind == ChaosEventKind::kTraceCorruption &&
            packet.kind == PacketKind::kObservation &&
            event.ap_id == packet.ap_id &&
            WindowCovers(event, packet.timestamp_s)) {
          packet.pdp = std::numeric_limits<double>::quiet_NaN();
          corrupted = true;
        }
      }
      if (eaten) {
        ++report.injected_drops;
        continue;
      }
      if (corrupted) ++report.injected_corruptions;
      switch (service->Ingest(packet)) {
        case AdmitStatus::kAccepted: ++report.admit_accepted; break;
        case AdmitStatus::kRejectedCorrupt:
          ++report.admit_rejected_corrupt;
          break;
        case AdmitStatus::kRejectedBreakerOpen:
          ++report.admit_rejected_breaker;
          break;
        case AdmitStatus::kRejectedQueueFull:
          ++report.admit_rejected_queue_full;
          break;
        case AdmitStatus::kRejectedDeadline:
          ++report.admit_rejected_deadline;
          break;
        case AdmitStatus::kDroppedByFault:
          ++report.admit_dropped_by_fault;
          break;
        case AdmitStatus::kRejectedShutdown: break;
        // Cluster-router verdicts; StreamingLocalizer never issues them.
        case AdmitStatus::kRejectedStaleEpoch: break;
        case AdmitStatus::kRejectedShuttingDown: break;
      }
    }
    service->Flush();
  }
  service->Flush();
  service->Shutdown();

  auto responses = service->TakeResponses();
  std::sort(responses.begin(), responses.end(),
            [](const ServeResponse& a, const ServeResponse& b) {
              if (a.timestamp_s != b.timestamp_s)
                return a.timestamp_s < b.timestamp_s;
              return a.object_id < b.object_id;
            });
  report.outcomes.reserve(responses.size());
  for (const ServeResponse& response : responses) {
    if (response.object_id == kFillerObjectId) continue;
    ChaosQueryOutcome outcome;
    outcome.object_id = response.object_id;
    outcome.epoch = std::size_t(response.timestamp_s / epoch_interval_s);
    outcome.timestamp_s = response.timestamp_s;
    outcome.status = response.status;
    outcome.degradation = response.degradation;
    outcome.confidence = response.confidence;
    const std::size_t row =
        outcome.epoch * plan.objects + std::size_t(response.object_id);
    if (response.status == ServeStatus::kOk && row < plan.epochs.size())
      outcome.error_m = geometry::Distance(response.estimate.position,
                                           plan.epochs[row].true_position);
    const auto level = std::size_t(outcome.degradation);
    if (level < 4) ++report.degradation_counts[level];
    report.outcomes.push_back(outcome);
  }

  if (!events.empty()) {
    for (const ChaosQueryOutcome& outcome : report.outcomes) {
      if (outcome.timestamp_s < report.schedule.last_event_end_s) continue;
      if (outcome.status != ServeStatus::kOk) continue;
      if (outcome.degradation != common::DegradationLevel::kNone) continue;
      report.recovery_latency_s =
          outcome.timestamp_s - report.schedule.last_event_end_s;
      break;
    }
  }
  return report;
}

}  // namespace nomloc::serving
