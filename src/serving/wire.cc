#include "serving/wire.h"

#include <bit>
#include <cmath>
#include <limits>
#include <utility>

#include "common/json.h"
#include "common/metrics.h"

namespace nomloc::serving {

namespace {

constexpr char kWireMagic[3] = {'N', 'L', 'W'};

common::MetricCounter& ParseFailures() {
  static auto& counter =
      common::MetricRegistry::Global().Counter("serving.wire.parse_failures");
  return counter;
}

common::MetricCounter& BytesIn() {
  static auto& counter =
      common::MetricRegistry::Global().Counter("serving.wire.bytes_in");
  return counter;
}

common::MetricCounter& BytesOut() {
  static auto& counter =
      common::MetricRegistry::Global().Counter("serving.wire.bytes_out");
  return counter;
}

common::Status CorruptAt(std::string_view what, std::size_t offset) {
  ParseFailures().Increment();
  return common::DataCorruption(std::string(what) + " at offset " +
                                std::to_string(offset));
}

void PutU32(std::uint32_t v, std::string& out) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xff));
}

void PutU64(std::uint64_t v, std::string& out) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xff));
}

void PutF64(double v, std::string& out) {
  PutU64(std::bit_cast<std::uint64_t>(v), out);
}

std::uint32_t GetU32(const char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= std::uint32_t(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

std::uint64_t GetU64(const char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= std::uint64_t(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

double GetF64(const char* p) noexcept {
  return std::bit_cast<double>(GetU64(p));
}

/// 32-bit FNV-1a over the frame bytes preceding the checksum field.
std::uint32_t Fnv1a(std::string_view bytes) noexcept {
  std::uint32_t hash = 2166136261u;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 16777619u;
  }
  return hash;
}

/// The 65-byte observation body shared by observation and replicate
/// frames (everything between the kind prefix and the checksum).
void PutObservationBody(const IngestPacket& packet, std::string& out) {
  PutU64(packet.object_id, out);
  PutU32(std::bit_cast<std::uint32_t>(static_cast<std::int32_t>(packet.ap_id)),
         out);
  PutU32(static_cast<std::uint32_t>(packet.site_index), out);
  out.push_back(static_cast<char>(packet.is_nomadic ? 0x01 : 0x00));
  PutF64(packet.reported_position.x, out);
  PutF64(packet.reported_position.y, out);
  PutF64(packet.pdp, out);
  PutF64(packet.weight, out);
  PutF64(packet.timestamp_s, out);
  PutF64(packet.deadline_s, out);
}

IngestPacket GetObservationBody(const char* p) noexcept {
  IngestPacket packet;
  packet.kind = PacketKind::kObservation;
  packet.object_id = GetU64(p);
  packet.ap_id = std::bit_cast<std::int32_t>(GetU32(p + 8));
  packet.site_index = GetU32(p + 12);
  packet.is_nomadic = (static_cast<unsigned char>(p[16]) & 0x01) != 0;
  packet.reported_position.x = GetF64(p + 17);
  packet.reported_position.y = GetF64(p + 25);
  packet.pdp = GetF64(p + 33);
  packet.weight = GetF64(p + 41);
  packet.timestamp_s = GetF64(p + 49);
  packet.deadline_s = GetF64(p + 57);
  return packet;
}

}  // namespace

std::uint32_t WireFnv1a(std::string_view bytes) noexcept {
  return Fnv1a(bytes);
}

std::string_view WireFormatName(WireFormat format) noexcept {
  switch (format) {
    case WireFormat::kBinary: return "binary";
    case WireFormat::kJson: return "json";
  }
  return "unknown";
}

common::Result<WireFormat> ParseWireFormatName(std::string_view name) {
  if (name == "binary") return WireFormat::kBinary;
  if (name == "json") return WireFormat::kJson;
  return common::InvalidArgument("unknown wire format '" + std::string(name) +
                                 "' (expected binary|json)");
}

void AppendWireFrame(const IngestPacket& packet, std::string& out) {
  const std::size_t frame_start = out.size();
  if (packet.kind == PacketKind::kObservation) {
    out.push_back(static_cast<char>(kWireObservationFrame));
    PutObservationBody(packet, out);
  } else {
    out.push_back(static_cast<char>(kWireQueryFrame));
    PutU64(packet.object_id, out);
    PutF64(packet.timestamp_s, out);
    PutF64(packet.deadline_s, out);
  }
  PutU32(Fnv1a(std::string_view(out).substr(frame_start)), out);
  BytesOut().Increment(out.size() - frame_start);
}

std::string WireHeader() {
  std::string out;
  out.reserve(kWireHeaderBytes);
  out.append(kWireMagic, sizeof(kWireMagic));
  out.push_back(static_cast<char>(kWireVersion));
  BytesOut().Increment(kWireHeaderBytes);
  return out;
}

void AppendWireResponseFrame(const WireResponse& response, std::string& out) {
  const std::size_t frame_start = out.size();
  out.push_back(static_cast<char>(kWireResponseFrame));
  PutU64(response.object_id, out);
  PutF64(response.timestamp_s, out);
  out.push_back(static_cast<char>(response.status));
  out.push_back(static_cast<char>(response.degradation));
  out.push_back(static_cast<char>(response.degraded ? 0x01 : 0x00));
  PutU32(response.anchor_count, out);
  PutF64(response.position.x, out);
  PutF64(response.position.y, out);
  PutF64(response.relaxation_cost, out);
  PutF64(response.feasible_area_m2, out);
  PutF64(response.confidence, out);
  PutU32(Fnv1a(std::string_view(out).substr(frame_start)), out);
  BytesOut().Increment(out.size() - frame_start);
}

void AppendWireControlFrame(const WireControl& control, std::string& out) {
  const std::size_t frame_start = out.size();
  out.push_back(static_cast<char>(kWireControlFrame));
  out.push_back(static_cast<char>(control.op));
  PutU64(control.token, out);
  PutF64(control.value, out);
  PutU64(control.epoch, out);
  PutU32(Fnv1a(std::string_view(out).substr(frame_start)), out);
  BytesOut().Increment(out.size() - frame_start);
}

void AppendWireReplicateFrame(const WireReplicate& replicate,
                              std::string& out) {
  const std::size_t frame_start = out.size();
  out.push_back(static_cast<char>(kWireReplicateFrame));
  PutU32(replicate.slot, out);
  PutU64(replicate.epoch, out);
  PutObservationBody(replicate.packet, out);
  PutU32(Fnv1a(std::string_view(out).substr(frame_start)), out);
  BytesOut().Increment(out.size() - frame_start);
}

std::string EncodeWireBinary(std::span<const IngestPacket> packets) {
  std::string out;
  std::size_t observations = 0;
  for (const IngestPacket& packet : packets)
    if (packet.kind == PacketKind::kObservation) ++observations;
  out.reserve(kWireHeaderBytes + observations * kWireObservationBytes +
              (packets.size() - observations) * kWireQueryBytes);
  out.append(kWireMagic, sizeof(kWireMagic));
  out.push_back(static_cast<char>(kWireVersion));
  BytesOut().Increment(kWireHeaderBytes);
  for (const IngestPacket& packet : packets) AppendWireFrame(packet, out);
  return out;
}

common::Result<std::vector<IngestPacket>> DecodeWireBinary(
    std::string_view bytes) {
  BytesIn().Increment(bytes.size());
  if (bytes.size() < kWireHeaderBytes)
    return CorruptAt("truncated wire header", bytes.size());
  if (bytes.compare(0, sizeof(kWireMagic),
                    std::string_view(kWireMagic, sizeof(kWireMagic))) != 0)
    return CorruptAt("bad wire magic", 0);
  const auto version = static_cast<std::uint8_t>(bytes[3]);
  if (version != kWireVersion) {
    ParseFailures().Increment();
    return common::InvalidArgument("unsupported wire version " +
                                   std::to_string(version));
  }

  std::vector<IngestPacket> packets;
  std::size_t offset = kWireHeaderBytes;
  while (offset < bytes.size()) {
    const auto kind = static_cast<std::uint8_t>(bytes[offset]);
    std::size_t frame_bytes;
    if (kind == kWireObservationFrame) {
      frame_bytes = kWireObservationBytes;
    } else if (kind == kWireQueryFrame) {
      frame_bytes = kWireQueryBytes;
    } else {
      return CorruptAt("unknown wire frame kind", offset);
    }
    if (bytes.size() - offset < frame_bytes)
      return CorruptAt("truncated wire frame", offset);
    const std::string_view frame = bytes.substr(offset, frame_bytes);
    const std::uint32_t want =
        GetU32(frame.data() + frame_bytes - sizeof(std::uint32_t));
    if (Fnv1a(frame.substr(0, frame_bytes - sizeof(std::uint32_t))) != want)
      return CorruptAt("wire checksum mismatch", offset);

    IngestPacket packet;
    const char* p = frame.data() + 1;
    if (kind == kWireObservationFrame) {
      packet = GetObservationBody(p);
    } else {
      packet.kind = PacketKind::kQuery;
      packet.object_id = GetU64(p);
      packet.timestamp_s = GetF64(p + 8);
      packet.deadline_s = GetF64(p + 16);
    }
    packets.push_back(packet);
    offset += frame_bytes;
  }
  return packets;
}

std::string EncodeWireJson(std::span<const IngestPacket> packets) {
  std::string out;
  for (const IngestPacket& packet : packets) {
    common::JsonObject obj;
    obj["object_id"] = common::Json(double(packet.object_id));
    obj["t"] = common::Json(packet.timestamp_s);
    // JSON has no Inf literal: the default "never" deadline is encoded
    // by omission.
    if (std::isfinite(packet.deadline_s))
      obj["deadline"] = common::Json(packet.deadline_s);
    if (packet.kind == PacketKind::kObservation) {
      obj["kind"] = common::Json("obs");
      obj["ap_id"] = common::Json(packet.ap_id);
      obj["site"] = common::Json(packet.site_index);
      obj["nomadic"] = common::Json(packet.is_nomadic);
      obj["x"] = common::Json(packet.reported_position.x);
      obj["y"] = common::Json(packet.reported_position.y);
      obj["pdp"] = common::Json(packet.pdp);
      obj["weight"] = common::Json(packet.weight);
    } else {
      obj["kind"] = common::Json("query");
    }
    out += common::Json(std::move(obj)).Dump();
    out.push_back('\n');
  }
  BytesOut().Increment(out.size());
  return out;
}

common::Result<std::vector<IngestPacket>> DecodeWireJson(
    std::string_view text) {
  BytesIn().Increment(text.size());
  std::vector<IngestPacket> packets;
  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    if (line.empty()) continue;
    auto fail = [&](const std::string& why) {
      ParseFailures().Increment();
      return common::DataCorruption("corrupt wire line " +
                                    std::to_string(line_number) + ": " + why);
    };
    auto parsed = common::Json::Parse(line);
    if (!parsed.ok()) return fail(parsed.status().message());
    auto decoded = [&]() -> common::Result<IngestPacket> {
      IngestPacket packet;
      NOMLOC_ASSIGN_OR_RETURN(std::string kind, parsed->GetString("kind"));
      NOMLOC_ASSIGN_OR_RETURN(double object_id,
                              parsed->GetDouble("object_id"));
      if (!(object_id >= 0.0) || object_id != std::floor(object_id))
        return common::DataCorruption("object_id is not an integer");
      packet.object_id = std::uint64_t(object_id);
      NOMLOC_ASSIGN_OR_RETURN(packet.timestamp_s, parsed->GetDouble("t"));
      if (auto deadline = parsed->GetDouble("deadline"); deadline.ok())
        packet.deadline_s = *deadline;
      if (kind == "obs") {
        packet.kind = PacketKind::kObservation;
        NOMLOC_ASSIGN_OR_RETURN(double ap_id, parsed->GetDouble("ap_id"));
        packet.ap_id = int(ap_id);
        NOMLOC_ASSIGN_OR_RETURN(double site, parsed->GetDouble("site"));
        packet.site_index = std::size_t(site);
        NOMLOC_ASSIGN_OR_RETURN(packet.is_nomadic,
                                parsed->GetBool("nomadic"));
        NOMLOC_ASSIGN_OR_RETURN(packet.reported_position.x,
                                parsed->GetDouble("x"));
        NOMLOC_ASSIGN_OR_RETURN(packet.reported_position.y,
                                parsed->GetDouble("y"));
        NOMLOC_ASSIGN_OR_RETURN(packet.pdp, parsed->GetDouble("pdp"));
        NOMLOC_ASSIGN_OR_RETURN(packet.weight, parsed->GetDouble("weight"));
      } else if (kind == "query") {
        packet.kind = PacketKind::kQuery;
      } else {
        return common::DataCorruption("unknown packet kind '" + kind + "'");
      }
      return packet;
    }();
    if (!decoded.ok()) return fail(decoded.status().message());
    packets.push_back(*decoded);
  }
  return packets;
}

std::string EncodeWire(std::span<const IngestPacket> packets,
                       WireFormat format) {
  return format == WireFormat::kBinary ? EncodeWireBinary(packets)
                                       : EncodeWireJson(packets);
}

common::Result<std::vector<IngestPacket>> DecodeWire(std::string_view bytes,
                                                     WireFormat format) {
  return format == WireFormat::kBinary ? DecodeWireBinary(bytes)
                                       : DecodeWireJson(bytes);
}

common::Status WireDecoder::Poison(std::string_view what, std::size_t offset) {
  poisoned_ = true;
  poison_status_ = CorruptAt(what, offset);
  return poison_status_;
}

common::Result<void> WireDecoder::Feed(std::string_view chunk) {
  if (poisoned_) return poison_status_;
  BytesIn().Increment(chunk.size());
  buffer_.append(chunk.data(), chunk.size());

  if (!header_done_) {
    // Header fields are only validated once all four bytes are in, so a
    // short prefix of a bad stream reports the same truncation offset
    // DecodeWireBinary would (the fuzz suite splits streams everywhere).
    if (buffer_.size() < kWireHeaderBytes) return {};
    if (buffer_.compare(0, sizeof(kWireMagic),
                        std::string_view(kWireMagic, sizeof(kWireMagic))) != 0)
      return Poison("bad wire magic", 0);
    const auto version = static_cast<std::uint8_t>(buffer_[3]);
    if (version != kWireVersion) {
      poisoned_ = true;
      ParseFailures().Increment();
      poison_status_ = common::InvalidArgument("unsupported wire version " +
                                               std::to_string(version));
      return poison_status_;
    }
    buffer_.erase(0, kWireHeaderBytes);
    stream_offset_ = kWireHeaderBytes;
    header_done_ = true;
  }

  std::size_t cursor = 0;
  while (cursor < buffer_.size()) {
    const auto kind = static_cast<std::uint8_t>(buffer_[cursor]);
    std::size_t frame_bytes;
    if (kind == kWireObservationFrame && accept_.packets) {
      frame_bytes = kWireObservationBytes;
    } else if (kind == kWireQueryFrame && accept_.packets) {
      frame_bytes = kWireQueryBytes;
    } else if (kind == kWireResponseFrame && accept_.responses) {
      frame_bytes = kWireResponseBytes;
    } else if (kind == kWireControlFrame && accept_.controls) {
      frame_bytes = kWireControlBytes;
    } else if (kind == kWireReplicateFrame && accept_.replicates) {
      frame_bytes = kWireReplicateBytes;
    } else {
      buffer_.erase(0, cursor);
      stream_offset_ += cursor;
      return Poison("unknown wire frame kind", stream_offset_);
    }
    if (buffer_.size() - cursor < frame_bytes) break;  // Partial frame.
    const std::string_view frame =
        std::string_view(buffer_).substr(cursor, frame_bytes);
    const std::uint32_t want =
        GetU32(frame.data() + frame_bytes - sizeof(std::uint32_t));
    if (Fnv1a(frame.substr(0, frame_bytes - sizeof(std::uint32_t))) != want) {
      buffer_.erase(0, cursor);
      stream_offset_ += cursor;
      return Poison("wire checksum mismatch", stream_offset_);
    }

    const char* p = frame.data() + 1;
    if (kind == kWireObservationFrame) {
      const IngestPacket packet = GetObservationBody(p);
      if (accept_.ordered) {
        WireEvent event;
        event.kind = kind;
        event.packet = packet;
        events_.push_back(event);
      } else {
        packets_.push_back(packet);
      }
    } else if (kind == kWireQueryFrame) {
      IngestPacket packet;
      packet.kind = PacketKind::kQuery;
      packet.object_id = GetU64(p);
      packet.timestamp_s = GetF64(p + 8);
      packet.deadline_s = GetF64(p + 16);
      if (accept_.ordered) {
        WireEvent event;
        event.kind = kind;
        event.packet = packet;
        events_.push_back(event);
      } else {
        packets_.push_back(packet);
      }
    } else if (kind == kWireResponseFrame) {
      WireResponse response;
      response.object_id = GetU64(p);
      response.timestamp_s = GetF64(p + 8);
      response.status = static_cast<std::uint8_t>(p[16]);
      response.degradation = static_cast<std::uint8_t>(p[17]);
      response.degraded = (static_cast<unsigned char>(p[18]) & 0x01) != 0;
      response.anchor_count = GetU32(p + 19);
      response.position.x = GetF64(p + 23);
      response.position.y = GetF64(p + 31);
      response.relaxation_cost = GetF64(p + 39);
      response.feasible_area_m2 = GetF64(p + 47);
      response.confidence = GetF64(p + 55);
      if (accept_.ordered) {
        WireEvent event;
        event.kind = kind;
        event.response = response;
        events_.push_back(event);
      } else {
        responses_.push_back(response);
      }
    } else if (kind == kWireControlFrame) {
      WireControl control;
      control.op = static_cast<WireControlOp>(p[0]);
      control.token = GetU64(p + 1);
      control.value = GetF64(p + 9);
      control.epoch = GetU64(p + 17);
      if (accept_.ordered) {
        WireEvent event;
        event.kind = kind;
        event.control = control;
        events_.push_back(event);
      } else {
        controls_.push_back(control);
      }
    } else {
      WireReplicate replicate;
      replicate.slot = GetU32(p);
      replicate.epoch = GetU64(p + 4);
      replicate.packet = GetObservationBody(p + 12);
      if (accept_.ordered) {
        WireEvent event;
        event.kind = kind;
        event.replicate = replicate;
        events_.push_back(event);
      } else {
        replicates_.push_back(replicate);
      }
    }
    cursor += frame_bytes;
  }
  buffer_.erase(0, cursor);
  stream_offset_ += cursor;
  return {};
}

common::Result<void> WireDecoder::Finish() {
  if (poisoned_) return poison_status_;
  if (!header_done_)
    return Poison("truncated wire header", buffer_.size());
  if (!buffer_.empty())
    return Poison("truncated wire frame", stream_offset_);
  return {};
}

std::vector<IngestPacket> WireDecoder::TakePackets() {
  return std::exchange(packets_, {});
}

std::vector<WireResponse> WireDecoder::TakeResponses() {
  return std::exchange(responses_, {});
}

std::vector<WireControl> WireDecoder::TakeControls() {
  return std::exchange(controls_, {});
}

std::vector<WireReplicate> WireDecoder::TakeReplicates() {
  return std::exchange(replicates_, {});
}

std::vector<WireEvent> WireDecoder::TakeEvents() {
  return std::exchange(events_, {});
}

}  // namespace nomloc::serving
