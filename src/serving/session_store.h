// Sharded per-object session store for streaming localization.
//
// A *session* is the server's evolving knowledge about one object: one
// entry per measurement source (static AP, or one dwell site of a nomadic
// AP), each holding the per-report PDP observations that arrived for it.
// Because nomadic APs move on, old judgements must not pin the feasible
// cell forever: observations older than `anchor_ttl_s` age out, the anchor
// disappears once its last observation expires, and the SP solver then
// runs on the reduced constraint set (the feasible cell re-expands).
//
// Storage is built for millions of concurrent sessions (bytes/session is
// a first-class, benchmarked number — see DESIGN.md "Serving at scale"):
//
//   * object id -> session is an open-addressing flat hash map
//     (common/flat_hash_map.h), not a node-based tree;
//   * sessions, anchors (the constraint set), and PDP observations (the
//     judgement history) live in per-shard slab arenas of fixed-width,
//     index-linked records (common/slab.h) — a uint32 "next" instead of
//     pointers, freelist reuse instead of per-node malloc;
//   * each shard can carry a live-byte budget: when an ingest pushes the
//     shard past it, least-recently-touched sessions are evicted under
//     pressure (`serving.evictions.pressure`), and `serving.shard.bytes`
//     tracks the live footprint.
//
// Sessions are sharded by object id.  Each shard has its own mutex, so
// ingestion workers handling different shards never contend; the serving
// engine additionally routes every shard to exactly one worker, which
// makes per-object processing order deterministic (FIFO per queue).
//
// All timestamps are logical seconds (serving/clock.h).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "common/flat_hash_map.h"
#include "common/json.h"
#include "common/slab.h"
#include "common/status.h"
#include "geometry/vec2.h"
#include "localization/proximity.h"

namespace nomloc::localization {
class SpSolverSession;  // localization/sp_session.h
}

namespace nomloc::serving {

/// Identifies one measurement source within a session.  Static APs use
/// (ap_id, 0); a nomadic AP's dwell sites use (ap_id, site_index).
struct AnchorKey {
  int ap_id = 0;
  std::size_t site_index = 0;

  friend auto operator<=>(const AnchorKey&, const AnchorKey&) = default;
};

/// One ingested report's contribution to an anchor: the batch-mean PDP,
/// how many frames backed it, and when it was measured.
struct PdpObservation {
  double pdp = 0.0;        ///< Mean PDP of the report's frames [mW].
  double weight = 1.0;     ///< Frame count behind the mean.
  double timestamp_s = 0.0;
};

struct SessionStoreConfig {
  std::size_t shards = 8;
  /// Observations older than this are evicted (the time-decay horizon for
  /// a nomadic AP's old-site judgements).
  double anchor_ttl_s = 30.0;
  /// Sessions untouched for this long are evicted wholesale.
  double session_idle_ttl_s = 300.0;
  /// Live-byte budget per shard (0 = unlimited).  An Upsert that pushes a
  /// shard past its budget evicts least-recently-touched sessions until
  /// the shard fits again (`serving.evictions.pressure`).
  std::size_t shard_bytes_budget = 0;
  /// Expected steady-state totals (across all shards).  Pre-sizes the
  /// index and slabs so resident bytes track live bytes instead of
  /// vector-doubling past them; 0 = grow on demand.
  std::size_t reserve_sessions = 0;
  std::size_t reserve_anchors = 0;
  std::size_t reserve_observations = 0;

  common::Result<void> Validate() const;
};

/// The last successful estimate served for an object — degradation level
/// 3's answer when everything newer has failed or aged out.
struct LastKnownGood {
  geometry::Vec2 position;
  double confidence = 0.0;   ///< Confidence of the original response.
  double timestamp_s = 0.0;  ///< Logical time it was served.
};

/// Deterministic view of one session at a given logical time: live anchors
/// sorted by AnchorKey, ready to feed core::LocateRequest::anchors.
struct SessionSnapshot {
  std::vector<localization::Anchor> anchors;
  /// Distinct anchor keys currently live / ever observed.  live < ever
  /// means constraints have aged out — the response is degraded.
  std::size_t live_keys = 0;
  std::size_t keys_ever = 0;
  double last_touch_s = 0.0;
};

/// Aggregated footprint of the store (see also the per-shard
/// `serving.shard.bytes` histogram).
struct MemoryStats {
  std::size_t sessions = 0;
  std::size_t anchors = 0;
  std::size_t observations = 0;
  /// Bytes of live records + index load (the budgeted quantity).
  std::size_t live_bytes = 0;
  /// Bytes actually allocated (slab capacity, freelist slack, index
  /// headroom included).
  std::size_t resident_bytes = 0;
};

class SessionStore {
 public:
  explicit SessionStore(const SessionStoreConfig& config);

  SessionStore(const SessionStore&) = delete;
  SessionStore& operator=(const SessionStore&) = delete;

  std::size_t ShardCount() const noexcept { return shards_.size(); }
  std::size_t ShardOf(std::uint64_t object_id) const noexcept;

  /// Appends one observation to the object's session (creating the session
  /// and anchor entry as needed).  `position` updates the anchor's
  /// reported position (latest report wins).  Returns true when a new
  /// session was created.
  bool Upsert(std::uint64_t object_id, AnchorKey key, geometry::Vec2 position,
              bool is_nomadic, const PdpObservation& obs, double now_s);

  /// Prunes expired observations of the object's session and returns the
  /// surviving anchors sorted by AnchorKey.  An anchor's PDP is its
  /// observations' weight-averaged mean (a single observation passes
  /// through bit-exactly).  kNotFound when the session does not exist.
  common::Result<SessionSnapshot> Snapshot(std::uint64_t object_id,
                                           double now_s);

  /// Sweeps one shard completely: drops expired observations, empty
  /// anchors, and idle sessions.  Returns the number of sessions evicted.
  /// Also feeds the serving.shard.occupancy / serving.shard.bytes
  /// histograms and eviction counters.
  std::size_t SweepShard(std::size_t shard, double now_s);
  /// Sweeps every shard.
  std::size_t SweepAll(double now_s);
  /// Incremental sweep: examines at most `max_sessions` session slots of
  /// the shard, resuming where the previous step stopped (a round-robin
  /// cursor).  This is the per-query sweep the serving hot path uses — a
  /// full SweepShard is O(sessions/shard) and would dominate query latency
  /// at millions of sessions.  Returns sessions evicted.
  std::size_t SweepStep(std::size_t shard, double now_s,
                        std::size_t max_sessions);

  std::size_t SessionCount() const;

  /// Whether the object currently has a live session.
  bool Contains(std::uint64_t object_id) const;

  /// Removes the object's session and everything it links (anchors,
  /// observations, solver state).  Returns true when a session existed.
  /// This is the cluster's anti-entropy primitive: a promoted or repaired
  /// copy supersedes the local one, which is erased before the merge.
  bool Erase(std::uint64_t object_id);

  /// Sorted ids of every live session satisfying `pred` (null = all).
  std::vector<std::uint64_t> ObjectIds(
      const std::function<bool(std::uint64_t)>& pred) const;

  /// Live/resident footprint aggregated over all shards.
  MemoryStats Memory() const;

  /// Remembers the object's most recent successful estimate (creating the
  /// session if it was already evicted).  Serves the last rung of the
  /// degradation ladder.
  void RecordEstimate(std::uint64_t object_id, const LastKnownGood& estimate,
                      double now_s);
  /// kNotFound when the object has no session or no recorded estimate.
  common::Result<LastKnownGood> LastGood(std::uint64_t object_id) const;

  /// The object's stateful solver session, created with `make` on first
  /// use (and again after an eviction dropped it).  Returns nullptr when
  /// the object has no store session — there is nothing to solve then.
  /// The shared_ptr keeps the solver alive even if a concurrent sweep
  /// evicts the session while the caller is mid-solve.  Solver sessions
  /// are scratch state: they are not checkpointed, and a restored store
  /// rebuilds them lazily.
  std::shared_ptr<localization::SpSolverSession> SolverSession(
      std::uint64_t object_id,
      const std::function<std::shared_ptr<localization::SpSolverSession>()>&
          make);

  /// Serialises every shard's sessions (anchors, observations, last-known
  /// -good estimates) into a schema-versioned JSON document.  Object ids
  /// are extracted and sorted first (flat-map iteration order depends on
  /// insertion history), so equal stores checkpoint to equal bytes no
  /// matter how their contents were built up.
  common::Json CheckpointJson() const;

  /// Filtered checkpoint: only sessions whose object id satisfies `owned`
  /// are serialised (same document schema and byte layout).  This is the
  /// shard-migration path — a cluster router checkpoints just the ids a
  /// placement range owns instead of the whole store.  Checkpoints taken
  /// with complementary predicates and merged via MergeFromJson dump to
  /// the same bytes as one full checkpoint (sessions are sorted by id).
  /// A null predicate means "everything" (== CheckpointJson()).
  common::Json CheckpointJson(
      const std::function<bool(std::uint64_t)>& owned) const;

  /// Replaces the store's contents with a checkpoint produced by
  /// CheckpointJson.  Returns the number of sessions restored; fails with
  /// kInvalidArgument on schema mismatch and kDataCorruption on
  /// non-finite recorded values or duplicate object/anchor ids, leaving
  /// the store unchanged on error.
  common::Result<std::size_t> RestoreFromJson(const common::Json& json);

  /// Adds a checkpoint's sessions to the store *without* clearing it —
  /// the merge half of filtered checkpoints.  An object id that already
  /// has a live session fails with kDataCorruption (two owners claimed
  /// it); like RestoreFromJson the store is unchanged on any error.
  common::Result<std::size_t> MergeFromJson(const common::Json& json);

 private:
  /// One PDP report, index-linked into its anchor's history chain.
  struct ObsRec {
    double pdp = 0.0;
    double weight = 0.0;
    double timestamp_s = 0.0;
    std::uint32_t next = common::kSlabNil;
  };
  /// One constraint source, fixed width, index-linked into its session's
  /// key-sorted chain.
  struct AnchorRec {
    double x = 0.0;
    double y = 0.0;
    std::int32_t ap_id = 0;
    std::uint32_t site = 0;
    std::uint32_t next = common::kSlabNil;
    std::uint32_t obs_head = common::kSlabNil;
    std::uint32_t obs_tail = common::kSlabNil;
    /// Max timestamp ever appended.  For a live anchor this equals the
    /// newest surviving observation (expiry can only strip the max after
    /// everything older has expired too, which frees the whole anchor),
    /// so "is this key fully expired?" is one comparison, not a chain
    /// walk — Upsert's reuse-vs-create decision stays O(1).
    double newest_ts = std::numeric_limits<double>::lowest();
    bool is_nomadic = false;
  };
  struct SessionRec {
    std::uint64_t object_id = 0;
    double last_touch_s = 0.0;
    double lkg_x = 0.0, lkg_y = 0.0, lkg_confidence = 0.0, lkg_t = 0.0;
    std::uint32_t anchor_head = common::kSlabNil;
    std::uint32_t keys_ever = 0;
    bool has_lkg = false;
    /// Warm SP solver state for streaming queries (never checkpointed).
    std::shared_ptr<localization::SpSolverSession> solver;
  };
  struct Shard {
    mutable std::mutex mutex;
    common::FlatHashMap<std::uint64_t, std::uint32_t> index;
    common::Slab<SessionRec> sessions;
    common::Slab<AnchorRec> anchors;
    common::Slab<ObsRec> observations;
    /// Round-robin cursor for SweepStep.
    std::size_t sweep_cursor = 0;
    /// Deterministic per-shard stream for pressure-eviction sampling.
    std::uint64_t rng_state = 0;
  };

  /// Bytes of live records + index load in one shard (caller holds the
  /// shard mutex).
  std::size_t ShardLiveBytes(const Shard& shard) const noexcept;
  std::size_t ShardResidentBytes(const Shard& shard) const noexcept;

  /// Drops expired observations / empty anchors; returns #observations
  /// evicted.  Caller holds the shard mutex.
  std::size_t PruneSession(Shard& shard, SessionRec& session,
                           double now_s) const;
  /// Frees the session and everything it links (caller holds the mutex
  /// and must erase the index entry itself when needed).
  void FreeSessionRecords(Shard& shard, SessionRec& session) const;
  /// Evicts least-recently-touched sessions (sampled) until the shard is
  /// back under its byte budget.  `keep` is never evicted (it is the
  /// session the triggering ingest just touched).  Caller holds the
  /// mutex.  Returns sessions evicted.
  std::size_t EvictForPressure(Shard& shard, std::uint32_t keep_slot);
  /// Prunes one session slot and evicts it when idle/empty.  Returns true
  /// when the slot was evicted.  Caller holds the mutex.
  bool SweepSlot(Shard& shard, std::uint32_t slot, double now_s,
                 std::size_t& observations_evicted);
  /// Shared body of RestoreFromJson / MergeFromJson.
  common::Result<std::size_t> RestoreImpl(const common::Json& json,
                                          bool merge);

  SessionStoreConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace nomloc::serving
