// Sharded per-object session store for streaming localization.
//
// A *session* is the server's evolving knowledge about one object: one
// entry per measurement source (static AP, or one dwell site of a nomadic
// AP), each holding the per-report PDP observations that arrived for it.
// Because nomadic APs move on, old judgements must not pin the feasible
// cell forever: observations older than `anchor_ttl_s` age out, the anchor
// disappears once its last observation expires, and the SP solver then
// runs on the reduced constraint set (the feasible cell re-expands).
//
// Sessions are sharded by object id.  Each shard has its own mutex, so
// ingestion workers handling different shards never contend; the serving
// engine additionally routes every shard to exactly one worker, which
// makes per-object processing order deterministic (FIFO per queue).
//
// All timestamps are logical seconds (serving/clock.h).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "geometry/vec2.h"
#include "localization/proximity.h"

namespace nomloc::localization {
class SpSolverSession;  // localization/sp_session.h
}

namespace nomloc::serving {

/// Identifies one measurement source within a session.  Static APs use
/// (ap_id, 0); a nomadic AP's dwell sites use (ap_id, site_index).
struct AnchorKey {
  int ap_id = 0;
  std::size_t site_index = 0;

  friend auto operator<=>(const AnchorKey&, const AnchorKey&) = default;
};

/// One ingested report's contribution to an anchor: the batch-mean PDP,
/// how many frames backed it, and when it was measured.
struct PdpObservation {
  double pdp = 0.0;        ///< Mean PDP of the report's frames [mW].
  double weight = 1.0;     ///< Frame count behind the mean.
  double timestamp_s = 0.0;
};

struct SessionStoreConfig {
  std::size_t shards = 8;
  /// Observations older than this are evicted (the time-decay horizon for
  /// a nomadic AP's old-site judgements).
  double anchor_ttl_s = 30.0;
  /// Sessions untouched for this long are evicted wholesale.
  double session_idle_ttl_s = 300.0;

  common::Result<void> Validate() const;
};

/// The last successful estimate served for an object — degradation level
/// 3's answer when everything newer has failed or aged out.
struct LastKnownGood {
  geometry::Vec2 position;
  double confidence = 0.0;   ///< Confidence of the original response.
  double timestamp_s = 0.0;  ///< Logical time it was served.
};

/// Deterministic view of one session at a given logical time: live anchors
/// sorted by AnchorKey, ready to feed core::LocateRequest::anchors.
struct SessionSnapshot {
  std::vector<localization::Anchor> anchors;
  /// Distinct anchor keys currently live / ever observed.  live < ever
  /// means constraints have aged out — the response is degraded.
  std::size_t live_keys = 0;
  std::size_t keys_ever = 0;
  double last_touch_s = 0.0;
};

class SessionStore {
 public:
  explicit SessionStore(const SessionStoreConfig& config);

  SessionStore(const SessionStore&) = delete;
  SessionStore& operator=(const SessionStore&) = delete;

  std::size_t ShardCount() const noexcept { return shards_.size(); }
  std::size_t ShardOf(std::uint64_t object_id) const noexcept;

  /// Appends one observation to the object's session (creating the session
  /// and anchor entry as needed).  `position` updates the anchor's
  /// reported position (latest report wins).  Returns true when a new
  /// session was created.
  bool Upsert(std::uint64_t object_id, AnchorKey key, geometry::Vec2 position,
              bool is_nomadic, const PdpObservation& obs, double now_s);

  /// Prunes expired observations of the object's session and returns the
  /// surviving anchors sorted by AnchorKey.  An anchor's PDP is its
  /// observations' weight-averaged mean (a single observation passes
  /// through bit-exactly).  kNotFound when the session does not exist.
  common::Result<SessionSnapshot> Snapshot(std::uint64_t object_id,
                                           double now_s);

  /// Sweeps one shard: drops expired observations, empty anchors, and idle
  /// sessions.  Returns the number of sessions evicted.  Also feeds the
  /// serving.shard.occupancy histogram and eviction counters.
  std::size_t SweepShard(std::size_t shard, double now_s);
  /// Sweeps every shard.
  std::size_t SweepAll(double now_s);

  std::size_t SessionCount() const;

  /// Remembers the object's most recent successful estimate (creating the
  /// session if it was already evicted).  Serves the last rung of the
  /// degradation ladder.
  void RecordEstimate(std::uint64_t object_id, const LastKnownGood& estimate,
                      double now_s);
  /// kNotFound when the object has no session or no recorded estimate.
  common::Result<LastKnownGood> LastGood(std::uint64_t object_id) const;

  /// The object's stateful solver session, created with `make` on first
  /// use (and again after an eviction dropped it).  Returns nullptr when
  /// the object has no store session — there is nothing to solve then.
  /// The shared_ptr keeps the solver alive even if a concurrent sweep
  /// evicts the session while the caller is mid-solve.  Solver sessions
  /// are scratch state: they are not checkpointed, and a restored store
  /// rebuilds them lazily.
  std::shared_ptr<localization::SpSolverSession> SolverSession(
      std::uint64_t object_id,
      const std::function<std::shared_ptr<localization::SpSolverSession>()>&
          make);

  /// Serialises every shard's sessions (anchors, observations, last-known
  /// -good estimates) into a schema-versioned JSON document.  Sessions
  /// iterate in object-id order, so equal stores checkpoint to equal
  /// bytes.
  common::Json CheckpointJson() const;

  /// Replaces the store's contents with a checkpoint produced by
  /// CheckpointJson.  Returns the number of sessions restored; fails with
  /// kInvalidArgument on schema mismatch and kDataCorruption on
  /// non-finite recorded values, leaving the store unchanged on error.
  common::Result<std::size_t> RestoreFromJson(const common::Json& json);

 private:
  struct AnchorState {
    geometry::Vec2 position;
    bool is_nomadic = false;
    std::deque<PdpObservation> observations;
  };
  struct Session {
    // std::map: snapshots iterate in AnchorKey order deterministically.
    std::map<AnchorKey, AnchorState> anchors;
    std::size_t keys_ever = 0;
    double last_touch_s = 0.0;
    std::optional<LastKnownGood> last_good;
    /// Warm SP solver state for streaming queries (never checkpointed).
    std::shared_ptr<localization::SpSolverSession> solver;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::uint64_t, Session> sessions;
  };

  /// Drops expired observations / empty anchors; returns #observations
  /// evicted.  Caller holds the shard mutex.
  std::size_t PruneSession(Session& session, double now_s) const;

  SessionStoreConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace nomloc::serving
