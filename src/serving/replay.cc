#include "serving/replay.h"

#include <algorithm>

#include "common/rng.h"

namespace nomloc::serving {

common::Result<void> ReplayConfig::Validate() const {
  if (objects == 0) return common::InvalidArgument("objects must be >= 1");
  if (epochs == 0) return common::InvalidArgument("epochs must be >= 1");
  if (epoch_interval_s <= 0.0)
    return common::InvalidArgument("epoch_interval_s must be positive");
  if (deadline_s < 0.0)
    return common::InvalidArgument("deadline_s must be >= 0");
  return run.Validate();
}

common::Result<ReplayPlan> BuildReplayPlan(const eval::Scenario& scenario,
                                           const ReplayConfig& config) {
  if (auto valid = config.Validate(); !valid.ok()) return valid.status();
  if (scenario.test_sites.empty())
    return common::InvalidArgument("scenario has no test sites");

  ReplayPlan plan;
  plan.objects = config.objects;
  plan.epoch_count = config.epochs;
  plan.suggested_anchor_ttl_s = 0.5 * config.epoch_interval_s;
  plan.epochs.reserve(config.objects * config.epochs);
  const common::Rng rng(config.run.seed);

  for (std::size_t e = 0; e < config.epochs; ++e) {
    const double epoch_start_s = double(e) * config.epoch_interval_s;
    for (std::size_t o = 0; o < config.objects; ++o) {
      const geometry::Vec2 object_position =
          scenario.test_sites[o % scenario.test_sites.size()];
      // Same forking discipline as eval::RunLocalization: one independent
      // stream per (object, epoch), so the plan is reproducible and
      // insensitive to emission order.
      common::Rng epoch_rng = rng.Fork(1 + e * config.objects + o);
      NOMLOC_ASSIGN_OR_RETURN(
          auto anchors, eval::MeasureEpoch(scenario, config.run,
                                           object_position, epoch_rng));

      ReplayEpoch golden;
      golden.object_id = o;
      golden.epoch = e;
      golden.true_position = object_position;
      golden.anchors = anchors;
      plan.expected_anchors =
          std::max(plan.expected_anchors, anchors.size());

      // Observations spread evenly over the epoch's first quarter and the
      // query lands at 0.4 T, so with the suggested TTL of 0.5 T every
      // observation of this epoch is alive at query time (oldest age
      // 0.4 T) while all of the previous epoch's have aged out (youngest
      // age 1.15 T).
      const double spacing =
          0.25 * config.epoch_interval_s / double(anchors.size());
      for (std::size_t a = 0; a < anchors.size(); ++a) {
        IngestPacket packet;
        packet.kind = PacketKind::kObservation;
        packet.object_id = o;
        // ap_id = anchor index keeps the session snapshot (sorted by
        // AnchorKey) in MeasureEpoch's anchor order — the golden order.
        packet.ap_id = static_cast<int>(a);
        packet.site_index = 0;
        packet.is_nomadic = anchors[a].is_nomadic_site;
        packet.reported_position = anchors[a].position;
        packet.pdp = anchors[a].pdp;
        packet.weight = double(config.run.packets_per_batch);
        packet.timestamp_s = epoch_start_s + double(a) * spacing;
        if (config.deadline_s > 0.0)
          packet.deadline_s = packet.timestamp_s + config.deadline_s;
        plan.packets.push_back(packet);
      }
      IngestPacket query;
      query.kind = PacketKind::kQuery;
      query.object_id = o;
      query.timestamp_s = epoch_start_s + 0.4 * config.epoch_interval_s;
      if (config.deadline_s > 0.0)
        query.deadline_s = query.timestamp_s + config.deadline_s;
      plan.packets.push_back(query);
      plan.epochs.push_back(std::move(golden));
    }
  }

  std::stable_sort(plan.packets.begin(), plan.packets.end(),
                   [](const IngestPacket& a, const IngestPacket& b) {
                     return a.timestamp_s < b.timestamp_s;
                   });
  return plan;
}

}  // namespace nomloc::serving
