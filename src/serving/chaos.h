// Deterministic chaos harness for the streaming serving layer.
//
// A seeded schedule of fault events — anchor death, anchor flap, trace
// corruption, clock jumps, queue saturation — is replayed against a
// StreamingLocalizer driven on a ManualClock.  The schedule is a pure
// function of (seed, replay plan), so a chaos run is exactly as
// reproducible as the replay it perturbs; the ctest suite (label `chaos`)
// replays several seeds and asserts the resilience invariants:
//
//   * no crash and one response per accepted query,
//   * every response carries a valid DegradationLevel, and any response
//     above kNone is flagged degraded with a down-scaled confidence,
//   * error stays bounded while faults are active,
//   * after the last fault clears (plus one TTL), accuracy returns to
//     within a few percent of the fault-free run.
//
// bench/bench_resilience measures recovery latency — logical time from
// fault clearance to the first full-fidelity (kNone) response — over the
// same harness.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/degradation.h"
#include "common/status.h"
#include "eval/scenario.h"
#include "serving/replay.h"
#include "serving/service.h"

namespace nomloc::serving {

enum class ChaosEventKind {
  kAnchorDeath,      ///< An AP goes silent for a window (packets dropped).
  kAnchorFlap,       ///< An AP alternates up/down within the window.
  kTraceCorruption,  ///< An AP's reports are scribbled with NaN PDPs.
  kClockJump,        ///< The logical clock jumps by `magnitude` seconds.
  kQueueSaturation,  ///< A burst of filler packets floods the queues.
};

std::string_view ChaosEventKindName(ChaosEventKind kind) noexcept;

struct ChaosEvent {
  ChaosEventKind kind = ChaosEventKind::kAnchorDeath;
  double start_s = 0.0;
  double end_s = 0.0;    ///< Instantaneous events have end_s == start_s.
  int ap_id = 0;         ///< Target AP (anchor events only).
  /// kClockJump: signed jump [s].  kAnchorFlap: up/down period [s].
  /// kQueueSaturation: burst size in packets.
  double magnitude = 0.0;
};

struct ChaosConfig {
  std::uint64_t seed = 1;
  /// Fault events drawn over the replay window.
  std::size_t events = 6;
  /// Event-kind mix (relative weights; zero disables a kind).
  double anchor_death_weight = 3.0;
  double anchor_flap_weight = 2.0;
  double corruption_weight = 3.0;
  double clock_jump_weight = 1.0;
  double queue_saturation_weight = 1.0;
  /// Fault windows last up to this fraction of one epoch interval.
  double max_window_fraction = 0.75;
  /// Clock jumps are drawn uniform in ±this many seconds.
  double max_clock_jump_s = 0.5;
  /// Queue-saturation bursts enqueue this many filler packets.
  std::size_t saturation_burst = 256;

  common::Result<void> Validate() const;
};

struct ChaosSchedule {
  std::vector<ChaosEvent> events;  ///< Sorted by start_s.
  double last_event_end_s = 0.0;
};

/// Derives the deterministic event schedule for one replay plan.  Anchor
/// targets are drawn from [0, expected_anchors); windows from the plan's
/// timeline.
ChaosSchedule BuildChaosSchedule(const ChaosConfig& config,
                                 const ReplayPlan& plan,
                                 double epoch_interval_s);

/// One query's outcome, joined against the plan's golden truth.
struct ChaosQueryOutcome {
  std::uint64_t object_id = 0;
  std::size_t epoch = 0;
  double timestamp_s = 0.0;
  ServeStatus status = ServeStatus::kOk;
  common::DegradationLevel degradation = common::DegradationLevel::kNone;
  double confidence = 0.0;
  /// Distance to the epoch's true position [m]; meaningful when status
  /// is kOk.
  double error_m = 0.0;
};

struct ChaosReport {
  ChaosSchedule schedule;
  std::vector<ChaosQueryOutcome> outcomes;
  /// Injection tallies.
  std::size_t injected_drops = 0;        ///< Packets eaten by death/flap.
  std::size_t injected_corruptions = 0;  ///< Reports scribbled with NaN.
  std::size_t clock_jumps = 0;
  std::size_t saturation_bursts = 0;
  /// Admission tallies over the real (non-filler) stream.
  std::size_t admit_accepted = 0;
  std::size_t admit_rejected_corrupt = 0;
  std::size_t admit_rejected_breaker = 0;
  std::size_t admit_rejected_queue_full = 0;
  std::size_t admit_rejected_deadline = 0;
  std::size_t admit_dropped_by_fault = 0;
  /// Responses per degradation rung (index = level).
  std::size_t degradation_counts[4] = {0, 0, 0, 0};
  /// Logical time from the last fault clearing to the first subsequent
  /// full-fidelity (kOk, kNone) response; negative when no such response
  /// exists (or no events were scheduled).
  double recovery_latency_s = -1.0;
};

/// Replays `plan` through a fresh StreamingLocalizer while applying the
/// chaos schedule.  `serving` seeds the service configuration (the
/// harness forces a ManualClock and anchor TTLs from the plan).  Fully
/// deterministic for a given (plan, chaos config, serving config).
common::Result<ChaosReport> RunChaos(const core::NomLocEngine& engine,
                                     const ReplayPlan& plan,
                                     double epoch_interval_s,
                                     const ChaosConfig& chaos,
                                     ServingConfig serving);

}  // namespace nomloc::serving
