#include "serving/circuit_breaker.h"

#include <algorithm>

#include "common/metrics.h"

namespace nomloc::serving {

common::Result<void> CircuitBreakerConfig::Validate() const {
  if (failure_threshold == 0)
    return common::InvalidArgument("failure_threshold must be >= 1");
  if (base_backoff_s <= 0.0)
    return common::InvalidArgument("base_backoff_s must be positive");
  if (max_backoff_s < base_backoff_s)
    return common::InvalidArgument("max_backoff_s must be >= base_backoff_s");
  return {};
}

std::string_view BreakerStateName(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "CLOSED";
    case BreakerState::kOpen: return "OPEN";
    case BreakerState::kHalfOpen: return "HALF_OPEN";
  }
  return "UNKNOWN";
}

void CircuitBreaker::TripOpen(double now_s) noexcept {
  state_ = BreakerState::kOpen;
  retry_at_s_ = now_s + backoff_s_;
  common::MetricRegistry::Global()
      .Counter("serving.breaker.opened")
      .Increment();
}

bool CircuitBreaker::Allow(double now_s) noexcept {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now_s < retry_at_s_) return false;
      state_ = BreakerState::kHalfOpen;
      return true;  // The single probe.
    case BreakerState::kHalfOpen:
      return false;  // Probe outstanding — hold everything else back.
  }
  return false;
}

void CircuitBreaker::RecordSuccess(double /*now_s*/) noexcept {
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    state_ = BreakerState::kClosed;
    backoff_s_ = config_.base_backoff_s;
    common::MetricRegistry::Global()
        .Counter("serving.breaker.reclosed")
        .Increment();
  }
}

void CircuitBreaker::RecordFailure(double now_s) noexcept {
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: back off twice as long before the next one.
    backoff_s_ = std::min(backoff_s_ * 2.0, config_.max_backoff_s);
    TripOpen(now_s);
    return;
  }
  if (state_ == BreakerState::kOpen) return;  // Already rejecting.
  if (++consecutive_failures_ >= config_.failure_threshold) {
    consecutive_failures_ = 0;
    TripOpen(now_s);
  }
}

bool BreakerBank::Allow(int ap_id, double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, created] = breakers_.try_emplace(ap_id, config_);
  return it->second.Allow(now_s);
}

void BreakerBank::RecordSuccess(int ap_id, double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, created] = breakers_.try_emplace(ap_id, config_);
  it->second.RecordSuccess(now_s);
}

void BreakerBank::RecordFailure(int ap_id, double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, created] = breakers_.try_emplace(ap_id, config_);
  it->second.RecordFailure(now_s);
}

BreakerState BreakerBank::StateOf(int ap_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = breakers_.find(ap_id);
  return it == breakers_.end() ? BreakerState::kClosed : it->second.State();
}

std::size_t BreakerBank::UnhealthyCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [ap, breaker] : breakers_)
    if (breaker.State() != BreakerState::kClosed) ++n;
  return n;
}

}  // namespace nomloc::serving
