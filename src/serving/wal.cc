#include "serving/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/metrics.h"

namespace nomloc::serving {

namespace {

common::MetricCounter& WalMetric(std::string_view name) {
  return common::MetricRegistry::Global().Counter(name);
}

std::string ErrnoMessage(std::string_view what, const std::string& path) {
  return std::string(what) + " '" + path + "': " + std::strerror(errno);
}

/// mkdir -p: creates every missing component of `dir`.
common::Result<void> MakeDirectories(const std::string& dir) {
  if (dir.empty())
    return common::InvalidArgument("wal directory must not be empty");
  std::string prefix;
  std::size_t start = 0;
  while (start <= dir.size()) {
    std::size_t end = dir.find('/', start);
    if (end == std::string::npos) end = dir.size();
    prefix.assign(dir, 0, end);
    start = end + 1;
    if (prefix.empty()) continue;  // Leading '/' of an absolute path.
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
      return common::FailedPrecondition(ErrnoMessage("mkdir", prefix));
  }
  return {};
}

common::Result<std::string> ReadWholeFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT)
      return common::NotFound("no such file '" + path + "'");
    return common::FailedPrecondition(ErrnoMessage("open", path));
  }
  std::string out;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return common::FailedPrecondition(ErrnoMessage("read", path));
    }
    if (n == 0) break;
    out.append(buffer, std::size_t(n));
  }
  ::close(fd);
  return out;
}

common::Result<void> WriteAll(int fd, std::string_view bytes,
                              const std::string& path) {
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + offset, bytes.size() - offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      return common::FailedPrecondition(ErrnoMessage("write", path));
    }
    offset += std::size_t(n);
  }
  return {};
}

std::string SegmentName(std::uint64_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%06" PRIu64 ".log", index);
  return name;
}

std::string SegmentPath(const std::string& dir, std::uint64_t index) {
  return dir + "/" + SegmentName(index);
}

/// Sorted indices of every wal-NNNNNN.log in `dir`.
common::Result<std::vector<std::uint64_t>> ScanSegments(
    const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr)
    return common::FailedPrecondition(ErrnoMessage("opendir", dir));
  std::vector<std::uint64_t> indices;
  while (const dirent* entry = ::readdir(handle)) {
    std::uint64_t index = 0;
    char tail = 0;
    if (std::sscanf(entry->d_name, "wal-%6" SCNu64 ".lo%c", &index, &tail) ==
            2 &&
        tail == 'g')
      indices.push_back(index);
  }
  ::closedir(handle);
  std::sort(indices.begin(), indices.end());
  return indices;
}

common::Result<void> FsyncPath(const std::string& path, bool directory) {
  const int fd =
      ::open(path.c_str(), directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
  if (fd < 0) return common::FailedPrecondition(ErrnoMessage("open", path));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return common::FailedPrecondition(ErrnoMessage("fsync", path));
  return {};
}

std::string DirnameOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

constexpr std::string_view kCheckpointMagic = "NLCKPT1";

}  // namespace

common::Result<void> WalConfig::Validate() const {
  if (directory.empty())
    return common::InvalidArgument("wal directory must not be empty");
  if (segment_bytes < 256)
    return common::InvalidArgument(
        "wal segment_bytes must be >= 256 (a segment must hold at least "
        "one record past its header)");
  return {};
}

common::Result<WalOpenResult> WriteAheadLog::Open(WalConfig config,
                                                  WireDecoderAccept accept) {
  NOMLOC_RETURN_IF_ERROR(config.Validate().status());
  NOMLOC_RETURN_IF_ERROR(MakeDirectories(config.directory).status());
  NOMLOC_ASSIGN_OR_RETURN(std::vector<std::uint64_t> segments,
                          ScanSegments(config.directory));

  WalOpenResult result;
  result.segments_scanned = segments.size();
  accept.ordered = true;

  std::size_t last_valid_bytes = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const bool last = (i + 1 == segments.size());
    const std::string path = SegmentPath(config.directory, segments[i]);
    NOMLOC_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(path));
    WireDecoder decoder(accept);
    auto fed = decoder.Feed(bytes);
    if (!fed.ok()) {
      // A mid-stream decode failure is real damage even in the last
      // segment: a crash tears the *tail* off (a partial final write) —
      // it never flips bits inside records that later writes appended
      // after.
      return common::DataCorruption("wal segment " + path + ": " +
                                    fed.status().message());
    }
    if (auto finished = decoder.Finish(); !finished.ok()) {
      if (!last)
        return common::DataCorruption("wal segment " + path + ": " +
                                      finished.status().message());
      // Torn tail: keep every complete record, drop the partial one.
      const std::size_t valid = decoder.BytesDecoded() >= kWireHeaderBytes
                                    ? decoder.BytesDecoded()
                                    : 0;
      if (::truncate(path.c_str(), off_t(valid)) != 0)
        return common::FailedPrecondition(ErrnoMessage("truncate", path));
      NOMLOC_RETURN_IF_ERROR(FsyncPath(path, /*directory=*/false).status());
      result.torn_tail_truncated = true;
      WalMetric("serving.wal.torn_tails").Increment();
      last_valid_bytes = valid;
    } else {
      last_valid_bytes = decoder.BytesDecoded();
    }
    std::vector<WireEvent> events = decoder.TakeEvents();
    result.frames_replayed += events.size();
    result.events.insert(result.events.end(), events.begin(), events.end());
  }
  WalMetric("serving.wal.replayed_frames").Increment(result.frames_replayed);

  auto wal = std::unique_ptr<WriteAheadLog>(new WriteAheadLog(config));
  wal->segment_count_ = std::max<std::size_t>(segments.size(), 1);
  // Continue the last segment unless it is already full; a truncated-to-
  // zero tail segment is reused (OpenSegment rewrites the header).
  std::uint64_t open_index = 1;
  if (!segments.empty()) {
    open_index = segments.back();
    if (last_valid_bytes >= config.segment_bytes) {
      ++open_index;
      ++wal->segment_count_;
    }
  }
  NOMLOC_RETURN_IF_ERROR(wal->OpenSegment(open_index).status());
  result.wal = std::move(wal);
  return result;
}

WriteAheadLog::~WriteAheadLog() { (void)CloseSegment(); }

common::Result<void> WriteAheadLog::OpenSegment(std::uint64_t index) {
  const std::string path = SegmentPath(config_.directory, index);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return common::FailedPrecondition(ErrnoMessage("open", path));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return common::FailedPrecondition(ErrnoMessage("fstat", path));
  }
  fd_ = fd;
  segment_index_ = index;
  segment_size_ = std::size_t(st.st_size);
  if (segment_size_ == 0) {
    const std::string header = WireHeader();
    NOMLOC_RETURN_IF_ERROR(WriteAll(fd_, header, path).status());
    segment_size_ = header.size();
    if (config_.fsync)
      NOMLOC_RETURN_IF_ERROR(Sync().status());
  }
  return {};
}

common::Result<void> WriteAheadLog::CloseSegment() {
  if (fd_ < 0) return {};
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0)
    return common::FailedPrecondition(
        ErrnoMessage("close", SegmentPath(config_.directory, segment_index_)));
  return {};
}

common::Result<void> WriteAheadLog::Append(std::string_view frames) {
  if (frames.empty()) return {};
  if (fd_ < 0)
    return common::FailedPrecondition("write-ahead log is not open");
  if (segment_size_ >= config_.segment_bytes) {
    NOMLOC_RETURN_IF_ERROR(CloseSegment().status());
    NOMLOC_RETURN_IF_ERROR(OpenSegment(segment_index_ + 1).status());
    ++segment_count_;
    WalMetric("serving.wal.rotations").Increment();
  }
  NOMLOC_RETURN_IF_ERROR(
      WriteAll(fd_, frames,
               SegmentPath(config_.directory, segment_index_)).status());
  segment_size_ += frames.size();
  appended_bytes_ += frames.size();
  WalMetric("serving.wal.appends").Increment();
  WalMetric("serving.wal.bytes").Increment(frames.size());
  if (config_.fsync) NOMLOC_RETURN_IF_ERROR(Sync().status());
  return {};
}

common::Result<void> WriteAheadLog::Sync() {
  if (fd_ < 0) return {};
  if (::fsync(fd_) != 0)
    return common::FailedPrecondition(
        ErrnoMessage("fsync", SegmentPath(config_.directory, segment_index_)));
  WalMetric("serving.wal.syncs").Increment();
  return {};
}

common::Result<void> WriteAheadLog::Reset() {
  NOMLOC_RETURN_IF_ERROR(CloseSegment().status());
  NOMLOC_ASSIGN_OR_RETURN(std::vector<std::uint64_t> segments,
                          ScanSegments(config_.directory));
  for (std::uint64_t index : segments) {
    const std::string path = SegmentPath(config_.directory, index);
    if (::unlink(path.c_str()) != 0 && errno != ENOENT)
      return common::FailedPrecondition(ErrnoMessage("unlink", path));
  }
  NOMLOC_RETURN_IF_ERROR(
      FsyncPath(config_.directory, /*directory=*/true).status());
  segment_count_ = 1;
  return OpenSegment(1);
}

common::Result<void> AtomicWriteFile(const std::string& path,
                                     std::string_view bytes) {
  if (path.empty())
    return common::InvalidArgument("file path must not be empty");
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return common::FailedPrecondition(ErrnoMessage("open", tmp));
  if (auto written = WriteAll(fd, bytes, tmp); !written.ok()) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return written.status();
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return common::FailedPrecondition(ErrnoMessage("fsync", tmp));
  }
  if (::close(fd) != 0)
    return common::FailedPrecondition(ErrnoMessage("close", tmp));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return common::FailedPrecondition(ErrnoMessage("rename", tmp));
  }
  // The rename is only durable once the directory entry is; without this
  // a crash could resurrect the old file after the caller saw the new.
  return FsyncPath(DirnameOf(path), /*directory=*/true);
}

common::Result<void> SaveCheckpointFile(const std::string& path,
                                        std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 32);
  out.append(kCheckpointMagic);
  out.push_back(' ');
  out.append(std::to_string(payload.size()));
  out.push_back(' ');
  out.append(std::to_string(WireFnv1a(payload)));
  out.push_back('\n');
  out.append(payload);
  return AtomicWriteFile(path, out);
}

common::Result<std::string> LoadCheckpointFile(const std::string& path) {
  NOMLOC_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(path));
  const std::size_t newline = bytes.find('\n');
  if (newline == std::string::npos)
    return common::DataCorruption("checkpoint file '" + path +
                                  "' has no header line");
  const std::string header = bytes.substr(0, newline);
  std::uint64_t declared = 0;
  std::uint32_t checksum = 0;
  char tail = 0;
  if (std::sscanf(header.c_str(), "NLCKPT1 %" SCNu64 " %" SCNu32 "%c",
                  &declared, &checksum, &tail) != 2)
    return common::DataCorruption("checkpoint file '" + path +
                                  "' has a malformed header");
  const std::string_view payload =
      std::string_view(bytes).substr(newline + 1);
  if (payload.size() < declared)
    return common::DataCorruption(
        "checkpoint file '" + path + "' is truncated (" +
        std::to_string(payload.size()) + " of " + std::to_string(declared) +
        " payload bytes)");
  if (payload.size() > declared)
    return common::DataCorruption("checkpoint file '" + path +
                                  "' has trailing bytes");
  if (WireFnv1a(payload) != checksum)
    return common::DataCorruption("checkpoint file '" + path +
                                  "' checksum mismatch");
  return std::string(payload);
}

}  // namespace nomloc::serving
