#include "serving/session_store.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/metrics.h"

namespace nomloc::serving {

namespace {

/// Distinct-stream constant so pressure-eviction sampling never correlates
/// with shard routing.
constexpr std::uint64_t kEvictionRngSalt = 0x9e3779b97f4a7c15ULL;

std::uint64_t NextRandom(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t x = state;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Pressure eviction draws this many candidate sessions and evicts the
/// least recently touched (Redis-style sampled LRU: O(1) per eviction,
/// no global recency list to maintain on the ingest hot path).
constexpr std::size_t kEvictionSamples = 8;

common::MetricHistogram& ShardBytesHistogram() {
  return common::MetricRegistry::Global().Histogram("serving.shard.bytes", {},
                                                    1.0, 1e9, 64);
}

}  // namespace

common::Result<void> SessionStoreConfig::Validate() const {
  if (shards == 0) return common::InvalidArgument("shards must be >= 1");
  if (anchor_ttl_s <= 0.0)
    return common::InvalidArgument("anchor_ttl_s must be positive");
  if (session_idle_ttl_s <= 0.0)
    return common::InvalidArgument("session_idle_ttl_s must be positive");
  return {};
}

SessionStore::SessionStore(const SessionStoreConfig& config)
    : config_(config) {
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->rng_state = kEvictionRngSalt * (i + 1);
    if (config_.reserve_sessions > 0) {
      const std::size_t per_shard =
          (config_.reserve_sessions + config_.shards - 1) / config_.shards;
      shard->index.Reserve(per_shard);
      shard->sessions.Reserve(per_shard);
    }
    if (config_.reserve_anchors > 0)
      shard->anchors.Reserve(
          (config_.reserve_anchors + config_.shards - 1) / config_.shards);
    if (config_.reserve_observations > 0)
      shard->observations.Reserve(
          (config_.reserve_observations + config_.shards - 1) /
          config_.shards);
    shards_.push_back(std::move(shard));
  }
}

std::size_t SessionStore::ShardOf(std::uint64_t object_id) const noexcept {
  // splitmix64 finalizer: adjacent object ids spread over all shards.
  std::uint64_t x = object_id + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % shards_.size());
}

std::size_t SessionStore::ShardLiveBytes(const Shard& shard) const noexcept {
  // The index's load-factor headroom is structural (a flat map cannot run
  // at 100% load), so its full slot array counts as live.
  return shard.index.CapacityBytes() + shard.sessions.LiveBytes() +
         shard.anchors.LiveBytes() + shard.observations.LiveBytes();
}

std::size_t SessionStore::ShardResidentBytes(
    const Shard& shard) const noexcept {
  return shard.index.CapacityBytes() + shard.sessions.CapacityBytes() +
         shard.anchors.CapacityBytes() + shard.observations.CapacityBytes();
}

bool SessionStore::Upsert(std::uint64_t object_id, AnchorKey key,
                          geometry::Vec2 position, bool is_nomadic,
                          const PdpObservation& obs, double now_s) {
  Shard& shard = *shards_[ShardOf(object_id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [slot_ref, created] = shard.index.Insert(object_id);
  if (created) {
    *slot_ref = shard.sessions.Alloc();
    shard.sessions[*slot_ref].object_id = object_id;
  }
  const std::uint32_t slot = *slot_ref;
  SessionRec& session = shard.sessions[slot];
  session.last_touch_s = now_s;

  // Find the anchor in the key-sorted chain (sessions hold a handful of
  // anchors, so the linear walk beats any per-session table).
  const std::int32_t ap_id = static_cast<std::int32_t>(key.ap_id);
  const std::uint32_t site = static_cast<std::uint32_t>(key.site_index);
  std::uint32_t prev = common::kSlabNil;
  std::uint32_t cur = session.anchor_head;
  while (cur != common::kSlabNil) {
    const AnchorRec& a = shard.anchors[cur];
    if (a.ap_id > ap_id || (a.ap_id == ap_id && a.site >= site)) break;
    prev = cur;
    cur = a.next;
  }
  bool matched = cur != common::kSlabNil && shard.anchors[cur].ap_id == ap_id &&
                 shard.anchors[cur].site == site;
  // Decide reuse-vs-create from the key's own expiry, not from whether a
  // query-time prune happened to run first: keys_ever must be a pure
  // function of the observation stream's timestamps, because a
  // replication standby never serves queries yet has to agree with its
  // primary on the `degraded` flag after a promotion.  The check is one
  // comparison against newest_ts; the chain walk only happens when the
  // whole key expired, and each observation is freed at most once, so
  // the ingest hot path stays amortized O(1).  Partially expired
  // observations age out at the next snapshot or sweep, as before.
  if (matched &&
      now_s - shard.anchors[cur].newest_ts > config_.anchor_ttl_s) {
    AnchorRec& a = shard.anchors[cur];
    std::size_t evicted = 0;
    std::uint32_t obs_index = a.obs_head;
    while (obs_index != common::kSlabNil) {
      const std::uint32_t next = shard.observations[obs_index].next;
      shard.observations.Free(obs_index);
      ++evicted;
      obs_index = next;
    }
    common::MetricRegistry::Global()
        .Counter("serving.observations.evicted")
        .Increment(evicted);
    const std::uint32_t next_anchor = a.next;
    if (prev == common::kSlabNil)
      session.anchor_head = next_anchor;
    else
      shard.anchors[prev].next = next_anchor;
    shard.anchors.Free(cur);
    cur = next_anchor;
    matched = false;  // fully expired: the upsert re-creates the key
  }
  std::uint32_t anchor_index;
  if (matched) {
    anchor_index = cur;
  } else {
    anchor_index = shard.anchors.Alloc();
    AnchorRec& a = shard.anchors[anchor_index];
    a.ap_id = ap_id;
    a.site = site;
    a.next = cur;
    if (prev == common::kSlabNil)
      session.anchor_head = anchor_index;
    else
      shard.anchors[prev].next = anchor_index;
    ++session.keys_ever;
  }
  AnchorRec& anchor = shard.anchors[anchor_index];
  anchor.x = position.x;
  anchor.y = position.y;
  anchor.is_nomadic = is_nomadic;

  const std::uint32_t obs_index = shard.observations.Alloc();
  ObsRec& rec = shard.observations[obs_index];
  rec.pdp = obs.pdp;
  rec.weight = obs.weight;
  rec.timestamp_s = obs.timestamp_s;
  rec.next = common::kSlabNil;
  if (anchor.obs_tail == common::kSlabNil)
    anchor.obs_head = obs_index;
  else
    shard.observations[anchor.obs_tail].next = obs_index;
  anchor.obs_tail = obs_index;
  anchor.newest_ts = std::max(anchor.newest_ts, obs.timestamp_s);

  if (created)
    common::MetricRegistry::Global()
        .Counter("serving.sessions.created")
        .Increment();
  if (config_.shard_bytes_budget > 0 &&
      ShardLiveBytes(shard) > config_.shard_bytes_budget)
    EvictForPressure(shard, slot);
  return created;
}

std::size_t SessionStore::EvictForPressure(Shard& shard,
                                           std::uint32_t keep_slot) {
  auto& registry = common::MetricRegistry::Global();
  static auto& pressure_counter =
      registry.Counter("serving.evictions.pressure");
  static auto& sessions_evicted_counter =
      registry.Counter("serving.sessions.evicted");
  std::size_t evicted = 0;
  while (ShardLiveBytes(shard) > config_.shard_bytes_budget &&
         shard.sessions.live() > 1) {
    // Sampled LRU: draw a few random live slots, evict the oldest touch.
    std::uint32_t victim = common::kSlabNil;
    double victim_touch_s = 0.0;
    const std::size_t capacity = shard.sessions.capacity();
    for (std::size_t draw = 0; draw < kEvictionSamples; ++draw) {
      std::uint32_t slot =
          static_cast<std::uint32_t>(NextRandom(shard.rng_state) % capacity);
      // Walk to the next live slot (wrapping) so draws always land.
      for (std::size_t step = 0; step < capacity; ++step) {
        if (shard.sessions.IsLive(slot)) break;
        slot = static_cast<std::uint32_t>((slot + 1) % capacity);
      }
      if (!shard.sessions.IsLive(slot) || slot == keep_slot) continue;
      const double touch = shard.sessions[slot].last_touch_s;
      if (victim == common::kSlabNil || touch < victim_touch_s) {
        victim = slot;
        victim_touch_s = touch;
      }
    }
    if (victim == common::kSlabNil) break;  // only the protected session left
    SessionRec& session = shard.sessions[victim];
    shard.index.Erase(session.object_id);
    FreeSessionRecords(shard, session);
    shard.sessions.Free(victim);
    ++evicted;
  }
  if (evicted > 0) {
    pressure_counter.Increment(evicted);
    sessions_evicted_counter.Increment(evicted);
  }
  return evicted;
}

void SessionStore::FreeSessionRecords(Shard& shard,
                                      SessionRec& session) const {
  std::uint32_t anchor_index = session.anchor_head;
  while (anchor_index != common::kSlabNil) {
    AnchorRec& anchor = shard.anchors[anchor_index];
    std::uint32_t obs_index = anchor.obs_head;
    while (obs_index != common::kSlabNil) {
      const std::uint32_t next = shard.observations[obs_index].next;
      shard.observations.Free(obs_index);
      obs_index = next;
    }
    const std::uint32_t next = anchor.next;
    shard.anchors.Free(anchor_index);
    anchor_index = next;
  }
  session.anchor_head = common::kSlabNil;
}

std::size_t SessionStore::PruneSession(Shard& shard, SessionRec& session,
                                       double now_s) const {
  std::size_t evicted = 0;
  std::uint32_t prev_anchor = common::kSlabNil;
  std::uint32_t anchor_index = session.anchor_head;
  while (anchor_index != common::kSlabNil) {
    AnchorRec& anchor = shard.anchors[anchor_index];
    // Delay injection can land an old-timestamped observation behind a
    // newer one, so expiry scans the whole chain, not just the head.
    std::uint32_t prev_obs = common::kSlabNil;
    std::uint32_t obs_index = anchor.obs_head;
    while (obs_index != common::kSlabNil) {
      ObsRec& obs = shard.observations[obs_index];
      const std::uint32_t next = obs.next;
      if (now_s - obs.timestamp_s > config_.anchor_ttl_s) {
        if (prev_obs == common::kSlabNil)
          anchor.obs_head = next;
        else
          shard.observations[prev_obs].next = next;
        if (anchor.obs_tail == obs_index) anchor.obs_tail = prev_obs;
        shard.observations.Free(obs_index);
        ++evicted;
      } else {
        prev_obs = obs_index;
      }
      obs_index = next;
    }
    const std::uint32_t next_anchor = anchor.next;
    if (anchor.obs_head == common::kSlabNil) {
      if (prev_anchor == common::kSlabNil)
        session.anchor_head = next_anchor;
      else
        shard.anchors[prev_anchor].next = next_anchor;
      shard.anchors.Free(anchor_index);
    } else {
      prev_anchor = anchor_index;
    }
    anchor_index = next_anchor;
  }
  return evicted;
}

common::Result<SessionSnapshot> SessionStore::Snapshot(
    std::uint64_t object_id, double now_s) {
  Shard& shard = *shards_[ShardOf(object_id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const std::uint32_t* slot = shard.index.Find(object_id);
  if (slot == nullptr) return common::NotFound("no session for object");
  SessionRec& session = shard.sessions[*slot];
  const std::size_t evicted = PruneSession(shard, session, now_s);
  if (evicted > 0)
    common::MetricRegistry::Global()
        .Counter("serving.observations.evicted")
        .Increment(evicted);

  SessionSnapshot snap;
  snap.keys_ever = session.keys_ever;
  snap.last_touch_s = session.last_touch_s;
  for (std::uint32_t anchor_index = session.anchor_head;
       anchor_index != common::kSlabNil;
       anchor_index = shard.anchors[anchor_index].next) {
    const AnchorRec& anchor = shard.anchors[anchor_index];
    localization::Anchor out;
    out.position = {anchor.x, anchor.y};
    out.is_nomadic_site = anchor.is_nomadic;
    const ObsRec& first = shard.observations[anchor.obs_head];
    if (first.next == common::kSlabNil) {
      // Bit-exact pass-through: the streaming path must reproduce the
      // batch pipeline exactly when each anchor arrived as one report.
      out.pdp = first.pdp;
    } else {
      double weighted = 0.0, total = 0.0;
      for (std::uint32_t obs_index = anchor.obs_head;
           obs_index != common::kSlabNil;
           obs_index = shard.observations[obs_index].next) {
        const ObsRec& obs = shard.observations[obs_index];
        weighted += obs.pdp * obs.weight;
        total += obs.weight;
      }
      out.pdp = total > 0.0 ? weighted / total : 0.0;
    }
    snap.anchors.push_back(out);
  }
  snap.live_keys = snap.anchors.size();
  return snap;
}

bool SessionStore::SweepSlot(Shard& shard, std::uint32_t slot, double now_s,
                             std::size_t& observations_evicted) {
  SessionRec& session = shard.sessions[slot];
  observations_evicted += PruneSession(shard, session, now_s);
  const bool idle = now_s - session.last_touch_s > config_.session_idle_ttl_s;
  if (!idle && session.anchor_head != common::kSlabNil) return false;
  shard.index.Erase(session.object_id);
  FreeSessionRecords(shard, session);
  shard.sessions.Free(slot);
  return true;
}

std::size_t SessionStore::SweepShard(std::size_t shard_index, double now_s) {
  auto& registry = common::MetricRegistry::Global();
  Shard& shard = *shards_[shard_index];
  std::size_t sessions_evicted = 0;
  std::size_t observations_evicted = 0;
  std::size_t occupancy = 0;
  std::size_t live_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const std::size_t capacity = shard.sessions.capacity();
    for (std::size_t slot = 0; slot < capacity; ++slot) {
      if (!shard.sessions.IsLive(static_cast<std::uint32_t>(slot))) continue;
      if (SweepSlot(shard, static_cast<std::uint32_t>(slot), now_s,
                    observations_evicted))
        ++sessions_evicted;
    }
    occupancy = shard.sessions.live();
    live_bytes = ShardLiveBytes(shard);
  }
  if (observations_evicted > 0)
    registry.Counter("serving.observations.evicted")
        .Increment(observations_evicted);
  if (sessions_evicted > 0)
    registry.Counter("serving.sessions.evicted").Increment(sessions_evicted);
  registry
      .Histogram("serving.shard.occupancy", {}, 1.0, 1e6, 48)
      .Record(static_cast<double>(occupancy));
  ShardBytesHistogram().Record(static_cast<double>(live_bytes));
  return sessions_evicted;
}

std::size_t SessionStore::SweepStep(std::size_t shard_index, double now_s,
                                    std::size_t max_sessions) {
  auto& registry = common::MetricRegistry::Global();
  Shard& shard = *shards_[shard_index];
  std::size_t sessions_evicted = 0;
  std::size_t observations_evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const std::size_t capacity = shard.sessions.capacity();
    if (capacity == 0) return 0;
    std::size_t cursor = shard.sweep_cursor % capacity;
    const std::size_t steps = std::min(max_sessions, capacity);
    for (std::size_t i = 0; i < steps; ++i) {
      const auto slot = static_cast<std::uint32_t>(cursor);
      cursor = (cursor + 1) % capacity;
      if (!shard.sessions.IsLive(slot)) continue;
      if (SweepSlot(shard, slot, now_s, observations_evicted))
        ++sessions_evicted;
    }
    shard.sweep_cursor = cursor;
  }
  if (observations_evicted > 0)
    registry.Counter("serving.observations.evicted")
        .Increment(observations_evicted);
  if (sessions_evicted > 0)
    registry.Counter("serving.sessions.evicted").Increment(sessions_evicted);
  return sessions_evicted;
}

std::size_t SessionStore::SweepAll(double now_s) {
  std::size_t evicted = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i)
    evicted += SweepShard(i, now_s);
  return evicted;
}

bool SessionStore::Contains(std::uint64_t object_id) const {
  const Shard& shard = *shards_[ShardOf(object_id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.index.Find(object_id) != nullptr;
}

bool SessionStore::Erase(std::uint64_t object_id) {
  Shard& shard = *shards_[ShardOf(object_id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const std::uint32_t* slot = shard.index.Find(object_id);
  if (slot == nullptr) return false;
  const std::uint32_t session_slot = *slot;
  SessionRec& session = shard.sessions[session_slot];
  shard.index.Erase(object_id);
  FreeSessionRecords(shard, session);
  shard.sessions.Free(session_slot);
  return true;
}

std::vector<std::uint64_t> SessionStore::ObjectIds(
    const std::function<bool(std::uint64_t)>& pred) const {
  std::vector<std::uint64_t> ids;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.index.ForEach([&](std::uint64_t object_id, const std::uint32_t&) {
      if (!pred || pred(object_id)) ids.push_back(object_id);
    });
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t SessionStore::SessionCount() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    n += shard->sessions.live();
  }
  return n;
}

MemoryStats SessionStore::Memory() const {
  MemoryStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.sessions += shard->sessions.live();
    stats.anchors += shard->anchors.live();
    stats.observations += shard->observations.live();
    stats.live_bytes += ShardLiveBytes(*shard);
    stats.resident_bytes += ShardResidentBytes(*shard);
  }
  return stats;
}

void SessionStore::RecordEstimate(std::uint64_t object_id,
                                  const LastKnownGood& estimate,
                                  double now_s) {
  Shard& shard = *shards_[ShardOf(object_id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [slot_ref, created] = shard.index.Insert(object_id);
  if (created) {
    *slot_ref = shard.sessions.Alloc();
    shard.sessions[*slot_ref].object_id = object_id;
  }
  SessionRec& session = shard.sessions[*slot_ref];
  session.last_touch_s = now_s;
  session.lkg_x = estimate.position.x;
  session.lkg_y = estimate.position.y;
  session.lkg_confidence = estimate.confidence;
  session.lkg_t = estimate.timestamp_s;
  session.has_lkg = true;
}

common::Result<LastKnownGood> SessionStore::LastGood(
    std::uint64_t object_id) const {
  const Shard& shard = *shards_[ShardOf(object_id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const std::uint32_t* slot = shard.index.Find(object_id);
  if (slot == nullptr) return common::NotFound("no session for object");
  const SessionRec& session = shard.sessions[*slot];
  if (!session.has_lkg)
    return common::NotFound("no recorded estimate for object");
  LastKnownGood lkg;
  lkg.position = {session.lkg_x, session.lkg_y};
  lkg.confidence = session.lkg_confidence;
  lkg.timestamp_s = session.lkg_t;
  return lkg;
}

std::shared_ptr<localization::SpSolverSession> SessionStore::SolverSession(
    std::uint64_t object_id,
    const std::function<std::shared_ptr<localization::SpSolverSession>()>&
        make) {
  Shard& shard = *shards_[ShardOf(object_id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  std::uint32_t* slot = shard.index.Find(object_id);
  if (slot == nullptr) return nullptr;
  SessionRec& session = shard.sessions[*slot];
  if (session.solver == nullptr) session.solver = make();
  return session.solver;
}

namespace {

constexpr double kCheckpointSchemaVersion = 1.0;

common::Json LastGoodToJson(const LastKnownGood& lkg) {
  common::JsonObject obj;
  obj["x"] = common::Json(lkg.position.x);
  obj["y"] = common::Json(lkg.position.y);
  obj["confidence"] = common::Json(lkg.confidence);
  obj["t"] = common::Json(lkg.timestamp_s);
  return common::Json(std::move(obj));
}

common::Result<LastKnownGood> LastGoodFromJson(const common::Json& json) {
  LastKnownGood lkg;
  NOMLOC_ASSIGN_OR_RETURN(lkg.position.x, json.GetDouble("x"));
  NOMLOC_ASSIGN_OR_RETURN(lkg.position.y, json.GetDouble("y"));
  NOMLOC_ASSIGN_OR_RETURN(lkg.confidence, json.GetDouble("confidence"));
  NOMLOC_ASSIGN_OR_RETURN(lkg.timestamp_s, json.GetDouble("t"));
  return lkg;
}

}  // namespace

common::Json SessionStore::CheckpointJson() const {
  return CheckpointJson(nullptr);
}

common::Json SessionStore::CheckpointJson(
    const std::function<bool(std::uint64_t)>& owned) const {
  common::JsonObject root;
  root["schema_version"] = common::Json(kCheckpointSchemaVersion);
  // Flat-map iteration order depends on insertion history, so sessions
  // are serialised per shard and then sorted by object id — equal stores
  // checkpoint to equal bytes regardless of how they were built.
  std::vector<std::pair<std::uint64_t, common::Json>> ordered;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.index.ForEach([&](std::uint64_t object_id,
                            const std::uint32_t& slot) {
      if (owned && !owned(object_id)) return;
      const SessionRec& session = shard.sessions[slot];
      common::JsonObject s;
      s["object_id"] = common::Json(double(object_id));
      s["keys_ever"] = common::Json(std::size_t{session.keys_ever});
      s["last_touch_s"] = common::Json(session.last_touch_s);
      if (session.has_lkg) {
        LastKnownGood lkg;
        lkg.position = {session.lkg_x, session.lkg_y};
        lkg.confidence = session.lkg_confidence;
        lkg.timestamp_s = session.lkg_t;
        s["last_good"] = LastGoodToJson(lkg);
      }
      common::JsonArray anchors;
      for (std::uint32_t anchor_index = session.anchor_head;
           anchor_index != common::kSlabNil;
           anchor_index = shard.anchors[anchor_index].next) {
        const AnchorRec& anchor = shard.anchors[anchor_index];
        common::JsonObject a;
        a["ap_id"] = common::Json(int(anchor.ap_id));
        a["site_index"] = common::Json(std::size_t{anchor.site});
        a["x"] = common::Json(anchor.x);
        a["y"] = common::Json(anchor.y);
        a["nomadic"] = common::Json(anchor.is_nomadic);
        common::JsonArray observations;
        for (std::uint32_t obs_index = anchor.obs_head;
             obs_index != common::kSlabNil;
             obs_index = shard.observations[obs_index].next) {
          const ObsRec& obs = shard.observations[obs_index];
          common::JsonObject o;
          o["pdp"] = common::Json(obs.pdp);
          o["weight"] = common::Json(obs.weight);
          o["t"] = common::Json(obs.timestamp_s);
          observations.push_back(common::Json(std::move(o)));
        }
        a["observations"] = common::Json(std::move(observations));
        anchors.push_back(common::Json(std::move(a)));
      }
      s["anchors"] = common::Json(std::move(anchors));
      ordered.emplace_back(object_id, common::Json(std::move(s)));
    });
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  common::JsonArray sessions;
  for (auto& [object_id, json] : ordered) sessions.push_back(std::move(json));
  root["sessions"] = common::Json(std::move(sessions));
  return common::Json(std::move(root));
}

common::Result<std::size_t> SessionStore::RestoreFromJson(
    const common::Json& json) {
  return RestoreImpl(json, /*merge=*/false);
}

common::Result<std::size_t> SessionStore::MergeFromJson(
    const common::Json& json) {
  return RestoreImpl(json, /*merge=*/true);
}

common::Result<std::size_t> SessionStore::RestoreImpl(const common::Json& json,
                                                      bool merge) {
  NOMLOC_ASSIGN_OR_RETURN(double version, json.GetDouble("schema_version"));
  if (version != kCheckpointSchemaVersion)
    return common::InvalidArgument("unsupported checkpoint schema version");
  NOMLOC_ASSIGN_OR_RETURN(common::Json sessions_json, json.Get("sessions"));
  if (!sessions_json.is_array())
    return common::InvalidArgument("'sessions' must be an array");

  // Decode into staging structures first so a corrupt checkpoint leaves
  // the live store untouched.
  struct StagedAnchor {
    AnchorKey key;
    geometry::Vec2 position;
    bool is_nomadic = false;
    std::vector<PdpObservation> observations;
  };
  struct StagedSession {
    std::uint64_t object_id = 0;
    std::size_t keys_ever = 0;
    double last_touch_s = 0.0;
    bool has_lkg = false;
    LastKnownGood lkg;
    std::vector<StagedAnchor> anchors;
  };
  std::vector<StagedSession> staged;
  common::FlatHashMap<std::uint64_t, std::uint8_t> seen_ids;
  for (const common::Json& s : sessions_json.AsArray()) {
    NOMLOC_ASSIGN_OR_RETURN(double id_raw, s.GetDouble("object_id"));
    if (!(id_raw >= 0.0) || id_raw != std::floor(id_raw))
      return common::DataCorruption("checkpoint object_id is not an integer");
    StagedSession session;
    session.object_id = std::uint64_t(id_raw);
    if (!seen_ids.Insert(session.object_id).second)
      return common::DataCorruption(
          "duplicate object_id " + std::to_string(session.object_id) +
          " in checkpoint");
    NOMLOC_ASSIGN_OR_RETURN(double keys_ever, s.GetDouble("keys_ever"));
    session.keys_ever = std::size_t(keys_ever);
    NOMLOC_ASSIGN_OR_RETURN(session.last_touch_s,
                            s.GetDouble("last_touch_s"));
    if (auto lkg = s.Get("last_good"); lkg.ok()) {
      NOMLOC_ASSIGN_OR_RETURN(session.lkg, LastGoodFromJson(*lkg));
      session.has_lkg = true;
    }
    NOMLOC_ASSIGN_OR_RETURN(common::Json anchors_json, s.Get("anchors"));
    if (!anchors_json.is_array())
      return common::InvalidArgument("'anchors' must be an array");
    for (const common::Json& a : anchors_json.AsArray()) {
      StagedAnchor anchor;
      NOMLOC_ASSIGN_OR_RETURN(double ap_id, a.GetDouble("ap_id"));
      anchor.key.ap_id = int(ap_id);
      NOMLOC_ASSIGN_OR_RETURN(double site_index, a.GetDouble("site_index"));
      if (!(site_index >= 0.0) || site_index > double(0xffffffffu))
        return common::DataCorruption("checkpoint site_index out of range");
      anchor.key.site_index = std::size_t(site_index);
      for (const StagedAnchor& existing : session.anchors)
        if (existing.key == anchor.key)
          return common::DataCorruption(
              "duplicate anchor key in checkpoint session " +
              std::to_string(session.object_id));
      NOMLOC_ASSIGN_OR_RETURN(anchor.position.x, a.GetDouble("x"));
      NOMLOC_ASSIGN_OR_RETURN(anchor.position.y, a.GetDouble("y"));
      NOMLOC_ASSIGN_OR_RETURN(anchor.is_nomadic, a.GetBool("nomadic"));
      if (!std::isfinite(anchor.position.x) ||
          !std::isfinite(anchor.position.y))
        return common::DataCorruption("non-finite checkpoint position");
      NOMLOC_ASSIGN_OR_RETURN(common::Json obs_json, a.Get("observations"));
      if (!obs_json.is_array())
        return common::InvalidArgument("'observations' must be an array");
      for (const common::Json& o : obs_json.AsArray()) {
        PdpObservation obs;
        NOMLOC_ASSIGN_OR_RETURN(obs.pdp, o.GetDouble("pdp"));
        NOMLOC_ASSIGN_OR_RETURN(obs.weight, o.GetDouble("weight"));
        NOMLOC_ASSIGN_OR_RETURN(obs.timestamp_s, o.GetDouble("t"));
        if (!std::isfinite(obs.pdp) || obs.pdp <= 0.0)
          return common::DataCorruption("corrupt checkpoint PDP");
        anchor.observations.push_back(obs);
      }
      session.anchors.push_back(std::move(anchor));
    }
    // Snapshot expects the anchor chain key-sorted (std::map gave the old
    // store this for free).
    std::sort(session.anchors.begin(), session.anchors.end(),
              [](const StagedAnchor& a, const StagedAnchor& b) {
                return a.key < b.key;
              });
    staged.push_back(std::move(session));
  }

  if (merge) {
    // All-or-nothing: a collision with a live session fails before any
    // staged session has been linked in.
    for (const StagedSession& session : staged) {
      const Shard& shard = *shards_[ShardOf(session.object_id)];
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (shard.index.Find(session.object_id) != nullptr)
        return common::DataCorruption(
            "merge checkpoint object_id " +
            std::to_string(session.object_id) + " already has a session");
    }
  } else {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->index.Clear();
      shard->sessions.Clear();
      shard->anchors.Clear();
      shard->observations.Clear();
      shard->sweep_cursor = 0;
    }
  }
  std::size_t restored = 0;
  for (const StagedSession& session : staged) {
    Shard& shard = *shards_[ShardOf(session.object_id)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const std::uint32_t slot = shard.sessions.Alloc();
    *shard.index.Insert(session.object_id).first = slot;
    // Link anchors (already key-sorted) and their observation chains.
    // Records are built directly rather than via Upsert so restore never
    // bumps ingest counters or triggers pressure eviction mid-rebuild.
    std::uint32_t prev_anchor = common::kSlabNil;
    std::uint32_t anchor_head = common::kSlabNil;
    for (const StagedAnchor& anchor : session.anchors) {
      const std::uint32_t anchor_index = shard.anchors.Alloc();
      {
        AnchorRec& a = shard.anchors[anchor_index];
        a.ap_id = static_cast<std::int32_t>(anchor.key.ap_id);
        a.site = static_cast<std::uint32_t>(anchor.key.site_index);
        a.x = anchor.position.x;
        a.y = anchor.position.y;
        a.is_nomadic = anchor.is_nomadic;
      }
      for (const PdpObservation& obs : anchor.observations) {
        const std::uint32_t obs_index = shard.observations.Alloc();
        ObsRec& o = shard.observations[obs_index];
        o.pdp = obs.pdp;
        o.weight = obs.weight;
        o.timestamp_s = obs.timestamp_s;
        AnchorRec& a = shard.anchors[anchor_index];
        if (a.obs_tail == common::kSlabNil)
          a.obs_head = obs_index;
        else
          shard.observations[a.obs_tail].next = obs_index;
        a.obs_tail = obs_index;
        a.newest_ts = std::max(a.newest_ts, obs.timestamp_s);
      }
      if (prev_anchor == common::kSlabNil)
        anchor_head = anchor_index;
      else
        shard.anchors[prev_anchor].next = anchor_index;
      prev_anchor = anchor_index;
    }
    SessionRec& rec = shard.sessions[slot];
    rec.object_id = session.object_id;
    rec.last_touch_s = session.last_touch_s;
    rec.keys_ever = static_cast<std::uint32_t>(session.keys_ever);
    rec.anchor_head = anchor_head;
    if (session.has_lkg) {
      rec.lkg_x = session.lkg.position.x;
      rec.lkg_y = session.lkg.position.y;
      rec.lkg_confidence = session.lkg.confidence;
      rec.lkg_t = session.lkg.timestamp_s;
      rec.has_lkg = true;
    }
    ++restored;
  }
  common::MetricRegistry::Global()
      .Counter("serving.checkpoint.restored")
      .Increment(restored);
  return restored;
}

}  // namespace nomloc::serving
