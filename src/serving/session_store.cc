#include "serving/session_store.h"

#include "common/metrics.h"

namespace nomloc::serving {

common::Result<void> SessionStoreConfig::Validate() const {
  if (shards == 0) return common::InvalidArgument("shards must be >= 1");
  if (anchor_ttl_s <= 0.0)
    return common::InvalidArgument("anchor_ttl_s must be positive");
  if (session_idle_ttl_s <= 0.0)
    return common::InvalidArgument("session_idle_ttl_s must be positive");
  return {};
}

SessionStore::SessionStore(const SessionStoreConfig& config)
    : config_(config) {
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::size_t SessionStore::ShardOf(std::uint64_t object_id) const noexcept {
  // splitmix64 finalizer: adjacent object ids spread over all shards.
  std::uint64_t x = object_id + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % shards_.size());
}

bool SessionStore::Upsert(std::uint64_t object_id, AnchorKey key,
                          geometry::Vec2 position, bool is_nomadic,
                          const PdpObservation& obs, double now_s) {
  Shard& shard = *shards_[ShardOf(object_id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, created] = shard.sessions.try_emplace(object_id);
  Session& session = it->second;
  session.last_touch_s = now_s;
  auto [anchor_it, new_key] = session.anchors.try_emplace(key);
  AnchorState& anchor = anchor_it->second;
  if (new_key) ++session.keys_ever;
  anchor.position = position;
  anchor.is_nomadic = is_nomadic;
  anchor.observations.push_back(obs);
  if (created)
    common::MetricRegistry::Global()
        .Counter("serving.sessions.created")
        .Increment();
  return created;
}

std::size_t SessionStore::PruneSession(Session& session, double now_s) const {
  std::size_t evicted = 0;
  for (auto it = session.anchors.begin(); it != session.anchors.end();) {
    std::deque<PdpObservation>& obs = it->second.observations;
    // Delay injection can land an old-timestamped observation behind a
    // newer one, so expiry scans the whole deque, not just the front.
    evicted += std::erase_if(obs, [&](const PdpObservation& o) {
      return now_s - o.timestamp_s > config_.anchor_ttl_s;
    });
    if (obs.empty())
      it = session.anchors.erase(it);
    else
      ++it;
  }
  return evicted;
}

common::Result<SessionSnapshot> SessionStore::Snapshot(
    std::uint64_t object_id, double now_s) {
  Shard& shard = *shards_[ShardOf(object_id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.sessions.find(object_id);
  if (it == shard.sessions.end())
    return common::NotFound("no session for object");
  Session& session = it->second;
  const std::size_t evicted = PruneSession(session, now_s);
  if (evicted > 0)
    common::MetricRegistry::Global()
        .Counter("serving.observations.evicted")
        .Increment(evicted);

  SessionSnapshot snap;
  snap.keys_ever = session.keys_ever;
  snap.live_keys = session.anchors.size();
  snap.last_touch_s = session.last_touch_s;
  snap.anchors.reserve(session.anchors.size());
  for (const auto& [key, anchor] : session.anchors) {
    localization::Anchor out;
    out.position = anchor.position;
    out.is_nomadic_site = anchor.is_nomadic;
    if (anchor.observations.size() == 1) {
      // Bit-exact pass-through: the streaming path must reproduce the
      // batch pipeline exactly when each anchor arrived as one report.
      out.pdp = anchor.observations.front().pdp;
    } else {
      double weighted = 0.0, total = 0.0;
      for (const PdpObservation& obs : anchor.observations) {
        weighted += obs.pdp * obs.weight;
        total += obs.weight;
      }
      out.pdp = total > 0.0 ? weighted / total : 0.0;
    }
    snap.anchors.push_back(out);
  }
  return snap;
}

std::size_t SessionStore::SweepShard(std::size_t shard_index, double now_s) {
  auto& registry = common::MetricRegistry::Global();
  Shard& shard = *shards_[shard_index];
  std::size_t sessions_evicted = 0;
  std::size_t observations_evicted = 0;
  std::size_t occupancy = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.sessions.begin(); it != shard.sessions.end();) {
      Session& session = it->second;
      observations_evicted += PruneSession(session, now_s);
      const bool idle =
          now_s - session.last_touch_s > config_.session_idle_ttl_s;
      if (idle || session.anchors.empty()) {
        it = shard.sessions.erase(it);
        ++sessions_evicted;
      } else {
        ++it;
      }
    }
    occupancy = shard.sessions.size();
  }
  if (observations_evicted > 0)
    registry.Counter("serving.observations.evicted")
        .Increment(observations_evicted);
  if (sessions_evicted > 0)
    registry.Counter("serving.sessions.evicted").Increment(sessions_evicted);
  registry
      .Histogram("serving.shard.occupancy", {}, 1.0, 1e6, 48)
      .Record(static_cast<double>(occupancy));
  return sessions_evicted;
}

std::size_t SessionStore::SweepAll(double now_s) {
  std::size_t evicted = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i)
    evicted += SweepShard(i, now_s);
  return evicted;
}

std::size_t SessionStore::SessionCount() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    n += shard->sessions.size();
  }
  return n;
}

}  // namespace nomloc::serving
