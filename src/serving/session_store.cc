#include "serving/session_store.h"

#include <cmath>
#include <utility>

#include "common/metrics.h"

namespace nomloc::serving {

common::Result<void> SessionStoreConfig::Validate() const {
  if (shards == 0) return common::InvalidArgument("shards must be >= 1");
  if (anchor_ttl_s <= 0.0)
    return common::InvalidArgument("anchor_ttl_s must be positive");
  if (session_idle_ttl_s <= 0.0)
    return common::InvalidArgument("session_idle_ttl_s must be positive");
  return {};
}

SessionStore::SessionStore(const SessionStoreConfig& config)
    : config_(config) {
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::size_t SessionStore::ShardOf(std::uint64_t object_id) const noexcept {
  // splitmix64 finalizer: adjacent object ids spread over all shards.
  std::uint64_t x = object_id + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % shards_.size());
}

bool SessionStore::Upsert(std::uint64_t object_id, AnchorKey key,
                          geometry::Vec2 position, bool is_nomadic,
                          const PdpObservation& obs, double now_s) {
  Shard& shard = *shards_[ShardOf(object_id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, created] = shard.sessions.try_emplace(object_id);
  Session& session = it->second;
  session.last_touch_s = now_s;
  auto [anchor_it, new_key] = session.anchors.try_emplace(key);
  AnchorState& anchor = anchor_it->second;
  if (new_key) ++session.keys_ever;
  anchor.position = position;
  anchor.is_nomadic = is_nomadic;
  anchor.observations.push_back(obs);
  if (created)
    common::MetricRegistry::Global()
        .Counter("serving.sessions.created")
        .Increment();
  return created;
}

std::size_t SessionStore::PruneSession(Session& session, double now_s) const {
  std::size_t evicted = 0;
  for (auto it = session.anchors.begin(); it != session.anchors.end();) {
    std::deque<PdpObservation>& obs = it->second.observations;
    // Delay injection can land an old-timestamped observation behind a
    // newer one, so expiry scans the whole deque, not just the front.
    evicted += std::erase_if(obs, [&](const PdpObservation& o) {
      return now_s - o.timestamp_s > config_.anchor_ttl_s;
    });
    if (obs.empty())
      it = session.anchors.erase(it);
    else
      ++it;
  }
  return evicted;
}

common::Result<SessionSnapshot> SessionStore::Snapshot(
    std::uint64_t object_id, double now_s) {
  Shard& shard = *shards_[ShardOf(object_id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.sessions.find(object_id);
  if (it == shard.sessions.end())
    return common::NotFound("no session for object");
  Session& session = it->second;
  const std::size_t evicted = PruneSession(session, now_s);
  if (evicted > 0)
    common::MetricRegistry::Global()
        .Counter("serving.observations.evicted")
        .Increment(evicted);

  SessionSnapshot snap;
  snap.keys_ever = session.keys_ever;
  snap.live_keys = session.anchors.size();
  snap.last_touch_s = session.last_touch_s;
  snap.anchors.reserve(session.anchors.size());
  for (const auto& [key, anchor] : session.anchors) {
    localization::Anchor out;
    out.position = anchor.position;
    out.is_nomadic_site = anchor.is_nomadic;
    if (anchor.observations.size() == 1) {
      // Bit-exact pass-through: the streaming path must reproduce the
      // batch pipeline exactly when each anchor arrived as one report.
      out.pdp = anchor.observations.front().pdp;
    } else {
      double weighted = 0.0, total = 0.0;
      for (const PdpObservation& obs : anchor.observations) {
        weighted += obs.pdp * obs.weight;
        total += obs.weight;
      }
      out.pdp = total > 0.0 ? weighted / total : 0.0;
    }
    snap.anchors.push_back(out);
  }
  return snap;
}

std::size_t SessionStore::SweepShard(std::size_t shard_index, double now_s) {
  auto& registry = common::MetricRegistry::Global();
  Shard& shard = *shards_[shard_index];
  std::size_t sessions_evicted = 0;
  std::size_t observations_evicted = 0;
  std::size_t occupancy = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.sessions.begin(); it != shard.sessions.end();) {
      Session& session = it->second;
      observations_evicted += PruneSession(session, now_s);
      const bool idle =
          now_s - session.last_touch_s > config_.session_idle_ttl_s;
      if (idle || session.anchors.empty()) {
        it = shard.sessions.erase(it);
        ++sessions_evicted;
      } else {
        ++it;
      }
    }
    occupancy = shard.sessions.size();
  }
  if (observations_evicted > 0)
    registry.Counter("serving.observations.evicted")
        .Increment(observations_evicted);
  if (sessions_evicted > 0)
    registry.Counter("serving.sessions.evicted").Increment(sessions_evicted);
  registry
      .Histogram("serving.shard.occupancy", {}, 1.0, 1e6, 48)
      .Record(static_cast<double>(occupancy));
  return sessions_evicted;
}

std::size_t SessionStore::SweepAll(double now_s) {
  std::size_t evicted = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i)
    evicted += SweepShard(i, now_s);
  return evicted;
}

std::size_t SessionStore::SessionCount() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    n += shard->sessions.size();
  }
  return n;
}

void SessionStore::RecordEstimate(std::uint64_t object_id,
                                  const LastKnownGood& estimate,
                                  double now_s) {
  Shard& shard = *shards_[ShardOf(object_id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  Session& session = shard.sessions[object_id];
  session.last_touch_s = now_s;
  session.last_good = estimate;
}

common::Result<LastKnownGood> SessionStore::LastGood(
    std::uint64_t object_id) const {
  const Shard& shard = *shards_[ShardOf(object_id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.sessions.find(object_id);
  if (it == shard.sessions.end())
    return common::NotFound("no session for object");
  if (!it->second.last_good.has_value())
    return common::NotFound("no recorded estimate for object");
  return *it->second.last_good;
}

std::shared_ptr<localization::SpSolverSession> SessionStore::SolverSession(
    std::uint64_t object_id,
    const std::function<std::shared_ptr<localization::SpSolverSession>()>&
        make) {
  Shard& shard = *shards_[ShardOf(object_id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.sessions.find(object_id);
  if (it == shard.sessions.end()) return nullptr;
  if (it->second.solver == nullptr) it->second.solver = make();
  return it->second.solver;
}

namespace {

constexpr double kCheckpointSchemaVersion = 1.0;

common::Json LastGoodToJson(const LastKnownGood& lkg) {
  common::JsonObject obj;
  obj["x"] = common::Json(lkg.position.x);
  obj["y"] = common::Json(lkg.position.y);
  obj["confidence"] = common::Json(lkg.confidence);
  obj["t"] = common::Json(lkg.timestamp_s);
  return common::Json(std::move(obj));
}

common::Result<LastKnownGood> LastGoodFromJson(const common::Json& json) {
  LastKnownGood lkg;
  NOMLOC_ASSIGN_OR_RETURN(lkg.position.x, json.GetDouble("x"));
  NOMLOC_ASSIGN_OR_RETURN(lkg.position.y, json.GetDouble("y"));
  NOMLOC_ASSIGN_OR_RETURN(lkg.confidence, json.GetDouble("confidence"));
  NOMLOC_ASSIGN_OR_RETURN(lkg.timestamp_s, json.GetDouble("t"));
  return lkg;
}

}  // namespace

common::Json SessionStore::CheckpointJson() const {
  common::JsonObject root;
  root["schema_version"] = common::Json(kCheckpointSchemaVersion);
  common::JsonArray sessions;
  // Sessions are collected per shard, then keyed by object id via a map
  // so the dump order is independent of the shard count.
  std::map<std::uint64_t, common::Json> ordered;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [object_id, session] : shard->sessions) {
      common::JsonObject s;
      s["object_id"] = common::Json(double(object_id));
      s["keys_ever"] = common::Json(session.keys_ever);
      s["last_touch_s"] = common::Json(session.last_touch_s);
      if (session.last_good.has_value())
        s["last_good"] = LastGoodToJson(*session.last_good);
      common::JsonArray anchors;
      for (const auto& [key, anchor] : session.anchors) {
        common::JsonObject a;
        a["ap_id"] = common::Json(key.ap_id);
        a["site_index"] = common::Json(key.site_index);
        a["x"] = common::Json(anchor.position.x);
        a["y"] = common::Json(anchor.position.y);
        a["nomadic"] = common::Json(anchor.is_nomadic);
        common::JsonArray observations;
        for (const PdpObservation& obs : anchor.observations) {
          common::JsonObject o;
          o["pdp"] = common::Json(obs.pdp);
          o["weight"] = common::Json(obs.weight);
          o["t"] = common::Json(obs.timestamp_s);
          observations.push_back(common::Json(std::move(o)));
        }
        a["observations"] = common::Json(std::move(observations));
        anchors.push_back(common::Json(std::move(a)));
      }
      s["anchors"] = common::Json(std::move(anchors));
      ordered.emplace(object_id, common::Json(std::move(s)));
    }
  }
  for (auto& [object_id, json] : ordered)
    sessions.push_back(std::move(json));
  root["sessions"] = common::Json(std::move(sessions));
  return common::Json(std::move(root));
}

common::Result<std::size_t> SessionStore::RestoreFromJson(
    const common::Json& json) {
  NOMLOC_ASSIGN_OR_RETURN(double version, json.GetDouble("schema_version"));
  if (version != kCheckpointSchemaVersion)
    return common::InvalidArgument("unsupported checkpoint schema version");
  NOMLOC_ASSIGN_OR_RETURN(common::Json sessions_json, json.Get("sessions"));
  if (!sessions_json.is_array())
    return common::InvalidArgument("'sessions' must be an array");

  // Decode into a staging map first so a corrupt checkpoint leaves the
  // live store untouched.
  std::map<std::uint64_t, Session> staged;
  for (const common::Json& s : sessions_json.AsArray()) {
    NOMLOC_ASSIGN_OR_RETURN(double id_raw, s.GetDouble("object_id"));
    if (!(id_raw >= 0.0) || id_raw != std::floor(id_raw))
      return common::DataCorruption("checkpoint object_id is not an integer");
    const auto object_id = std::uint64_t(id_raw);
    Session session;
    NOMLOC_ASSIGN_OR_RETURN(double keys_ever, s.GetDouble("keys_ever"));
    session.keys_ever = std::size_t(keys_ever);
    NOMLOC_ASSIGN_OR_RETURN(session.last_touch_s,
                            s.GetDouble("last_touch_s"));
    if (auto lkg = s.Get("last_good"); lkg.ok()) {
      NOMLOC_ASSIGN_OR_RETURN(LastKnownGood decoded,
                              LastGoodFromJson(*lkg));
      session.last_good = decoded;
    }
    NOMLOC_ASSIGN_OR_RETURN(common::Json anchors_json, s.Get("anchors"));
    if (!anchors_json.is_array())
      return common::InvalidArgument("'anchors' must be an array");
    for (const common::Json& a : anchors_json.AsArray()) {
      AnchorKey key;
      NOMLOC_ASSIGN_OR_RETURN(double ap_id, a.GetDouble("ap_id"));
      key.ap_id = int(ap_id);
      NOMLOC_ASSIGN_OR_RETURN(double site_index, a.GetDouble("site_index"));
      key.site_index = std::size_t(site_index);
      AnchorState anchor;
      NOMLOC_ASSIGN_OR_RETURN(anchor.position.x, a.GetDouble("x"));
      NOMLOC_ASSIGN_OR_RETURN(anchor.position.y, a.GetDouble("y"));
      NOMLOC_ASSIGN_OR_RETURN(anchor.is_nomadic, a.GetBool("nomadic"));
      if (!std::isfinite(anchor.position.x) ||
          !std::isfinite(anchor.position.y))
        return common::DataCorruption("non-finite checkpoint position");
      NOMLOC_ASSIGN_OR_RETURN(common::Json obs_json, a.Get("observations"));
      if (!obs_json.is_array())
        return common::InvalidArgument("'observations' must be an array");
      for (const common::Json& o : obs_json.AsArray()) {
        PdpObservation obs;
        NOMLOC_ASSIGN_OR_RETURN(obs.pdp, o.GetDouble("pdp"));
        NOMLOC_ASSIGN_OR_RETURN(obs.weight, o.GetDouble("weight"));
        NOMLOC_ASSIGN_OR_RETURN(obs.timestamp_s, o.GetDouble("t"));
        if (!std::isfinite(obs.pdp) || obs.pdp <= 0.0)
          return common::DataCorruption("corrupt checkpoint PDP");
        anchor.observations.push_back(obs);
      }
      session.anchors.emplace(key, std::move(anchor));
    }
    staged.emplace(object_id, std::move(session));
  }

  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->sessions.clear();
  }
  std::size_t restored = 0;
  for (auto& [object_id, session] : staged) {
    Shard& shard = *shards_[ShardOf(object_id)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.sessions.emplace(object_id, std::move(session));
    ++restored;
  }
  common::MetricRegistry::Global()
      .Counter("serving.checkpoint.restored")
      .Increment(restored);
  return restored;
}

}  // namespace nomloc::serving
