// Durable write-ahead log of NLW wire frames, plus atomic checkpoint
// files — the crash-recovery layer under a cluster shard host.
//
// A WAL is a directory of append-only segments (`wal-000001.log`, ...).
// Each segment starts with the 4-byte NLW stream header and then carries
// ordinary wire frames: every record is self-checksummed (32-bit FNV-1a,
// the same guard the transport uses), so the on-disk format IS the wire
// format and replay is just the incremental WireDecoder pointed at a
// file.  The host appends each decoded batch *before* applying it
// (append-before-apply), fsyncs when configured, and rotates to a new
// segment once the current one reaches `segment_bytes`.
//
// Recovery invariants (tested in serving_wal_test):
//
//   * A torn tail — a partial final record in the LAST segment, the
//     footprint of a crash mid-append — is physically truncated away on
//     open (`serving.wal.torn_tails`); every complete record before it
//     replays.
//   * Any other damage (checksum mismatch, unknown kind, torn frame in a
//     non-final segment) is typed kDataCorruption: the log refuses to
//     open rather than replay a hole.
//   * Replay order is exact stream order across segments, so a host that
//     replays its WAL reaches the same SessionStore state it had when the
//     last appended record was applied.
//
// Checkpoint files (`SaveCheckpointFile`/`LoadCheckpointFile`) wrap a
// payload in a length + FNV-1a header and are written via temp file +
// rename + fsync (`AtomicWriteFile`), so a crash mid-checkpoint leaves
// either the old complete file or the new complete file — never bytes a
// restore could half-apply.  A truncated or bit-flipped checkpoint loads
// as kDataCorruption, not as a partial restore.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "serving/wire.h"

namespace nomloc::serving {

struct WalConfig {
  /// Segment directory (created, with parents' leaf only, on open).
  std::string directory;
  /// Rotate once the current segment reaches this many bytes.
  std::size_t segment_bytes = 1 << 20;
  /// fsync after every Append (the durability contract; turn off only in
  /// benchmarks that measure the append path itself).
  bool fsync = true;

  common::Result<void> Validate() const;
};

class WriteAheadLog;

/// What Open() recovered from the directory before making it appendable.
struct WalOpenResult {
  std::unique_ptr<WriteAheadLog> wal;
  /// Every replayed frame, in exact stream order across segments.
  std::vector<WireEvent> events;
  std::size_t segments_scanned = 0;
  std::size_t frames_replayed = 0;
  bool torn_tail_truncated = false;
};

class WriteAheadLog {
 public:
  /// Opens the log: creates the directory if needed, replays existing
  /// segments in order through an ordered WireDecoder accepting `accept`,
  /// truncates a torn tail in the last segment, and leaves the log open
  /// for Append.  Fails with kDataCorruption on damage anywhere else.
  static common::Result<WalOpenResult> Open(WalConfig config,
                                            WireDecoderAccept accept);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends already-encoded NLW frames (no stream header — the segment
  /// provides it).  Rotates first when the current segment is full, and
  /// fsyncs after the write when the config says so.
  common::Result<void> Append(std::string_view frames);

  /// Forces the current segment to disk (no-op if Append already syncs).
  common::Result<void> Sync();

  /// Deletes every segment and starts segment numbering fresh — the
  /// compaction step after the state it reflects was checkpointed.
  common::Result<void> Reset();

  std::size_t SegmentCount() const noexcept { return segment_count_; }
  std::uint64_t AppendedBytes() const noexcept { return appended_bytes_; }
  const std::string& Directory() const noexcept { return config_.directory; }

 private:
  explicit WriteAheadLog(WalConfig config) : config_(std::move(config)) {}

  /// Opens segment `index` for appending, writing the stream header when
  /// the file is empty/new.
  common::Result<void> OpenSegment(std::uint64_t index);
  common::Result<void> CloseSegment();

  WalConfig config_;
  int fd_ = -1;
  std::uint64_t segment_index_ = 0;
  std::size_t segment_size_ = 0;
  std::size_t segment_count_ = 0;
  std::uint64_t appended_bytes_ = 0;
};

/// Atomically replaces `path` with `bytes`: temp file in the same
/// directory, fsync, rename over, fsync the directory.  Readers see the
/// old file or the new one, never a mix.
common::Result<void> AtomicWriteFile(const std::string& path,
                                     std::string_view bytes);

/// Writes `payload` as a checkpoint file: a "NLCKPT1 <bytes> <fnv32>\n"
/// header followed by the payload, via AtomicWriteFile.
common::Result<void> SaveCheckpointFile(const std::string& path,
                                        std::string_view payload);

/// Loads a checkpoint file.  kNotFound when the file does not exist;
/// kDataCorruption on a bad header, truncated payload, trailing garbage,
/// or checksum mismatch — never a partial payload.
common::Result<std::string> LoadCheckpointFile(const std::string& path);

}  // namespace nomloc::serving
