// Per-anchor circuit breakers for the serving ingest boundary.
//
// A flapping or corrupted AP should not get to churn every session it
// touches: after `failure_threshold` *consecutive* failures (corrupt
// reports, here) the breaker trips open and the AP's packets are rejected
// outright.  Once the backoff window elapses the breaker moves to
// half-open and admits exactly one probe packet; a healthy probe closes
// the breaker again, a bad one re-opens it with the backoff doubled
// (capped at `max_backoff_s`).  All times are logical seconds
// (serving/clock.h), so the whole state machine is deterministic under
// ManualClock replay.
//
// Thread safety: CircuitBreaker is externally synchronized (the serving
// layer calls it under the ingest path with one breaker per AP inside
// BreakerBank, which locks).  BreakerBank is thread-safe.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string_view>

#include "common/status.h"

namespace nomloc::serving {

struct CircuitBreakerConfig {
  /// Consecutive failures that trip the breaker open.
  std::size_t failure_threshold = 3;
  /// First open->half-open backoff window [logical s].
  double base_backoff_s = 5.0;
  /// Backoff doubles on every re-trip, capped here.
  double max_backoff_s = 60.0;

  common::Result<void> Validate() const;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

std::string_view BreakerStateName(BreakerState state) noexcept;

class CircuitBreaker {
 public:
  explicit CircuitBreaker(const CircuitBreakerConfig& config) noexcept
      : config_(config), backoff_s_(config.base_backoff_s) {}

  /// May the caller admit a packet now?  Open breakers whose backoff has
  /// elapsed transition to half-open and allow exactly one probe; further
  /// calls while that probe is outstanding return false.
  bool Allow(double now_s) noexcept;

  /// Feedback for an admitted packet.  Success closes a half-open
  /// breaker (and resets the backoff); failure re-opens it with the
  /// backoff doubled, or — in the closed state — counts toward the
  /// consecutive-failure threshold.
  void RecordSuccess(double now_s) noexcept;
  void RecordFailure(double now_s) noexcept;

  BreakerState State() const noexcept { return state_; }
  std::size_t ConsecutiveFailures() const noexcept {
    return consecutive_failures_;
  }
  double CurrentBackoffSeconds() const noexcept { return backoff_s_; }
  /// Logical time the open state ends (half-open probe becomes available).
  double RetryAtSeconds() const noexcept { return retry_at_s_; }

 private:
  void TripOpen(double now_s) noexcept;

  CircuitBreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  std::size_t consecutive_failures_ = 0;
  double backoff_s_ = 0.0;
  double retry_at_s_ = 0.0;
};

/// One breaker per AP id, created on first use.  Thread-safe; the lock
/// also serializes each breaker's state machine.
class BreakerBank {
 public:
  explicit BreakerBank(const CircuitBreakerConfig& config) : config_(config) {}

  /// Combined Allow + state bookkeeping under the bank lock.
  bool Allow(int ap_id, double now_s);
  void RecordSuccess(int ap_id, double now_s);
  void RecordFailure(int ap_id, double now_s);

  BreakerState StateOf(int ap_id) const;
  /// APs currently not closed (open or half-open).
  std::size_t UnhealthyCount() const;

 private:
  CircuitBreakerConfig config_;
  mutable std::mutex mutex_;
  std::map<int, CircuitBreaker> breakers_;
};

}  // namespace nomloc::serving
