#include "serving/fault_injection.h"

#include "common/metrics.h"

namespace nomloc::serving {

common::Result<void> FaultConfig::Validate() const {
  const auto in_unit = [](double p) { return p >= 0.0 && p < 1.0; };
  if (!in_unit(ap_dropout_rate))
    return common::InvalidArgument("ap_dropout_rate must be in [0, 1)");
  if (!in_unit(packet_loss_rate))
    return common::InvalidArgument("packet_loss_rate must be in [0, 1)");
  if (!in_unit(delay_rate))
    return common::InvalidArgument("delay_rate must be in [0, 1)");
  if (delay_s < 0.0)
    return common::InvalidArgument("delay_s must be >= 0");
  return {};
}

FaultDecision FaultInjector::OnObservation(int ap_id) {
  auto& registry = common::MetricRegistry::Global();
  FaultDecision decision;
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, fresh] = ap_down_.try_emplace(ap_id, false);
  if (fresh && config_.ap_dropout_rate > 0.0)
    it->second = rng_.Bernoulli(config_.ap_dropout_rate);
  if (it->second) {
    decision.drop = true;
    registry.Counter("serving.faults.ap_dropout").Increment();
    return decision;
  }
  if (config_.packet_loss_rate > 0.0 &&
      rng_.Bernoulli(config_.packet_loss_rate)) {
    decision.drop = true;
    registry.Counter("serving.faults.packet_loss").Increment();
    return decision;
  }
  if (config_.delay_rate > 0.0 && rng_.Bernoulli(config_.delay_rate)) {
    decision.extra_delay_s = config_.delay_s;
    registry.Counter("serving.faults.delayed").Increment();
  }
  return decision;
}

bool FaultInjector::ApIsDown(int ap_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ap_down_.find(ap_id);
  return it != ap_down_.end() && it->second;
}

}  // namespace nomloc::serving
