// Hot-ingest wire format: a versioned little-endian binary framing for
// IngestPacket streams, with an NDJSON fallback.
//
// The serving layer's ingest path is fan-in bound: at millions of
// sessions the cost of *parsing* each report dominates the cost of
// storing it.  JSON burns that budget on tokenising doubles; the binary
// format is a fixed-width frame per packet (70 B observation / 29 B
// query) that decodes with bit_cast and a checksum — no allocation, no
// number grammar.  See DESIGN.md "Serving at scale" for the field table.
//
// Stream layout:
//
//   header   : 'N' 'L' 'W' <version u8>                        (4 bytes)
//   frame*   : <kind u8> <body> <checksum u32>
//
// All integers and IEEE-754 doubles are little-endian.  The checksum is
// 32-bit FNV-1a over the frame bytes preceding it, so truncation and
// bit-flips surface as typed kDataCorruption errors with the byte offset
// where decoding broke (mirroring net::ParseTrace).  Every failed decode
// — binary or JSON — increments `serving.wire.parse_failures`.
//
// Doubles round-trip bit-exactly in both formats (the JSON fallback
// prints shortest-round-trip decimals), with two JSON-side caveats:
// object ids above 2^53 lose precision, and an infinite deadline is
// encoded by omitting the field (JSON has no Inf literal).
//
// `scheduled_wall` is deliberately not part of the wire: it is a
// process-local steady_clock stamp the open-loop generator applies at
// send time, meaningless across a byte boundary.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "serving/service.h"

namespace nomloc::serving {

inline constexpr std::uint8_t kWireVersion = 1;

/// Frame kinds (first byte of every frame).
inline constexpr std::uint8_t kWireObservationFrame = 0x01;
inline constexpr std::uint8_t kWireQueryFrame = 0x02;

/// Encoded frame sizes, checksum included.
inline constexpr std::size_t kWireHeaderBytes = 4;
inline constexpr std::size_t kWireObservationBytes = 70;
inline constexpr std::size_t kWireQueryBytes = 29;

enum class WireFormat {
  kBinary,  ///< The fixed-width frame format above (the hot path).
  kJson,    ///< NDJSON fallback: one compact JSON object per line.
};

std::string_view WireFormatName(WireFormat format) noexcept;
/// Parses "binary" / "json" (kInvalidArgument otherwise).
common::Result<WireFormat> ParseWireFormatName(std::string_view name);

/// Appends one binary frame for `packet` to `out` (no stream header).
void AppendWireFrame(const IngestPacket& packet, std::string& out);

/// Encodes a full stream: header + one frame per packet.
std::string EncodeWireBinary(std::span<const IngestPacket> packets);

/// Decodes a binary stream.  Fails with kInvalidArgument on an
/// unsupported version and kDataCorruption (with "at offset N") on bad
/// magic, unknown frame kinds, truncation, or checksum mismatch.
common::Result<std::vector<IngestPacket>> DecodeWireBinary(
    std::string_view bytes);

/// Encodes the NDJSON fallback: one compact JSON object per line,
/// trailing newline after each.
std::string EncodeWireJson(std::span<const IngestPacket> packets);

/// Decodes the NDJSON fallback.  Blank lines are skipped; any
/// unparseable or schema-violating line fails with kDataCorruption
/// naming the 1-based line number.
common::Result<std::vector<IngestPacket>> DecodeWireJson(
    std::string_view text);

/// Dispatch helpers for tools that take a --wire flag.
std::string EncodeWire(std::span<const IngestPacket> packets,
                       WireFormat format);
common::Result<std::vector<IngestPacket>> DecodeWire(std::string_view bytes,
                                                     WireFormat format);

}  // namespace nomloc::serving
