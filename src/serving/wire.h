// Hot-ingest wire format: a versioned little-endian binary framing for
// IngestPacket streams, with an NDJSON fallback.
//
// The serving layer's ingest path is fan-in bound: at millions of
// sessions the cost of *parsing* each report dominates the cost of
// storing it.  JSON burns that budget on tokenising doubles; the binary
// format is a fixed-width frame per packet (70 B observation / 29 B
// query) that decodes with bit_cast and a checksum — no allocation, no
// number grammar.  See DESIGN.md "Serving at scale" for the field table.
//
// Stream layout:
//
//   header   : 'N' 'L' 'W' <version u8>                        (4 bytes)
//   frame*   : <kind u8> <body> <checksum u32>
//
// All integers and IEEE-754 doubles are little-endian.  The checksum is
// 32-bit FNV-1a over the frame bytes preceding it, so truncation and
// bit-flips surface as typed kDataCorruption errors with the byte offset
// where decoding broke (mirroring net::ParseTrace).  Every failed decode
// — binary or JSON — increments `serving.wire.parse_failures`.
//
// Doubles round-trip bit-exactly in both formats (the JSON fallback
// prints shortest-round-trip decimals), with two JSON-side caveats:
// object ids above 2^53 lose precision, and an infinite deadline is
// encoded by omitting the field (JSON has no Inf literal).
//
// `scheduled_wall` is deliberately not part of the wire: it is a
// process-local steady_clock stamp the open-loop generator applies at
// send time, meaningless across a byte boundary.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "serving/service.h"

namespace nomloc::serving {

/// Version 2 added the placement-epoch field to control frames and the
/// replicate frame kind (cluster replication); version 1 streams are
/// rejected with a typed kInvalidArgument, not silently re-parsed — WAL
/// segments persist frames to disk, so the version byte is load-bearing.
inline constexpr std::uint8_t kWireVersion = 2;

/// Frame kinds (first byte of every frame).  Observation/query frames are
/// the ingest direction; response, control, and replicate frames exist
/// for the cluster transport (shard host -> router results, router <->
/// host flush and clock coordination, primary -> backup dual-writes) and
/// are rejected by the ingest-only decoders.
inline constexpr std::uint8_t kWireObservationFrame = 0x01;
inline constexpr std::uint8_t kWireQueryFrame = 0x02;
inline constexpr std::uint8_t kWireResponseFrame = 0x03;
inline constexpr std::uint8_t kWireControlFrame = 0x04;
inline constexpr std::uint8_t kWireReplicateFrame = 0x05;

/// Encoded frame sizes, checksum included.
inline constexpr std::size_t kWireHeaderBytes = 4;
inline constexpr std::size_t kWireObservationBytes = 70;
inline constexpr std::size_t kWireQueryBytes = 29;
inline constexpr std::size_t kWireResponseBytes = 68;
inline constexpr std::size_t kWireControlBytes = 30;
/// kind + slot u32 + epoch u64 + observation body + checksum.
inline constexpr std::size_t kWireReplicateBytes = 82;

enum class WireFormat {
  kBinary,  ///< The fixed-width frame format above (the hot path).
  kJson,    ///< NDJSON fallback: one compact JSON object per line.
};

std::string_view WireFormatName(WireFormat format) noexcept;
/// Parses "binary" / "json" (kInvalidArgument otherwise).
common::Result<WireFormat> ParseWireFormatName(std::string_view name);

/// Appends one binary frame for `packet` to `out` (no stream header).
void AppendWireFrame(const IngestPacket& packet, std::string& out);

/// Encodes a full stream: header + one frame per packet.
std::string EncodeWireBinary(std::span<const IngestPacket> packets);

/// Decodes a binary stream.  Fails with kInvalidArgument on an
/// unsupported version and kDataCorruption (with "at offset N") on bad
/// magic, unknown frame kinds, truncation, or checksum mismatch.
common::Result<std::vector<IngestPacket>> DecodeWireBinary(
    std::string_view bytes);

/// Encodes the NDJSON fallback: one compact JSON object per line,
/// trailing newline after each.
std::string EncodeWireJson(std::span<const IngestPacket> packets);

/// Decodes the NDJSON fallback.  Blank lines are skipped; any
/// unparseable or schema-violating line fails with kDataCorruption
/// naming the 1-based line number.
common::Result<std::vector<IngestPacket>> DecodeWireJson(
    std::string_view text);

/// Dispatch helpers for tools that take a --wire flag.
std::string EncodeWire(std::span<const IngestPacket> packets,
                       WireFormat format);
common::Result<std::vector<IngestPacket>> DecodeWire(std::string_view bytes,
                                                     WireFormat format);

/// A shard host's answer to one accepted query, reduced to the fields a
/// router (or a bit-identity check against an unsharded golden run) needs.
/// Process-local fields of ServeResponse — seq, queue_wait_s, latency_s,
/// the error Status text — deliberately stay off the wire, mirroring the
/// scheduled_wall rule above.
struct WireResponse {
  std::uint64_t object_id = 0;
  double timestamp_s = 0.0;      ///< The query packet's timestamp.
  std::uint8_t status = 0;       ///< serving::ServeStatus.
  std::uint8_t degradation = 0;  ///< common::DegradationLevel.
  bool degraded = false;
  std::uint32_t anchor_count = 0;
  geometry::Vec2 position;
  double relaxation_cost = 0.0;
  double feasible_area_m2 = 0.0;
  double confidence = 0.0;
};

/// Control-plane verbs carried in-band on a cluster channel.
enum class WireControlOp : std::uint8_t {
  kFlush = 1,     ///< Router -> host: drain, reply responses + kFlushAck.
  kFlushAck = 2,  ///< Host -> router: every frame before this is answered.
  kClockSet = 3,  ///< Router -> host: set the host's logical clock to value.
  kEpochSet = 4,  ///< Router -> host: adopt the placement epoch in `epoch`.
};

struct WireControl {
  WireControlOp op = WireControlOp::kFlush;
  std::uint64_t token = 0;  ///< Correlates kFlush with its kFlushAck.
  double value = 0.0;       ///< kClockSet's logical time; otherwise unused.
  /// The router's placement-table epoch at send time.  Hosts adopt it on
  /// kEpochSet; other ops carry it as provenance only.
  std::uint64_t epoch = 0;
};

/// One dual-written observation: the backup shard applies it to its warm
/// standby SessionStore instead of its localizer.  A frame whose epoch is
/// older than the host's placement epoch is a typed stale-epoch rejection
/// (`cluster.placement.stale_epoch`) — the split-brain fence: a lagging
/// router can never write into a standby that has already been promoted.
struct WireReplicate {
  std::uint32_t slot = 0;   ///< The slot the primary write was delivered to.
  std::uint64_t epoch = 0;  ///< Placement epoch the router stamped.
  IngestPacket packet;      ///< Always PacketKind::kObservation.
};

/// The 4-byte stream header each direction of a transport starts with.
std::string WireHeader();

/// The frame checksum function (32-bit FNV-1a), exposed for the WAL and
/// checkpoint-file layers so every durable byte is guarded the same way.
std::uint32_t WireFnv1a(std::string_view bytes) noexcept;

/// Appends one response / control / replicate frame to `out` (no stream
/// header).
void AppendWireResponseFrame(const WireResponse& response, std::string& out);
void AppendWireControlFrame(const WireControl& control, std::string& out);
void AppendWireReplicateFrame(const WireReplicate& replicate,
                              std::string& out);

/// Incremental binary-stream decoder: accepts arbitrary partial byte
/// chunks (whatever a socket read returned) and reassembles frames across
/// chunk boundaries.  Fed the same bytes in any partition, it produces
/// packets bit-identical to DecodeWireBinary over the whole stream, and
/// fails with the same typed kDataCorruption errors at the same stream
/// byte offsets.  A decode error poisons the decoder: every later Feed /
/// Finish returns the same status (a byte stream has no frame resync
/// point — the transport must be torn down).
/// Which frame kinds a WireDecoder's channel may carry.  The ingest
/// default matches DecodeWireBinary: response/control frames are
/// "unknown".
struct WireDecoderAccept {
  bool packets = true;
  bool responses = false;
  bool controls = false;
  bool replicates = false;
  /// Deliver frames via TakeEvents() in exact stream order instead of the
  /// per-kind Take*() vectors.  Cluster channels need this: a kClockSet
  /// must be applied before the packets that followed it on the wire.
  bool ordered = false;
};

/// One decoded frame in stream order (ordered mode).  `kind` selects
/// which member is meaningful.
struct WireEvent {
  std::uint8_t kind = 0;
  IngestPacket packet;      ///< kWireObservationFrame / kWireQueryFrame.
  WireResponse response;    ///< kWireResponseFrame.
  WireControl control;      ///< kWireControlFrame.
  WireReplicate replicate;  ///< kWireReplicateFrame.
};

class WireDecoder {
 public:
  using Accept = WireDecoderAccept;

  explicit WireDecoder(Accept accept = Accept{}) noexcept
      : accept_(accept) {}

  /// Consumes one chunk.  Complete frames are queued on the Take*()
  /// buffers; a trailing partial frame is held for the next chunk.
  common::Result<void> Feed(std::string_view chunk);

  /// Declares end-of-stream.  Fails with the truncation error
  /// DecodeWireBinary would report if a partial header or frame remains.
  common::Result<void> Finish();

  /// Moves out the frames decoded so far (stream order).
  std::vector<IngestPacket> TakePackets();
  std::vector<WireResponse> TakeResponses();
  std::vector<WireControl> TakeControls();
  std::vector<WireReplicate> TakeReplicates();
  /// Ordered mode only: every decoded frame, interleaved in stream order.
  std::vector<WireEvent> TakeEvents();

  /// Total bytes fully decoded (header + completed frames); the offset
  /// the next frame starts at.
  std::size_t BytesDecoded() const noexcept { return stream_offset_; }
  /// Bytes buffered waiting for the rest of their frame.
  std::size_t PendingBytes() const noexcept { return buffer_.size(); }

 private:
  common::Status Poison(std::string_view what, std::size_t offset);

  Accept accept_;
  bool header_done_ = false;
  bool poisoned_ = false;
  common::Status poison_status_;
  std::string buffer_;
  std::size_t stream_offset_ = 0;  ///< Stream offset of buffer_[0].
  std::vector<IngestPacket> packets_;
  std::vector<WireResponse> responses_;
  std::vector<WireControl> controls_;
  std::vector<WireReplicate> replicates_;
  std::vector<WireEvent> events_;
};

}  // namespace nomloc::serving
