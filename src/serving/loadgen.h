// Open-loop load generation for the serving layer.
//
// A closed-loop driver (send, wait for the response, send again) lets a
// slow server throttle its own load: the one request that stalled 100 ms
// also *delayed every request behind it out of existence*, so the
// percentiles never see the queue that would have formed.  This is
// coordinated omission.  The open-loop generator instead fixes the
// arrival schedule up front — packet k is due at offset t_k regardless of
// how the server is doing — and latency is measured from the *scheduled*
// send time (IngestPacket::scheduled_wall), so a sender running behind
// charges the backlog to every late packet.
//
// Arrival processes (offsets are logical seconds from stream start):
//
//   * Poisson      — exponential inter-arrivals at a constant mean rate;
//   * diurnal      — inhomogeneous Poisson via thinning with
//                    lambda(t) = rate (1 + A sin(2 pi t / period));
//   * flash crowd  — constant rate with a multiplier burst inside
//                    [flash_start_s, flash_start_s + flash_duration_s).
//
// Object popularity is Zipf(s) over the object population (rank-1 object
// hottest), the standard skew model for serving workloads; s = 0 degrades
// to uniform.  Everything is seeded and deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "serving/service.h"

namespace nomloc::serving {

enum class ArrivalProcess {
  kPoisson,
  kDiurnal,
  kFlashCrowd,
};

std::string_view ArrivalProcessName(ArrivalProcess process) noexcept;
/// Parses "poisson" / "diurnal" / "flash" (kInvalidArgument otherwise).
common::Result<ArrivalProcess> ParseArrivalProcessName(std::string_view name);

struct LoadGenConfig {
  /// Concurrent sessions: the populate phase creates exactly this many.
  std::size_t objects = 10'000;
  /// Constraint sources per object (static APs / dwell sites).
  std::size_t anchors_per_object = 3;
  /// Steady-phase packets to schedule.
  std::size_t packets = 100'000;
  /// Mean arrival rate lambda_0 [packets/s] on the logical timeline.
  double rate_per_s = 100'000.0;
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  /// Zipf skew exponent over object popularity (0 = uniform).
  double zipf_s = 0.99;
  /// Fraction of steady-phase packets that are queries (the rest are
  /// observations).
  double query_fraction = 0.02;
  /// Diurnal modulation: lambda(t) = rate (1 + amplitude sin(2 pi t / T)).
  double diurnal_period_s = 1.0;
  double diurnal_amplitude = 0.5;  ///< Must stay in [0, 1).
  /// Flash crowd: rate is multiplied inside the window.
  double flash_start_s = 0.2;
  double flash_duration_s = 0.2;
  double flash_multiplier = 8.0;
  /// Synthetic anchor positions are drawn from [0, area_m)^2.
  double area_m = 30.0;
  std::uint64_t seed = 1;

  common::Result<void> Validate() const;
};

/// One steady-phase packet with its scheduled send offset.
struct ScheduledPacket {
  double send_offset_s = 0.0;  ///< Offset from stream start (sorted).
  IngestPacket packet;         ///< timestamp_s == send_offset_s.
};

struct LoadSchedule {
  /// Populate phase: one observation per (object, anchor), all at t = 0,
  /// ingested at full speed to stand up `objects` sessions.
  std::vector<IngestPacket> populate;
  /// Steady phase, sorted by send_offset_s.
  std::vector<ScheduledPacket> steady;
  /// Logical duration of the steady phase (last offset).
  double horizon_s = 0.0;
};

/// Builds the full deterministic schedule.  Validate() the config first;
/// this asserts on invalid input.
LoadSchedule BuildLoadSchedule(const LoadGenConfig& config);

}  // namespace nomloc::serving
