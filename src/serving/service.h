// StreamingLocalizer — the online serving layer on top of NomLocEngine.
//
// Ingestion is a set of bounded FIFO queues, one per worker thread; every
// packet is routed by its object id's shard, and each shard maps to
// exactly one worker.  That gives three properties at once:
//
//   1. MPSC, not MPMC: producers contend only on the target worker's
//      queue mutex, never with each other's objects.
//   2. Per-object FIFO: all packets of one object are processed in
//      ingestion order by one worker, so PDP accumulation and session
//      mutation are deterministic (and the no-fault streaming path is
//      bit-identical to NomLocEngine::LocateBatch over the same anchors).
//   3. Admission control with backpressure: a full queue rejects the
//      packet with a typed AdmitStatus instead of blocking the producer.
//
// Deadlines are absolute logical times (serving/clock.h).  A packet whose
// deadline has passed at admission or at dequeue is rejected as
// kRejectedDeadline — queries still yield a (rejection) response, so every
// accepted query produces exactly one ServeResponse.
//
// Graceful degradation: fault injection (AP dropout, packet loss, delay)
// runs at the ingest boundary; the solver simply sees the reduced anchor
// set, and each response reports the feasible-cell area plus a confidence
// in [0, 1] derived from it, with `degraded` flagging responses whose
// constraint set is smaller than expected (aged-out or dropped anchors).
//
// All serving metrics are namespaced `serving.*`; AllMetricNames() is the
// canonical list (tested against --metrics output).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <thread>
#include <vector>

#include "common/degradation.h"
#include "core/nomloc.h"
#include "serving/circuit_breaker.h"
#include "serving/clock.h"
#include "serving/fault_injection.h"
#include "serving/session_store.h"

namespace nomloc::serving {

enum class PacketKind {
  kObservation,  ///< One AP's PDP report for one object.
  kQuery,        ///< Request a location estimate for one object.
};

/// One unit of the ingest stream.  Observations carry a pre-extracted
/// batch-mean PDP (the CSI -> PDP reduction runs at the edge, as in the
/// paper's AP-side CSI tool); queries carry only the object id.
struct IngestPacket {
  PacketKind kind = PacketKind::kObservation;
  std::uint64_t object_id = 0;
  int ap_id = 0;
  std::size_t site_index = 0;      ///< Nomadic dwell site; 0 for static.
  bool is_nomadic = false;
  geometry::Vec2 reported_position;
  double pdp = 0.0;                ///< Batch-mean PDP [mW].
  double weight = 1.0;             ///< Frames behind the mean.
  double timestamp_s = 0.0;        ///< Measurement time (logical).
  /// Absolute logical deadline; the packet is dropped/rejected once the
  /// clock passes it.  Defaults to "never".
  double deadline_s = std::numeric_limits<double>::infinity();
  /// Wall time this packet was *scheduled* to be sent.  When set, served
  /// latency is measured from here instead of the admission time, so a
  /// stalled sender cannot hide queueing delay from the percentiles
  /// (coordinated omission).  Open-loop load generation stamps this;
  /// epoch-zero (the default) means "unset" and latency falls back to the
  /// admission timestamp.
  std::chrono::steady_clock::time_point scheduled_wall{};
};

/// Synchronous admission verdict returned by Ingest().
enum class AdmitStatus {
  kAccepted,
  kDroppedByFault,     ///< Fault injection consumed the packet.
  kRejectedQueueFull,  ///< Backpressure: the worker's queue is at capacity.
  kRejectedDeadline,   ///< Deadline already passed at admission.
  kRejectedShutdown,   ///< Service is shutting down.
  kRejectedCorrupt,    ///< Observation carried NaN/Inf or non-positive PDP.
  kRejectedBreakerOpen,///< The AP's circuit breaker is open.
  /// Cluster: the frame's placement epoch predates the host's — a lagging
  /// router lost a failover race and must refresh its table.
  kRejectedStaleEpoch,
  /// Cluster: a transport write failed because the router (or the slot it
  /// targeted) is shutting down — not a transient fault, do not retry and
  /// do not count it toward a breaker trip.
  kRejectedShuttingDown,
};

std::string_view AdmitStatusName(AdmitStatus status) noexcept;

/// Terminal state of one accepted query.
enum class ServeStatus {
  kOk,
  kRejectedDeadline,  ///< Deadline passed while queued.
  kFailed,            ///< Engine/session error (see `error`).
};

struct ServeResponse {
  std::uint64_t object_id = 0;
  std::uint64_t seq = 0;        ///< Ingestion sequence number.
  double timestamp_s = 0.0;     ///< The query packet's timestamp.
  ServeStatus status = ServeStatus::kOk;
  common::Status error;         ///< Set when status == kFailed.
  core::LocationEstimate estimate;
  std::size_t anchor_count = 0;
  /// Heuristic confidence in [0, 1]: 1/(1 + relaxation_cost) scaled by
  /// how much of the floor the feasible cell rules out (a cell as large
  /// as the whole area carries no information).
  double confidence = 0.0;
  /// True when the constraint set shrank below expectation — anchors aged
  /// out, or fewer than ServingConfig::expected_anchors are live.
  bool degraded = false;
  /// Rung of the degradation ladder this estimate came from: the engine
  /// reports levels 0–2 (full solve / relaxed constraints / weighted
  /// centroid); the serving layer adds level 3 when it answered from the
  /// session's last-known-good estimate.  Confidence is scaled by
  /// common::DegradationConfidenceScale(degradation).
  common::DegradationLevel degradation = common::DegradationLevel::kNone;
  /// Solve attempts beyond the first that this response consumed
  /// (ServingConfig::query_retry_budget).
  std::size_t retries = 0;
  double queue_wait_s = 0.0;    ///< Wall time spent queued.
  double latency_s = 0.0;       ///< Wall time ingest -> completion.
};

struct ServingConfig {
  std::size_t workers = 2;
  /// Per-worker queue bound (admission control kicks in beyond it).
  std::size_t queue_capacity = 1024;
  SessionStoreConfig store;
  FaultConfig faults;
  /// Anchors a healthy session is expected to hold (0 = unknown).  Used
  /// only for the `degraded` flag, e.g. static APs + nomadic sites.
  std::size_t expected_anchors = 0;
  /// Per-AP circuit breakers at the ingest boundary (corrupt reports trip
  /// them; see serving/circuit_breaker.h).
  CircuitBreakerConfig breaker;
  /// Failed query solves are re-enqueued up to this many times before the
  /// failure (or the last-known-good fallback) is surfaced.  0 = answer
  /// on the first attempt, which keeps the no-fault streaming path
  /// bit-identical to LocateBatch.
  std::size_t query_retry_budget = 0;
  /// When a query cannot be solved (session evicted, too few anchors,
  /// engine failure), answer with the session's last successful estimate
  /// at DegradationLevel::kLastKnownGood instead of failing — if one
  /// exists.
  bool last_known_good_fallback = true;
  /// How queries drive the SP solver.  kColdEachSolve (the default)
  /// solves every query statelessly through NomLocEngine::Locate, which
  /// keeps the no-fault streaming path bit-identical to LocateBatch over
  /// the same anchors.  kIncremental keeps one warm
  /// localization::SpSolverSession per object inside the session store
  /// and feeds it constraint deltas (ReplaceConstraints), so consecutive
  /// queries on a slowly-changing session reuse the previous basis /
  /// feasible polygon — equivalent to the stateless answer within solver
  /// tolerance, and much cheaper on streaming updates.
  localization::SpSessionMode solver_mode =
      localization::SpSessionMode::kColdEachSolve;
  /// Created paused: packets queue up but no worker drains them until
  /// Start().  Lets tests fill queues deterministically.
  bool start_paused = false;

  common::Result<void> Validate() const;
};

class StreamingLocalizer {
 public:
  /// `engine` and `clock` must outlive the service.  `clock` may be null:
  /// the service then runs on its own wall clock (SteadyClock).
  static common::Result<std::unique_ptr<StreamingLocalizer>> Create(
      const core::NomLocEngine& engine, ServingConfig config,
      const Clock* clock = nullptr);

  /// Drains queues and joins the workers.
  ~StreamingLocalizer();

  StreamingLocalizer(const StreamingLocalizer&) = delete;
  StreamingLocalizer& operator=(const StreamingLocalizer&) = delete;

  /// Non-blocking admission.  Applies fault injection to observations,
  /// checks the deadline and the target queue's capacity, and enqueues.
  AdmitStatus Ingest(const IngestPacket& packet);

  /// Releases the workers of a start_paused service.  No-op otherwise.
  void Start();

  /// Blocks until every queued packet has been processed.
  void Flush();

  /// Drains and stops the workers.  Idempotent; Ingest afterwards returns
  /// kRejectedShutdown.
  void Shutdown();

  /// Moves out all responses completed so far (any worker order; sort by
  /// `seq` for a deterministic view).
  std::vector<ServeResponse> TakeResponses();

  /// Sweeps every session shard at logical time `now_s` (eviction +
  /// occupancy metrics).  Workers also sweep an object's shard after each
  /// query they serve.
  std::size_t SweepSessions(double now_s);

  SessionStore& Store() noexcept { return store_; }
  BreakerBank& Breakers() noexcept { return breakers_; }
  const core::NomLocEngine& Engine() const noexcept { return engine_; }
  std::size_t WorkerCount() const noexcept;

 private:
  StreamingLocalizer(const core::NomLocEngine& engine, ServingConfig config,
                     const Clock* clock);

  struct Job;
  struct WorkerQueue;

  void WorkerLoop(std::size_t worker_index);
  void Serve(const Job& job);
  void PushResponse(ServeResponse response);
  /// Puts a retried query back on its own worker's queue (capacity and
  /// shutdown permitting).  Returns false when the retry could not be
  /// enqueued — the caller must surface a response instead.
  bool TryRequeue(Job job);

  const core::NomLocEngine& engine_;
  ServingConfig config_;
  std::unique_ptr<SteadyClock> owned_clock_;
  const Clock* clock_;  ///< Never null.
  SessionStore store_;
  FaultInjector faults_;
  BreakerBank breakers_;

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<bool> paused_{false};
  std::atomic<bool> shutdown_{false};

  std::mutex lifecycle_mutex_;  ///< Serializes Shutdown (join-once).
  std::mutex responses_mutex_;
  std::vector<ServeResponse> responses_;
};

/// Canonical names of every serving metric, for drift tests and tooling.
std::span<const std::string_view> AllMetricNames();

/// Registers every serving metric (with its final type) in the global
/// registry so a --metrics dump lists the full serving surface even for
/// series that have not fired yet.
void TouchMetrics();

}  // namespace nomloc::serving
