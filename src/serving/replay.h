// Scenario replay: turns an eval::Scenario into a timestamped ingest
// stream for the streaming service, plus the golden per-epoch anchor sets
// that make the no-fault stream provably equivalent to a LocateBatch call.
//
// Epoch model: every `epoch_interval_s`, each tracked object's epoch of
// measurements (one batch-mean PDP per static AP and per visited nomadic
// site, from eval::MeasureEpoch) is emitted as one observation packet per
// anchor, followed by one query packet.  The session-store anchor TTL is
// expected to be shorter than the epoch interval, so by the time epoch
// e's query runs, epoch e-1's observations have aged out and the live
// anchor set equals epoch e's — which is exactly the golden request.
#pragma once

#include <cstdint>
#include <vector>

#include "eval/runner.h"
#include "eval/scenario.h"
#include "serving/service.h"

namespace nomloc::serving {

struct ReplayConfig {
  std::size_t objects = 4;   ///< Tracked objects (cycled over test sites).
  std::size_t epochs = 3;    ///< Measurement epochs per object.
  double epoch_interval_s = 1.0;
  /// Per-packet deadline, relative to its timestamp (0 = no deadline).
  double deadline_s = 0.0;
  /// Measurement knobs (packets_per_batch, dwell_count, deployment, seed,
  /// channel/engine config) — the same RunConfig the batch pipeline uses.
  eval::RunConfig run;

  common::Result<void> Validate() const;
};

/// One object-epoch of the plan: the golden anchors (ordered by ap_id =
/// anchor index, matching the session snapshot's AnchorKey sort) and the
/// true position the estimate should be compared against.
struct ReplayEpoch {
  std::uint64_t object_id = 0;
  std::size_t epoch = 0;
  geometry::Vec2 true_position;
  std::vector<localization::Anchor> anchors;
};

struct ReplayPlan {
  /// Timestamp-ordered stream: per epoch, all objects' observation
  /// packets, then their query packets.
  std::vector<IngestPacket> packets;
  /// Row e * objects + o holds object o's epoch-e golden anchors.
  std::vector<ReplayEpoch> epochs;
  std::size_t objects = 0;
  std::size_t epoch_count = 0;
  /// An anchor-TTL upper bound that isolates consecutive epochs (half the
  /// epoch interval) — hand to SessionStoreConfig::anchor_ttl_s when the
  /// golden equivalence matters.
  double suggested_anchor_ttl_s = 0.0;
  /// Anchors per healthy epoch (for ServingConfig::expected_anchors).
  std::size_t expected_anchors = 0;
};

/// Measures every (object, epoch) with eval::MeasureEpoch on forked RNG
/// streams and lays the packets out on the logical timeline.
common::Result<ReplayPlan> BuildReplayPlan(const eval::Scenario& scenario,
                                           const ReplayConfig& config);

}  // namespace nomloc::serving
