// Logical clocks for the serving layer.
//
// Deadlines and time-decay are defined on *logical* seconds so that tests
// and trace replays are deterministic: a ManualClock is advanced explicitly
// (by the test, or by the replay driver as it walks the packet stream),
// while production deployments plug in SteadyClock for wall time.  No
// serving component ever reads the wall clock for semantic decisions —
// wall time is used only for latency *metrics*.
#pragma once

#include <atomic>
#include <chrono>

namespace nomloc::serving {

/// Seconds on some monotonic timeline.  Implementations must be safe to
/// read from any thread.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double NowSeconds() const = 0;
};

/// Test/replay clock: time moves only when someone sets or advances it.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(double start_s = 0.0) noexcept : now_s_(start_s) {}

  double NowSeconds() const override {
    return now_s_.load(std::memory_order_acquire);
  }
  void Set(double now_s) noexcept {
    now_s_.store(now_s, std::memory_order_release);
  }
  void Advance(double delta_s) noexcept { Set(NowSeconds() + delta_s); }

 private:
  std::atomic<double> now_s_;
};

/// Wall clock: seconds since construction on std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  SteadyClock() noexcept : epoch_(std::chrono::steady_clock::now()) {}

  double NowSeconds() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace nomloc::serving
