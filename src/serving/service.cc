#include "serving/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>

#include "common/metrics.h"
#include "localization/sp_session.h"

namespace nomloc::serving {

namespace {

constexpr std::string_view kCounterNames[] = {
    "serving.ingest.accepted",      "serving.ingest.observations",
    "serving.ingest.queries",       "serving.rejected.queue_full",
    "serving.rejected.deadline",    "serving.sessions.created",
    "serving.sessions.evicted",     "serving.observations.evicted",
    "serving.degraded",             "serving.solve.failed",
    "serving.faults.ap_dropout",    "serving.faults.packet_loss",
    "serving.faults.delayed",       "serving.rejected.corrupt",
    "serving.rejected.breaker",     "serving.breaker.opened",
    "serving.breaker.reclosed",     "serving.retries",
    "serving.fallback.last_known_good",
    "serving.checkpoint.restored",  "serving.solver.sessions",
    "serving.evictions.pressure",   "serving.wire.parse_failures",
    "serving.wire.bytes_in",        "serving.wire.bytes_out",
    "serving.wal.appends",          "serving.wal.bytes",
    "serving.wal.syncs",            "serving.wal.rotations",
    "serving.wal.replayed_frames",  "serving.wal.torn_tails",
};
constexpr std::string_view kHistogramNames[] = {
    "serving.queue.depth",
    "serving.shard.occupancy",
    "serving.shard.bytes",
};
constexpr std::string_view kTimerNames[] = {
    "serving.queue.wait",
    "serving.solve",
    "serving.latency",
};
constexpr std::string_view kAllNames[] = {
    "serving.ingest.accepted",      "serving.ingest.observations",
    "serving.ingest.queries",       "serving.rejected.queue_full",
    "serving.rejected.deadline",    "serving.sessions.created",
    "serving.sessions.evicted",     "serving.observations.evicted",
    "serving.degraded",             "serving.solve.failed",
    "serving.faults.ap_dropout",    "serving.faults.packet_loss",
    "serving.faults.delayed",       "serving.rejected.corrupt",
    "serving.rejected.breaker",     "serving.breaker.opened",
    "serving.breaker.reclosed",     "serving.retries",
    "serving.fallback.last_known_good",
    "serving.checkpoint.restored",  "serving.solver.sessions",
    "serving.evictions.pressure",   "serving.wire.parse_failures",
    "serving.wire.bytes_in",        "serving.wire.bytes_out",
    "serving.wal.appends",          "serving.wal.bytes",
    "serving.wal.syncs",            "serving.wal.rotations",
    "serving.wal.replayed_frames",  "serving.wal.torn_tails",
    "serving.queue.depth",
    "serving.shard.occupancy",      "serving.shard.bytes",
    "serving.queue.wait",
    "serving.solve",                "serving.latency",
};

double WallSecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

std::span<const std::string_view> AllMetricNames() { return kAllNames; }

void TouchMetrics() {
  auto& registry = common::MetricRegistry::Global();
  for (std::string_view name : kCounterNames) registry.Counter(name);
  for (std::string_view name : kHistogramNames) {
    // Shard byte footprints span far past the 1e6 sessions/depth range.
    if (name == "serving.shard.bytes")
      registry.Histogram(name, {}, 1.0, 1e9, 64);
    else
      registry.Histogram(name, {}, 1.0, 1e6, 48);
  }
  for (std::string_view name : kTimerNames) registry.Timer(name);
}

std::string_view AdmitStatusName(AdmitStatus status) noexcept {
  switch (status) {
    case AdmitStatus::kAccepted: return "ACCEPTED";
    case AdmitStatus::kDroppedByFault: return "DROPPED_BY_FAULT";
    case AdmitStatus::kRejectedQueueFull: return "REJECTED_QUEUE_FULL";
    case AdmitStatus::kRejectedDeadline: return "REJECTED_DEADLINE";
    case AdmitStatus::kRejectedShutdown: return "REJECTED_SHUTDOWN";
    case AdmitStatus::kRejectedCorrupt: return "REJECTED_CORRUPT";
    case AdmitStatus::kRejectedBreakerOpen: return "REJECTED_BREAKER_OPEN";
    case AdmitStatus::kRejectedStaleEpoch: return "REJECTED_STALE_EPOCH";
    case AdmitStatus::kRejectedShuttingDown: return "REJECTED_SHUTTING_DOWN";
  }
  return "UNKNOWN";
}

common::Result<void> ServingConfig::Validate() const {
  if (workers == 0) return common::InvalidArgument("workers must be >= 1");
  if (queue_capacity == 0)
    return common::InvalidArgument("queue_capacity must be >= 1");
  if (auto valid = store.Validate(); !valid.ok()) return valid;
  if (auto valid = faults.Validate(); !valid.ok()) return valid;
  if (auto valid = breaker.Validate(); !valid.ok()) return valid;
  return {};
}

struct StreamingLocalizer::Job {
  IngestPacket packet;
  std::uint64_t seq = 0;
  std::chrono::steady_clock::time_point enqueue_wall;
  std::size_t retries_left = 0;
  std::size_t retries_used = 0;
};

struct StreamingLocalizer::WorkerQueue {
  std::mutex mutex;
  std::condition_variable ready;
  std::condition_variable drained;
  std::deque<Job> jobs;
  bool busy = false;
};

common::Result<std::unique_ptr<StreamingLocalizer>> StreamingLocalizer::
    Create(const core::NomLocEngine& engine, ServingConfig config,
           const Clock* clock) {
  if (auto valid = config.Validate(); !valid.ok()) return valid.status();
  return std::unique_ptr<StreamingLocalizer>(
      new StreamingLocalizer(engine, std::move(config), clock));
}

StreamingLocalizer::StreamingLocalizer(const core::NomLocEngine& engine,
                                       ServingConfig config,
                                       const Clock* clock)
    : engine_(engine),
      config_(std::move(config)),
      store_(config_.store),
      faults_(config_.faults),
      breakers_(config_.breaker) {
  if (clock == nullptr) {
    owned_clock_ = std::make_unique<SteadyClock>();
    clock = owned_clock_.get();
  }
  clock_ = clock;
  paused_.store(config_.start_paused);
  queues_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  threads_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i)
    threads_.emplace_back([this, i] { WorkerLoop(i); });
}

StreamingLocalizer::~StreamingLocalizer() { Shutdown(); }

std::size_t StreamingLocalizer::WorkerCount() const noexcept {
  return config_.workers;
}

AdmitStatus StreamingLocalizer::Ingest(const IngestPacket& packet) {
  auto& registry = common::MetricRegistry::Global();
  static auto& accepted = registry.Counter("serving.ingest.accepted");
  static auto& observations = registry.Counter("serving.ingest.observations");
  static auto& queries = registry.Counter("serving.ingest.queries");
  static auto& queue_full = registry.Counter("serving.rejected.queue_full");
  static auto& past_deadline = registry.Counter("serving.rejected.deadline");
  static auto& corrupt_counter = registry.Counter("serving.rejected.corrupt");
  static auto& breaker_rejected = registry.Counter("serving.rejected.breaker");
  static auto& depth_hist =
      registry.Histogram("serving.queue.depth", {}, 1.0, 1e6, 48);

  if (shutdown_.load(std::memory_order_acquire))
    return AdmitStatus::kRejectedShutdown;

  double arrival_delay_s = 0.0;
  if (packet.kind == PacketKind::kObservation && config_.faults.Enabled()) {
    const FaultDecision decision = faults_.OnObservation(packet.ap_id);
    if (decision.drop) return AdmitStatus::kDroppedByFault;
    arrival_delay_s = decision.extra_delay_s;
  }
  if (packet.kind == PacketKind::kObservation) {
    // Anchor health: an open breaker short-circuits the AP entirely; a
    // half-open one admits exactly one probe, judged by the corruption
    // screen right below.
    const double breaker_now_s = clock_->NowSeconds();
    if (!breakers_.Allow(packet.ap_id, breaker_now_s)) {
      breaker_rejected.Increment();
      return AdmitStatus::kRejectedBreakerOpen;
    }
    const bool corrupt = !std::isfinite(packet.reported_position.x) ||
                         !std::isfinite(packet.reported_position.y) ||
                         !std::isfinite(packet.pdp) || packet.pdp <= 0.0 ||
                         !std::isfinite(packet.weight) || packet.weight <= 0.0;
    if (corrupt) {
      corrupt_counter.Increment();
      breakers_.RecordFailure(packet.ap_id, breaker_now_s);
      return AdmitStatus::kRejectedCorrupt;
    }
    breakers_.RecordSuccess(packet.ap_id, breaker_now_s);
  }
  // A delayed packet is admitted as if it arrived `arrival_delay_s` later:
  // if that lands past the deadline, the network already lost the race.
  if (clock_->NowSeconds() + arrival_delay_s > packet.deadline_s) {
    past_deadline.Increment();
    return AdmitStatus::kRejectedDeadline;
  }

  const std::size_t shard = store_.ShardOf(packet.object_id);
  WorkerQueue& queue = *queues_[shard % queues_.size()];
  {
    std::lock_guard<std::mutex> lock(queue.mutex);
    if (queue.jobs.size() >= config_.queue_capacity) {
      queue_full.Increment();
      return AdmitStatus::kRejectedQueueFull;
    }
    Job job;
    job.packet = packet;
    job.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    job.enqueue_wall = std::chrono::steady_clock::now();
    if (packet.kind == PacketKind::kQuery)
      job.retries_left = config_.query_retry_budget;
    queue.jobs.push_back(std::move(job));
    depth_hist.Record(static_cast<double>(queue.jobs.size()));
  }
  queue.ready.notify_one();
  accepted.Increment();
  (packet.kind == PacketKind::kObservation ? observations : queries)
      .Increment();
  return AdmitStatus::kAccepted;
}

void StreamingLocalizer::Start() {
  paused_.store(false, std::memory_order_release);
  for (auto& queue : queues_) queue->ready.notify_all();
}

void StreamingLocalizer::Flush() {
  for (auto& queue : queues_) {
    std::unique_lock<std::mutex> lock(queue->mutex);
    queue->drained.wait(
        lock, [&] { return queue->jobs.empty() && !queue->busy; });
  }
}

void StreamingLocalizer::Shutdown() {
  // Dedicated lifecycle mutex: workers lock responses_mutex_ while this
  // thread joins them, so the join must not hold it.
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (threads_.empty()) return;
  shutdown_.store(true, std::memory_order_release);
  for (auto& queue : queues_) queue->ready.notify_all();
  for (std::thread& thread : threads_) thread.join();
  threads_.clear();
}

std::vector<ServeResponse> StreamingLocalizer::TakeResponses() {
  std::lock_guard<std::mutex> lock(responses_mutex_);
  std::vector<ServeResponse> out;
  out.swap(responses_);
  return out;
}

std::size_t StreamingLocalizer::SweepSessions(double now_s) {
  return store_.SweepAll(now_s);
}

void StreamingLocalizer::PushResponse(ServeResponse response) {
  std::lock_guard<std::mutex> lock(responses_mutex_);
  responses_.push_back(std::move(response));
}

bool StreamingLocalizer::TryRequeue(Job job) {
  if (shutdown_.load(std::memory_order_acquire)) return false;
  const std::size_t shard = store_.ShardOf(job.packet.object_id);
  WorkerQueue& queue = *queues_[shard % queues_.size()];
  {
    std::lock_guard<std::mutex> lock(queue.mutex);
    if (queue.jobs.size() >= config_.queue_capacity) return false;
    queue.jobs.push_back(std::move(job));
  }
  queue.ready.notify_one();
  return true;
}

void StreamingLocalizer::WorkerLoop(std::size_t worker_index) {
  WorkerQueue& queue = *queues_[worker_index];
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue.mutex);
      queue.ready.wait(lock, [&] {
        // Shutdown overrides pause so queued work still drains.
        return shutdown_.load(std::memory_order_acquire) ||
               (!paused_.load(std::memory_order_acquire) &&
                !queue.jobs.empty());
      });
      if (queue.jobs.empty()) {
        if (shutdown_.load(std::memory_order_acquire)) return;
        continue;
      }
      job = std::move(queue.jobs.front());
      queue.jobs.pop_front();
      queue.busy = true;
    }
    Serve(job);
    {
      std::lock_guard<std::mutex> lock(queue.mutex);
      queue.busy = false;
      if (queue.jobs.empty()) queue.drained.notify_all();
    }
  }
}

void StreamingLocalizer::Serve(const Job& job) {
  auto& registry = common::MetricRegistry::Global();
  static auto& wait_timer = registry.Timer("serving.queue.wait");
  static auto& solve_timer = registry.Timer("serving.solve");
  static auto& latency_timer = registry.Timer("serving.latency");
  static auto& past_deadline = registry.Counter("serving.rejected.deadline");
  static auto& degraded_counter = registry.Counter("serving.degraded");
  static auto& solve_failed = registry.Counter("serving.solve.failed");
  static auto& retries_counter = registry.Counter("serving.retries");
  static auto& lkg_counter =
      registry.Counter("serving.fallback.last_known_good");

  const IngestPacket& packet = job.packet;
  // Latency runs from the *scheduled* send time when the producer stamped
  // one (open-loop load), so sender stalls count against the percentiles
  // instead of silently vanishing (coordinated omission).
  const auto latency_origin =
      packet.scheduled_wall.time_since_epoch().count() != 0
          ? packet.scheduled_wall
          : job.enqueue_wall;
  const double queue_wait_s = WallSecondsSince(job.enqueue_wall);
  wait_timer.RecordSeconds(queue_wait_s);
  const double now_s = clock_->NowSeconds();
  const bool deadline_missed = now_s > packet.deadline_s;

  if (packet.kind == PacketKind::kObservation) {
    if (deadline_missed) {
      // Stale by the time a worker got to it — never enters the session.
      past_deadline.Increment();
      return;
    }
    PdpObservation obs;
    obs.pdp = packet.pdp;
    obs.weight = packet.weight;
    obs.timestamp_s = packet.timestamp_s;
    store_.Upsert(packet.object_id,
                  AnchorKey{packet.ap_id, packet.site_index},
                  packet.reported_position, packet.is_nomadic, obs, now_s);
    return;
  }

  ServeResponse response;
  response.object_id = packet.object_id;
  response.seq = job.seq;
  response.timestamp_s = packet.timestamp_s;
  response.queue_wait_s = queue_wait_s;
  response.retries = job.retries_used;

  if (deadline_missed) {
    past_deadline.Increment();
    response.status = ServeStatus::kRejectedDeadline;
    response.latency_s = WallSecondsSince(latency_origin);
    latency_timer.RecordSeconds(response.latency_s);
    PushResponse(std::move(response));
    return;
  }

  common::StageTrace solve_trace(solve_timer);
  auto snapshot = store_.Snapshot(packet.object_id, now_s);
  if (!snapshot.ok()) {
    response.status = ServeStatus::kFailed;
    response.error = snapshot.status();
    response.degraded = true;
    solve_failed.Increment();
  } else {
    response.anchor_count = snapshot->anchors.size();
    response.degraded =
        snapshot->live_keys < snapshot->keys_ever ||
        (config_.expected_anchors > 0 &&
         snapshot->live_keys < config_.expected_anchors);
    if (snapshot->anchors.size() < 2) {
      response.status = ServeStatus::kFailed;
      response.error = common::FailedPrecondition(
          "fewer than two live anchors in the session");
      response.degraded = true;
      solve_failed.Increment();
    } else {
      core::LocateRequest request;
      request.anchors = snapshot->anchors;
      auto located = [&]() -> common::Result<core::LocateResponse> {
        if (config_.solver_mode != localization::SpSessionMode::kIncremental)
          return engine_.Locate(request);
        // Warm path: the object's solver session lives in the store (so
        // eviction and solver state share a lifecycle) and sees only the
        // constraint delta since the last query.
        static auto& sessions_created =
            registry.Counter("serving.solver.sessions");
        auto solver = store_.SolverSession(packet.object_id, [&] {
          sessions_created.Increment();
          return std::make_shared<localization::SpSolverSession>(
              engine_.MakeSolverSession(
                  localization::SpSessionMode::kIncremental));
        });
        return engine_.Locate(request, solver.get());
      }();
      if (!located.ok()) {
        response.status = ServeStatus::kFailed;
        response.error = located.status();
        response.degraded = true;
        solve_failed.Increment();
      } else {
        response.estimate = std::move(located->estimate);
        response.degradation = located->degradation;
        // Confidence: perfect consistency (zero relaxation cost) with a
        // pinpoint feasible cell scores 1; a cell as large as the whole
        // floor, or a heavily relaxed program, scores toward 0.  At the
        // weighted-centroid rung there is no feasible cell — the area
        // term would always read "whole floor" — so only the consistency
        // term survives.  Every degraded rung additionally scales the
        // result by the ladder's confidence factor (1.0 at kNone, so the
        // healthy path is untouched).
        const double total_area = engine_.Area().Area();
        const double ratio =
            total_area > 0.0
                ? std::clamp(
                      response.estimate.feasible_area_m2 / total_area, 0.0,
                      1.0)
                : 1.0;
        double base =
            (1.0 / (1.0 + response.estimate.relaxation_cost)) * (1.0 - ratio);
        if (response.degradation >= common::DegradationLevel::kWeightedCentroid)
          base = 1.0 / (1.0 + response.estimate.relaxation_cost);
        response.confidence =
            common::DegradationConfidenceScale(response.degradation) * base;
        if (response.degradation != common::DegradationLevel::kNone)
          response.degraded = true;
      }
    }
  }

  if (response.status == ServeStatus::kFailed) {
    // Retry-with-budget: put the query back on this worker's own queue —
    // observations admitted in the meantime may complete the session.
    if (job.retries_left > 0) {
      Job retry = job;
      --retry.retries_left;
      ++retry.retries_used;
      if (TryRequeue(std::move(retry))) {
        retries_counter.Increment();
        solve_trace.Stop();
        return;  // The retried job owns the (single) response now.
      }
    }
    // Last rung of the ladder: answer from the session's last successful
    // estimate when one exists.
    if (config_.last_known_good_fallback) {
      auto last_good = store_.LastGood(packet.object_id);
      if (last_good.ok()) {
        response.status = ServeStatus::kOk;
        response.error = common::Status::Ok();
        response.estimate = core::LocationEstimate{};
        response.estimate.position = last_good->position;
        response.degradation = common::DegradationLevel::kLastKnownGood;
        response.degraded = true;
        response.confidence =
            common::DegradationConfidenceScale(response.degradation) *
            std::clamp(last_good->confidence, 0.0, 1.0);
        lkg_counter.Increment();
      }
    }
  } else if (response.status == ServeStatus::kOk &&
             response.degradation < common::DegradationLevel::kLastKnownGood) {
    LastKnownGood remembered;
    remembered.position = response.estimate.position;
    remembered.confidence = response.confidence;
    remembered.timestamp_s = now_s;
    store_.RecordEstimate(packet.object_id, remembered, now_s);
  }

  solve_trace.Stop();
  if (response.degraded) degraded_counter.Increment();
  // Bounded incremental sweep: a full SweepShard is O(sessions/shard) and
  // would dominate query latency at millions of sessions.  64 slots per
  // query still covers small shards completely (capacity <= 64) and
  // cycles a 125k-session shard in ~2k queries.
  store_.SweepStep(store_.ShardOf(packet.object_id), now_s, 64);
  response.latency_s = WallSecondsSince(latency_origin);
  latency_timer.RecordSeconds(response.latency_s);
  PushResponse(std::move(response));
}

}  // namespace nomloc::serving
