// Configurable fault injection at the serving ingest boundary.
//
// Real deployments lose CSI reports (backhaul loss), see them late
// (queueing in the AP's WLAN stack), and lose whole APs (a nomadic AP's
// battery dies, a static AP reboots) — CRISLoc and Hapi both treat these
// as first-class operating conditions, not error paths.  The injector
// models all three deterministically from a seed, so degraded-mode tests
// and benches are reproducible:
//
//   * AP dropout    — each distinct ap_id is dropped forever with
//                     probability `ap_dropout_rate`, decided once on first
//                     sight (a dead AP stays dead).
//   * packet loss   — each observation packet is dropped i.i.d. with
//                     probability `packet_loss_rate`.
//   * delayed       — each packet is delayed by `delay_s` with probability
//                     `delay_rate` (it arrives, but late enough that its
//                     deadline may have passed and its measurement may
//                     already be stale).
//
// Query packets are never dropped: degradation must surface as a degraded
// *response*, not as silence.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

#include "common/rng.h"
#include "common/status.h"

namespace nomloc::serving {

struct FaultConfig {
  double ap_dropout_rate = 0.0;   ///< P(an AP is dead), per distinct ap_id.
  double packet_loss_rate = 0.0;  ///< P(an observation packet is lost).
  double delay_rate = 0.0;        ///< P(a packet is delivered late).
  double delay_s = 0.0;           ///< Added delivery delay when delayed.
  std::uint64_t seed = 0x5e21;

  bool Enabled() const noexcept {
    return ap_dropout_rate > 0.0 || packet_loss_rate > 0.0 ||
           delay_rate > 0.0;
  }
  common::Result<void> Validate() const;
};

/// Per-packet injection decision.
struct FaultDecision {
  bool drop = false;       ///< Packet never reaches the session store.
  double extra_delay_s = 0.0;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config)
      : config_(config), rng_(config.seed) {}

  /// Decides the fate of one observation packet from `ap_id`.  Increments
  /// the serving.faults.* counters.
  FaultDecision OnObservation(int ap_id);

  /// True when `ap_id` has been decided dead (for diagnostics).
  bool ApIsDown(int ap_id) const;

 private:
  FaultConfig config_;
  mutable std::mutex mutex_;
  common::Rng rng_;
  std::map<int, bool> ap_down_;  ///< Memoized dropout decisions.
};

}  // namespace nomloc::serving
