// Pipeline observability: a thread-safe registry of named counters,
// histograms, and timers, plus a RAII scope timer (StageTrace).
//
// Every stage of the NomLoc pipeline (CIR/PDP extraction, proximity
// judgement, LP relaxation, epoch assembly) records into the process-wide
// registry so a run can report where its time and error budget went
// (`nomloc_sim --metrics`).  Recording is wait-free on the hot path:
// counters are relaxed atomics and histograms use atomic per-bucket
// counts, so the engine's parallel batch path records without locks.
//
// Series are identified by name plus an optional label ("lp.solves" with
// label "backend=simplex" is a different series from the same name with
// "backend=ipm").  Lookup takes a mutex; call sites on hot paths cache the
// returned reference (registered series are never deallocated while the
// registry lives).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace nomloc::common {

/// Monotonic event counter.  Increment is wait-free.
class MetricCounter {
 public:
  void Increment(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Histogram with geometrically spaced buckets over [lo, hi); samples
/// outside the range clamp to the first/last bucket.  Record is wait-free
/// (atomic bucket counts; sum/min/max via CAS).  Quantiles interpolate
/// within the owning bucket and clamp to the exact observed [min, max], so
/// they are accurate to one bucket width.
class MetricHistogram {
 public:
  /// Requires 0 < lo < hi and buckets >= 1.
  MetricHistogram(double lo, double hi, std::size_t buckets);

  void Record(double x) noexcept;

  std::uint64_t Count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double Sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double Mean() const noexcept;
  /// Smallest / largest recorded sample; 0 when empty.
  double Min() const noexcept;
  double Max() const noexcept;
  /// Bucket-interpolated quantile, q in [0, 1]; 0 when empty.
  double Quantile(double q) const;
  void Reset() noexcept;

 private:
  std::size_t BucketOf(double x) const noexcept;
  /// Lower edge of bucket b (geometric grid).
  double BucketLow(std::size_t b) const noexcept;

  double lo_, hi_;
  double inv_log_growth_;  ///< 1 / ln(per-bucket growth factor).
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  ///< Valid only when count_ > 0.
  std::atomic<double> max_{0.0};
};

/// Accumulates wall-clock durations (seconds) of one pipeline stage.
/// Backed by a histogram spanning 1 ns .. 1000 s.
class MetricTimer {
 public:
  MetricTimer() : hist_(1e-9, 1e3, 96) {}

  void RecordSeconds(double s) noexcept { hist_.Record(s); }

  std::uint64_t Count() const noexcept { return hist_.Count(); }
  double TotalSeconds() const noexcept { return hist_.Sum(); }
  double MeanSeconds() const noexcept { return hist_.Mean(); }
  const MetricHistogram& Histogram() const noexcept { return hist_; }
  void Reset() noexcept { hist_.Reset(); }

 private:
  MetricHistogram hist_;
};

/// Registry of labelled metric series.  `Global()` is the process-wide
/// instance the pipeline stages record into; components that need isolated
/// counts (e.g. one NomLocSystem deployment) own their own instance.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  static MetricRegistry& Global();

  /// Finds or creates a series.  References stay valid for the registry's
  /// lifetime.  For histograms the [lo, hi)/bucket spec applies only on
  /// first creation.
  MetricCounter& Counter(std::string_view name, std::string_view label = {});
  MetricHistogram& Histogram(std::string_view name,
                             std::string_view label = {}, double lo = 1e-4,
                             double hi = 1e4, std::size_t buckets = 64);
  MetricTimer& Timer(std::string_view name, std::string_view label = {});

  /// One line per series, sorted by key:
  ///   counter <name>{<label>} <value>
  ///   histogram <name> count=<n> mean=<m> min=… p50=… p90=… p99=… max=…
  ///   timer <name> count=<n> total_s=… mean_s=… p50_s=… p99_s=… max_s=…
  std::string DumpText() const;
  /// {"counters": {...}, "histograms": {...}, "timers": {...}} with the
  /// same per-series fields as DumpText.
  std::string DumpJson() const;

  /// Zeroes every series (registrations and references survive).
  void ResetAll();

 private:
  static std::string Key(std::string_view name, std::string_view label);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_;
  std::map<std::string, std::unique_ptr<MetricHistogram>> histograms_;
  std::map<std::string, std::unique_ptr<MetricTimer>> timers_;
};

/// RAII wall-clock scope timer: records the scope's duration into a
/// MetricTimer on destruction (or on Stop(), whichever comes first).
///
///   void Solve() {
///     common::StageTrace trace("sp.solve");   // Global() registry
///     …
///   }                                          // duration recorded here
class StageTrace {
 public:
  explicit StageTrace(MetricTimer& timer) noexcept
      : timer_(&timer), start_(std::chrono::steady_clock::now()) {}
  /// Resolves `name` in the global registry.
  explicit StageTrace(std::string_view name)
      : StageTrace(MetricRegistry::Global().Timer(name)) {}

  StageTrace(const StageTrace&) = delete;
  StageTrace& operator=(const StageTrace&) = delete;

  ~StageTrace() { Stop(); }

  /// Records the elapsed time once and returns it in seconds; further
  /// calls return the recorded duration without recording again.
  double Stop() noexcept;

  /// Seconds since construction (does not stop the trace).
  double ElapsedSeconds() const noexcept;

 private:
  MetricTimer* timer_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
  double elapsed_s_ = 0.0;
};

}  // namespace nomloc::common
