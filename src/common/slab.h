// Fixed-width slab allocator: contiguous records addressed by 32-bit
// index, with a freelist so freed slots are reused before the backing
// vector grows.
//
// The serving layer's session shards keep their judgement history and
// constraint sets in slabs instead of node containers: records are
// fixed-width and index-linked (a uint32 "next" instead of a 64-bit
// pointer), allocation is a freelist pop, and the per-record overhead is
// one live-bit — which is what makes bytes-per-session a small, easily
// asserted number (see DESIGN.md "Serving at scale").
//
// Indices are stable for the record's lifetime (the vector may reallocate
// but never reorders), so cross-record links stay valid across growth.
// Not thread-safe; callers shard and lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace nomloc::common {

/// Sentinel "no record" index for slab-linked structures.
inline constexpr std::uint32_t kSlabNil = 0xffffffffu;

template <typename T>
class Slab {
 public:
  /// Live (allocated, not freed) record count.
  std::size_t live() const noexcept { return live_; }
  /// Total slots ever created (live + freelist).
  std::size_t capacity() const noexcept { return records_.size(); }
  /// Bytes backing the slab: records plus the live bitmap.
  std::size_t CapacityBytes() const noexcept {
    return records_.capacity() * sizeof(T) + alive_.capacity();
  }
  /// Bytes of live records (the budgeted quantity; freelist slack and
  /// vector growth headroom are resident but reusable).
  std::size_t LiveBytes() const noexcept {
    return live_ * (sizeof(T) + 1);
  }

  void Reserve(std::size_t n) {
    records_.reserve(n);
    alive_.reserve(n);
  }

  /// Allocates a default-constructed record and returns its index.
  std::uint32_t Alloc() {
    ++live_;
    if (free_head_ != kSlabNil) {
      const std::uint32_t index = free_head_;
      free_head_ = next_free_[index];
      alive_[index] = 1;
      return index;
    }
    NOMLOC_REQUIRE(records_.size() < kSlabNil);
    records_.emplace_back();
    alive_.push_back(1);
    next_free_.push_back(kSlabNil);
    return static_cast<std::uint32_t>(records_.size() - 1);
  }

  /// Returns the record to the freelist (resetting it, so owning members
  /// like shared_ptr release immediately).
  void Free(std::uint32_t index) noexcept {
    NOMLOC_REQUIRE(alive_[index]);
    records_[index] = T{};
    alive_[index] = 0;
    next_free_[index] = free_head_;
    free_head_ = index;
    --live_;
  }

  bool IsLive(std::uint32_t index) const noexcept {
    return index < alive_.size() && alive_[index] != 0;
  }

  T& operator[](std::uint32_t index) noexcept { return records_[index]; }
  const T& operator[](std::uint32_t index) const noexcept {
    return records_[index];
  }

  void Clear() noexcept {
    records_.clear();
    alive_.clear();
    next_free_.clear();
    free_head_ = kSlabNil;
    live_ = 0;
  }

 private:
  std::vector<T> records_;
  std::vector<std::uint8_t> alive_;
  /// Freelist chain, parallel to records_ (a freed slot's payload is reset,
  /// so the chain cannot live inside T).
  std::vector<std::uint32_t> next_free_;
  std::uint32_t free_head_ = kSlabNil;
  std::size_t live_ = 0;
};

}  // namespace nomloc::common
