// Physical constants and unit conversions for the RF domain.
#pragma once

#include <cmath>

namespace nomloc::common {

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// 802.11n 2.4 GHz band: carrier frequency of channel 6 [Hz].
inline constexpr double kDefaultCarrierHz = 2.437e9;

/// 802.11n HT20 channel bandwidth [Hz].
inline constexpr double kBandwidth20MHz = 20e6;

/// OFDM subcarrier spacing for 20 MHz 802.11 [Hz] (64-point FFT).
inline constexpr double kSubcarrierSpacingHz = 312.5e3;

/// Number of FFT bins in a 20 MHz 802.11n OFDM symbol.
inline constexpr int kOfdmFftSize = 64;

/// Number of occupied (data + pilot) subcarriers in HT20.
inline constexpr int kOccupiedSubcarriers = 56;

/// Subcarriers the Intel 5300 CSI tool reports (grouped).
inline constexpr int kIntel5300Subcarriers = 30;

/// Power ratio -> decibels.  Requires ratio > 0.
inline double ToDb(double power_ratio) noexcept {
  return 10.0 * std::log10(power_ratio);
}

/// Decibels -> power ratio.
inline double FromDb(double db) noexcept { return std::pow(10.0, db / 10.0); }

/// Milliwatts -> dBm.
inline double MilliwattsToDbm(double mw) noexcept { return ToDb(mw); }

/// dBm -> milliwatts.
inline double DbmToMilliwatts(double dbm) noexcept { return FromDb(dbm); }

/// Free-space wavelength [m] at the given carrier frequency [Hz].
inline double WavelengthM(double carrier_hz) noexcept {
  return kSpeedOfLight / carrier_hz;
}

/// One-way propagation delay [s] over a distance [m].
inline double PropagationDelayS(double distance_m) noexcept {
  return distance_m / kSpeedOfLight;
}

}  // namespace nomloc::common
