// Descriptive statistics used by the evaluation harness: running moments,
// percentiles, empirical CDFs, and the paper's spatial-localizability-
// variance (SLV) metric (Eq. 22).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace nomloc::common {

/// Single-pass mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x) noexcept;
  /// Merges another accumulator (parallel Welford / Chan et al.).
  void Merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  /// Mean of the samples seen so far; 0 when empty.
  double Mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by n); 0 when fewer than 1 sample.
  double Variance() const noexcept { return n_ ? m2_ / double(n_) : 0.0; }
  /// Sample variance (divide by n-1); 0 when fewer than 2 samples.
  double SampleVariance() const noexcept {
    return n_ > 1 ? m2_ / double(n_ - 1) : 0.0;
  }
  double StdDev() const noexcept;
  double Min() const;
  double Max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; 0 for an empty span.
double Mean(std::span<const double> xs) noexcept;

/// Population variance (divide by n); 0 for an empty span.
double Variance(std::span<const double> xs) noexcept;

/// Linear-interpolation percentile, q in [0, 1].  Requires non-empty xs.
/// The input need not be sorted (a sorted copy is made).
double Percentile(std::span<const double> xs, double q);

/// The paper's SLV metric (Eq. 22): population variance of per-site mean
/// errors.  Identical to Variance(); named for readability at call sites.
double SpatialLocalizabilityVariance(std::span<const double> site_errors) noexcept;

/// Empirical cumulative distribution function over a sample.
class EmpiricalCdf {
 public:
  /// Builds from (a copy of) the samples.  Requires non-empty input.
  explicit EmpiricalCdf(std::vector<double> samples);

  /// P(X <= x).
  double At(double x) const noexcept;
  /// Smallest sample s with CDF(s) >= q, q in (0, 1].
  double Quantile(double q) const;

  double Min() const noexcept { return sorted_.front(); }
  double Max() const noexcept { return sorted_.back(); }
  std::size_t Count() const noexcept { return sorted_.size(); }

  /// Evenly spaced (x, CDF(x)) pairs over [min, max] for plotting/printing.
  std::vector<std::pair<double, double>> Series(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Fixed-width bin histogram over [lo, hi); out-of-range samples clamp to
/// the first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void Add(double x) noexcept;
  std::size_t BinCount() const noexcept { return counts_.size(); }
  std::size_t Count(std::size_t bin) const;
  double BinCenter(std::size_t bin) const;
  std::size_t TotalCount() const noexcept { return total_; }

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace nomloc::common
