#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/assert.h"

namespace nomloc::common {

ThreadPool::ThreadPool(std::size_t threads) : thread_count_(threads) {
  NOMLOC_REQUIRE(threads >= 1);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  // Joining twice is UB, so Shutdown() claims the worker handles exactly
  // once; a second call (or the destructor after an explicit Shutdown)
  // finds workers_ empty and returns.
  std::vector<std::thread> workers;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    workers.swap(workers_);
  }
  for (std::thread& worker : workers) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  NOMLOC_REQUIRE(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    NOMLOC_REQUIRE(!shutting_down_);
    tasks_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

Status ThreadPool::TrySubmit(std::function<void()> task) {
  NOMLOC_REQUIRE(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (shutting_down_)
      return FailedPrecondition("thread pool is shutting down");
    tasks_.push_back(std::move(task));
  }
  task_available_.notify_one();
  return Status::Ok();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  NOMLOC_REQUIRE(fn != nullptr);
  if (count == 0) {
    Wait();
    return;
  }
  // Chunk the index space into ~4 grains per worker instead of one task
  // per index: queue/wake overhead stops scaling with count while enough
  // grains remain for load balancing.  Exception semantics are unchanged
  // from the one-task-per-index version: a throwing index does not stop
  // the others, and Wait() rethrows the first exception.
  const std::size_t grains = std::min(count, 4 * ThreadCount());
  const std::size_t base = count / grains;
  const std::size_t rem = count % grains;
  std::size_t begin = 0;
  for (std::size_t g = 0; g < grains; ++g) {
    const std::size_t end = begin + base + (g < rem ? 1 : 0);
    Submit([&fn, begin, end] {
      std::exception_ptr grain_error;
      for (std::size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          if (!grain_error) grain_error = std::current_exception();
        }
      }
      if (grain_error) std::rethrow_exception(grain_error);
    });
    begin = end;
  }
  NOMLOC_ASSERT(begin == count);
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace nomloc::common
