#include "common/thread_pool.h"

#include <atomic>

#include "common/assert.h"

namespace nomloc::common {

ThreadPool::ThreadPool(std::size_t threads) {
  NOMLOC_REQUIRE(threads >= 1);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  NOMLOC_REQUIRE(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    NOMLOC_REQUIRE(!shutting_down_);
    tasks_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  NOMLOC_REQUIRE(fn != nullptr);
  for (std::size_t i = 0; i < count; ++i)
    Submit([&fn, i] { fn(i); });
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace nomloc::common
