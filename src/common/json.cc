#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/assert.h"

// GCC 12 emits -Wmaybe-uninitialized false positives when std::variant
// values are copied out of Result<Json> under -O2 (GCC PR 105593 family).
// The accesses are guarded by Result::ok(); suppress the noise here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace nomloc::common {

bool Json::AsBool() const {
  NOMLOC_REQUIRE(is_bool());
  return std::get<bool>(value_);
}

double Json::AsDouble() const {
  NOMLOC_REQUIRE(is_number());
  return std::get<double>(value_);
}

const std::string& Json::AsString() const {
  NOMLOC_REQUIRE(is_string());
  return std::get<std::string>(value_);
}

const JsonArray& Json::AsArray() const {
  NOMLOC_REQUIRE(is_array());
  return std::get<JsonArray>(value_);
}

JsonArray& Json::AsArray() {
  NOMLOC_REQUIRE(is_array());
  return std::get<JsonArray>(value_);
}

const JsonObject& Json::AsObject() const {
  NOMLOC_REQUIRE(is_object());
  return std::get<JsonObject>(value_);
}

JsonObject& Json::AsObject() {
  NOMLOC_REQUIRE(is_object());
  return std::get<JsonObject>(value_);
}

common::Result<Json> Json::Get(std::string_view key) const {
  if (!is_object()) return common::NotFound("value is not an object");
  const auto& obj = std::get<JsonObject>(value_);
  const auto it = obj.find(std::string(key));
  if (it == obj.end())
    return common::NotFound("missing key: " + std::string(key));
  return it->second;
}

common::Result<double> Json::GetDouble(std::string_view key) const {
  NOMLOC_ASSIGN_OR_RETURN(Json v, Get(key));
  if (!v.is_number())
    return common::InvalidArgument(std::string(key) + " is not a number");
  return v.AsDouble();
}

common::Result<std::string> Json::GetString(std::string_view key) const {
  NOMLOC_ASSIGN_OR_RETURN(Json v, Get(key));
  if (!v.is_string())
    return common::InvalidArgument(std::string(key) + " is not a string");
  return v.AsString();
}

common::Result<bool> Json::GetBool(std::string_view key) const {
  NOMLOC_ASSIGN_OR_RETURN(Json v, Get(key));
  if (!v.is_bool())
    return common::InvalidArgument(std::string(key) + " is not a bool");
  return v.AsBool();
}

namespace {

void EscapeInto(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += char(c);
        }
    }
  }
  out += '"';
}

void NumberInto(std::string& out, double d) {
  NOMLOC_REQUIRE(std::isfinite(d));
  // Integral values within the exact-double range print without decimals.
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

}  // namespace

void Json::DumpTo(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const std::string pad =
      pretty ? std::string(std::size_t(indent) * std::size_t(depth + 1), ' ')
             : "";
  const std::string close_pad =
      pretty ? std::string(std::size_t(indent) * std::size_t(depth), ' ') : "";

  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += AsBool() ? "true" : "false";
  } else if (is_number()) {
    NumberInto(out, AsDouble());
  } else if (is_string()) {
    EscapeInto(out, AsString());
  } else if (is_array()) {
    const JsonArray& arr = AsArray();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) out += ',';
      if (pretty) {
        out += '\n';
        out += pad;
      }
      arr[i].DumpTo(out, indent, depth + 1);
    }
    if (pretty) {
      out += '\n';
      out += close_pad;
    }
    out += ']';
  } else {
    const JsonObject& obj = AsObject();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, value] : obj) {
      if (!first) out += ',';
      first = false;
      if (pretty) {
        out += '\n';
        out += pad;
      }
      EscapeInto(out, key);
      out += pretty ? ": " : ":";
      value.DumpTo(out, indent, depth + 1);
    }
    if (pretty) {
      out += '\n';
      out += close_pad;
    }
    out += '}';
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(out, 0, 0);
  return out;
}

std::string Json::DumpPretty() const {
  std::string out;
  DumpTo(out, 2, 0);
  return out;
}

namespace {

constexpr int kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  common::Result<Json> ParseDocument() {
    SkipWhitespace();
    NOMLOC_ASSIGN_OR_RETURN(Json value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size())
      return common::InvalidArgument(Where("trailing characters"));
    return value;
  }

 private:
  std::string Where(const std::string& what) const {
    return what + " at offset " + std::to_string(pos_);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  common::Result<Json> ParseValue(int depth) {
    if (depth > kMaxDepth)
      return common::InvalidArgument("nesting depth exceeded");
    SkipWhitespace();
    if (pos_ >= text_.size())
      return common::InvalidArgument(Where("unexpected end of input"));
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') return ParseString();
    if (ConsumeLiteral("null")) return Json(nullptr);
    if (ConsumeLiteral("true")) return Json(true);
    if (ConsumeLiteral("false")) return Json(false);
    return ParseNumber();
  }

  common::Result<Json> ParseObject(int depth) {
    NOMLOC_ASSERT(Consume('{'));
    JsonObject obj;
    SkipWhitespace();
    if (Consume('}')) return Json(std::move(obj));
    for (;;) {
      SkipWhitespace();
      NOMLOC_ASSIGN_OR_RETURN(Json key, ParseStringValue());
      SkipWhitespace();
      if (!Consume(':')) return common::InvalidArgument(Where("expected ':'"));
      NOMLOC_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      obj[key.AsString()] = std::move(value);
      SkipWhitespace();
      if (Consume('}')) return Json(std::move(obj));
      if (!Consume(','))
        return common::InvalidArgument(Where("expected ',' or '}'"));
    }
  }

  common::Result<Json> ParseArray(int depth) {
    NOMLOC_ASSERT(Consume('['));
    JsonArray arr;
    SkipWhitespace();
    if (Consume(']')) return Json(std::move(arr));
    for (;;) {
      NOMLOC_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      arr.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Json(std::move(arr));
      if (!Consume(','))
        return common::InvalidArgument(Where("expected ',' or ']'"));
    }
  }

  common::Result<Json> ParseString() { return ParseStringValue(); }

  common::Result<Json> ParseStringValue() {
    if (!Consume('"'))
      return common::InvalidArgument(Where("expected string"));
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Json(std::move(out));
      if (c == '\\') {
        if (pos_ >= text_.size())
          return common::InvalidArgument(Where("dangling escape"));
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size())
              return common::InvalidArgument(Where("truncated \\u escape"));
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
              else
                return common::InvalidArgument(Where("bad \\u escape"));
            }
            // UTF-8 encode (BMP only; surrogate pairs are rejected).
            if (code >= 0xD800 && code <= 0xDFFF)
              return common::InvalidArgument(
                  Where("surrogate pairs unsupported"));
            if (code < 0x80) {
              out += char(code);
            } else if (code < 0x800) {
              out += char(0xC0 | (code >> 6));
              out += char(0x80 | (code & 0x3F));
            } else {
              out += char(0xE0 | (code >> 12));
              out += char(0x80 | ((code >> 6) & 0x3F));
              out += char(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return common::InvalidArgument(Where("unknown escape"));
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return common::InvalidArgument(Where("control character in string"));
      } else {
        out += c;
      }
    }
    return common::InvalidArgument(Where("unterminated string"));
  }

  common::Result<Json> ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start)
      return common::InvalidArgument(Where("expected a value"));
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(d))
      return common::InvalidArgument(Where("malformed number"));
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

common::Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace nomloc::common
