#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/assert.h"

namespace nomloc::common {
namespace {

constexpr std::uint64_t RotL(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
  // xoshiro must not start from the all-zero state; splitmix64 of any seed
  // cannot produce four zero words, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = RotL(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

Rng Rng::Fork(std::uint64_t stream_id) const noexcept {
  std::uint64_t sm = s_[0] ^ RotL(stream_id, 32) ^ 0xd1b54a32d192ed03ULL;
  (void)SplitMix64(sm);
  return Rng(SplitMix64(sm) ^ stream_id);
}

double Rng::Uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  NOMLOC_REQUIRE(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  NOMLOC_REQUIRE(n > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::Gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller; u1 in (0,1] to keep log finite.
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double mag = std::sqrt(-2.0 * std::log(u1));
  double ang = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = mag * std::sin(ang);
  has_cached_gaussian_ = true;
  return mag * std::cos(ang);
}

double Rng::Gaussian(double mean, double sigma) {
  NOMLOC_REQUIRE(sigma >= 0.0);
  return mean + sigma * Gaussian();
}

std::complex<double> Rng::ComplexGaussian(double variance) {
  NOMLOC_REQUIRE(variance >= 0.0);
  const double s = std::sqrt(variance / 2.0);
  return {s * Gaussian(), s * Gaussian()};
}

std::array<double, 2> Rng::UniformDisc(double r) {
  NOMLOC_REQUIRE(r >= 0.0);
  // Inverse-CDF radius keeps the density uniform over the disc area.
  const double rad = r * std::sqrt(Uniform());
  const double ang = UniformAngle();
  return {rad * std::cos(ang), rad * std::sin(ang)};
}

double Rng::UniformAngle() noexcept {
  return 2.0 * std::numbers::pi * Uniform();
}

bool Rng::Bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

double Rng::Exponential(double mean) {
  NOMLOC_REQUIRE(mean > 0.0);
  return -mean * std::log(1.0 - Uniform());
}

std::size_t Rng::Categorical(std::span<const double> weights) {
  NOMLOC_REQUIRE(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    NOMLOC_REQUIRE(w >= 0.0);
    total += w;
  }
  NOMLOC_REQUIRE(total > 0.0);
  double u = Uniform() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    if (u < weights[i]) return i;
    u -= weights[i];
  }
  return weights.size() - 1;
}

}  // namespace nomloc::common
