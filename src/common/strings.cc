#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <sstream>

#include "common/assert.h"

namespace nomloc::common {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string Join(std::span<const std::string> items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

std::string FormatDouble(double v, int precision) {
  return StrFormat("%.*f", precision, v);
}

std::string AsciiTable(std::span<const std::string> header,
                       std::span<const std::vector<std::string>> rows) {
  const std::size_t cols = header.size();
  std::vector<std::size_t> widths(cols, 0);
  for (std::size_t c = 0; c < cols; ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    NOMLOC_REQUIRE(row.size() == cols);
    for (std::size_t c = 0; c < cols; ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](std::span<const std::string> cells) {
    out << "|";
    for (std::size_t c = 0; c < cols; ++c) {
      out << " " << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    out << "\n";
  };
  auto emit_rule = [&] {
    out << "+";
    for (std::size_t c = 0; c < cols; ++c)
      out << std::string(widths[c] + 2, '-') << "+";
    out << "\n";
  };
  emit_rule();
  emit_row(header);
  emit_rule();
  for (const auto& row : rows) emit_row(row);
  emit_rule();
  return out.str();
}

std::string AsciiBar(double value, double max_value, int width) {
  NOMLOC_REQUIRE(width > 0);
  if (max_value <= 0.0) return {};
  int filled = static_cast<int>(value / max_value * width + 0.5);
  filled = std::max(0, std::min(filled, width));
  return std::string(static_cast<std::size_t>(filled), '#') +
         std::string(static_cast<std::size_t>(width - filled), ' ');
}

}  // namespace nomloc::common
