// Contract-checking macros.
//
// NOMLOC_ASSERT / NOMLOC_REQUIRE guard *programming errors* (violated
// preconditions and invariants), not expected runtime failures — those go
// through Status/Result (see common/status.h).  Following C++ Core
// Guidelines I.6/E.12, a violated contract is unrecoverable: we throw
// std::logic_error so tests can observe it, and production callers that
// hit one have a bug.
#pragma once

#include <stdexcept>
#include <string>

namespace nomloc::common {

[[noreturn]] inline void ContractFailure(const char* kind, const char* expr,
                                         const char* file, int line) {
  throw std::logic_error(std::string(kind) + " failed: " + expr + " at " +
                         file + ":" + std::to_string(line));
}

}  // namespace nomloc::common

// Precondition check at public API boundaries. Always on.
#define NOMLOC_REQUIRE(expr)                                              \
  do {                                                                    \
    if (!(expr))                                                          \
      ::nomloc::common::ContractFailure("precondition", #expr, __FILE__,  \
                                        __LINE__);                        \
  } while (0)

// Internal invariant check. Always on (cheap checks only).
#define NOMLOC_ASSERT(expr)                                               \
  do {                                                                    \
    if (!(expr))                                                          \
      ::nomloc::common::ContractFailure("invariant", #expr, __FILE__,     \
                                        __LINE__);                        \
  } while (0)
