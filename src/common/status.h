// Status / Result<T>: error propagation for *expected* failures.
//
// Library code never throws for conditions a caller is expected to handle
// (infeasible optimization, empty region, bad config).  Instead functions
// return Status (void results) or Result<T>.  Both carry a StatusCode and
// a human-readable message.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/assert.h"

namespace nomloc::common {

// Canonical error space for the whole library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kFailedPrecondition,// object/system not in a state to do this
  kNotFound,          // lookup missed
  kInfeasible,        // optimization problem has empty feasible set
  kUnbounded,         // optimization objective unbounded below
  kNumericalError,    // solver diverged / matrix singular
  kExhausted,         // iteration / resource limit hit
  kDataCorruption,    // malformed/truncated/NaN input from outside
  kInternal,          // "should not happen" bucket
};

/// Short stable name for a code, e.g. "INFEASIBLE".
std::string_view StatusCodeName(StatusCode code) noexcept;

/// A success-or-error value; cheap to copy on success.
class [[nodiscard]] Status {
 public:
  /// Constructs OK.
  Status() noexcept = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status(); }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status FailedPrecondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status Infeasible(std::string msg) {
  return {StatusCode::kInfeasible, std::move(msg)};
}
inline Status Unbounded(std::string msg) {
  return {StatusCode::kUnbounded, std::move(msg)};
}
inline Status NumericalError(std::string msg) {
  return {StatusCode::kNumericalError, std::move(msg)};
}
inline Status Exhausted(std::string msg) {
  return {StatusCode::kExhausted, std::move(msg)};
}
inline Status DataCorruption(std::string msg) {
  return {StatusCode::kDataCorruption, std::move(msg)};
}
inline Status Internal(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}

/// Value-or-Status.  Access to value() on an error is a contract violation.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or an error keeps call sites terse:
  //   Result<int> F() { if (bad) return InvalidArgument("…"); return 42; }
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    NOMLOC_REQUIRE(!std::get<Status>(data_).ok());
  }

  bool ok() const noexcept { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  const T& value() const& {
    NOMLOC_REQUIRE(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    NOMLOC_REQUIRE(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    NOMLOC_REQUIRE(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` on error.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> data_;
};

/// Result<void>: success-or-error with no payload — the return type of
/// validation hooks (`Config::Validate()`).  Unlike the primary template it
/// is constructible from an OK status and default-constructs to OK.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() noexcept = default;
  Result(Status status) noexcept : status_(std::move(status)) {}  // NOLINT

  bool ok() const noexcept { return status_.ok(); }
  const Status& status() const noexcept { return status_; }

 private:
  Status status_;
};

}  // namespace nomloc::common

/// Propagate an error Status from an expression returning Status.
#define NOMLOC_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::nomloc::common::Status nomloc_status_ = (expr); \
    if (!nomloc_status_.ok()) return nomloc_status_;  \
  } while (0)

#define NOMLOC_INTERNAL_CONCAT2(a, b) a##b
#define NOMLOC_INTERNAL_CONCAT(a, b) NOMLOC_INTERNAL_CONCAT2(a, b)

#define NOMLOC_INTERNAL_ASSIGN_OR_RETURN(tmp, lhs, expr) \
  auto tmp = (expr);                                     \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

/// Bind `lhs` to the value of a Result-returning expression or propagate.
#define NOMLOC_ASSIGN_OR_RETURN(lhs, expr)                                   \
  NOMLOC_INTERNAL_ASSIGN_OR_RETURN(                                          \
      NOMLOC_INTERNAL_CONCAT(nomloc_result_, __LINE__), lhs, expr)
