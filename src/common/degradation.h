// Typed failure domains: the degradation ladder.
//
// NomLoc's premise is graceful behavior under imperfect conditions —
// wrong judgements are absorbed by constraint relaxation, missing
// anchors enlarge the feasible cell, and a dead AP must never fail a
// request outright.  Every layer that can recover from a fault tags its
// output with the *degradation level* it had to fall to, and the levels
// are strictly ordered so "how degraded is this response" is a single
// comparable value carried from the solver through LocateResponse into
// the serving layer's per-response confidence.
#pragma once

#include <string_view>

namespace nomloc::common {

/// How far down the fallback chain a response had to go.  Higher is
/// worse; the order is the recovery order (each level is tried only
/// after every level above it failed).
enum class DegradationLevel {
  /// The full SP program solved as posed.
  kNone = 0,
  /// The program was re-solved on a confidence-ranked subset of the
  /// constraints (lowest-confidence judgements dropped first).
  kRelaxedConstraints = 1,
  /// No constraint subset solved: the estimate is the PDP-weighted
  /// centroid of the anchor positions (no feasible-cell geometry).
  kWeightedCentroid = 2,
  /// Nothing solvable this epoch: the last successful estimate for the
  /// object was replayed (serving layer only).
  kLastKnownGood = 3,
};

/// Short stable name, e.g. "RELAXED_CONSTRAINTS".
std::string_view DegradationLevelName(DegradationLevel level) noexcept;

/// Multiplier applied to a response's confidence for having degraded:
/// 1.0 at kNone, decreasing strictly with each level.  The serving layer
/// multiplies its geometric confidence by this, so degraded responses
/// never score above an equally-shaped healthy one.
double DegradationConfidenceScale(DegradationLevel level) noexcept;

}  // namespace nomloc::common
