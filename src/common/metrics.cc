#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"
#include "common/json.h"
#include "common/strings.h"

namespace nomloc::common {

namespace {

// Relaxed CAS add for pre-C++20-style atomic doubles (fetch_add on
// std::atomic<double> is not universally lock-free; the CAS loop is).
void AtomicAdd(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double x) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (x < cur && !target.compare_exchange_weak(cur, x,
                                                  std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double x) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (x > cur && !target.compare_exchange_weak(cur, x,
                                                  std::memory_order_relaxed)) {
  }
}

}  // namespace

MetricHistogram::MetricHistogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), buckets_(buckets) {
  NOMLOC_REQUIRE(lo > 0.0 && hi > lo && buckets >= 1);
  const double growth = std::pow(hi / lo, 1.0 / double(buckets));
  inv_log_growth_ = 1.0 / std::log(growth);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::size_t MetricHistogram::BucketOf(double x) const noexcept {
  if (!(x > lo_)) return 0;
  const std::size_t b =
      std::size_t(std::log(x / lo_) * inv_log_growth_);
  return std::min(b, buckets_.size() - 1);
}

double MetricHistogram::BucketLow(std::size_t b) const noexcept {
  return lo_ * std::exp(double(b) / inv_log_growth_);
}

void MetricHistogram::Record(double x) noexcept {
  if (std::isnan(x)) return;
  buckets_[BucketOf(x)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, x);
  AtomicMin(min_, x);
  AtomicMax(max_, x);
}

double MetricHistogram::Mean() const noexcept {
  const std::uint64_t n = Count();
  return n ? Sum() / double(n) : 0.0;
}

double MetricHistogram::Min() const noexcept {
  return Count() ? min_.load(std::memory_order_relaxed) : 0.0;
}

double MetricHistogram::Max() const noexcept {
  return Count() ? max_.load(std::memory_order_relaxed) : 0.0;
}

double MetricHistogram::Quantile(double q) const {
  const std::uint64_t n = Count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based, ceil), then walk the buckets.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, std::uint64_t(std::ceil(q * double(n))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const std::uint64_t c = buckets_[b].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (seen + c >= rank) {
      // Linear interpolation across the bucket's span.
      const double fraction = double(rank - seen) / double(c);
      const double lo = BucketLow(b);
      const double hi = b + 1 < buckets_.size() ? BucketLow(b + 1) : hi_;
      const double v = lo + fraction * (hi - lo);
      return std::clamp(v, Min(), Max());
    }
    seen += c;
  }
  return Max();
}

void MetricHistogram::Reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry registry;
  return registry;
}

std::string MetricRegistry::Key(std::string_view name,
                                std::string_view label) {
  std::string key(name);
  if (!label.empty()) {
    key += '{';
    key += label;
    key += '}';
  }
  return key;
}

MetricCounter& MetricRegistry::Counter(std::string_view name,
                                       std::string_view label) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[Key(name, label)];
  if (!slot) slot = std::make_unique<MetricCounter>();
  return *slot;
}

MetricHistogram& MetricRegistry::Histogram(std::string_view name,
                                           std::string_view label, double lo,
                                           double hi, std::size_t buckets) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[Key(name, label)];
  if (!slot) slot = std::make_unique<MetricHistogram>(lo, hi, buckets);
  return *slot;
}

MetricTimer& MetricRegistry::Timer(std::string_view name,
                                   std::string_view label) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = timers_[Key(name, label)];
  if (!slot) slot = std::make_unique<MetricTimer>();
  return *slot;
}

std::string MetricRegistry::DumpText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "# nomloc metrics\n";
  for (const auto& [key, c] : counters_)
    out += StrFormat("counter %s %llu\n", key.c_str(),
                     static_cast<unsigned long long>(c->Value()));
  for (const auto& [key, h] : histograms_)
    out += StrFormat(
        "histogram %s count=%llu mean=%.6g min=%.6g p50=%.6g p90=%.6g "
        "p99=%.6g max=%.6g\n",
        key.c_str(), static_cast<unsigned long long>(h->Count()), h->Mean(),
        h->Min(), h->Quantile(0.5), h->Quantile(0.9), h->Quantile(0.99),
        h->Max());
  for (const auto& [key, t] : timers_)
    out += StrFormat(
        "timer %s count=%llu total_s=%.6g mean_s=%.6g p50_s=%.6g "
        "p99_s=%.6g max_s=%.6g\n",
        key.c_str(), static_cast<unsigned long long>(t->Count()),
        t->TotalSeconds(), t->MeanSeconds(), t->Histogram().Quantile(0.5),
        t->Histogram().Quantile(0.99), t->Histogram().Max());
  return out;
}

std::string MetricRegistry::DumpJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonObject counters;
  for (const auto& [key, c] : counters_)
    counters[key] = double(c->Value());
  auto histogram_json = [](const MetricHistogram& h) {
    JsonObject o;
    o["count"] = double(h.Count());
    o["mean"] = h.Mean();
    o["min"] = h.Min();
    o["p50"] = h.Quantile(0.5);
    o["p90"] = h.Quantile(0.9);
    o["p99"] = h.Quantile(0.99);
    o["max"] = h.Max();
    return o;
  };
  JsonObject histograms;
  for (const auto& [key, h] : histograms_)
    histograms[key] = histogram_json(*h);
  JsonObject timers;
  for (const auto& [key, t] : timers_) {
    JsonObject o = histogram_json(t->Histogram());
    o["total_s"] = t->TotalSeconds();
    timers[key] = std::move(o);
  }
  JsonObject doc;
  doc["counters"] = std::move(counters);
  doc["histograms"] = std::move(histograms);
  doc["timers"] = std::move(timers);
  return Json(std::move(doc)).DumpPretty();
}

void MetricRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, c] : counters_) c->Reset();
  for (auto& [key, h] : histograms_) h->Reset();
  for (auto& [key, t] : timers_) t->Reset();
}

double StageTrace::Stop() noexcept {
  if (stopped_) return elapsed_s_;
  elapsed_s_ = ElapsedSeconds();
  stopped_ = true;
  timer_->RecordSeconds(elapsed_s_);
  return elapsed_s_;
}

double StageTrace::ElapsedSeconds() const noexcept {
  if (stopped_) return elapsed_s_;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

}  // namespace nomloc::common
