#include "common/degradation.h"

namespace nomloc::common {

std::string_view DegradationLevelName(DegradationLevel level) noexcept {
  switch (level) {
    case DegradationLevel::kNone: return "NONE";
    case DegradationLevel::kRelaxedConstraints: return "RELAXED_CONSTRAINTS";
    case DegradationLevel::kWeightedCentroid: return "WEIGHTED_CENTROID";
    case DegradationLevel::kLastKnownGood: return "LAST_KNOWN_GOOD";
  }
  return "UNKNOWN";
}

double DegradationConfidenceScale(DegradationLevel level) noexcept {
  switch (level) {
    case DegradationLevel::kNone: return 1.0;
    case DegradationLevel::kRelaxedConstraints: return 0.7;
    case DegradationLevel::kWeightedCentroid: return 0.4;
    case DegradationLevel::kLastKnownGood: return 0.2;
  }
  return 0.0;
}

}  // namespace nomloc::common
