#include "common/status.h"

namespace nomloc::common {

std::string_view StatusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kInfeasible: return "INFEASIBLE";
    case StatusCode::kUnbounded: return "UNBOUNDED";
    case StatusCode::kNumericalError: return "NUMERICAL_ERROR";
    case StatusCode::kExhausted: return "EXHAUSTED";
    case StatusCode::kDataCorruption: return "DATA_CORRUPTION";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace nomloc::common
