// Fixed-size worker pool for embarrassingly parallel experiment loops.
//
// The evaluation runner forks an independent RNG per test site, so sites
// can run concurrently with bit-identical results; this pool provides the
// workers.  Tasks are void() callables; ParallelFor partitions an index
// range.  Exceptions thrown by tasks are captured and rethrown from
// Wait()/ParallelFor (first one wins), per C++ Core Guidelines E.2.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nomloc::common {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);
  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t ThreadCount() const noexcept { return workers_.size(); }

  /// Enqueues a task.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.  Rethrows the first
  /// captured task exception, if any.
  void Wait();

  /// Runs fn(i) for i in [0, count) across the pool and waits.
  /// Rethrows the first task exception.
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_error_;
};

}  // namespace nomloc::common
