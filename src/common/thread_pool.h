// Fixed-size worker pool for embarrassingly parallel experiment loops.
//
// The evaluation runner forks an independent RNG per test site, so sites
// can run concurrently with bit-identical results; this pool provides the
// workers.  Tasks are void() callables; ParallelFor partitions an index
// range.  Exceptions thrown by tasks are captured and rethrown from
// Wait()/ParallelFor (first one wins), per C++ Core Guidelines E.2.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace nomloc::common {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);
  /// Equivalent to Shutdown(): joins all workers; pending tasks complete
  /// first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t ThreadCount() const noexcept { return thread_count_; }

  /// Enqueues a task.  Calling after Shutdown() has begun is a contract
  /// violation; concurrent producers should use TrySubmit.
  void Submit(std::function<void()> task);

  /// Enqueues a task unless shutdown has begun, in which case the task is
  /// rejected with a typed kFailedPrecondition error — never enqueued,
  /// never silently dropped.  The accept/reject decision and the shutdown
  /// flag share one mutex, so a TrySubmit racing Shutdown() lands on
  /// exactly one side: either the task is accepted and will run to
  /// completion before the workers join, or the caller gets the error.
  Status TrySubmit(std::function<void()> task);

  /// Stops accepting tasks, drains everything already queued, and joins
  /// the workers.  Idempotent and safe to call before destruction.
  void Shutdown();

  /// Blocks until all submitted tasks have finished.  Rethrows the first
  /// captured task exception, if any.
  void Wait();

  /// Runs fn(i) for i in [0, count) across the pool and waits.
  /// Rethrows the first task exception.
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::size_t thread_count_ = 0;  ///< Stable across Shutdown() (which
                                  ///< clears workers_).
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_error_;
};

}  // namespace nomloc::common
