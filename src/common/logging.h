// Minimal leveled logger.  Writes to stderr; level settable at runtime so
// benches can silence chatter.  Not thread-aware by design: the library is
// single-threaded per simulation instance (see DESIGN.md).
#pragma once

#include <sstream>
#include <string>

namespace nomloc::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level) noexcept;
LogLevel GetLogLevel() noexcept;

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace nomloc::common

#define NOMLOC_LOG(level)                                       \
  ::nomloc::common::internal::LogMessage(                        \
      ::nomloc::common::LogLevel::k##level, __FILE__, __LINE__)
