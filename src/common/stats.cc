#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace nomloc::common {

void RunningStats::Add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / double(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const std::size_t n = n_ + other.n_;
  m2_ += other.m2_ +
         delta * delta * double(n_) * double(other.n_) / double(n);
  mean_ += delta * double(other.n_) / double(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = n;
}

double RunningStats::StdDev() const noexcept { return std::sqrt(Variance()); }

double RunningStats::Min() const {
  NOMLOC_REQUIRE(n_ > 0);
  return min_;
}

double RunningStats::Max() const {
  NOMLOC_REQUIRE(n_ > 0);
  return max_;
}

double Mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / double(xs.size());
}

double Variance(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const double m = Mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / double(xs.size());
}

double Percentile(std::span<const double> xs, double q) {
  NOMLOC_REQUIRE(!xs.empty());
  NOMLOC_REQUIRE(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * double(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - double(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double SpatialLocalizabilityVariance(
    std::span<const double> site_errors) noexcept {
  return Variance(site_errors);
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  NOMLOC_REQUIRE(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::At(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return double(it - sorted_.begin()) / double(sorted_.size());
}

double EmpiricalCdf::Quantile(double q) const {
  NOMLOC_REQUIRE(q > 0.0 && q <= 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * double(sorted_.size())));
  return sorted_[std::min(rank == 0 ? 0 : rank - 1, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> EmpiricalCdf::Series(
    std::size_t points) const {
  NOMLOC_REQUIRE(points >= 2);
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  const double lo = Min(), hi = Max();
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * double(i) / double(points - 1);
    out.emplace_back(x, At(x));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  NOMLOC_REQUIRE(hi > lo);
  NOMLOC_REQUIRE(bins > 0);
}

void Histogram::Add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * double(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   std::ptrdiff_t(counts_.size()) - 1);
  ++counts_[std::size_t(bin)];
  ++total_;
}

std::size_t Histogram::Count(std::size_t bin) const {
  NOMLOC_REQUIRE(bin < counts_.size());
  return counts_[bin];
}

double Histogram::BinCenter(std::size_t bin) const {
  NOMLOC_REQUIRE(bin < counts_.size());
  const double width = (hi_ - lo_) / double(counts_.size());
  return lo_ + width * (double(bin) + 0.5);
}

}  // namespace nomloc::common
