#include "common/logging.h"

#include <cstdio>

namespace nomloc::common {
namespace {

LogLevel g_level = LogLevel::kWarning;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) noexcept { g_level = level; }
LogLevel GetLogLevel() noexcept { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level && level != LogLevel::kOff), level_(level) {
  if (enabled_) {
    // Strip the directory for brevity.
    const char* base = file;
    for (const char* p = file; *p; ++p)
      if (*p == '/') base = p + 1;
    stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace nomloc::common
