// Open-addressing flat hash map for hot-path lookup tables.
//
// std::map costs one cache-missing pointer chase per tree level plus ~48
// bytes of node overhead per entry — at a million serving sessions that is
// both the dominant lookup cost and a third of the memory bill.  This map
// stores entries inline in one contiguous slot array (linear probing,
// power-of-two capacity) so a lookup is one hash plus a short linear scan
// of adjacent cache lines, and the only per-entry overhead is the table's
// load-factor headroom.
//
// Deletion uses backward-shift (no tombstones): when a slot is freed,
// subsequent entries of the same probe chain slide back into it, so probe
// chains never accumulate dead slots and lookup cost stays bounded by the
// live load factor no matter how many erasures happened.
//
// Iteration order is the probe layout — it depends on insertion history.
// Callers that need deterministic output (e.g. checkpoints) must extract
// the keys and sort them; see SessionStore::CheckpointJson.
//
// Not thread-safe; callers shard and lock (see serving/session_store.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.h"

namespace nomloc::common {

/// Default hash: splitmix64 finalizer — cheap, and strong enough to spread
/// adjacent integer keys over all slots.
struct SplitMix64Hash {
  std::uint64_t operator()(std::uint64_t x) const noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }
};

template <typename Key, typename Value, typename Hash = SplitMix64Hash>
class FlatHashMap {
 public:
  FlatHashMap() = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  /// Allocated slot count (power of two; 0 before first insert).
  std::size_t capacity() const noexcept { return slots_.size(); }
  /// Bytes held by the slot array — the map's contribution to a shard's
  /// resident-memory accounting.
  std::size_t CapacityBytes() const noexcept {
    return slots_.size() * sizeof(Slot);
  }

  /// Ensures capacity for `n` entries without rehashing on the way there.
  void Reserve(std::size_t n) {
    std::size_t want = kMinCapacity;
    while (want * 3 < n * 4) want <<= 1;  // keep load factor <= 0.75
    if (want > slots_.size()) Rehash(want);
  }

  void Clear() noexcept {
    for (Slot& slot : slots_) slot.used = false;
    size_ = 0;
  }

  /// Pointer to the mapped value, or nullptr when absent.  Stable only
  /// until the next insert (rehash moves slots).
  Value* Find(const Key& key) noexcept {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash{}(key) & mask;
    while (slots_[i].used) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask;
    }
    return nullptr;
  }
  const Value* Find(const Key& key) const noexcept {
    return const_cast<FlatHashMap*>(this)->Find(key);
  }

  /// try_emplace: returns the value slot plus whether it was created (the
  /// value is default-constructed then).
  std::pair<Value*, bool> Insert(const Key& key) {
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3)
      Rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash{}(key) & mask;
    while (slots_[i].used) {
      if (slots_[i].key == key) return {&slots_[i].value, false};
      i = (i + 1) & mask;
    }
    slots_[i].used = true;
    slots_[i].key = key;
    slots_[i].value = Value{};
    ++size_;
    return {&slots_[i].value, true};
  }

  /// Backward-shift erase; false when the key was absent.
  bool Erase(const Key& key) noexcept {
    if (slots_.empty()) return false;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash{}(key) & mask;
    while (slots_[i].used) {
      if (slots_[i].key == key) break;
      i = (i + 1) & mask;
    }
    if (!slots_[i].used) return false;
    // Slide the rest of the probe chain back over the gap.  An entry may
    // move into the gap only if its home slot lies cyclically at or before
    // the gap — otherwise it would land in front of its home and become
    // unreachable.
    std::size_t gap = i;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask;
      if (!slots_[j].used) break;
      const std::size_t home = Hash{}(slots_[j].key) & mask;
      if (((j - home) & mask) >= ((j - gap) & mask)) {
        slots_[gap].key = std::move(slots_[j].key);
        slots_[gap].value = std::move(slots_[j].value);
        gap = j;
      }
    }
    slots_[gap].used = false;
    --size_;
    return true;
  }

  /// Visits every live entry (layout order — NOT deterministic across
  /// different insertion histories).  `fn(const Key&, Value&)`.  The map
  /// must not be mutated during the walk.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (Slot& slot : slots_)
      if (slot.used) fn(static_cast<const Key&>(slot.key), slot.value);
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_)
      if (slot.used) fn(slot.key, slot.value);
  }

 private:
  struct Slot {
    Key key{};
    Value value{};
    bool used = false;
  };

  static constexpr std::size_t kMinCapacity = 16;

  void Rehash(std::size_t new_capacity) {
    NOMLOC_REQUIRE((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    const std::size_t mask = new_capacity - 1;
    for (Slot& slot : old) {
      if (!slot.used) continue;
      std::size_t i = Hash{}(slot.key) & mask;
      while (slots_[i].used) i = (i + 1) & mask;
      slots_[i].used = true;
      slots_[i].key = std::move(slot.key);
      slots_[i].value = std::move(slot.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace nomloc::common
