// Small string/formatting helpers used by the eval printers.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace nomloc::common {

/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins items with a separator.
std::string Join(std::span<const std::string> items, std::string_view sep);

/// Fixed-precision double, e.g. FormatDouble(3.14159, 2) == "3.14".
std::string FormatDouble(double v, int precision);

/// Renders a simple ASCII table: header row + data rows, columns padded to
/// the widest cell.  Used by bench binaries to print paper-style tables.
std::string AsciiTable(std::span<const std::string> header,
                       std::span<const std::vector<std::string>> rows);

/// Renders a horizontal ASCII bar of `value` against `max_value` using
/// `width` characters, e.g. for SLV bar charts.
std::string AsciiBar(double value, double max_value, int width);

}  // namespace nomloc::common
