// Deterministic random number generation.
//
// Every stochastic component of the library (channel fading, AWGN, mobility
// walks, injected position error) draws from an explicitly seeded Rng so
// that experiments are reproducible bit-for-bit across runs.  The core
// generator is xoshiro256++ (Blackman & Vigna), seeded through splitmix64.
#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace nomloc::common {

/// splitmix64 step; used for seeding and cheap hashing of stream ids.
std::uint64_t SplitMix64(std::uint64_t& state) noexcept;

/// xoshiro256++ PRNG with convenience distributions.
///
/// Satisfies the UniformRandomBitGenerator concept, so it also plugs into
/// <random> distributions if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds deterministically from `seed` (any value, including 0, is fine).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Derives an independent child stream; `stream_id` selects the stream.
  /// Children with distinct ids are statistically independent of the
  /// parent and of each other (seeded via splitmix64 of state + id).
  Rng Fork(std::uint64_t stream_id) const noexcept;

  /// Uniform double in [0, 1).
  double Uniform() noexcept;
  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double Uniform(double lo, double hi);
  /// Uniform integer in [0, n).  Requires n > 0.  Unbiased (rejection).
  std::uint64_t UniformInt(std::uint64_t n);
  /// Standard normal via Box–Muller (cached second variate).
  double Gaussian() noexcept;
  /// Normal with the given mean and standard deviation (sigma >= 0).
  double Gaussian(double mean, double sigma);
  /// Circularly-symmetric complex Gaussian with E[|z|^2] = variance.
  std::complex<double> ComplexGaussian(double variance);
  /// Uniform point in the closed disc of radius r centred at the origin.
  /// Returned as {x, y}.
  std::array<double, 2> UniformDisc(double r);
  /// Uniform angle in [0, 2*pi).
  double UniformAngle() noexcept;
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p) noexcept;
  /// Exponential with the given mean (> 0).
  double Exponential(double mean);
  /// Samples an index from a discrete distribution given non-negative
  /// weights (need not be normalised; at least one must be positive).
  std::size_t Categorical(std::span<const double> weights);
  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = UniformInt(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace nomloc::common
