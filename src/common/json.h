// Minimal JSON: a DOM value type, a recursive-descent parser, and a
// serializer.  Used to export experiment results and scenarios and to
// record/replay measurement traces (net/trace_io.h) without external
// dependencies.
//
// Supported: null, bool, finite double, string (with \uXXXX escapes for
// the BMP), array, object.  Numbers serialise with enough digits to
// round-trip doubles.  Parsing rejects trailing garbage, NaN/Inf and
// inputs nested deeper than a fixed limit.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status.h"

namespace nomloc::common {

class Json;
using JsonArray = std::vector<Json>;
/// std::map keeps key order deterministic — exports are diffable.
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  /// Constructs null.
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}          // NOLINT
  Json(bool b) : value_(b) {}                        // NOLINT
  Json(double d) : value_(d) {}                      // NOLINT
  Json(int i) : value_(double(i)) {}                 // NOLINT
  Json(std::size_t u) : value_(double(u)) {}         // NOLINT
  Json(const char* s) : value_(std::string(s)) {}    // NOLINT
  Json(std::string s) : value_(std::move(s)) {}      // NOLINT
  Json(JsonArray a) : value_(std::move(a)) {}        // NOLINT
  Json(JsonObject o) : value_(std::move(o)) {}       // NOLINT

  bool is_null() const noexcept { return Holds<std::nullptr_t>(); }
  bool is_bool() const noexcept { return Holds<bool>(); }
  bool is_number() const noexcept { return Holds<double>(); }
  bool is_string() const noexcept { return Holds<std::string>(); }
  bool is_array() const noexcept { return Holds<JsonArray>(); }
  bool is_object() const noexcept { return Holds<JsonObject>(); }

  /// Typed accessors; contract violation when the type does not match.
  bool AsBool() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const JsonArray& AsArray() const;
  JsonArray& AsArray();
  const JsonObject& AsObject() const;
  JsonObject& AsObject();

  /// Object member lookup; kNotFound when missing or not an object.
  common::Result<Json> Get(std::string_view key) const;
  /// Convenience typed lookups with error propagation.
  common::Result<double> GetDouble(std::string_view key) const;
  common::Result<std::string> GetString(std::string_view key) const;
  common::Result<bool> GetBool(std::string_view key) const;

  /// Compact serialization (no whitespace).
  std::string Dump() const;
  /// Pretty serialization with 2-space indentation.
  std::string DumpPretty() const;

  /// Parses a complete JSON document (rejects trailing garbage).
  static common::Result<Json> Parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b) {
    return a.value_ == b.value_;
  }

 private:
  template <typename T>
  bool Holds() const noexcept {
    return std::holds_alternative<T>(value_);
  }
  void DumpTo(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

}  // namespace nomloc::common
