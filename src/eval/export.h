// JSON export/import of evaluation artefacts, so results can be plotted
// or diffed outside the binary and experiment outputs can be archived.
#pragma once

#include "common/json.h"
#include "eval/runner.h"
#include "eval/scenario.h"

namespace nomloc::eval {

/// Scenario geometry (boundary, APs, nomadic sites, test sites, obstacle
/// boxes are exported as their vertex loops).
common::Json ScenarioToJson(const Scenario& scenario);

/// Full run result: per-site positions, trial errors, SLV, summary stats.
common::Json RunResultToJson(const RunResult& result);

/// Inverse of RunResultToJson.  Fails with kInvalidArgument on schema
/// mismatch.
common::Result<RunResult> RunResultFromJson(const common::Json& json);

}  // namespace nomloc::eval
