#include "eval/export.h"

#include "common/assert.h"
#include "common/stats.h"

namespace nomloc::eval {

using common::Json;
using common::JsonArray;
using common::JsonObject;
using geometry::Vec2;

namespace {

Json PointToJson(Vec2 p) {
  return Json(JsonArray{Json(p.x), Json(p.y)});
}

Json PointListToJson(std::span<const Vec2> points) {
  JsonArray arr;
  arr.reserve(points.size());
  for (const Vec2 p : points) arr.push_back(PointToJson(p));
  return Json(std::move(arr));
}

common::Result<Vec2> PointFromJson(const Json& j) {
  if (!j.is_array() || j.AsArray().size() != 2 ||
      !j.AsArray()[0].is_number() || !j.AsArray()[1].is_number())
    return common::InvalidArgument("point must be [x, y]");
  return Vec2{j.AsArray()[0].AsDouble(), j.AsArray()[1].AsDouble()};
}

}  // namespace

Json ScenarioToJson(const Scenario& scenario) {
  JsonObject obj;
  obj["name"] = Json(scenario.name);
  obj["boundary"] = PointListToJson(scenario.env.Boundary().Vertices());
  obj["static_aps"] = PointListToJson(scenario.static_aps);
  obj["nomadic_sites"] = PointListToJson(scenario.nomadic_sites);
  obj["test_sites"] = PointListToJson(scenario.test_sites);

  JsonArray obstacles;
  for (const auto& obstacle : scenario.env.Obstacles()) {
    JsonObject o;
    o["material"] = Json(obstacle.material.name);
    o["vertices"] = PointListToJson(obstacle.shape.Vertices());
    obstacles.push_back(Json(std::move(o)));
  }
  obj["obstacles"] = Json(std::move(obstacles));
  obj["scatterers"] = PointListToJson(scenario.env.Scatterers());
  return Json(std::move(obj));
}

Json RunResultToJson(const RunResult& result) {
  JsonObject obj;
  JsonArray sites;
  for (const SiteResult& site : result.sites) {
    JsonObject s;
    s["position"] = PointToJson(site.site);
    s["mean_error_m"] = Json(site.mean_error_m);
    JsonArray errors;
    for (double e : site.trial_errors_m) errors.push_back(Json(e));
    s["trial_errors_m"] = Json(std::move(errors));
    sites.push_back(Json(std::move(s)));
  }
  obj["sites"] = Json(std::move(sites));
  obj["slv_m2"] = Json(result.slv);
  obj["mean_error_m"] = Json(result.MeanError());
  if (!result.sites.empty()) {
    const auto errors = result.SiteMeanErrors();
    obj["p50_m"] = Json(common::Percentile(errors, 0.5));
    obj["p90_m"] = Json(common::Percentile(errors, 0.9));
  }
  return Json(std::move(obj));
}

common::Result<RunResult> RunResultFromJson(const Json& json) {
  NOMLOC_ASSIGN_OR_RETURN(Json sites_json, json.Get("sites"));
  if (!sites_json.is_array())
    return common::InvalidArgument("'sites' must be an array");

  RunResult result;
  for (const Json& site_json : sites_json.AsArray()) {
    if (!site_json.is_object())
      return common::InvalidArgument("site entry must be an object");
    SiteResult site;
    NOMLOC_ASSIGN_OR_RETURN(Json pos, site_json.Get("position"));
    NOMLOC_ASSIGN_OR_RETURN(site.site, PointFromJson(pos));
    NOMLOC_ASSIGN_OR_RETURN(site.mean_error_m,
                            site_json.GetDouble("mean_error_m"));
    NOMLOC_ASSIGN_OR_RETURN(Json errors, site_json.Get("trial_errors_m"));
    if (!errors.is_array())
      return common::InvalidArgument("'trial_errors_m' must be an array");
    for (const Json& e : errors.AsArray()) {
      if (!e.is_number())
        return common::InvalidArgument("trial error must be a number");
      site.trial_errors_m.push_back(e.AsDouble());
    }
    result.sites.push_back(std::move(site));
  }
  NOMLOC_ASSIGN_OR_RETURN(result.slv, json.GetDouble("slv_m2"));
  return result;
}

}  // namespace nomloc::eval
