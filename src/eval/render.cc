#include "eval/render.h"

#include <cmath>

#include "common/assert.h"

namespace nomloc::eval {

using geometry::Vec2;

std::string RenderScenario(const Scenario& scenario,
                           const RenderOptions& options) {
  NOMLOC_REQUIRE(options.cells_per_m > 0.0);
  const geometry::Aabb box = scenario.env.Boundary().BoundingBox();
  const double sx = options.cells_per_m;
  const double sy = options.cells_per_m / 2.0;
  const int cols = std::max(1, int(std::ceil(box.Width() * sx)) + 1);
  const int rows = std::max(1, int(std::ceil(box.Height() * sy)) + 1);

  std::vector<std::string> grid(std::size_t(rows),
                                std::string(std::size_t(cols), ' '));

  auto cell_center = [&](int r, int c) -> Vec2 {
    return {box.lo.x + (double(c) + 0.5) / sx,
            box.hi.y - (double(r) + 0.5) / sy};
  };
  auto put = [&](Vec2 p, char ch) {
    const int c = int((p.x - box.lo.x) * sx);
    const int r = int((box.hi.y - p.y) * sy);
    if (r >= 0 && r < rows && c >= 0 && c < cols)
      grid[std::size_t(r)][std::size_t(c)] = ch;
  };

  // Background: free space vs obstacles vs outside.
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const Vec2 p = cell_center(r, c);
      if (!scenario.env.Boundary().Contains(p)) continue;
      char ch = '.';
      for (const auto& obstacle : scenario.env.Obstacles())
        if (obstacle.shape.Contains(p)) ch = 'o';
      grid[std::size_t(r)][std::size_t(c)] = ch;
    }
  }

  // Walls (boundary + interior only): rasterise each segment.  Obstacle
  // edges are excluded — thin obstacles would otherwise be overdrawn by
  // '#' and lose their 'o' glyph.  env.Walls() stores obstacle edges last.
  std::size_t obstacle_edges = 0;
  for (const auto& obstacle : scenario.env.Obstacles())
    obstacle_edges += obstacle.shape.EdgeCount();
  const auto walls = scenario.env.Walls();
  for (std::size_t w = 0; w + obstacle_edges < walls.size(); ++w) {
    const auto& wall = walls[w];
    const double len = wall.segment.Length();
    const int steps = std::max(2, int(len * sx * 2.0));
    for (int k = 0; k <= steps; ++k)
      put(Lerp(wall.segment.a, wall.segment.b, double(k) / steps), '#');
  }

  for (const Vec2 p : scenario.test_sites) put(p, 'x');
  for (const Vec2 p : scenario.nomadic_sites) put(p, 'N');
  for (const Vec2 p : scenario.static_aps) put(p, 'A');
  for (const Vec2 p : options.markers) put(p, '*');

  std::string out;
  out.reserve(std::size_t(rows) * std::size_t(cols + 1));
  for (const std::string& line : grid) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace nomloc::eval
