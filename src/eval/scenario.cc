#include "eval/scenario.h"

#include "common/assert.h"
#include "common/rng.h"
#include "geometry/polygon.h"

namespace nomloc::eval {

using channel::IndoorEnvironment;
using channel::Obstacle;
using channel::Wall;
using geometry::Polygon;
using geometry::Vec2;

namespace {

Obstacle MakeBox(double x0, double y0, double x1, double y1,
                 channel::Material material) {
  return Obstacle{Polygon::Rectangle(x0, y0, x1, y1), std::move(material)};
}

}  // namespace

Scenario LabScenario(std::uint64_t seed) {
  // 12 x 8 m rectangular lab crammed with desk rows and equipment racks.
  Polygon boundary = Polygon::Rectangle(0.0, 0.0, 12.0, 8.0);

  std::vector<Obstacle> obstacles;
  // Two double rows of desks with PCs.  Desks are waist-height, so in this
  // 2-D model they are *partial* obstructions: links graze over them and
  // lose only a couple of dB (unlike full-height racks/walls).
  const channel::Material desk{"desk+pc", 12.0, 2.5};
  obstacles.push_back(MakeBox(1.5, 2.2, 4.5, 3.0, desk));
  obstacles.push_back(MakeBox(6.5, 2.2, 9.5, 3.0, desk));
  obstacles.push_back(MakeBox(1.5, 5.0, 4.5, 5.8, desk));
  obstacles.push_back(MakeBox(6.5, 5.0, 9.5, 5.8, desk));
  // Server rack and a metal cabinet.
  obstacles.push_back(
      MakeBox(10.3, 5.5, 11.3, 6.5, channel::materials::Metal()));
  obstacles.push_back(
      MakeBox(5.2, 0.3, 6.0, 1.1, channel::materials::Metal()));

  auto env = IndoorEnvironment::Create(std::move(boundary), {},
                                       std::move(obstacles));
  NOMLOC_ASSERT(env.ok());
  Scenario s{.name = "lab",
             .env = std::move(env).value(),
             .static_aps = {{0.8, 0.8}, {11.2, 0.8}, {11.2, 7.2}, {0.8, 7.2}},
             .nomadic_sites = {{0.8, 0.8}, {4.0, 4.0}, {8.0, 4.0}, {5.5, 6.8}},
             .test_sites = {{2.0, 1.5},
                            {6.0, 1.6},
                            {10.0, 1.5},
                            {2.0, 4.0},
                            {6.0, 4.0},
                            {10.0, 4.0},
                            {2.0, 6.5},
                            {4.5, 6.5},
                            {8.0, 6.5},
                            {10.8, 3.0}}};

  // Dense clutter: equipment, chairs, people.
  common::Rng rng(seed);
  s.env.PlaceScatterers(24, rng);

  for (const Vec2 p : s.static_aps) NOMLOC_ASSERT(s.env.IsFreeSpace(p));
  for (const Vec2 p : s.nomadic_sites) NOMLOC_ASSERT(s.env.IsFreeSpace(p));
  for (const Vec2 p : s.test_sites) NOMLOC_ASSERT(s.env.IsFreeSpace(p));
  return s;
}

Scenario LobbyScenario(std::uint64_t seed) {
  // L-shaped lobby: 20 m wide lower arm (6 m deep) plus an 8 m wide
  // vertical arm rising to 14 m.
  auto boundary = Polygon::Create({{0.0, 0.0},
                                   {20.0, 0.0},
                                   {20.0, 6.0},
                                   {8.0, 6.0},
                                   {8.0, 14.0},
                                   {0.0, 14.0}});
  NOMLOC_ASSERT(boundary.ok());

  std::vector<Obstacle> obstacles;
  // Structural pillars.
  obstacles.push_back(
      MakeBox(12.0, 2.0, 12.6, 2.6, channel::materials::Concrete()));
  obstacles.push_back(
      MakeBox(5.0, 10.0, 5.6, 10.6, channel::materials::Concrete()));
  // Information kiosk (glass).
  obstacles.push_back(
      MakeBox(15.5, 3.5, 16.3, 4.2, channel::materials::Glass()));

  auto env = IndoorEnvironment::Create(std::move(boundary).value(), {},
                                       std::move(obstacles));
  NOMLOC_ASSERT(env.ok());
  Scenario s{.name = "lobby",
             .env = std::move(env).value(),
             .static_aps = {{2.0, 2.0}, {18.0, 1.0}, {18.0, 5.0}, {2.0, 12.0}},
             .nomadic_sites = {{2.0, 2.0}, {10.0, 3.0}, {15.0, 4.6}, {4.0, 8.0}},
             .test_sites = {{1.0, 4.0},
                            {4.0, 1.0},
                            {7.0, 4.0},
                            {10.0, 1.5},
                            {13.0, 4.5},
                            {16.0, 1.5},
                            {19.0, 3.0},
                            {6.0, 5.0},
                            {2.0, 7.0},
                            {6.0, 9.0},
                            {3.0, 11.0},
                            {6.0, 13.0}}};

  // Sparse clutter: benches, planters, passers-by.
  common::Rng rng(seed);
  s.env.PlaceScatterers(8, rng);

  for (const Vec2 p : s.static_aps) NOMLOC_ASSERT(s.env.IsFreeSpace(p));
  for (const Vec2 p : s.nomadic_sites) NOMLOC_ASSERT(s.env.IsFreeSpace(p));
  for (const Vec2 p : s.test_sites) NOMLOC_ASSERT(s.env.IsFreeSpace(p));
  return s;
}

Scenario OfficeScenario(std::uint64_t seed) {
  // 18 x 10 m office floor: an open area (y < 4.5), a central corridor
  // (4.5 <= y <= 6), and three offices above (y > 6) separated by drywall
  // partitions with door gaps.
  Polygon boundary = Polygon::Rectangle(0.0, 0.0, 18.0, 10.0);

  const channel::Material drywall = channel::materials::Drywall();
  std::vector<Wall> walls;
  // Corridor's north wall, door gaps at x in [5,7] and [11,13].
  walls.push_back({{{0.0, 6.0}, {5.0, 6.0}}, drywall});
  walls.push_back({{{7.0, 6.0}, {11.0, 6.0}}, drywall});
  walls.push_back({{{13.0, 6.0}, {18.0, 6.0}}, drywall});
  // Corridor's south wall, door gap at x in [8,10].
  walls.push_back({{{0.0, 4.5}, {8.0, 4.5}}, drywall});
  walls.push_back({{{10.0, 4.5}, {18.0, 4.5}}, drywall});
  // Office partitions.
  walls.push_back({{{6.0, 6.0}, {6.0, 10.0}}, drywall});
  walls.push_back({{{12.0, 6.0}, {12.0, 10.0}}, drywall});

  std::vector<Obstacle> obstacles;
  // Copier (metal) in the middle office, bookcase (wood) in the open area.
  obstacles.push_back(
      MakeBox(10.5, 7.5, 11.2, 8.2, channel::materials::Metal()));
  obstacles.push_back(MakeBox(16.0, 3.0, 16.8, 3.8, channel::materials::Wood()));

  auto env = IndoorEnvironment::Create(std::move(boundary), std::move(walls),
                                       std::move(obstacles));
  NOMLOC_ASSERT(env.ok());
  Scenario s{.name = "office",
             .env = std::move(env).value(),
             .static_aps = {{1.0, 1.0}, {17.0, 1.0}, {9.0, 5.2}, {2.0, 9.0}},
             .nomadic_sites = {{1.0, 1.0}, {8.0, 5.2}, {4.0, 8.0}, {15.0, 8.0}},
             .test_sites = {{3.0, 2.0},
                            {9.0, 2.0},
                            {15.0, 2.0},
                            {7.0, 3.5},
                            {4.0, 5.2},
                            {14.0, 5.2},
                            {2.0, 8.0},
                            {5.0, 9.0},
                            {8.0, 8.0},
                            {11.0, 9.0},
                            {14.0, 7.0},
                            {16.0, 9.0}}};

  common::Rng rng(seed);
  s.env.PlaceScatterers(15, rng);

  for (const Vec2 p : s.static_aps) NOMLOC_ASSERT(s.env.IsFreeSpace(p));
  for (const Vec2 p : s.nomadic_sites) NOMLOC_ASSERT(s.env.IsFreeSpace(p));
  for (const Vec2 p : s.test_sites) NOMLOC_ASSERT(s.env.IsFreeSpace(p));
  return s;
}

common::Result<Scenario> ScenarioByName(const std::string& name) {
  if (name == "lab") return LabScenario();
  if (name == "lobby") return LobbyScenario();
  if (name == "office") return OfficeScenario();
  return common::NotFound("unknown scenario: " + name);
}

common::Result<Scenario> GeneratedScenario(const world::WorldSpec& spec) {
  // Generate uncapped so the AP/nomadic pool sees every room, then apply
  // the caller's test-site cap afterwards.
  world::WorldSpec uncapped = spec;
  uncapped.max_test_sites = 0;
  auto world = world::Generate(uncapped);
  if (!world.ok()) return world.status();

  // Candidate pool: corridor AP placements first, then per-room test
  // sites (already spread across the building by the generator).
  std::vector<Vec2> pool = world->ap_sites;
  for (const Vec2 p : world->test_sites) pool.push_back(p);
  constexpr std::size_t kNeeded = 7;  // 4 AP homes + 3 extra nomadic sites.
  if (pool.size() < kNeeded)
    return common::InvalidArgument(
        "generated world too small to seat 4 APs and 4 nomadic sites; "
        "raise rooms");

  std::vector<Vec2> sites = std::move(world->test_sites);
  if (spec.max_test_sites > 0 && sites.size() > spec.max_test_sites) {
    std::vector<Vec2> kept;
    kept.reserve(spec.max_test_sites);
    const double stride = double(sites.size()) / double(spec.max_test_sites);
    for (std::size_t i = 0; i < spec.max_test_sites; ++i)
      kept.push_back(sites[std::size_t(double(i) * stride)]);
    sites = std::move(kept);
  }

  Scenario s{.name = world->name,
             .env = std::move(world->env),
             .static_aps = {pool[0], pool[1], pool[2], pool[3]},
             .nomadic_sites = {pool[0], pool[4], pool[5], pool[6]},
             .test_sites = std::move(sites)};
  return s;
}

}  // namespace nomloc::eval
