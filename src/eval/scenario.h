// Evaluation scenarios reproducing the paper's two testbeds (Fig. 6):
//
//   * Lab   — a cluttered 12 x 8 m academic lab: desk rows (wood), metal
//             racks, dense scatterers; rich multipath and frequent NLOS.
//   * Lobby — a more open 20 x 14 m L-shaped lobby: a few pillars, sparse
//             scatterers; mostly LOS but larger distances and a non-convex
//             floor plan.
//
// Both deploy 4 APs; AP 0 doubles as the nomadic AP with site set
// {home, P1, P2, P3}, exactly as in §V-B.  Geometry is reproduced from
// Fig. 6 at plausible scale (the paper gives no dimensions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "channel/environment.h"
#include "geometry/vec2.h"
#include "world/worldgen.h"

namespace nomloc::eval {

struct Scenario {
  std::string name;
  channel::IndoorEnvironment env;
  /// All AP home positions; index 0 is the AP that can go nomadic.
  std::vector<geometry::Vec2> static_aps;
  /// Site set of the nomadic AP: {home, P1, P2, P3}.
  std::vector<geometry::Vec2> nomadic_sites;
  /// Object test sites (10 in Lab, 12 in Lobby, per §V-C).
  std::vector<geometry::Vec2> test_sites;
};

/// The cluttered Lab testbed.  `seed` controls scatterer placement.
Scenario LabScenario(std::uint64_t seed = 0x1ab);

/// The open L-shaped Lobby testbed.
Scenario LobbyScenario(std::uint64_t seed = 0x10bb);

/// A third environment beyond the paper's two: an 18 x 10 m office floor
/// with drywall partition walls (corridor + three offices), exercising
/// interior-wall attenuation/reflection, which Lab and Lobby do not.
Scenario OfficeScenario(std::uint64_t seed = 0x0ff1);

/// Looks a scenario up by name ("lab", "lobby" or "office").
common::Result<Scenario> ScenarioByName(const std::string& name);

/// Wraps a procedurally generated world (world/worldgen.h) as a runnable
/// scenario: AP homes and the nomadic site set are drawn from the
/// generator's candidate AP placements, topped up with strided test sites
/// when the world has too few corridors.  Fails when the world cannot
/// seat 4 APs plus 3 extra nomadic sites at distinct positions.
common::Result<Scenario> GeneratedScenario(const world::WorldSpec& spec);

}  // namespace nomloc::eval
