// Experiment driver: runs the full NomLoc measurement + localization
// pipeline over a Scenario and aggregates the paper's metrics (per-site
// mean error, SLV, error CDF, PDP proximity accuracy).
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "core/nomloc.h"
#include "eval/scenario.h"
#include "mobility/trace.h"

namespace nomloc::eval {

/// Which deployment an experiment runs.
enum class Deployment {
  kStatic,   ///< All 4 APs fixed at their home positions (baseline).
  kNomadic,  ///< AP 0 roams its site set; APs 1..3 stay fixed (NomLoc).
};

struct RunConfig {
  Deployment deployment = Deployment::kNomadic;
  /// CSI frames per anchor batch (the paper collects thousands of PINGs;
  /// averaging converges much earlier — keep benches fast).
  std::size_t packets_per_batch = 50;
  /// Independent trials per test site (errors are averaged per site).
  std::size_t trials = 10;
  /// Nomadic dwell segments per localization epoch.
  std::size_t dwell_count = 8;
  /// How reported nomadic positions deviate from truth (paper Fig. 10
  /// uses kUniformDisc; kDeadReckoning is the odometry ablation).
  mobility::PositionErrorModel error_model =
      mobility::PositionErrorModel::kUniformDisc;
  /// Uniform-disc error radius on reported nomadic positions (ER) [m].
  double position_error_m = 0.0;
  /// Dead-reckoning drift per metre walked (kDeadReckoning only).
  double odometry_drift_per_m = 0.0;
  mobility::MobilityPattern pattern = mobility::MobilityPattern::kMarkovWalk;
  /// How many nomadic APs roam (1 per the paper; >1 = future-work
  /// ablation: AP k roams a shifted copy of the site set).
  std::size_t nomadic_ap_count = 1;
  channel::ChannelConfig channel;
  core::NomLocConfig engine;
  std::uint64_t seed = 1;
  /// Worker threads for the measurement and solve phases.  Results are
  /// bit-identical for any thread count: every site measures on its own
  /// forked RNG stream and the engine's batch solve is RNG-free.
  std::size_t threads = 1;

  /// Typed rejection of nonsense values (trials == 0, threads == 0,
  /// negative error radius, …).  Called by the Run* entry points.
  common::Result<void> Validate() const;
};

struct SiteResult {
  geometry::Vec2 site;
  double mean_error_m = 0.0;
  std::vector<double> trial_errors_m;
};

struct RunResult {
  std::vector<SiteResult> sites;
  /// Paper Eq. 22 over the per-site mean errors.
  double slv = 0.0;

  std::vector<double> SiteMeanErrors() const;
  double MeanError() const;
  /// All trial errors pooled (for CDF plots).
  std::vector<double> AllErrors() const;
};

/// Runs localization at every test site of the scenario.
common::Result<RunResult> RunLocalization(const Scenario& scenario,
                                          const RunConfig& config);

/// Fig. 7: per-site accuracy of PDP-based proximity determination against
/// ground-truth distance ordering, over all C(ap,2) pairs and `trials`
/// repetitions, with the APs at their static home positions.
struct ProximityAccuracyResult {
  std::vector<double> per_site_accuracy;  ///< One value per test site.
};
common::Result<ProximityAccuracyResult> RunProximityAccuracy(
    const Scenario& scenario, const RunConfig& config);

/// Measurement half of one epoch at `object`: collects CSI batches for
/// the configured deployment and extracts one anchor per AP / visited
/// nomadic site.  Consumes `rng`; the returned anchors feed the RNG-free
/// engine solve (LocateRequest.anchors), so measurement and solving can be
/// pipelined and batched independently.
common::Result<std::vector<localization::Anchor>> MeasureEpoch(
    const Scenario& scenario, const RunConfig& config, geometry::Vec2 object,
    common::Rng& rng);

/// One localization epoch at `object`: MeasureEpoch + the engine solve.
/// Exposed so examples and ablations can drive single epochs.
common::Result<core::LocationEstimate> LocalizeEpoch(
    const Scenario& scenario, const RunConfig& config,
    const core::NomLocEngine& engine, geometry::Vec2 object,
    common::Rng& rng);

}  // namespace nomloc::eval
