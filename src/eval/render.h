// ASCII floor-plan rendering for scenarios and results — makes bench
// output and the CLI self-describing without a plotting stack.
//
// Legend: '#' boundary/interior wall, 'o' obstacle, 'A' static AP,
// 'N' nomadic dwell site, 'x' test site, '*' marker (e.g. an estimate),
// '.' free space, ' ' outside the floor polygon.
#pragma once

#include <string>
#include <vector>

#include "eval/scenario.h"

namespace nomloc::eval {

struct RenderOptions {
  /// Horizontal cells per metre (vertical is half that — terminal glyphs
  /// are roughly twice as tall as wide).
  double cells_per_m = 2.0;
  /// Extra markers drawn as '*' (estimates, planned sites, …).
  std::vector<geometry::Vec2> markers;
};

/// Renders the scenario to a multi-line string (top row = max y).
std::string RenderScenario(const Scenario& scenario,
                           const RenderOptions& options = {});

}  // namespace nomloc::eval
