#include "eval/runner.h"

#include <algorithm>
#include <map>

#include "channel/csi_model.h"
#include "common/assert.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "localization/proximity.h"

namespace nomloc::eval {

using geometry::Vec2;

std::vector<double> RunResult::SiteMeanErrors() const {
  std::vector<double> out;
  out.reserve(sites.size());
  for (const SiteResult& s : sites) out.push_back(s.mean_error_m);
  return out;
}

double RunResult::MeanError() const {
  return common::Mean(SiteMeanErrors());
}

std::vector<double> RunResult::AllErrors() const {
  std::vector<double> out;
  for (const SiteResult& s : sites)
    out.insert(out.end(), s.trial_errors_m.begin(), s.trial_errors_m.end());
  return out;
}

namespace {

// Site set of nomadic AP k: AP 0 uses the scenario's set verbatim; extra
// nomadic APs (future-work ablation) roam the same waypoints but start
// from their own home position.
std::vector<Vec2> NomadicSitesFor(const Scenario& scenario, std::size_t k) {
  std::vector<Vec2> sites = scenario.nomadic_sites;
  if (k > 0 && k < scenario.static_aps.size())
    sites.front() = scenario.static_aps[k];
  return sites;
}

}  // namespace

common::Result<void> RunConfig::Validate() const {
  if (trials == 0) return common::InvalidArgument("trials must be >= 1");
  if (packets_per_batch == 0)
    return common::InvalidArgument("packets_per_batch must be >= 1");
  if (dwell_count == 0)
    return common::InvalidArgument("dwell_count must be >= 1");
  if (threads == 0) return common::InvalidArgument("threads must be >= 1");
  if (position_error_m < 0.0)
    return common::InvalidArgument("position_error_m must be >= 0");
  if (odometry_drift_per_m < 0.0)
    return common::InvalidArgument("odometry_drift_per_m must be >= 0");
  if (nomadic_ap_count == 0)
    return common::InvalidArgument("nomadic_ap_count must be >= 1");
  return engine.Validate();
}

common::Result<std::vector<localization::Anchor>> MeasureEpoch(
    const Scenario& scenario, const RunConfig& config, Vec2 object,
    common::Rng& rng) {
  const channel::CsiSimulator sim(scenario.env, config.channel);
  std::vector<localization::Anchor> anchors;

  // Measures one anchor: SISO batches go through the standard per-frame
  // PDP average; with rx_antennas > 1 the antennas are combined
  // non-coherently per packet first (dsp::PdpOfMimoBatch).
  auto measure_anchor = [&](Vec2 true_position, Vec2 reported_position,
                            bool is_nomadic,
                            std::size_t packets) -> localization::Anchor {
    const auto link = sim.MakeLink(object, true_position);
    localization::Anchor anchor;
    anchor.position = reported_position;
    anchor.is_nomadic_site = is_nomadic;
    if (config.channel.rx_antennas > 1) {
      const auto mimo = link.SampleMimoBatch(packets, rng);
      anchor.pdp = dsp::PdpOfMimoBatch(mimo, config.channel.bandwidth_hz,
                                       config.engine.pdp);
    } else {
      const auto frames = link.SampleBatch(packets, rng);
      anchor.pdp = dsp::PdpOfBatch(frames, config.channel.bandwidth_hz,
                                   config.engine.pdp);
    }
    return anchor;
  };

  const std::size_t nomadic_count =
      config.deployment == Deployment::kNomadic
          ? std::min(config.nomadic_ap_count, scenario.static_aps.size())
          : 0;

  // Static APs (those not roaming this epoch).  In the static deployment
  // every AP is fixed, including AP 0.
  for (std::size_t i = nomadic_count; i < scenario.static_aps.size(); ++i) {
    anchors.push_back(measure_anchor(scenario.static_aps[i],
                                     scenario.static_aps[i],
                                     /*is_nomadic=*/false,
                                     config.packets_per_batch));
  }
  for (std::size_t i = 0; i < nomadic_count; ++i) {
    // Nomadic AP i: random walk over its site set; one anchor per distinct
    // visited site, measurements accumulated across dwells at that site
    // (the paper's site set L), reported position averaged over the
    // dwells' (error-injected) reports.
    const std::vector<Vec2> sites = NomadicSitesFor(scenario, i);
    mobility::TraceConfig trace_cfg;
    trace_cfg.pattern = config.pattern;
    trace_cfg.dwell_count = config.dwell_count;
    trace_cfg.error_model = config.error_model;
    trace_cfg.position_error_m = config.position_error_m;
    trace_cfg.odometry_drift_per_m = config.odometry_drift_per_m;
    NOMLOC_ASSIGN_OR_RETURN(auto trace,
                            mobility::GenerateTrace(sites, trace_cfg, rng));

    struct SiteAgg {
      Vec2 true_position;
      Vec2 reported_sum{0.0, 0.0};
      std::size_t dwells = 0;
    };
    std::map<std::size_t, SiteAgg> per_site;
    for (const mobility::DwellRecord& rec : trace) {
      SiteAgg& agg = per_site[rec.site_index];
      agg.true_position = rec.true_position;
      agg.reported_sum += rec.reported_position;
      ++agg.dwells;
    }
    for (auto& [site_idx, agg] : per_site) {
      anchors.push_back(measure_anchor(
          agg.true_position, agg.reported_sum / double(agg.dwells),
          /*is_nomadic=*/true, config.packets_per_batch * agg.dwells));
    }
  }

  return anchors;
}

common::Result<core::LocationEstimate> LocalizeEpoch(
    const Scenario& scenario, const RunConfig& config,
    const core::NomLocEngine& engine, Vec2 object, common::Rng& rng) {
  NOMLOC_ASSIGN_OR_RETURN(auto anchors,
                          MeasureEpoch(scenario, config, object, rng));
  return engine.LocateFromAnchors(anchors);
}

common::Result<RunResult> RunLocalization(const Scenario& scenario,
                                          const RunConfig& config) {
  if (auto valid = config.Validate(); !valid.ok()) return valid.status();
  core::NomLocConfig engine_cfg = config.engine;
  engine_cfg.bandwidth_hz = config.channel.bandwidth_hz;
  NOMLOC_ASSIGN_OR_RETURN(
      auto engine,
      core::NomLocEngine::Create(scenario.env.Boundary(), engine_cfg));

  const common::Rng rng(config.seed);
  const std::size_t site_count = scenario.test_sites.size();
  const std::size_t trials = config.trials;
  RunResult result;
  result.sites.resize(site_count);

  // Phase 1 — measurement.  Each site gets an independent forked RNG
  // stream, so the per-site loop parallelises with bit-identical anchors
  // for any thread count.  Epochs are indexed site-major: epoch
  // s * trials + t is trial t at site s.
  std::vector<std::vector<localization::Anchor>> epoch_anchors(site_count *
                                                               trials);
  std::vector<common::Status> site_errors(site_count);
  auto measure_site = [&](std::size_t s) {
    common::Rng site_rng = rng.Fork(s + 1);
    for (std::size_t trial = 0; trial < trials; ++trial) {
      auto anchors =
          MeasureEpoch(scenario, config, scenario.test_sites[s], site_rng);
      if (!anchors.ok()) {
        site_errors[s] = anchors.status();
        return;
      }
      epoch_anchors[s * trials + trial] = std::move(anchors).value();
    }
  };
  {
    common::StageTrace measure_trace(
        common::MetricRegistry::Global().Timer("eval.measure"));
    if (config.threads <= 1) {
      for (std::size_t s = 0; s < site_count; ++s) measure_site(s);
    } else {
      common::ThreadPool pool(config.threads);
      pool.ParallelFor(site_count, measure_site);
    }
  }
  // Deterministic error policy: the lowest-index site's failure wins.
  for (const common::Status& status : site_errors)
    if (!status.ok()) return status;

  // Phase 2 — solve.  The engine pipeline is RNG-free, so the epochs fan
  // out over the batch path with bit-identical estimates.
  std::vector<core::LocateRequest> requests(epoch_anchors.size());
  for (std::size_t i = 0; i < epoch_anchors.size(); ++i)
    requests[i].anchors = epoch_anchors[i];
  common::StageTrace solve_trace(
      common::MetricRegistry::Global().Timer("eval.solve"));
  NOMLOC_ASSIGN_OR_RETURN(auto responses,
                          engine.LocateBatch(requests, config.threads));
  solve_trace.Stop();
  common::MetricRegistry::Global().Counter("eval.epochs").Increment(
      responses.size());

  // Phase 3 — aggregate the paper's per-site metrics.
  for (std::size_t s = 0; s < site_count; ++s) {
    SiteResult& site_result = result.sites[s];
    site_result.site = scenario.test_sites[s];
    site_result.trial_errors_m.reserve(trials);
    for (std::size_t trial = 0; trial < trials; ++trial)
      site_result.trial_errors_m.push_back(
          Distance(responses[s * trials + trial].estimate.position,
                   site_result.site));
    site_result.mean_error_m = common::Mean(site_result.trial_errors_m);
  }

  result.slv =
      common::SpatialLocalizabilityVariance(result.SiteMeanErrors());
  return result;
}

common::Result<ProximityAccuracyResult> RunProximityAccuracy(
    const Scenario& scenario, const RunConfig& config) {
  if (auto valid = config.Validate(); !valid.ok()) return valid.status();
  const channel::CsiSimulator sim(scenario.env, config.channel);
  common::Rng rng(config.seed);

  ProximityAccuracyResult out;
  out.per_site_accuracy.reserve(scenario.test_sites.size());

  for (std::size_t s = 0; s < scenario.test_sites.size(); ++s) {
    const Vec2 object = scenario.test_sites[s];
    common::Rng site_rng = rng.Fork(1000 + s);
    std::size_t correct = 0, total = 0;
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      // Measure an anchor at every static AP home position (combining
      // antennas when the config has more than one).
      std::vector<localization::Anchor> anchors;
      for (const Vec2 ap : scenario.static_aps) {
        const auto link = sim.MakeLink(object, ap);
        localization::Anchor anchor;
        anchor.position = ap;
        if (config.channel.rx_antennas > 1) {
          const auto mimo =
              link.SampleMimoBatch(config.packets_per_batch, site_rng);
          anchor.pdp = dsp::PdpOfMimoBatch(mimo, config.channel.bandwidth_hz,
                                           config.engine.pdp);
        } else {
          const auto frames =
              link.SampleBatch(config.packets_per_batch, site_rng);
          anchor.pdp = dsp::PdpOfBatch(frames, config.channel.bandwidth_hz,
                                       config.engine.pdp);
        }
        anchors.push_back(anchor);
      }
      const auto judgements = localization::JudgeProximity(
          anchors, localization::PairPolicy::kAllPairs);
      for (const auto& j : judgements) {
        const double dw = Distance(object, anchors[j.winner].position);
        const double dl = Distance(object, anchors[j.loser].position);
        if (dw <= dl) ++correct;
        ++total;
      }
    }
    out.per_site_accuracy.push_back(total ? double(correct) / double(total)
                                          : 0.0);
  }
  return out;
}

}  // namespace nomloc::eval
