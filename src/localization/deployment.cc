#include "localization/deployment.h"

#include <algorithm>
#include <limits>

#include "common/assert.h"
#include "geometry/convex_decomp.h"
#include "geometry/hull.h"

namespace nomloc::localization {

using geometry::Polygon;
using geometry::Vec2;

namespace {

std::vector<SpConstraint> IdealConstraints(Vec2 truth,
                                           std::span<const Vec2> anchors) {
  std::vector<SpConstraint> out;
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    for (std::size_t j = i + 1; j < anchors.size(); ++j) {
      if (geometry::AlmostEqual(anchors[i], anchors[j], 1e-9)) continue;
      const bool i_closer =
          Distance(truth, anchors[i]) <= Distance(truth, anchors[j]);
      const Vec2 w = i_closer ? anchors[i] : anchors[j];
      const Vec2 l = i_closer ? anchors[j] : anchors[i];
      out.push_back({geometry::HalfPlane::CloserTo(w, l), 0.9, false});
    }
  }
  return out;
}

double Objective(std::span<const double> errors,
                 DeploymentObjective objective) {
  if (objective == DeploymentObjective::kMaxError)
    return *std::max_element(errors.begin(), errors.end());
  double sum = 0.0;
  for (double e : errors) sum += e;
  return sum / double(errors.size());
}

}  // namespace

common::Result<std::vector<double>> PerSampleCellErrors(
    std::span<const Polygon> parts, std::span<const Vec2> anchors,
    std::span<const Vec2> samples, const SpSolverOptions& solver) {
  if (samples.empty()) return common::InvalidArgument("no sample points");
  if (anchors.size() < 2) return common::InvalidArgument("need >= 2 anchors");
  std::vector<double> errors;
  errors.reserve(samples.size());
  for (const Vec2 truth : samples) {
    const auto constraints = IdealConstraints(truth, anchors);
    if (constraints.empty())
      return common::InvalidArgument("all anchors coincide");
    NOMLOC_ASSIGN_OR_RETURN(SpSolution sol,
                            SolveSp(parts, constraints, solver));
    errors.push_back(Distance(sol.estimate, truth));
  }
  return errors;
}

common::Result<DeploymentResult> OptimizeStaticDeployment(
    const Polygon& area, std::span<const Vec2> candidates,
    const DeploymentConfig& config) {
  if (config.ap_count < 2)
    return common::InvalidArgument("need at least 2 APs");
  if (candidates.size() < config.ap_count)
    return common::InvalidArgument("not enough candidate positions");
  if (config.sample_points == 0)
    return common::InvalidArgument("sample_points must be >= 1");

  NOMLOC_ASSIGN_OR_RETURN(auto parts, geometry::DecomposeConvex(area));

  common::Rng rng(config.seed);
  std::vector<Vec2> samples;
  samples.reserve(config.sample_points);
  for (std::size_t i = 0; i < config.sample_points; ++i)
    samples.push_back(geometry::RandomPointIn(area, rng));

  DeploymentResult result;
  std::vector<bool> used(candidates.size(), false);
  std::vector<Vec2> chosen;

  // Seed with the best pair (a single anchor has no bisectors).
  {
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0, bj = 1;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      for (std::size_t j = i + 1; j < candidates.size(); ++j) {
        const std::vector<Vec2> pair{candidates[i], candidates[j]};
        auto errors = PerSampleCellErrors(parts, pair, samples,
                                          config.solver);
        if (!errors.ok()) continue;
        const double obj = Objective(*errors, config.objective);
        if (obj < best) {
          best = obj;
          bi = i;
          bj = j;
        }
      }
    }
    if (!std::isfinite(best))
      return common::Internal("no admissible seed pair");
    used[bi] = used[bj] = true;
    chosen.push_back(candidates[bi]);
    chosen.push_back(candidates[bj]);
    result.selected.push_back(bi);
    result.selected.push_back(bj);
    result.objective_value_m = best;
  }

  // Greedy growth.
  while (chosen.size() < config.ap_count) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_idx = candidates.size();
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (used[c]) continue;
      chosen.push_back(candidates[c]);
      auto errors = PerSampleCellErrors(parts, chosen, samples,
                                        config.solver);
      chosen.pop_back();
      if (!errors.ok()) continue;
      const double obj = Objective(*errors, config.objective);
      if (obj < best) {
        best = obj;
        best_idx = c;
      }
    }
    if (best_idx == candidates.size())
      return common::Internal("no admissible candidate in growth round");
    used[best_idx] = true;
    chosen.push_back(candidates[best_idx]);
    result.selected.push_back(best_idx);
    result.objective_value_m = best;
  }

  result.positions = std::move(chosen);
  return result;
}

}  // namespace nomloc::localization
