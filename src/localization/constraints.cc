#include "localization/constraints.h"

#include "common/assert.h"
#include "geometry/line.h"

namespace nomloc::localization {

using geometry::HalfPlane;
using geometry::Line;
using geometry::Polygon;
using geometry::Vec2;

std::vector<SpConstraint> ProximityConstraints(
    std::span<const Anchor> anchors,
    std::span<const ProximityJudgement> judgements) {
  std::vector<SpConstraint> out;
  out.reserve(judgements.size());
  for (const ProximityJudgement& j : judgements) {
    NOMLOC_REQUIRE(j.winner < anchors.size() && j.loser < anchors.size());
    const Vec2 w = anchors[j.winner].position;
    const Vec2 l = anchors[j.loser].position;
    if (geometry::AlmostEqual(w, l, 1e-9)) continue;  // No bisector.
    out.push_back({HalfPlane::CloserTo(w, l), j.confidence, false});
  }
  return out;
}

std::vector<Vec2> VirtualApPositions(const Polygon& convex, Vec2 reference) {
  NOMLOC_REQUIRE(convex.IsConvex());
  NOMLOC_REQUIRE(convex.Contains(reference));
  std::vector<Vec2> vaps;
  vaps.reserve(convex.EdgeCount());
  for (std::size_t i = 0; i < convex.EdgeCount(); ++i) {
    const geometry::Segment e = convex.Edge(i);
    vaps.push_back(Line::Through(e.a, e.b).Mirror(reference));
  }
  return vaps;
}

std::vector<SpConstraint> BoundaryConstraints(const Polygon& convex,
                                              Vec2 reference, double weight) {
  NOMLOC_REQUIRE(weight > 0.0);
  std::vector<SpConstraint> out;
  const std::vector<Vec2> vaps = VirtualApPositions(convex, reference);
  out.reserve(vaps.size());
  for (const Vec2 vap : vaps) {
    // A reference point exactly on an edge mirrors onto itself — that edge
    // contributes no constraint (the point is already boundary-tight).
    if (geometry::AlmostEqual(vap, reference, 1e-9)) continue;
    out.push_back({HalfPlane::CloserTo(reference, vap), weight, true});
  }
  return out;
}

}  // namespace nomloc::localization
