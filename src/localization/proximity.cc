#include "localization/proximity.h"

#include <cmath>

#include "common/assert.h"
#include "common/metrics.h"

namespace nomloc::localization {

double ConfidenceF(double ratio) {
  NOMLOC_REQUIRE(ratio > 0.0);
  if (ratio <= 1.0) return std::exp2(-ratio);
  return 1.0 - std::exp2(-1.0 / ratio);
}

std::vector<ProximityJudgement> JudgeProximity(std::span<const Anchor> anchors,
                                               PairPolicy policy) {
  NOMLOC_REQUIRE(anchors.size() >= 2);
  for (const Anchor& a : anchors) NOMLOC_REQUIRE(a.pdp > 0.0);

  auto& registry = common::MetricRegistry::Global();
  static auto& judgement_count = registry.Counter("proximity.judgements");
  // Confidence lives in [0.5, 1); a tight geometric grid over that range
  // resolves the distribution's shape (ties pile up at 0.5).
  static auto& confidence_hist =
      registry.Histogram("proximity.confidence", {}, 0.5, 1.0, 32);

  std::vector<ProximityJudgement> out;
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    for (std::size_t j = i + 1; j < anchors.size(); ++j) {
      if (policy == PairPolicy::kPaper && anchors[i].is_nomadic_site &&
          anchors[j].is_nomadic_site)
        continue;
      ProximityJudgement judgement;
      if (anchors[i].pdp >= anchors[j].pdp) {
        judgement.winner = i;
        judgement.loser = j;
      } else {
        judgement.winner = j;
        judgement.loser = i;
      }
      // Confidence from the small/large power ratio (<= 1), per Eq. 1:
      // w -> 1 when one anchor dominates, w -> 1/2 when powers tie.
      judgement.confidence = ConfidenceF(anchors[judgement.loser].pdp /
                                         anchors[judgement.winner].pdp);
      confidence_hist.Record(judgement.confidence);
      out.push_back(judgement);
    }
  }
  judgement_count.Increment(out.size());
  return out;
}

Anchor MakeAnchor(geometry::Vec2 reported_position,
                  std::span<const dsp::CsiFrame> frames, double bandwidth_hz,
                  const dsp::PdpOptions& pdp, bool is_nomadic_site) {
  Anchor anchor;
  anchor.position = reported_position;
  anchor.pdp = dsp::PdpOfBatch(frames, bandwidth_hz, pdp);
  anchor.is_nomadic_site = is_nomadic_site;
  return anchor;
}

common::Result<Anchor> MakeAnchorChecked(geometry::Vec2 reported_position,
                                         std::span<const dsp::CsiFrame> frames,
                                         double bandwidth_hz,
                                         const dsp::PdpOptions& pdp,
                                         bool is_nomadic_site) {
  if (!std::isfinite(reported_position.x) ||
      !std::isfinite(reported_position.y))
    return common::DataCorruption("non-finite reported anchor position");
  Anchor anchor;
  anchor.position = reported_position;
  NOMLOC_ASSIGN_OR_RETURN(anchor.pdp,
                          dsp::PdpOfBatchChecked(frames, bandwidth_hz, pdp));
  anchor.is_nomadic_site = is_nomadic_site;
  return anchor;
}

common::Result<void> ValidateAnchor(const Anchor& anchor) {
  if (!std::isfinite(anchor.position.x) || !std::isfinite(anchor.position.y))
    return common::DataCorruption("non-finite anchor position");
  if (!std::isfinite(anchor.pdp))
    return common::DataCorruption("non-finite anchor PDP");
  if (anchor.pdp <= 0.0)
    return common::DataCorruption("non-positive anchor PDP");
  return {};
}

}  // namespace nomloc::localization
