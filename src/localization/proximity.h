// PDP-based proximity determination (paper §IV-A).
//
// Each AP (or nomadic-AP measurement site) becomes an *anchor* with a
// reported position and a measured power of direct path.  For every anchor
// pair, the object is judged closer to the anchor with the larger PDP; the
// judgement carries the confidence factor w = f(P_small / P_large) of the
// paper's Eq. 1–4, which approaches 1 for a lopsided power ratio and 1/2
// when the powers tie.
#pragma once

#include <span>
#include <vector>

#include "common/status.h"
#include "dsp/cir.h"
#include "dsp/csi.h"
#include "geometry/vec2.h"

namespace nomloc::localization {

/// One measurement source for the SP algorithm: a static AP, or one dwell
/// site of a nomadic AP.
struct Anchor {
  geometry::Vec2 position;        ///< Position as known to the server.
  double pdp = 0.0;               ///< Measured power of direct path [mW].
  bool is_nomadic_site = false;
};

/// "Object is closer to anchor `winner` than to anchor `loser`", with the
/// paper's confidence factor in [0.5, 1).
struct ProximityJudgement {
  std::size_t winner = 0;
  std::size_t loser = 0;
  double confidence = 0.5;
};

/// The paper's f-function (Eq. 4):
///   f(x) = 2^-x         for 0 < x <= 1,
///   f(x) = 1 - 2^(-1/x) for x > 1.
/// Satisfies f(x) + f(1/x) = 1 and f(1) = 1/2.  Requires x > 0.
double ConfidenceF(double ratio);

/// Which anchor pairs produce judgements.
enum class PairPolicy {
  /// The paper's constraint set: every static–static pair (matrix A) plus
  /// every nomadic-site–static pair (matrix A'').  Nomadic sites are not
  /// compared with each other (their PDPs were measured at different
  /// times/positions of the same physical AP).
  kPaper,
  /// Every pair, including nomadic–nomadic — an ablation variant.
  kAllPairs,
};

/// Builds pairwise judgements from measured anchors.  Anchors with equal
/// PDP produce a judgement with confidence exactly 0.5 (direction is
/// lower-index-wins, which the weight makes irrelevant).  Requires at
/// least 2 anchors and strictly positive PDPs.
std::vector<ProximityJudgement> JudgeProximity(
    std::span<const Anchor> anchors, PairPolicy policy = PairPolicy::kPaper);

/// Convenience: anchor from a batch of CSI frames (averages per-packet
/// PDP, paper's thousands-of-PINGs procedure).
Anchor MakeAnchor(geometry::Vec2 reported_position,
                  std::span<const dsp::CsiFrame> frames, double bandwidth_hz,
                  const dsp::PdpOptions& pdp = {},
                  bool is_nomadic_site = false);

/// MakeAnchor with input hardening (dsp::PdpOfBatchChecked): corrupted
/// CSI (NaN/Inf values, all-zero frames) and non-finite reported
/// positions yield a typed kDataCorruption error instead of an anchor
/// whose PDP poisons every judgement it joins.  Bit-identical to
/// MakeAnchor on healthy input.
common::Result<Anchor> MakeAnchorChecked(geometry::Vec2 reported_position,
                                         std::span<const dsp::CsiFrame> frames,
                                         double bandwidth_hz,
                                         const dsp::PdpOptions& pdp = {},
                                         bool is_nomadic_site = false);

/// Validation shared by every layer that accepts pre-extracted anchors
/// (engine requests, session snapshots, recorded traces): the position
/// must be finite and the PDP finite and strictly positive.
common::Result<void> ValidateAnchor(const Anchor& anchor);

}  // namespace nomloc::localization
