// Stateful SP solving — the streaming counterpart of SolveSp.
//
// Batch SolveSp rebuilds and re-solves the whole relaxation program (Eq.
// 19) every call, but a tracked object's constraint set barely changes
// between fixes: one nomadic-AP judgement *adds* a few half-planes and
// time-decay *retires* a few old ones.  An SpSolverSession is constructed
// once per (object, floor-part-set), receives those deltas, and carries
// solver state across Solve() calls:
//
//   * Geometric fast path — while every active constraint can be
//     satisfied, the LP optimum is exactly 0, so the session just clips
//     the cached feasible polygon by the new half-planes and returns its
//     center.  No LP at all.  (solver.fastpath_hits)
//   * Dual-simplex deltas — once the constraints conflict, the session
//     keeps a lp::RelaxationSolver alive: added rows enter with their
//     slack basic and are re-optimized from the previous basis, retired
//     rows are deactivated by a rhs push.  (solver.warm_hits)
//   * Interior-point warm starts — with LpBackend::kInteriorPoint the
//     session re-solves from the previous optimum via the workspace-
//     carried warm iterate instead.
//
// Equivalence contract (enforced by the equivalence suite): in
// SpSessionMode::kColdEachSolve every Solve() is BIT-IDENTICAL to calling
// SolveSp on the active constraint set; in kIncremental the estimate
// agrees to solver tolerance.
//
// Not thread-safe — one session per object, accessed from one thread at a
// time (the serving layer's per-object FIFO guarantees this).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "geometry/polygon.h"
#include "localization/constraints.h"
#include "localization/sp_solver.h"
#include "lp/incremental.h"
#include "lp/workspace.h"

namespace nomloc::localization {

class SpSolverSession {
 public:
  /// Stable handle for one added constraint.  Ids are assigned
  /// consecutively from 0 in AddConstraints order and never reused.
  using ConstraintId = std::size_t;

  /// Builds a session over the convex parts of one floor area.  The part
  /// list is fixed for the session's lifetime (a changed floor plan is a
  /// new session).  Invalid input (no parts, non-convex part) surfaces as
  /// an error from the first Solve(), mirroring SolveSp.
  explicit SpSolverSession(std::vector<geometry::Polygon> parts,
                           const SpSolverOptions& options = {});

  /// Appends proximity constraints; returns the id of the first one (the
  /// rest follow consecutively).  Boundary VAP constraints are the
  /// session's own business — like SolveSpPart, it derives them from each
  /// part — so `is_boundary` constraints are rejected here.
  common::Result<ConstraintId> AddConstraints(
      std::span<const SpConstraint> constraints);

  /// Retires constraints by id.  Decaying an already-retired id is a
  /// no-op; an id never handed out is an error.
  common::Result<void> DecayConstraints(std::span<const ConstraintId> ids);

  /// Declarative alternative to Add/Decay for callers that re-derive the
  /// full constraint set each update (the serving layer): diffs `desired`
  /// against the active set by value, adds the new ones and decays the
  /// missing ones.  Unchanged constraints keep their ids and their warm
  /// solver rows.
  common::Result<void> ReplaceConstraints(
      std::span<const SpConstraint> desired);

  /// Drops every constraint and all cached solver state; part geometry
  /// and options survive.  Ids restart from 0.
  void Clear();

  /// Estimate over the current active set.  kColdEachSolve: bit-identical
  /// to SolveSp(parts, active, options).  kIncremental: fast path / warm
  /// LP as described above.  Requires >= 1 active constraint.
  common::Result<SpSolution> Solve();

  std::span<const geometry::Polygon> parts() const noexcept { return parts_; }
  const SpSolverOptions& options() const noexcept { return options_; }
  std::size_t ActiveConstraintCount() const noexcept { return active_count_; }
  /// Total constraints ever added (== the next id to be handed out).
  std::size_t ConstraintCount() const noexcept { return id_to_slot_.size(); }
  /// The active constraints in id order, as originally passed in —
  /// exactly what a from-scratch SolveSp over this session would receive.
  std::vector<SpConstraint> ActiveConstraints() const;

 private:
  struct PartState {
    std::vector<SpConstraint> boundary;  ///< Normalized VAPs, fixed.
    // Geometric fast path: the part clipped by the active exact planes
    // (feasibility witness) and by the slack-relaxed planes (the region
    // the estimate comes from).  `geo_valid` means the loops reflect the
    // active set; `geo_feasible` that the exact loop clears
    // fastpath_min_area.
    std::vector<geometry::Vec2> exact_loop;
    std::vector<geometry::Vec2> region_loop;
    bool geo_valid = false;
    bool geo_feasible = false;
    std::size_t geo_synced = 0;  ///< Prox ids folded into the loops.

    // Warm LP state (simplex backend): rows are [boundary..., prox...];
    // row_of_id maps a constraint slot to its RelaxationSolver row.
    lp::RelaxationSolver lp;
    std::vector<std::size_t> row_of_id;
    std::size_t lp_adds_synced = 0;    ///< Prox slots appended to `lp`.
    std::size_t lp_decays_synced = 0;  ///< Prefix of decay_log_ applied.
    bool lp_ready = false;

    // Interior-point backend: warm iterate lives in the workspace.
    lp::SolveWorkspace ws;
  };

  common::Result<SpPartSolution> SolvePartIncremental(std::size_t part_idx);
  common::Result<SpPartSolution> SolvePartLp(std::size_t part_idx);
  /// Rebuilds a part's fast-path loops from scratch over the active set.
  void RebuildGeometry(PartState& ps, const geometry::Polygon& part);
  /// Folds prox slots [ps.geo_synced, slot count) into valid loops.
  void AdvanceGeometry(PartState& ps);
  /// Drops retired slots so per-solve loops stay O(active), remapping
  /// live external ids in place.  Resets per-part caches (the next solve
  /// of each part rebuilds cold).  Runs from Solve() once retired slots
  /// outnumber a multiple of the live set.
  void CompactSlots();

  std::vector<geometry::Polygon> parts_;
  SpSolverOptions options_;
  common::Status init_status_;  ///< Part validation, reported by Solve().

  // Constraint storage is slot-dense: external ConstraintIds (stable,
  // never reused) map through id_to_slot_ so retired constraints can be
  // garbage-collected without invalidating handles — a long-lived
  // streaming session must not grow its per-solve loops with every
  // constraint it has EVER seen, only with the live set.
  std::vector<SpConstraint> constraints_;  ///< By slot, as passed in.
  std::vector<SpConstraint> normalized_;   ///< By slot, unit normals.
  std::vector<bool> active_;               ///< By slot.
  std::size_t active_count_ = 0;
  std::vector<std::size_t> decay_log_;     ///< Slots in decay order.
  std::vector<std::size_t> id_to_slot_;    ///< By id; kNpos once compacted.
  std::vector<ConstraintId> slot_to_id_;   ///< By slot.

  std::vector<PartState> part_states_;
  std::vector<geometry::Vec2> clip_scratch_;  ///< Clip double-buffer.
  bool dirty_ = true;
  common::Result<SpSolution> cached_ = common::FailedPrecondition(
      "SpSolverSession::Solve never ran");
};

}  // namespace nomloc::localization
