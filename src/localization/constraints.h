// Space-partition constraint construction (paper §IV-B).
//
// Every proximity judgement becomes the perpendicular-bisector half-plane
// "closer to the winner" (Eq. 7/13), weighted by its confidence.  Area
// boundaries become virtual-AP constraints (Eq. 9): the interior reference
// point is mirrored across every boundary edge, and "closer to the
// reference than to its mirror image" is exactly "inside that edge".
#pragma once

#include <span>
#include <vector>

#include "geometry/halfplane.h"
#include "geometry/polygon.h"
#include "localization/proximity.h"

namespace nomloc::localization {

struct SpConstraint {
  geometry::HalfPlane half_plane;
  double weight = 1.0;      ///< Relaxation cost (confidence, or large for
                            ///< boundary constraints).
  bool is_boundary = false;
};

/// Bisector constraints for all judgements over `anchors`.  Judgements
/// between coincident anchor positions are skipped (no bisector exists).
std::vector<SpConstraint> ProximityConstraints(
    std::span<const Anchor> anchors,
    std::span<const ProximityJudgement> judgements);

/// Virtual-AP boundary constraints for a convex area.  `reference` must be
/// strictly inside the polygon (paper: "the site of AP 1 could be any
/// other site within the area").  `weight` should dominate proximity
/// weights so the boundary is only violated as a last resort.
std::vector<SpConstraint> BoundaryConstraints(const geometry::Polygon& convex,
                                              geometry::Vec2 reference,
                                              double weight);

/// Positions of the virtual APs themselves (mirror images of `reference`
/// across each edge) — exposed for tests and visualization.
std::vector<geometry::Vec2> VirtualApPositions(const geometry::Polygon& convex,
                                               geometry::Vec2 reference);

}  // namespace nomloc::localization
