#include "localization/fallback.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <numeric>

#include "common/metrics.h"
#include "localization/sp_session.h"

namespace nomloc::localization {

common::Result<void> FallbackPolicy::Validate() const {
  if (std::isnan(max_relaxation_cost))
    return common::InvalidArgument("max_relaxation_cost must not be NaN");
  if (max_relaxation_cost < 0.0)
    return common::InvalidArgument("max_relaxation_cost must be >= 0");
  double prev = 1.0 + 1e-12;
  for (double f : keep_fractions) {
    if (!(f > 0.0 && f <= 1.0))
      return common::InvalidArgument("keep_fractions must lie in (0, 1]");
    if (f >= prev)
      return common::InvalidArgument("keep_fractions must be descending");
    prev = f;
  }
  return {};
}

common::Result<geometry::Vec2> WeightedAnchorCentroid(
    std::span<const geometry::Polygon> parts,
    std::span<const Anchor> anchors) {
  if (anchors.empty() && parts.empty())
    return common::FailedPrecondition(
        "weighted centroid needs anchors or area parts");

  geometry::Vec2 estimate{0.0, 0.0};
  bool have_estimate = false;
  if (!anchors.empty()) {
    // PDP-weighted mean: a strong anchor (object nearby) pulls harder.
    // Non-finite or non-positive weights fall back to equal weighting so
    // one corrupt PDP cannot poison the mean.
    double total_w = 0.0;
    geometry::Vec2 acc{0.0, 0.0};
    std::size_t finite_positions = 0;
    geometry::Vec2 plain{0.0, 0.0};
    for (const Anchor& a : anchors) {
      if (!std::isfinite(a.position.x) || !std::isfinite(a.position.y))
        continue;
      ++finite_positions;
      plain.x += a.position.x;
      plain.y += a.position.y;
      const double w = a.pdp;
      if (!std::isfinite(w) || w <= 0.0) continue;
      total_w += w;
      acc.x += w * a.position.x;
      acc.y += w * a.position.y;
    }
    if (total_w > 0.0 && std::isfinite(total_w)) {
      estimate = {acc.x / total_w, acc.y / total_w};
      have_estimate = true;
    } else if (finite_positions > 0) {
      estimate = {plain.x / double(finite_positions),
                  plain.y / double(finite_positions)};
      have_estimate = true;
    }
  }
  if (!have_estimate) {
    if (parts.empty())
      return common::FailedPrecondition(
          "no finite anchor positions and no area parts");
    // Area-weighted centroid of the whole floor — the maximally
    // uninformed but always-valid answer.
    double total_area = 0.0;
    geometry::Vec2 acc{0.0, 0.0};
    for (const geometry::Polygon& part : parts) {
      const double area = part.Area();
      const geometry::Vec2 c = part.Centroid();
      total_area += area;
      acc.x += area * c.x;
      acc.y += area * c.y;
    }
    return geometry::Vec2{acc.x / total_area, acc.y / total_area};
  }

  // Clamp into the area: an estimate outside every part (possible when a
  // nomadic AP reported a position beyond the floor) snaps to the
  // closest part centroid — deterministic and always inside.
  if (parts.empty()) return estimate;
  for (const geometry::Polygon& part : parts)
    if (part.Contains(estimate)) return estimate;
  geometry::Vec2 best = parts.front().Centroid();
  double best_d2 = std::numeric_limits<double>::infinity();
  for (const geometry::Polygon& part : parts) {
    const geometry::Vec2 c = part.Centroid();
    const double dx = c.x - estimate.x, dy = c.y - estimate.y;
    const double d2 = dx * dx + dy * dy;
    if (d2 < best_d2) {
      best_d2 = d2;
      best = c;
    }
  }
  return best;
}

namespace {

// Synthetic SpSolution for the LP-free level-2 estimate: every proximity
// constraint counts as violated, the feasible cell is the whole floor.
SpSolution CentroidSolution(std::span<const geometry::Polygon> parts,
                            std::span<const SpConstraint> constraints,
                            geometry::Vec2 estimate) {
  SpSolution sol;
  sol.estimate = estimate;
  double cost = 0.0;
  for (const SpConstraint& c : constraints)
    if (!c.is_boundary) cost += c.weight;
  sol.relaxation_cost = cost;
  double total_area = 0.0;
  for (const geometry::Polygon& part : parts) total_area += part.Area();
  sol.feasible_area_m2 = total_area;
  sol.best_part = 0;
  SpPartSolution part_sol;
  part_sol.estimate = estimate;
  part_sol.relaxation_cost = cost;
  part_sol.violated = constraints.size();
  sol.parts.push_back(std::move(part_sol));
  return sol;
}

// The ladder, parameterized over how level 0 is obtained so the stateless
// path (SolveSp) and the session path (SpSolverSession::Solve, possibly
// incremental) share every other rung.  Retry levels always re-solve from
// scratch with SolveSp — they run on unhealthy input, where a warm basis
// is worthless anyway.
common::Result<ResilientSolution> RunLadder(
    std::span<const geometry::Polygon> parts,
    std::span<const Anchor> anchors,
    std::span<const SpConstraint> proximity_constraints,
    const SpSolverOptions& options,
    const std::function<common::Result<SpSolution>()>& level0) {
  const FallbackPolicy& policy = options.fallback;
  if (auto valid = policy.Validate(); !valid.ok()) return valid.status();
  auto& registry = common::MetricRegistry::Global();
  static auto& engaged_relaxed =
      registry.Counter("fallback.engaged", "level=relaxed_constraints");
  static auto& engaged_centroid =
      registry.Counter("fallback.engaged", "level=weighted_centroid");
  static auto& dropped_counter =
      registry.Counter("fallback.dropped_constraints");

  ResilientSolution out;

  // Level 0 — the full program.  This is the only path the chain takes on
  // healthy input, which keeps the resilient solve bit-identical to the
  // plain one there (fallback never perturbs a solve that succeeds within
  // budget — including its reported lp_iterations).
  auto full = level0();
  const bool full_ok =
      full.ok() && full.value().relaxation_cost <= policy.max_relaxation_cost;
  if (full_ok || !policy.enable) {
    if (!full.ok()) return full.status();
    out.solution = std::move(full).value();
    out.level = common::DegradationLevel::kNone;
    return out;
  }
  // LP work spent on attempts that did not win still happened; degraded
  // responses report it so `lp_iterations` reflects true solver effort
  // (previously ladder re-solves were invisible in the summed count).
  std::size_t ladder_iterations = full.ok() ? full.value().lp_iterations : 0;

  // Level 1 — progressive constraint relaxation: keep only the most
  // confident judgements (boundary constraints carry a large weight and
  // therefore always survive the cut), dropping the rest in the policy's
  // fraction steps.  A contradictory low-confidence judgement from a
  // marginal link is the usual culprit, so shedding the tail first
  // preserves the most spatial information.
  std::vector<std::size_t> rank(proximity_constraints.size());
  std::iota(rank.begin(), rank.end(), std::size_t{0});
  std::stable_sort(rank.begin(), rank.end(),
                   [&](std::size_t a, std::size_t b) {
                     return proximity_constraints[a].weight >
                            proximity_constraints[b].weight;
                   });
  const std::size_t n = proximity_constraints.size();
  for (double fraction : policy.keep_fractions) {
    const std::size_t keep = std::max<std::size_t>(
        1, std::size_t(std::ceil(fraction * double(n))));
    if (keep >= n) continue;  // Identical to the level-0 program.
    ++out.fallback_attempts;
    std::vector<SpConstraint> kept_constraints;
    kept_constraints.reserve(keep);
    // Original order among the kept subset keeps the LP deterministic.
    std::vector<std::size_t> kept_idx(rank.begin(),
                                      rank.begin() + std::ptrdiff_t(keep));
    std::sort(kept_idx.begin(), kept_idx.end());
    for (std::size_t i : kept_idx)
      kept_constraints.push_back(proximity_constraints[i]);
    auto retry = SolveSp(parts, kept_constraints, options);
    if (retry.ok() &&
        retry.value().relaxation_cost <= policy.max_relaxation_cost) {
      out.solution = std::move(retry).value();
      out.solution.lp_iterations += ladder_iterations;
      out.level = common::DegradationLevel::kRelaxedConstraints;
      out.dropped_constraints = n - keep;
      engaged_relaxed.Increment();
      dropped_counter.Increment(out.dropped_constraints);
      return out;
    }
    if (retry.ok()) ladder_iterations += retry.value().lp_iterations;
  }

  // Level 2 — no program at all: PDP-weighted anchor centroid.
  ++out.fallback_attempts;
  NOMLOC_ASSIGN_OR_RETURN(geometry::Vec2 estimate,
                          WeightedAnchorCentroid(parts, anchors));
  out.solution = CentroidSolution(parts, proximity_constraints, estimate);
  out.solution.lp_iterations = ladder_iterations;
  out.level = common::DegradationLevel::kWeightedCentroid;
  out.dropped_constraints = n;
  engaged_centroid.Increment();
  dropped_counter.Increment(n);
  return out;
}

}  // namespace

common::Result<ResilientSolution> SolveSpResilient(
    std::span<const geometry::Polygon> parts, std::span<const Anchor> anchors,
    std::span<const SpConstraint> proximity_constraints,
    const SpSolverOptions& options) {
  return RunLadder(parts, anchors, proximity_constraints, options,
                   [&] { return SolveSp(parts, proximity_constraints,
                                        options); });
}

common::Result<ResilientSolution> SolveSpResilient(
    std::span<const geometry::Polygon> parts, std::span<const Anchor> anchors,
    std::span<const SpConstraint> proximity_constraints,
    const SpSolverOptions& options, const FallbackPolicy& policy) {
  SpSolverOptions merged = options;
  merged.fallback = policy;
  return SolveSpResilient(parts, anchors, proximity_constraints, merged);
}

common::Result<ResilientSolution> SolveSpResilient(
    SpSolverSession& session, std::span<const Anchor> anchors) {
  // Materialize the active set once: the retry rungs and the level-2
  // synthetic need it, and it must not shift under them.
  const std::vector<SpConstraint> active = session.ActiveConstraints();
  return RunLadder(session.parts(), anchors, active, session.options(),
                   [&] { return session.Solve(); });
}

}  // namespace nomloc::localization
