#include "localization/devicefree.h"

#include <cmath>

#include "channel/propagation_cache.h"
#include "common/assert.h"
#include "geometry/line.h"

namespace nomloc::localization {

common::Result<double> MagnitudeCorrelation(const dsp::CsiFrame& a,
                                            const dsp::CsiFrame& b) {
  if (a.SubcarrierCount() != b.SubcarrierCount())
    return common::InvalidArgument("frame grids differ");
  const std::size_t n = a.SubcarrierCount();
  if (n < 2) return common::InvalidArgument("need >= 2 subcarriers");
  for (std::size_t i = 0; i < n; ++i)
    if (a.Indices()[i] != b.Indices()[i])
      return common::InvalidArgument("frame grids differ");

  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += std::abs(a.Values()[i]);
    mb += std::abs(b.Values()[i]);
  }
  ma /= double(n);
  mb /= double(n);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = std::abs(a.Values()[i]) - ma;
    const double db = std::abs(b.Values()[i]) - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0)
    return common::InvalidArgument("constant magnitude vector");
  return cov / std::sqrt(va * vb);
}

common::Result<double> FrameSimilarity(const dsp::CsiFrame& a,
                                       const dsp::CsiFrame& b) {
  if (a.SubcarrierCount() != b.SubcarrierCount())
    return common::InvalidArgument("frame grids differ");
  const std::size_t n = a.SubcarrierCount();
  for (std::size_t i = 0; i < n; ++i)
    if (a.Indices()[i] != b.Indices()[i])
      return common::InvalidArgument("frame grids differ");
  double diff2 = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double ma = std::abs(a.Values()[i]);
    const double mb = std::abs(b.Values()[i]);
    diff2 += (ma - mb) * (ma - mb);
    na += ma * ma;
    nb += mb * mb;
  }
  const double scale = std::sqrt(std::max(na, nb));
  if (scale <= 0.0) return common::InvalidArgument("all-zero frames");
  return 1.0 - std::sqrt(diff2) / scale;
}

MotionDetector::MotionDetector(MotionDetectorOptions options)
    : options_(options) {
  NOMLOC_REQUIRE(options_.window >= 2);
  NOMLOC_REQUIRE(options_.similarity_threshold > 0.0 &&
                 options_.similarity_threshold <= 1.0);
}

void MotionDetector::Reset() {
  window_.clear();
  similarities_.clear();
}

std::optional<MotionDetector::Decision> MotionDetector::Feed(
    const dsp::CsiFrame& frame) {
  if (!window_.empty()) {
    auto corr = FrameSimilarity(window_.back(), frame);
    if (!corr.ok()) {
      // Grid change mid-stream: start over from this frame.
      Reset();
      window_.push_back(frame);
      return std::nullopt;
    }
    similarities_.push_back(*corr);
  }
  window_.push_back(frame);
  while (window_.size() > options_.window) window_.pop_front();
  while (similarities_.size() > options_.window - 1)
    similarities_.pop_front();

  if (similarities_.size() < options_.window - 1) return std::nullopt;

  double mean = 0.0;
  for (double c : similarities_) mean += c;
  mean /= double(similarities_.size());
  return Decision{mean < options_.similarity_threshold, mean};
}

dsp::CsiFrame SampleWithPerson(const channel::CsiSimulator& sim,
                               geometry::Vec2 tx, geometry::Vec2 rx,
                               geometry::Vec2 person, common::Rng& rng,
                               double blocking_radius_m) {
  NOMLOC_REQUIRE(blocking_radius_m >= 0.0);
  // The static link does not depend on the person, so the trace is
  // memoized; the body perturbations below work on a private copy.
  std::vector<channel::PropagationPath> paths =
      *channel::PropagationCache::Global().Trace(sim.Environment(), tx, rx,
                                                 sim.Config().propagation);

  // LOS blockage by the body.
  const geometry::Segment los{tx, rx};
  if (los.DistanceTo(person) <= blocking_radius_m) {
    for (auto& path : paths)
      if (path.is_direct)
        path.loss_db += channel::materials::Human().transmission_loss_db;
  }

  // Human scatter path.
  const double l1 = Distance(tx, person);
  const double l2 = Distance(person, rx);
  if (l1 > 1e-9 && l2 > 1e-9) {
    channel::PropagationPath body;
    body.length_m = l1 + l2;
    body.loss_db =
        channel::FreeSpacePathLossDb(body.length_m, sim.Config().carrier_hz) +
        channel::materials::Human().reflection_loss_db + 6.0;
    body.bounces = 1;
    body.is_scatter = true;
    const geometry::Vec2 d = rx - person;
    body.aoa_rad = std::atan2(d.y, d.x);
    paths.push_back(body);
  }

  const channel::LinkModel link(std::move(paths), sim.Config());
  return link.Sample(rng);
}

}  // namespace nomloc::localization
