// Fingerprint-based localization (RADAR/Horus-style) — the calibration-
// heavy alternative NomLoc is built to avoid (§III-A: fingerprinting "is a
// poor fit" for nomadic APs because the radio map is tied to static AP
// positions).
//
// Offline: survey the venue on a grid, storing the mean per-AP PDP vector
// at every reference point (the radio map).  Online: match the measured
// vector to the map by k-nearest-neighbours in log-power space.
//
// Implemented here as the honest upper baseline: with a fresh, dense
// survey it is accurate; its cost is the survey itself, and the map is
// invalidated the moment an AP moves — which bench/abl_fingerprint
// demonstrates by letting the nomadic AP wander after the survey.
#pragma once

#include <span>
#include <vector>

#include "common/status.h"
#include "geometry/polygon.h"
#include "geometry/vec2.h"
#include "localization/proximity.h"

namespace nomloc::localization {

/// One surveyed reference point: location + mean PDP per AP (fixed order).
struct FingerprintEntry {
  geometry::Vec2 position;
  std::vector<double> pdp;  ///< One value per AP, same order map-wide.
};

class RadioMap {
 public:
  /// Builds a map from surveyed entries.  All entries must have the same
  /// non-zero PDP dimension and strictly positive powers.
  static common::Result<RadioMap> Create(std::vector<FingerprintEntry> entries);

  std::size_t Size() const noexcept { return entries_.size(); }
  std::size_t ApCount() const noexcept { return ap_count_; }
  std::span<const FingerprintEntry> Entries() const noexcept {
    return entries_;
  }

  /// k-NN estimate: Euclidean distance in log10-power space, position =
  /// inverse-distance-weighted mean of the k best entries.  Requires a
  /// measurement of the map's AP dimension with positive powers and
  /// 1 <= k <= Size().
  common::Result<geometry::Vec2> Locate(std::span<const double> measured_pdp,
                                        std::size_t k = 3) const;

 private:
  RadioMap(std::vector<FingerprintEntry> entries, std::size_t ap_count)
      : entries_(std::move(entries)), ap_count_(ap_count) {}
  std::vector<FingerprintEntry> entries_;
  std::size_t ap_count_;
};

}  // namespace nomloc::localization
