#include "localization/sequence.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.h"

namespace nomloc::localization {

using geometry::Polygon;
using geometry::Vec2;

std::vector<double> FractionalRanks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Positions i..j (0-based) share the average 1-based rank.
    const double avg = (double(i) + double(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

common::Result<double> SpearmanRho(std::span<const double> ranks_a,
                                   std::span<const double> ranks_b) {
  if (ranks_a.size() != ranks_b.size())
    return common::InvalidArgument("rank vectors differ in size");
  const std::size_t n = ranks_a.size();
  if (n < 2) return common::InvalidArgument("need >= 2 ranks");
  const double ma = std::accumulate(ranks_a.begin(), ranks_a.end(), 0.0) /
                    double(n);
  const double mb = std::accumulate(ranks_b.begin(), ranks_b.end(), 0.0) /
                    double(n);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = ranks_a[i] - ma;
    const double db = ranks_b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0.0 || vb == 0.0)
    return common::InvalidArgument("constant rank vector");
  return cov / std::sqrt(va * vb);
}

common::Result<double> KendallTau(std::span<const double> a,
                                  std::span<const double> b) {
  if (a.size() != b.size())
    return common::InvalidArgument("vectors differ in size");
  const std::size_t n = a.size();
  if (n < 2) return common::InvalidArgument("need >= 2 values");
  long concordant = 0, discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      const double prod = da * db;
      if (prod > 0.0) ++concordant;
      else if (prod < 0.0) ++discordant;
      // Ties in either vector count toward neither (tau-a on the pair
      // count below keeps the value in [-1, 1]).
    }
  }
  const double pairs = double(n) * double(n - 1) / 2.0;
  return double(concordant - discordant) / pairs;
}

common::Result<Vec2> SequenceLocalize(const Polygon& area,
                                      std::span<const Anchor> anchors,
                                      const SequenceOptions& options) {
  if (anchors.size() < 3)
    return common::InvalidArgument("sequence localization needs >= 3 anchors");
  if (options.grid_step_m <= 0.0)
    return common::InvalidArgument("grid step must be positive");
  for (const Anchor& a : anchors)
    if (a.pdp <= 0.0)
      return common::InvalidArgument("anchor PDP must be positive");

  // Measured signature: rank anchors by *decreasing* power = increasing
  // distance proxy, i.e. rank 1/pdp ascending.
  std::vector<double> inv_power;
  inv_power.reserve(anchors.size());
  for (const Anchor& a : anchors) inv_power.push_back(1.0 / a.pdp);
  const std::vector<double> measured_ranks = FractionalRanks(inv_power);

  const geometry::Aabb box = area.BoundingBox();
  Vec2 acc{0.0, 0.0};
  std::size_t count = 0;
  double best = -2.0;

  std::vector<double> dist(anchors.size());
  for (double y = box.lo.y; y <= box.hi.y; y += options.grid_step_m) {
    for (double x = box.lo.x; x <= box.hi.x; x += options.grid_step_m) {
      const Vec2 p{x, y};
      if (!area.Contains(p)) continue;
      for (std::size_t i = 0; i < anchors.size(); ++i)
        dist[i] = Distance(p, anchors[i].position);

      double score = 0.0;
      if (options.correlation == RankCorrelation::kSpearman) {
        auto rho = SpearmanRho(measured_ranks, FractionalRanks(dist));
        if (!rho.ok()) continue;  // Degenerate (coincident anchors).
        score = *rho;
      } else {
        auto tau = KendallTau(inv_power, dist);
        if (!tau.ok()) continue;
        score = *tau;
      }

      if (score > best + options.tie_tolerance) {
        best = score;
        acc = p;
        count = 1;
      } else if (score >= best - options.tie_tolerance) {
        acc += p;
        ++count;
      }
    }
  }
  if (count == 0)
    return common::NotFound("no grid candidate inside the area");
  return acc / double(count);
}

}  // namespace nomloc::localization
