#include "localization/baselines.h"

#include <cmath>

#include "common/assert.h"

namespace nomloc::localization {

using geometry::Vec2;

double RangingModel::EstimateDistance(double pdp_mw) const {
  NOMLOC_REQUIRE(pdp_mw > 0.0);
  NOMLOC_REQUIRE(path_loss_exponent > 0.0);
  return ref_distance_m *
         std::pow(ref_power_mw / pdp_mw, 1.0 / path_loss_exponent);
}

common::Result<RangingModel> FitRangingModel(
    std::span<const std::pair<double, double>> distance_pdp_pairs) {
  if (distance_pdp_pairs.size() < 2)
    return common::InvalidArgument("need >= 2 calibration pairs");

  // Linear regression of log10(P) on log10(d):
  //   log P = log P_ref + gamma * (log d_ref - log d), with d_ref = 1.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  const double n = double(distance_pdp_pairs.size());
  for (const auto& [d, p] : distance_pdp_pairs) {
    if (d <= 0.0 || p <= 0.0)
      return common::InvalidArgument("calibration pair must be positive");
    const double x = std::log10(d);
    const double y = std::log10(p);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12)
    return common::InvalidArgument("calibration distances are all equal");
  const double slope = (n * sxy - sx * sy) / denom;  // = -gamma.
  const double intercept = (sy - slope * sx) / n;    // = log10 P at d = 1 m.

  RangingModel model;
  model.ref_distance_m = 1.0;
  model.ref_power_mw = std::pow(10.0, intercept);
  model.path_loss_exponent = std::max(0.5, -slope);
  return model;
}

common::Result<Vec2> Trilaterate(std::span<const Anchor> anchors,
                                 const RangingModel& model, Vec2 initial,
                                 std::size_t max_iterations) {
  if (anchors.size() < 3)
    return common::InvalidArgument("trilateration needs >= 3 anchors");

  std::vector<double> dist;
  dist.reserve(anchors.size());
  for (const Anchor& a : anchors) dist.push_back(model.EstimateDistance(a.pdp));

  Vec2 z = initial;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    // Gauss–Newton on r_i(z) = |z - p_i| - d_i.
    double jtj00 = 0.0, jtj01 = 0.0, jtj11 = 0.0;
    double jtr0 = 0.0, jtr1 = 0.0;
    for (std::size_t i = 0; i < anchors.size(); ++i) {
      const Vec2 diff = z - anchors[i].position;
      const double r = diff.Norm();
      if (r < 1e-9) continue;  // At an anchor: gradient undefined, skip.
      const Vec2 grad = diff / r;
      const double res = r - dist[i];
      jtj00 += grad.x * grad.x;
      jtj01 += grad.x * grad.y;
      jtj11 += grad.y * grad.y;
      jtr0 += grad.x * res;
      jtr1 += grad.y * res;
    }
    const double det = jtj00 * jtj11 - jtj01 * jtj01;
    if (std::abs(det) < 1e-12)
      return common::NumericalError("degenerate trilateration geometry");
    const double dx = -(jtj11 * jtr0 - jtj01 * jtr1) / det;
    const double dy = -(-jtj01 * jtr0 + jtj00 * jtr1) / det;
    z += {dx, dy};
    if (std::hypot(dx, dy) < 1e-9) break;
  }
  return z;
}

Vec2 WeightedCentroid(std::span<const Anchor> anchors, double alpha) {
  NOMLOC_REQUIRE(!anchors.empty());
  Vec2 acc{0.0, 0.0};
  double total = 0.0;
  for (const Anchor& a : anchors) {
    NOMLOC_REQUIRE(a.pdp > 0.0);
    const double w = std::pow(a.pdp, alpha);
    acc += a.position * w;
    total += w;
  }
  NOMLOC_ASSERT(total > 0.0);
  return acc / total;
}

Vec2 NearestAnchor(std::span<const Anchor> anchors) {
  NOMLOC_REQUIRE(!anchors.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < anchors.size(); ++i)
    if (anchors[i].pdp > anchors[best].pdp) best = i;
  return anchors[best].position;
}

}  // namespace nomloc::localization
