#include "localization/sp_session.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>
#include <utility>

#include "common/assert.h"
#include "common/metrics.h"
#include "geometry/halfplane.h"
#include "localization/sp_detail.h"

namespace nomloc::localization {

using geometry::HalfPlane;
using geometry::Polygon;
using geometry::Vec2;

namespace {

constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

// Once this many retired phantom rows pile up beyond the live ones, the
// warm tableau is rebuilt from the active set (a single-phase primal
// solve) instead of dragging dead rows through every pivot.
constexpr std::size_t kCompactionSlack = 32;

// Dual-simplex deltas only pay off while the update is small: every
// changed row costs a couple of pivots on the full (phantom-laden)
// tableau, while a fresh single-phase Reset over the live rows is cheap
// and leaves a lean tableau behind.  Re-factorize once the pending update
// exceeds this fraction of the live rows (denominator).
constexpr std::size_t kWarmDeltaDenom = 4;

common::MetricCounter& FastpathHits() {
  static auto& c =
      common::MetricRegistry::Global().Counter("solver.fastpath_hits");
  return c;
}
common::MetricCounter& WarmHits() {
  static auto& c =
      common::MetricRegistry::Global().Counter("solver.warm_hits");
  return c;
}
common::MetricCounter& ColdSolves() {
  static auto& c =
      common::MetricRegistry::Global().Counter("solver.cold_solves");
  return c;
}
common::MetricCounter& LpFallbacks() {
  static auto& c =
      common::MetricRegistry::Global().Counter("solver.lp_fallback");
  return c;
}

common::Result<void> ValidateConstraint(const SpConstraint& sc) {
  if (!std::isfinite(sc.half_plane.a.x) || !std::isfinite(sc.half_plane.a.y) ||
      !std::isfinite(sc.half_plane.c) || !std::isfinite(sc.weight))
    return common::InvalidArgument("non-finite constraint");
  if (sc.half_plane.a.x == 0.0 && sc.half_plane.a.y == 0.0)
    return common::InvalidArgument("constraint with zero normal");
  if (sc.weight < 0.0)
    return common::InvalidArgument("constraint weight must be >= 0");
  if (sc.is_boundary)
    return common::InvalidArgument(
        "sessions derive boundary constraints internally; pass proximity "
        "constraints only");
  return {};
}

double LoopArea(std::span<const Vec2> loop) {
  return loop.size() >= 3 ? std::abs(geometry::SignedArea(loop)) : 0.0;
}

}  // namespace

SpSolverSession::SpSolverSession(std::vector<Polygon> parts,
                                 const SpSolverOptions& options)
    : parts_(std::move(parts)), options_(options) {
  if (parts_.empty()) {
    init_status_ = common::InvalidArgument("no area parts");
    return;
  }
  for (const Polygon& part : parts_) {
    if (!part.IsConvex()) {
      init_status_ = common::InvalidArgument("SolveSpPart needs a convex part");
      return;
    }
  }
  part_states_.resize(parts_.size());
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    PartState& ps = part_states_[i];
    ps.boundary = BoundaryConstraints(parts_[i], parts_[i].Centroid(),
                                      options_.boundary_weight);
    for (SpConstraint& sc : ps.boundary)
      sc.half_plane = sc.half_plane.Normalized();
  }
}

common::Result<SpSolverSession::ConstraintId> SpSolverSession::AddConstraints(
    std::span<const SpConstraint> constraints) {
  if (!init_status_.ok()) return init_status_;
  if (constraints.empty())
    return common::InvalidArgument("AddConstraints needs >= 1 constraint");
  for (const SpConstraint& sc : constraints)
    NOMLOC_RETURN_IF_ERROR(ValidateConstraint(sc).status());

  const ConstraintId first = id_to_slot_.size();
  for (const SpConstraint& sc : constraints) {
    id_to_slot_.push_back(constraints_.size());
    slot_to_id_.push_back(id_to_slot_.size() - 1);
    constraints_.push_back(sc);
    SpConstraint normalized = sc;
    normalized.half_plane = normalized.half_plane.Normalized();
    normalized_.push_back(normalized);
    active_.push_back(true);
  }
  active_count_ += constraints.size();
  dirty_ = true;
  return first;
}

common::Result<void> SpSolverSession::DecayConstraints(
    std::span<const ConstraintId> ids) {
  if (!init_status_.ok()) return init_status_;
  for (ConstraintId id : ids)
    if (id >= id_to_slot_.size())
      return common::InvalidArgument("DecayConstraints: unknown id");
  bool changed = false;
  for (ConstraintId id : ids) {
    const std::size_t slot = id_to_slot_[id];
    if (slot == kNpos || !active_[slot]) continue;  // Retired: no-op.
    active_[slot] = false;
    --active_count_;
    decay_log_.push_back(slot);
    changed = true;
  }
  if (!changed) return {};
  dirty_ = true;
  // Retiring a constraint can only grow the feasible region, so cached
  // clipped loops are stale (they may be too small).  Rebuild lazily.
  for (PartState& ps : part_states_) ps.geo_valid = false;
  return {};
}

common::Result<void> SpSolverSession::ReplaceConstraints(
    std::span<const SpConstraint> desired) {
  if (!init_status_.ok()) return init_status_;
  for (const SpConstraint& sc : desired)
    NOMLOC_RETURN_IF_ERROR(ValidateConstraint(sc).status());

  // Value-match desired constraints against the active set so unchanged
  // ones keep their ids (and their warm solver rows).  Exact double
  // comparison is deliberate: the serving layer re-derives constraints
  // from the same anchors, so unchanged inputs reproduce unchanged bits.
  // Matching is sort-based (this runs once per streaming update): both
  // sides are sorted by value with ids breaking ties, so a matched
  // duplicate always keeps its lowest live id.
  using Key = std::tuple<double, double, double, double>;
  const auto key_of = [](const SpConstraint& sc) {
    return Key{sc.half_plane.a.x, sc.half_plane.a.y, sc.half_plane.c,
               sc.weight};
  };
  std::vector<std::pair<Key, ConstraintId>> pool;
  pool.reserve(active_count_);
  for (std::size_t slot = 0; slot < constraints_.size(); ++slot)
    if (active_[slot])
      pool.emplace_back(key_of(constraints_[slot]), slot_to_id_[slot]);
  std::sort(pool.begin(), pool.end());
  std::vector<std::pair<Key, std::size_t>> wanted;
  wanted.reserve(desired.size());
  for (std::size_t i = 0; i < desired.size(); ++i)
    wanted.emplace_back(key_of(desired[i]), i);
  std::sort(wanted.begin(), wanted.end());

  std::vector<char> matched_desired(desired.size(), 0);
  std::vector<ConstraintId> to_decay;
  std::size_t w = 0;
  for (const auto& [key, id] : pool) {
    while (w < wanted.size() && wanted[w].first < key) ++w;
    if (w < wanted.size() && wanted[w].first == key) {
      matched_desired[wanted[w].second] = 1;
      ++w;
    } else {
      to_decay.push_back(id);
    }
  }
  std::sort(to_decay.begin(), to_decay.end());
  std::vector<SpConstraint> to_add;
  for (std::size_t i = 0; i < desired.size(); ++i)
    if (!matched_desired[i]) to_add.push_back(desired[i]);

  if (!to_decay.empty()) NOMLOC_RETURN_IF_ERROR(
      DecayConstraints(to_decay).status());
  if (!to_add.empty()) {
    auto first = AddConstraints(to_add);
    if (!first.ok()) return first.status();
  }
  return {};
}

void SpSolverSession::Clear() {
  constraints_.clear();
  normalized_.clear();
  active_.clear();
  active_count_ = 0;
  decay_log_.clear();
  id_to_slot_.clear();
  slot_to_id_.clear();
  for (PartState& ps : part_states_) {
    ps.geo_valid = false;
    ps.geo_feasible = false;
    ps.geo_synced = 0;
    ps.lp_ready = false;
    ps.lp_adds_synced = 0;
    ps.lp_decays_synced = 0;
    ps.row_of_id.clear();
    ps.ws.has_warm_start = false;
  }
  dirty_ = true;
}

std::vector<SpConstraint> SpSolverSession::ActiveConstraints() const {
  std::vector<SpConstraint> out;
  out.reserve(active_count_);
  for (std::size_t slot = 0; slot < constraints_.size(); ++slot)
    if (active_[slot]) out.push_back(constraints_[slot]);
  return out;
}

void SpSolverSession::CompactSlots() {
  if (constraints_.size() == active_count_) return;
  // Stale handles of dead slots must resolve to "retired", not alias a
  // compacted slot.
  for (std::size_t slot = 0; slot < constraints_.size(); ++slot)
    if (!active_[slot]) id_to_slot_[slot_to_id_[slot]] = kNpos;
  std::size_t live = 0;
  for (std::size_t slot = 0; slot < constraints_.size(); ++slot) {
    if (!active_[slot]) continue;
    constraints_[live] = constraints_[slot];
    normalized_[live] = normalized_[slot];
    slot_to_id_[live] = slot_to_id_[slot];
    id_to_slot_[slot_to_id_[live]] = live;
    ++live;
  }
  constraints_.resize(live);
  normalized_.resize(live);
  slot_to_id_.resize(live);
  active_.assign(live, true);
  decay_log_.clear();
  for (PartState& ps : part_states_) {
    // Slot numbering changed under every cache: rebuild cold next solve.
    // This also re-opens the geometric fast path for a part that was
    // parked in the warm-LP regime after its stream turned consistent.
    ps.geo_valid = false;
    ps.geo_synced = 0;
    ps.lp_ready = false;
    ps.lp_adds_synced = 0;
    ps.lp_decays_synced = 0;
    ps.row_of_id.clear();
  }
}

void SpSolverSession::RebuildGeometry(PartState& ps, const Polygon& part) {
  ps.exact_loop.assign(part.Vertices().begin(), part.Vertices().end());
  ps.region_loop = ps.exact_loop;
  ps.geo_feasible = true;
  for (std::size_t slot = 0; slot < constraints_.size(); ++slot) {
    if (!active_[slot]) continue;
    const HalfPlane& hp = normalized_[slot].half_plane;
    geometry::ClipLoopInto(ps.exact_loop, hp, clip_scratch_);
    std::swap(ps.exact_loop, clip_scratch_);
    geometry::ClipLoopInto(ps.region_loop,
                           hp.Relaxed(options_.region_slack), clip_scratch_);
    std::swap(ps.region_loop, clip_scratch_);
    if (ps.exact_loop.size() < 3) {
      ps.geo_feasible = false;
      break;
    }
  }
  if (ps.geo_feasible &&
      LoopArea(ps.exact_loop) < options_.fastpath_min_area)
    ps.geo_feasible = false;
  ps.geo_valid = true;
  ps.geo_synced = constraints_.size();
}

void SpSolverSession::AdvanceGeometry(PartState& ps) {
  for (std::size_t slot = ps.geo_synced; slot < constraints_.size();
       ++slot) {
    if (!active_[slot] || !ps.geo_feasible) continue;
    const HalfPlane& hp = normalized_[slot].half_plane;
    geometry::ClipLoopInto(ps.exact_loop, hp, clip_scratch_);
    std::swap(ps.exact_loop, clip_scratch_);
    geometry::ClipLoopInto(ps.region_loop,
                           hp.Relaxed(options_.region_slack), clip_scratch_);
    std::swap(ps.region_loop, clip_scratch_);
    if (ps.exact_loop.size() < 3 ||
        LoopArea(ps.exact_loop) < options_.fastpath_min_area)
      ps.geo_feasible = false;
  }
  ps.geo_synced = constraints_.size();
}

common::Result<SpPartSolution> SpSolverSession::SolvePartIncremental(
    std::size_t part_idx) {
  PartState& ps = part_states_[part_idx];
  const Polygon& part = parts_[part_idx];
  if (!ps.geo_valid) {
    // A decay invalidated the cached loops.  If a warm basis is alive the
    // part was already in the LP regime, and a full geometric rebuild would
    // only re-discover that before ReconstructPart clips the region anyway:
    // feed the delta straight to the warm solver instead.  (ReconstructPart
    // reproduces the batch result for feasible sets too — all t stay 0 — so
    // skipping the probe never changes the answer, only who computes it.)
    if (ps.lp_ready && options_.lp_backend != LpBackend::kInteriorPoint)
      return SolvePartLp(part_idx);
    RebuildGeometry(ps, part);
  } else {
    AdvanceGeometry(ps);
  }

  if (ps.geo_feasible) {
    // Geometric fast path: every active constraint is satisfiable, so the
    // LP optimum is exactly 0 and the batch reconstruction would keep all
    // of them — which is precisely the cached region_loop.
    FastpathHits().Increment();
    ps.lp_ready = false;  // The basis is no longer maintained.
    SpPartSolution out;
    if (ps.region_loop.size() >= 3) out.region = ps.region_loop;
    std::vector<HalfPlane> kept;
    kept.reserve(active_count_);
    for (std::size_t slot = 0; slot < constraints_.size(); ++slot)
      if (active_[slot])
        kept.push_back(
            normalized_[slot].half_plane.Relaxed(options_.region_slack));
    const Vec2 lp_point = ps.region_loop.size() >= 3
                              ? geometry::LoopCentroid(ps.region_loop)
                              : part.Centroid();
    NOMLOC_ASSIGN_OR_RETURN(
        out.estimate,
        detail::RegionCenter(part, kept, out.region, lp_point, options_));
    return out;
  }
  return SolvePartLp(part_idx);
}

common::Result<SpPartSolution> SpSolverSession::SolvePartLp(
    std::size_t part_idx) {
  PartState& ps = part_states_[part_idx];
  const Polygon& part = parts_[part_idx];

  if (options_.lp_backend == LpBackend::kInteriorPoint) {
    // Interior-point deltas are a warm start from the previous optimum,
    // carried in the part's workspace.
    const bool warm = ps.ws.has_warm_start;
    (warm ? WarmHits() : ColdSolves()).Increment();
    return detail::SolveSpPartImpl(part, ActiveConstraints(), options_,
                                   &ps.ws, /*ipm_warm_start=*/true);
  }

  const std::size_t nb = ps.boundary.size();
  using Term = lp::RelaxationSolver::Term;
  const auto term_of = [](const SpConstraint& sc) {
    return Term{sc.half_plane.a.x, sc.half_plane.a.y, sc.half_plane.c,
                sc.weight};
  };

  // Re-factorize (fresh single-phase Reset over the live set) instead of
  // warm dual deltas when the basis drags too many retired phantom rows,
  // or when the pending update is large enough that delta pivots on the
  // full tableau would cost more than the rebuild.
  if (ps.lp_ready) {
    const std::size_t pending =
        (constraints_.size() - ps.lp_adds_synced) +
        (decay_log_.size() - ps.lp_decays_synced);
    const std::size_t phantom_slack =
        std::max<std::size_t>(8, ps.lp.ActiveRows() / kWarmDeltaDenom);
    if (ps.lp.DeactivatedRows() > std::min(phantom_slack, kCompactionSlack) ||
        pending * kWarmDeltaDenom > ps.lp.ActiveRows())
      ps.lp_ready = false;
  }

  common::Result<void> solve_status;
  if (!ps.lp_ready) {
    // Cold build: boundary rows first (they never retire, so they survive
    // every compaction in place), then the active proximity rows.
    std::vector<Term> terms;
    terms.reserve(nb + active_count_);
    for (const SpConstraint& sc : ps.boundary) terms.push_back(term_of(sc));
    ps.row_of_id.assign(constraints_.size(), kNpos);
    for (std::size_t slot = 0; slot < constraints_.size(); ++slot) {
      if (!active_[slot]) continue;
      ps.row_of_id[slot] = terms.size();
      terms.push_back(term_of(normalized_[slot]));
    }
    // Hint the rebuild with the previous optimum (or the part centroid on
    // the very first solve): rows the hint satisfies keep their slack
    // basic, so the "cold" primal solve only pivots for rows the estimate
    // actually moved across.
    const Vec2 hint = ps.lp.Solved() ? Vec2{ps.lp.Zx(), ps.lp.Zy()}
                                     : part.Centroid();
    solve_status = ps.lp.Reset(terms, hint.x, hint.y);
    ColdSolves().Increment();
    ps.lp_adds_synced = constraints_.size();
    ps.lp_decays_synced = decay_log_.size();
    ps.lp_ready = solve_status.ok();
  } else {
    // Warm delta: append rows added since the last sync (even ones that
    // already decayed — keeping the id->row map dense — then deactivate),
    // and retire rows from the decay log.
    std::vector<Term> added;
    ps.row_of_id.resize(constraints_.size(), kNpos);
    for (std::size_t slot = ps.lp_adds_synced; slot < constraints_.size();
         ++slot) {
      ps.row_of_id[slot] = ps.lp.Rows() + added.size();
      added.push_back(term_of(normalized_[slot]));
    }
    solve_status = added.empty() ? common::Result<void>{}
                                 : ps.lp.AddTerms(added);
    ps.lp_adds_synced = constraints_.size();
    if (solve_status.ok()) {
      std::vector<std::size_t> retire;
      for (std::size_t k = ps.lp_decays_synced; k < decay_log_.size(); ++k) {
        const std::size_t row = ps.row_of_id[decay_log_[k]];
        NOMLOC_ASSERT(row != kNpos);
        retire.push_back(row);
      }
      if (!retire.empty()) solve_status = ps.lp.Deactivate(retire);
    }
    ps.lp_decays_synced = decay_log_.size();
    ps.lp_ready = solve_status.ok();
    if (solve_status.ok()) WarmHits().Increment();
  }

  if (!solve_status.ok()) {
    // Incremental machinery failed (pivot budget, numerical trouble):
    // degrade to the stateless batch solve rather than surfacing an error
    // the from-scratch path would not produce.
    ps.lp_ready = false;
    LpFallbacks().Increment();
    ColdSolves().Increment();
    return detail::SolveSpPartImpl(part, ActiveConstraints(), options_,
                                   &ps.ws);
  }

  // Reconstruct exactly like the batch path, from the warm optimum.
  std::vector<SpConstraint> all(ps.boundary.begin(), ps.boundary.end());
  std::vector<double> t;
  t.reserve(nb + active_count_);
  for (std::size_t r = 0; r < nb; ++r) t.push_back(ps.lp.RelaxationOf(r));
  std::vector<std::size_t> region_rows;
  region_rows.reserve(active_count_);
  for (std::size_t slot = 0; slot < constraints_.size(); ++slot) {
    if (!active_[slot]) continue;
    region_rows.push_back(all.size());
    all.push_back(normalized_[slot]);
    t.push_back(ps.lp.RelaxationOf(ps.row_of_id[slot]));
  }
  return detail::ReconstructPart(part, all, t, region_rows,
                                 ps.lp.Objective(), ps.lp.LastIterations(),
                                 {ps.lp.Zx(), ps.lp.Zy()}, options_);
}

common::Result<SpSolution> SpSolverSession::Solve() {
  if (!init_status_.ok()) return init_status_;
  if (active_count_ == 0)
    return common::InvalidArgument("no proximity constraints");
  if (!dirty_) return cached_;
  // Garbage-collect retired slots before they dominate the per-solve
  // loops.  2x + slack keeps the amortized cost per decay O(1) while the
  // forced cold rebuild after each compaction stays rare.
  if (constraints_.size() > 2 * active_count_ + kCompactionSlack)
    CompactSlots();

  if (options_.session_mode == SpSessionMode::kColdEachSolve) {
    // Bit-identical by construction: the active set goes through the very
    // same SolveSp the batch engine runs.
    ColdSolves().Increment(parts_.size());
    cached_ = SolveSp(parts_, ActiveConstraints(), options_);
    dirty_ = false;
    return cached_;
  }

  auto& registry = common::MetricRegistry::Global();
  static auto& solve_timer = registry.Timer("sp.solve");
  static auto& parts_counter = registry.Counter("sp.parts_solved");
  common::StageTrace solve_trace(solve_timer);

  auto incremental = [&]() -> common::Result<SpSolution> {
    SpSolution out;
    out.parts.reserve(parts_.size());
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      NOMLOC_ASSIGN_OR_RETURN(SpPartSolution sol, SolvePartIncremental(i));
      out.lp_iterations += sol.lp_iterations;
      out.parts.push_back(std::move(sol));
    }
    parts_counter.Increment(parts_.size());
    detail::MergeParts(parts_, options_, out);
    return out;
  };
  cached_ = incremental();
  dirty_ = false;
  return cached_;
}

}  // namespace nomloc::localization
