// Space-partition location estimation (paper §IV-B-1…4).
//
// Given the weighted half-plane constraints of one convex area, solves the
// relaxed linear program of Eq. 19,
//
//     minimize  w^T t    s.t.   A z - t <= b,   t >= 0,
//
// with the two-phase simplex, reconstructs the (relaxed) feasible region
// by clipping the area polygon, and reports its center.  Non-convex areas
// are handled part-by-part; the parts with the lowest relaxation cost are
// merged (§IV-B2).
//
// Two ways to drive it:
//   * One-shot: SolveSp / SolveSpPart below — stateless, solves the full
//     program from scratch.
//   * Streaming: localization/sp_session.h wraps the same math in a
//     stateful SpSolverSession that accepts constraint deltas and reuses
//     the previous basis / region between solves.  SpSolverOptions is the
//     single options struct shared by the batch, session, and resilient
//     paths.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "common/status.h"
#include "geometry/polygon.h"
#include "localization/constraints.h"

namespace nomloc::lp {
struct SolveWorkspace;  // lp/workspace.h
}

namespace nomloc::localization {

/// How the point estimate is extracted from the feasible region.  The
/// paper's CVX/interior-point solve corresponds to kAnalytic; kCentroid is
/// the literal "center point of the region" reading; kChebyshev is the
/// deepest point.  bench/abl_center_method compares them.
enum class CenterMethod { kCentroid, kChebyshev, kAnalytic };

/// Which LP solver runs the relaxation program (Eq. 19).  The paper used
/// CVX's interior-point method; the two backends agree to solver
/// tolerance and are cross-validated in the tests.
enum class LpBackend { kSimplex, kInteriorPoint };

/// How an SpSolverSession (localization/sp_session.h) turns constraint
/// deltas into estimates.  Batch SolveSp/SolveSpPart ignore this field.
enum class SpSessionMode {
  /// Every Solve() rebuilds the full program from scratch — bit-identical
  /// to calling SolveSp on the active constraint set.  The safe default.
  kColdEachSolve,
  /// Reuse state between solves: geometric fast path while the region
  /// stays feasible, dual-simplex basis reuse / interior-point warm
  /// starts otherwise.  Estimates agree with kColdEachSolve to solver
  /// tolerance (see the equivalence suite), not bit-for-bit.
  kIncremental,
};

/// When and how the resilient solve's degradation ladder engages (see
/// localization/fallback.h for the ladder itself).  Lives here so
/// SpSolverOptions can carry it — the batch, session, and resilient paths
/// all read the same struct.
struct FallbackPolicy {
  /// Master switch.  Off = SolveSpResilient is exactly SolveSp (errors
  /// propagate as errors).
  bool enable = true;
  /// A successful solve whose relaxation cost exceeds this budget counts
  /// as failed and triggers the ladder.  The default (infinity) only
  /// engages the chain on genuine solve errors, which keeps the golden
  /// no-fault path bit-identical; tests and the chaos harness tighten it
  /// to force degradation deterministically.
  double max_relaxation_cost = std::numeric_limits<double>::infinity();
  /// Constraint fractions (of the confidence-ranked list) each level-1
  /// retry keeps, tried in order.  Must be in (0, 1], descending.
  std::vector<double> keep_fractions = {0.75, 0.5, 0.25};

  common::Result<void> Validate() const;
};

struct SpSolverOptions {
  CenterMethod center = CenterMethod::kCentroid;
  LpBackend lp_backend = LpBackend::kSimplex;
  /// Weight for boundary (virtual-AP) constraints — "preset to a large
  /// weight to guarantee the corresponding constraint satisfied with high
  /// priority" (§IV-B4).
  double boundary_weight = 100.0;
  /// Extra slack when reconstructing the region from the optimal t, to
  /// keep it full-dimensional despite simplex sitting on vertices.
  double region_slack = 1e-6;
  /// Two part costs within this tolerance count as tied and are merged.
  double merge_tolerance = 1e-7;
  /// Session solve strategy (sessions only; batch solves ignore it).
  SpSessionMode session_mode = SpSessionMode::kColdEachSolve;
  /// Incremental sessions skip the LP entirely while the exact feasible
  /// region keeps at least this much area [m^2] — below it the region is
  /// treated as empty and the relaxation LP decides what to sacrifice.
  double fastpath_min_area = 1e-6;
  /// Degradation ladder shared by SolveSpResilient and resilient session
  /// solves.  Plain SolveSp ignores it.
  FallbackPolicy fallback;
};

/// Result for one convex part.
struct SpPartSolution {
  geometry::Vec2 estimate;
  double relaxation_cost = 0.0;   ///< w^T t at the LP optimum.
  std::size_t violated = 0;       ///< Constraints with t_i > 0.
  std::size_t lp_iterations = 0;  ///< Solver iterations for this part.
  /// The relaxed feasible region clipped to the part (CCW loop).  May be
  /// empty if reconstruction degenerated; `estimate` is still valid.
  std::vector<geometry::Vec2> region;
};

/// Solves one convex part.  Boundary VAP constraints for the part are
/// added internally (reference point = part centroid).  Requires a convex
/// part and at least one proximity constraint.
common::Result<SpPartSolution> SolveSpPart(
    const geometry::Polygon& part,
    std::span<const SpConstraint> proximity_constraints,
    const SpSolverOptions& options = {});

/// Compat overload with caller-provided LP scratch.  Deprecated: the
/// workspace is an implementation detail the stateful session API now
/// owns — construct an SpSolverSession (localization/sp_session.h) for
/// repeated solves, or call the overload above for one-shots (scratch is
/// managed internally either way).
[[deprecated(
    "pass scratch via an SpSolverSession instead of a raw SolveWorkspace*; "
    "see localization/sp_session.h")]]
common::Result<SpPartSolution> SolveSpPart(
    const geometry::Polygon& part,
    std::span<const SpConstraint> proximity_constraints,
    const SpSolverOptions& options, lp::SolveWorkspace* ws);

/// Combined result over all parts of a (possibly non-convex) area.
struct SpSolution {
  geometry::Vec2 estimate;
  double relaxation_cost = 0.0;    ///< Cost of the best part.
  std::size_t best_part = 0;
  std::size_t lp_iterations = 0;   ///< Summed over all parts.
  /// Total area of the merged (tied-cost) relaxed feasible regions [m^2] —
  /// the size of the paper's feasible cell.  Smaller = more constrained =
  /// a more confident estimate; the serving layer reports it per response.
  double feasible_area_m2 = 0.0;
  std::vector<SpPartSolution> parts;
};

/// Solves every part and merges the lowest-cost ones: parts whose cost
/// ties the minimum contribute their regions, and the estimate is the
/// area-weighted center of the merged regions.  Requires >= 1 part.
common::Result<SpSolution> SolveSp(
    std::span<const geometry::Polygon> parts,
    std::span<const SpConstraint> proximity_constraints,
    const SpSolverOptions& options = {});

}  // namespace nomloc::localization
