// Space-partition location estimation (paper §IV-B-1…4).
//
// Given the weighted half-plane constraints of one convex area, solves the
// relaxed linear program of Eq. 19,
//
//     minimize  w^T t    s.t.   A z - t <= b,   t >= 0,
//
// with the two-phase simplex, reconstructs the (relaxed) feasible region
// by clipping the area polygon, and reports its center.  Non-convex areas
// are handled part-by-part; the parts with the lowest relaxation cost are
// merged (§IV-B2).
#pragma once

#include <span>
#include <vector>

#include "common/status.h"
#include "geometry/polygon.h"
#include "localization/constraints.h"

namespace nomloc::lp {
struct SolveWorkspace;  // lp/workspace.h
}

namespace nomloc::localization {

/// How the point estimate is extracted from the feasible region.  The
/// paper's CVX/interior-point solve corresponds to kAnalytic; kCentroid is
/// the literal "center point of the region" reading; kChebyshev is the
/// deepest point.  bench/abl_center_method compares them.
enum class CenterMethod { kCentroid, kChebyshev, kAnalytic };

/// Which LP solver runs the relaxation program (Eq. 19).  The paper used
/// CVX's interior-point method; the two backends agree to solver
/// tolerance and are cross-validated in the tests.
enum class LpBackend { kSimplex, kInteriorPoint };

struct SpSolverOptions {
  CenterMethod center = CenterMethod::kCentroid;
  LpBackend lp_backend = LpBackend::kSimplex;
  /// Weight for boundary (virtual-AP) constraints — "preset to a large
  /// weight to guarantee the corresponding constraint satisfied with high
  /// priority" (§IV-B4).
  double boundary_weight = 100.0;
  /// Extra slack when reconstructing the region from the optimal t, to
  /// keep it full-dimensional despite simplex sitting on vertices.
  double region_slack = 1e-6;
  /// Two part costs within this tolerance count as tied and are merged.
  double merge_tolerance = 1e-7;
};

/// Result for one convex part.
struct SpPartSolution {
  geometry::Vec2 estimate;
  double relaxation_cost = 0.0;   ///< w^T t at the LP optimum.
  std::size_t violated = 0;       ///< Constraints with t_i > 0.
  std::size_t lp_iterations = 0;  ///< Solver iterations for this part.
  /// The relaxed feasible region clipped to the part (CCW loop).  May be
  /// empty if reconstruction degenerated; `estimate` is still valid.
  std::vector<geometry::Vec2> region;
};

/// Solves one convex part.  Boundary VAP constraints for the part are
/// added internally (reference point = part centroid).  Requires a convex
/// part and at least one proximity constraint.  `ws` optionally recycles
/// LP solver scratch across calls (one workspace per thread).
common::Result<SpPartSolution> SolveSpPart(
    const geometry::Polygon& part,
    std::span<const SpConstraint> proximity_constraints,
    const SpSolverOptions& options = {}, lp::SolveWorkspace* ws = nullptr);

/// Combined result over all parts of a (possibly non-convex) area.
struct SpSolution {
  geometry::Vec2 estimate;
  double relaxation_cost = 0.0;    ///< Cost of the best part.
  std::size_t best_part = 0;
  std::size_t lp_iterations = 0;   ///< Summed over all parts.
  /// Total area of the merged (tied-cost) relaxed feasible regions [m^2] —
  /// the size of the paper's feasible cell.  Smaller = more constrained =
  /// a more confident estimate; the serving layer reports it per response.
  double feasible_area_m2 = 0.0;
  std::vector<SpPartSolution> parts;
};

/// Solves every part and merges the lowest-cost ones: parts whose cost
/// ties the minimum contribute their regions, and the estimate is the
/// area-weighted center of the merged regions.  Requires >= 1 part.
common::Result<SpSolution> SolveSp(
    std::span<const geometry::Polygon> parts,
    std::span<const SpConstraint> proximity_constraints,
    const SpSolverOptions& options = {});

}  // namespace nomloc::localization
