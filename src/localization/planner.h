// Nomadic site planning — the optimization problem the paper leaves open
// (§VI: "understand the impact of moving patterns of nomadic APs" and
// "effectively aggregating multiple nomadic APs").
//
// Given the floor area, the static AP layout and a set of candidate dwell
// sites, greedily selects the S sites whose pairwise-bisector constraints
// shrink the space partition the most: the objective is the expected
// distance from a random object position to the center of its partition
// cell, estimated over a sample of object positions with ideal (noise-
// free) proximity judgements.  Greedy selection of a monotone objective —
// simple, deterministic, and good enough to beat hand-picked waypoints
// (bench/abl_planner).
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "geometry/polygon.h"
#include "localization/sp_solver.h"

namespace nomloc::localization {

struct PlannerConfig {
  /// How many sites to select from the candidate list.
  std::size_t sites_to_select = 3;
  /// Object positions sampled to estimate expected error.
  std::size_t sample_points = 64;
  std::uint64_t seed = 1;
  SpSolverOptions solver;
};

struct PlannerResult {
  /// Selected candidate indices, in selection order.
  std::vector<std::size_t> selected;
  /// Expected cell-center error before any site was added [m].
  double baseline_error_m = 0.0;
  /// Expected cell-center error after each selection [m]
  /// (size == selected.size()).
  std::vector<double> error_after_m;
};

/// Expected distance from a random object position to its SP estimate
/// under ideal judgements, for the given anchor set.  Exposed for tests
/// and benches.
common::Result<double> ExpectedCellError(
    std::span<const geometry::Polygon> parts,
    std::span<const geometry::Vec2> anchors,
    std::span<const geometry::Vec2> samples,
    const SpSolverOptions& solver = {});

/// Greedy site selection.  Requires a non-empty candidate list, at least
/// two static APs, and sites_to_select <= candidates.size().
common::Result<PlannerResult> PlanNomadicSites(
    const geometry::Polygon& area,
    std::span<const geometry::Vec2> static_aps,
    std::span<const geometry::Vec2> candidates, const PlannerConfig& config);

}  // namespace nomloc::localization
