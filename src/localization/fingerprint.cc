#include "localization/fingerprint.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace nomloc::localization {

using geometry::Vec2;

common::Result<RadioMap> RadioMap::Create(
    std::vector<FingerprintEntry> entries) {
  if (entries.empty()) return common::InvalidArgument("empty radio map");
  const std::size_t ap_count = entries.front().pdp.size();
  if (ap_count == 0)
    return common::InvalidArgument("fingerprints need >= 1 AP dimension");
  for (const FingerprintEntry& e : entries) {
    if (e.pdp.size() != ap_count)
      return common::InvalidArgument("inconsistent fingerprint dimension");
    for (double p : e.pdp)
      if (p <= 0.0)
        return common::InvalidArgument("fingerprint powers must be positive");
  }
  return RadioMap(std::move(entries), ap_count);
}

common::Result<Vec2> RadioMap::Locate(std::span<const double> measured_pdp,
                                      std::size_t k) const {
  if (measured_pdp.size() != ap_count_)
    return common::InvalidArgument("measurement dimension mismatch");
  if (k == 0 || k > entries_.size())
    return common::InvalidArgument("k out of range");
  for (double p : measured_pdp)
    if (p <= 0.0)
      return common::InvalidArgument("measured powers must be positive");

  std::vector<double> query(ap_count_);
  for (std::size_t i = 0; i < ap_count_; ++i)
    query[i] = std::log10(measured_pdp[i]);

  // Distances to every entry in log-power space.
  std::vector<std::pair<double, std::size_t>> scored;
  scored.reserve(entries_.size());
  for (std::size_t e = 0; e < entries_.size(); ++e) {
    double d2 = 0.0;
    for (std::size_t i = 0; i < ap_count_; ++i) {
      const double diff = std::log10(entries_[e].pdp[i]) - query[i];
      d2 += diff * diff;
    }
    scored.emplace_back(d2, e);
  }
  std::partial_sort(scored.begin(), scored.begin() + std::ptrdiff_t(k),
                    scored.end());

  // Inverse-distance weighting over the k nearest fingerprints.
  Vec2 acc{0.0, 0.0};
  double total = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    const double w = 1.0 / (std::sqrt(scored[j].first) + 1e-9);
    acc += entries_[scored[j].second].position * w;
    total += w;
  }
  NOMLOC_ASSERT(total > 0.0);
  return acc / total;
}

}  // namespace nomloc::localization
