#include "localization/sp_solver.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/metrics.h"
#include "geometry/halfplane.h"
#include "localization/sp_detail.h"
#include "lp/center.h"
#include "lp/interior_point.h"
#include "lp/simplex.h"
#include "lp/workspace.h"

namespace nomloc::localization {

using geometry::HalfPlane;
using geometry::Polygon;
using geometry::Vec2;

namespace detail {

common::Result<lp::LpSolution> SolveRelaxation(
    std::span<const SpConstraint> constraints, LpBackend backend,
    lp::SolveWorkspace* ws, bool ipm_warm_start) {
  const std::size_t n = constraints.size();
  NOMLOC_REQUIRE(n > 0);
  lp::InequalityLp prog;
  prog.a = lp::Matrix(n, 2 + n);
  prog.b.resize(n);
  prog.c.assign(2 + n, 0.0);
  prog.nonneg.assign(2 + n, true);
  prog.nonneg[0] = prog.nonneg[1] = false;  // z is free.
  for (std::size_t i = 0; i < n; ++i) {
    const SpConstraint& sc = constraints[i];
    prog.a(i, 0) = sc.half_plane.a.x;
    prog.a(i, 1) = sc.half_plane.a.y;
    prog.a(i, 2 + i) = -1.0;  // ... - t_i <= b_i.
    prog.b[i] = sc.half_plane.c;
    prog.c[2 + i] = sc.weight;
  }
  if (backend == LpBackend::kInteriorPoint) {
    lp::InteriorPointOptions ipm_options;
    ipm_options.warm_start = ipm_warm_start;
    NOMLOC_ASSIGN_OR_RETURN(auto ipm,
                            lp::SolveInteriorPoint(prog, ipm_options, ws));
    lp::LpSolution out;
    out.x = std::move(ipm.x);
    out.objective = ipm.objective;
    out.iterations = ipm.iterations;
    return out;
  }
  return lp::SolveSimplex(prog, {}, ws);
}

common::Result<Vec2> RegionCenter(const Polygon& part,
                                  std::span<const HalfPlane> region_planes,
                                  std::span<const Vec2> region_loop,
                                  Vec2 lp_point,
                                  const SpSolverOptions& options) {
  switch (options.center) {
    case CenterMethod::kCentroid: {
      if (region_loop.size() >= 3)
        return geometry::LoopCentroid(region_loop);
      return lp_point;
    }
    case CenterMethod::kChebyshev:
    case CenterMethod::kAnalytic: {
      std::vector<HalfPlane> all = geometry::ToHalfPlanes(part);
      all.insert(all.end(), region_planes.begin(), region_planes.end());
      auto cheb = lp::ChebyshevCenter(all);
      if (!cheb.ok()) return lp_point;
      if (options.center == CenterMethod::kChebyshev) return cheb->center;
      if (cheb->radius <= 0.0) return cheb->center;  // Degenerate region.
      auto ac = lp::AnalyticCenter(all, cheb->center);
      if (!ac.ok()) return cheb->center;
      return *ac;
    }
  }
  return lp_point;
}

common::Result<SpPartSolution> ReconstructPart(
    const Polygon& part, std::span<const SpConstraint> all,
    std::span<const double> t, std::span<const std::size_t> region_rows,
    double objective, std::size_t iterations, Vec2 lp_point,
    const SpSolverOptions& options) {
  NOMLOC_REQUIRE(t.size() == all.size());
  SpPartSolution out;
  out.relaxation_cost = objective;
  out.lp_iterations = iterations;

  // §IV-B4's "retain the constraint with a larger weight while sacrificing
  // the one with smaller weight": constraints the LP had to break
  // (t_i > 0) are *dropped*, and the region is the part clipped by the
  // constraints that held.  Clipping by the exact t_i-relaxed half-planes
  // instead would collapse the region to the single LP vertex whenever
  // judgements conflict, pinning the estimate to a constraint intersection
  // rather than a cell center.
  std::vector<HalfPlane> kept;    // Satisfied constraints (t ~ 0).
  std::vector<HalfPlane> relaxed; // Every constraint, slackened by its t.
  kept.reserve(region_rows.size());
  relaxed.reserve(region_rows.size());
  for (std::size_t idx : region_rows) {
    const double ti = std::max(0.0, t[idx]);
    // all[idx] is normalised, so t is a Euclidean slack here too.
    relaxed.push_back(all[idx].half_plane.Relaxed(ti + options.region_slack));
    if (ti > kViolationTolerance) {
      ++out.violated;
    } else {
      kept.push_back(all[idx].half_plane.Relaxed(options.region_slack));
    }
  }
  // Count violated constraints outside the region set (boundary VAPs) too.
  std::vector<char> in_region(all.size(), 0);
  for (std::size_t idx : region_rows) in_region[idx] = 1;
  for (std::size_t i = 0; i < all.size(); ++i)
    if (!in_region[i] && t[i] > kViolationTolerance) ++out.violated;

  auto clip_all = [&part](std::span<const HalfPlane> hps) {
    std::vector<Vec2> loop(part.Vertices().begin(), part.Vertices().end());
    std::vector<Vec2> scratch;
    for (const HalfPlane& hp : hps) {
      geometry::ClipLoopInto(loop, hp, scratch);
      std::swap(loop, scratch);
      if (loop.size() < 3) break;
    }
    return loop;
  };

  std::vector<Vec2> loop = clip_all(kept);
  std::span<const HalfPlane> region_planes = kept;
  if (loop.size() < 3 ||
      std::abs(geometry::SignedArea(loop)) < options.region_slack) {
    // Degenerate kept-region (should be rare): fall back to the exact
    // t-relaxed region around the LP point.
    loop = clip_all(relaxed);
    region_planes = relaxed;
  }
  if (loop.size() >= 3) out.region = loop;

  NOMLOC_ASSIGN_OR_RETURN(
      out.estimate,
      RegionCenter(part, region_planes, out.region, lp_point, options));
  return out;
}

common::Result<SpPartSolution> SolveSpPartImpl(
    const Polygon& part, std::span<const SpConstraint> proximity_constraints,
    const SpSolverOptions& options, lp::SolveWorkspace* ws,
    bool ipm_warm_start) {
  if (!part.IsConvex())
    return common::InvalidArgument("SolveSpPart needs a convex part");
  if (proximity_constraints.empty())
    return common::InvalidArgument("no proximity constraints");

  // Assemble: proximity constraints + this part's VAP boundary
  // constraints.  Every half-plane is normalised to a unit normal so the
  // relaxation variable t_i is a Euclidean violation distance — otherwise
  // the LP would preferentially break whichever constraint happens to
  // have the shortest normal (e.g. a boundary edge near the centroid)
  // regardless of its weight.
  std::vector<SpConstraint> all(proximity_constraints.begin(),
                                proximity_constraints.end());
  const std::vector<SpConstraint> boundary = BoundaryConstraints(
      part, part.Centroid(), options.boundary_weight);
  all.insert(all.end(), boundary.begin(), boundary.end());
  for (SpConstraint& sc : all) sc.half_plane = sc.half_plane.Normalized();

  NOMLOC_ASSIGN_OR_RETURN(
      lp::LpSolution lp_sol,
      SolveRelaxation(all, options.lp_backend, ws, ipm_warm_start));

  const Vec2 lp_point{lp_sol.x[0], lp_sol.x[1]};
  std::vector<double> t(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) t[i] = lp_sol.x[2 + i];
  std::vector<std::size_t> region_rows(proximity_constraints.size());
  for (std::size_t i = 0; i < region_rows.size(); ++i) region_rows[i] = i;
  return ReconstructPart(part, all, t, region_rows, lp_sol.objective,
                         lp_sol.iterations, lp_point, options);
}

void MergeParts(std::span<const Polygon> parts,
                const SpSolverOptions& options, SpSolution& out) {
  NOMLOC_REQUIRE(!out.parts.empty());
  static auto& cost_hist = common::MetricRegistry::Global().Histogram(
      "sp.relaxation_cost", {}, 1e-6, 1e3, 72);

  double best = out.parts.front().relaxation_cost;
  out.best_part = 0;
  for (std::size_t i = 1; i < out.parts.size(); ++i) {
    if (out.parts[i].relaxation_cost < best) {
      best = out.parts[i].relaxation_cost;
      out.best_part = i;
    }
  }
  out.relaxation_cost = best;
  cost_hist.Record(best);

  // Merge parts whose cost ties the best: the merged estimate is the
  // area-weighted mean of the per-part centers (for disjoint regions this
  // equals the centroid of the union when using kCentroid).
  out.feasible_area_m2 = 0.0;
  double total_weight = 0.0;
  Vec2 acc{0.0, 0.0};
  for (std::size_t i = 0; i < out.parts.size(); ++i) {
    const SpPartSolution& p = out.parts[i];
    if (p.relaxation_cost > best + options.merge_tolerance) continue;
    const double area =
        p.region.size() >= 3 ? std::abs(geometry::SignedArea(p.region)) : 0.0;
    out.feasible_area_m2 += area;
    const double weight = area > 0.0 ? area : 1e-12;
    acc += p.estimate * weight;
    total_weight += weight;
  }
  out.estimate = total_weight > 0.0 ? acc / total_weight
                                    : out.parts[out.best_part].estimate;

  // Averaging across disconnected tied regions can land in a notch of a
  // non-convex area.  The estimate must stay inside the area: fall back to
  // the best part's own center when the merge left the floor plan.
  bool inside_some_part = false;
  for (const Polygon& part : parts)
    if (part.Contains(out.estimate, 1e-9)) inside_some_part = true;
  if (!inside_some_part) out.estimate = out.parts[out.best_part].estimate;
}

}  // namespace detail

common::Result<SpPartSolution> SolveSpPart(
    const Polygon& part, std::span<const SpConstraint> proximity_constraints,
    const SpSolverOptions& options) {
  return detail::SolveSpPartImpl(part, proximity_constraints, options,
                                 nullptr);
}

common::Result<SpPartSolution> SolveSpPart(
    const Polygon& part, std::span<const SpConstraint> proximity_constraints,
    const SpSolverOptions& options, lp::SolveWorkspace* ws) {
  return detail::SolveSpPartImpl(part, proximity_constraints, options, ws);
}

common::Result<SpSolution> SolveSp(
    std::span<const Polygon> parts,
    std::span<const SpConstraint> proximity_constraints,
    const SpSolverOptions& options) {
  if (parts.empty()) return common::InvalidArgument("no area parts");

  auto& registry = common::MetricRegistry::Global();
  static auto& solve_timer = registry.Timer("sp.solve");
  static auto& parts_counter = registry.Counter("sp.parts_solved");
  common::StageTrace solve_trace(solve_timer);

  SpSolution out;
  out.parts.reserve(parts.size());
  lp::SolveWorkspace ws;  // One workspace serves every part's LP.
  for (const Polygon& part : parts) {
    NOMLOC_ASSIGN_OR_RETURN(
        SpPartSolution sol,
        detail::SolveSpPartImpl(part, proximity_constraints, options, &ws));
    out.lp_iterations += sol.lp_iterations;
    out.parts.push_back(std::move(sol));
  }
  parts_counter.Increment(parts.size());
  detail::MergeParts(parts, options, out);
  return out;
}

}  // namespace nomloc::localization
