// Static AP deployment optimization.
//
// The paper's §I diagnosis is that "the AP deployment cannot be optimized
// for all indoor positions", and its related work (§II) surveys placement
// schemes like maxL-minE [5] and coverage+localization deployment [12].
// This module implements both objectives over a candidate grid so the
// benches can quantify exactly how much a *better static* deployment
// closes the gap to a nomadic one — the paper's central comparison:
//
//   * kMeanError — greedy selection minimizing the expected cell-center
//     error (average localizability),
//   * kMaxError  — greedy maxL-minE-style selection minimizing the worst
//     sample error (spatial-variance oriented).
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "geometry/polygon.h"
#include "localization/sp_solver.h"

namespace nomloc::localization {

enum class DeploymentObjective { kMeanError, kMaxError };

struct DeploymentConfig {
  std::size_t ap_count = 4;
  DeploymentObjective objective = DeploymentObjective::kMeanError;
  std::size_t sample_points = 64;
  std::uint64_t seed = 1;
  SpSolverOptions solver;
};

struct DeploymentResult {
  /// Chosen candidate indices, in selection order.
  std::vector<std::size_t> selected;
  /// Positions of the selected APs.
  std::vector<geometry::Vec2> positions;
  /// Objective value (mean or max sample error [m]) of the final layout.
  double objective_value_m = 0.0;
};

/// Per-sample cell-center errors for a layout under ideal judgements —
/// building block for both objectives (and for SLV-style analyses).
common::Result<std::vector<double>> PerSampleCellErrors(
    std::span<const geometry::Polygon> parts,
    std::span<const geometry::Vec2> anchors,
    std::span<const geometry::Vec2> samples,
    const SpSolverOptions& solver = {});

/// Greedily places `config.ap_count` APs from `candidates`.  The first AP
/// pairs with every later choice, so selection starts from the pair that
/// minimises the objective.  Requires ap_count >= 2 and enough candidates.
common::Result<DeploymentResult> OptimizeStaticDeployment(
    const geometry::Polygon& area,
    std::span<const geometry::Vec2> candidates,
    const DeploymentConfig& config);

}  // namespace nomloc::localization
