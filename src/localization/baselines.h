// Baseline localizers the paper compares against conceptually (§III-A):
// range-based positioning (needs calibration of the propagation model —
// exactly the cost NomLoc avoids) and cruder power heuristics.
#pragma once

#include <span>
#include <utility>

#include "common/status.h"
#include "geometry/vec2.h"
#include "localization/proximity.h"

namespace nomloc::localization {

/// Log-distance path-loss model: P(d) = P_ref * (d_ref / d)^gamma.
/// Inverting it turns a measured PDP into a distance estimate — the core
/// of FILA-style ranging.  Its parameters are environment-specific, which
/// is why range-based systems require calibration.
struct RangingModel {
  double ref_distance_m = 1.0;
  double ref_power_mw = 1.0;        ///< Expected PDP at ref_distance_m.
  double path_loss_exponent = 2.0;  ///< gamma.

  /// Distance estimate from a measured direct-path power (> 0).
  double EstimateDistance(double pdp_mw) const;
};

/// Fits the model to (distance, pdp) calibration pairs by least squares in
/// log-log space.  Requires >= 2 pairs with distinct positive distances
/// and positive powers.
common::Result<RangingModel> FitRangingModel(
    std::span<const std::pair<double, double>> distance_pdp_pairs);

/// Range-based localization: converts each anchor's PDP to a distance with
/// `model`, then Gauss–Newton least squares on
///   min sum_i (|z - p_i| - d_i)^2
/// from `initial`.  Requires >= 3 anchors.  Fails with kNumericalError
/// when the normal equations degenerate (collinear anchors).
common::Result<geometry::Vec2> Trilaterate(std::span<const Anchor> anchors,
                                           const RangingModel& model,
                                           geometry::Vec2 initial,
                                           std::size_t max_iterations = 50);

/// Power-weighted centroid of the anchor positions, weights = pdp^alpha.
/// Requires >= 1 anchor with positive PDP.
geometry::Vec2 WeightedCentroid(std::span<const Anchor> anchors,
                                double alpha = 1.0);

/// Position of the anchor with the largest PDP.  Requires >= 1 anchor.
geometry::Vec2 NearestAnchor(std::span<const Anchor> anchors);

}  // namespace nomloc::localization
