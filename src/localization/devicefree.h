// Device-free motion detection from CSI — the companion capability of the
// NomLoc authors' FIMD (ICPADS'12) and Pilot (ICDCS'13) systems, both
// cited in the paper.  A person moving near a TX–RX link perturbs its
// multipath structure; consecutive CSI frames then decorrelate, while an
// empty environment keeps them nearly identical.  The detector slides a
// window over per-packet CSI and flags motion when the mean adjacent-frame
// magnitude correlation drops below a threshold.
#pragma once

#include <deque>
#include <optional>

#include "channel/csi_model.h"
#include "common/status.h"
#include "dsp/csi.h"

namespace nomloc::localization {

/// Pearson correlation between the magnitude vectors of two CSI frames on
/// identical grids.  Requires matching non-trivial grids and non-constant
/// magnitudes.  NOTE: being mean- and scale-invariant, this misses
/// perturbations with small differential delay (a body near the LOS path
/// shifts every subcarrier almost uniformly); the detector therefore uses
/// FrameSimilarity below.
common::Result<double> MagnitudeCorrelation(const dsp::CsiFrame& a,
                                            const dsp::CsiFrame& b);

/// Amplitude-sensitive similarity: 1 - || |a| - |b| || / max(||a||, ||b||).
/// 1 = identical magnitudes; drops with any amplitude change, including
/// the near-uniform swing a moving body induces.  Requires matching grids
/// and at least one non-zero frame.
common::Result<double> FrameSimilarity(const dsp::CsiFrame& a,
                                       const dsp::CsiFrame& b);

struct MotionDetectorOptions {
  /// Frames per decision window (>= 2).
  std::size_t window = 8;
  /// Mean adjacent-frame similarity (FrameSimilarity) below this flags
  /// motion.
  double similarity_threshold = 0.9;
};

class MotionDetector {
 public:
  explicit MotionDetector(MotionDetectorOptions options = {});

  struct Decision {
    bool motion = false;
    /// Mean adjacent-frame similarity over the window (the FIMD-style
    /// feature; low = motion).
    double score = 1.0;
  };

  /// Feeds one frame.  Returns a decision once the window is full (and on
  /// every subsequent frame, sliding by one); nullopt while filling.
  /// Frames with mismatched grids reset the window.
  std::optional<Decision> Feed(const dsp::CsiFrame& frame);

  void Reset();

 private:
  MotionDetectorOptions options_;
  std::deque<dsp::CsiFrame> window_;
  std::deque<double> similarities_;
};

/// Simulation helper: one CSI frame of the link tx->rx with a person at
/// `person`.  The link's static multipath is augmented with a human
/// scatter path (tx -> person -> rx); when the person stands within
/// `blocking_radius_m` of the direct segment, the direct path additionally
/// pays the human body's transmission loss — the LOS-blocking effect
/// device-free systems key on.
dsp::CsiFrame SampleWithPerson(const channel::CsiSimulator& sim,
                               geometry::Vec2 tx, geometry::Vec2 rx,
                               geometry::Vec2 person, common::Rng& rng,
                               double blocking_radius_m = 0.3);

}  // namespace nomloc::localization
