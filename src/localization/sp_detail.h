// Internal shared core of the SP solve — the pieces both the one-shot
// batch path (sp_solver.cc) and the stateful session path (sp_session.cc)
// execute.  Keeping them in ONE place is what makes the equivalence
// guarantees checkable: a session in kColdEachSolve mode runs literally
// the same code as SolveSp, and the incremental mode shares every step
// except how the LP optimum is obtained.
//
// Not part of the public API; include localization/sp_solver.h or
// localization/sp_session.h instead.
#pragma once

#include <span>
#include <vector>

#include "common/status.h"
#include "geometry/halfplane.h"
#include "geometry/polygon.h"
#include "localization/constraints.h"
#include "localization/sp_solver.h"
#include "lp/simplex.h"

namespace nomloc::localization::detail {

/// Constraints the LP considers violated beyond numerical noise.
inline constexpr double kViolationTolerance = 1e-7;

/// Builds and solves the relaxation LP (Eq. 19) over already-normalized
/// constraints.  Variables: [zx, zy, t_0 .. t_{N-1}].  `ipm_warm_start`
/// opts the interior-point backend into workspace-carried warm starts
/// (sessions only — it changes iterate trajectories, so the batch path
/// leaves it off to stay bit-identical).
common::Result<lp::LpSolution> SolveRelaxation(
    std::span<const SpConstraint> constraints, LpBackend backend,
    lp::SolveWorkspace* ws, bool ipm_warm_start = false);

/// Extracts the center of the relaxed region according to `options`,
/// falling back to `lp_point` when the region is degenerate.
common::Result<geometry::Vec2> RegionCenter(
    const geometry::Polygon& part,
    std::span<const geometry::HalfPlane> region_planes,
    std::span<const geometry::Vec2> region_loop, geometry::Vec2 lp_point,
    const SpSolverOptions& options);

/// Region reconstruction + center extraction for one part, given the LP
/// optimum.  `all` holds every normalized constraint of the program; `t`
/// is the per-constraint relaxation at the optimum (aligned with `all`);
/// `region_rows` lists, in clip order, the indices of the constraints
/// that shape the region (proximity constraints — boundary rows only
/// count toward `violated`).  Implements §IV-B4's keep-the-heavier-
/// constraint reconstruction: rows with t beyond kViolationTolerance are
/// dropped, the rest clip the part.
common::Result<SpPartSolution> ReconstructPart(
    const geometry::Polygon& part, std::span<const SpConstraint> all,
    std::span<const double> t, std::span<const std::size_t> region_rows,
    double objective, std::size_t iterations, geometry::Vec2 lp_point,
    const SpSolverOptions& options);

/// SolveSpPart without the deprecation tag on the workspace parameter —
/// the internal entry point SolveSp and the session layer call.
/// `ipm_warm_start` is forwarded to SolveRelaxation (sessions only).
common::Result<SpPartSolution> SolveSpPartImpl(
    const geometry::Polygon& part,
    std::span<const SpConstraint> proximity_constraints,
    const SpSolverOptions& options, lp::SolveWorkspace* ws,
    bool ipm_warm_start = false);

/// Best-part selection and tied-cost merge (§IV-B2) over per-part
/// solutions: fills estimate / relaxation_cost / best_part /
/// feasible_area_m2 of `solution` from solution.parts, and records the
/// sp.relaxation_cost metric.  Requires solution.parts non-empty and
/// aligned with `parts`.
void MergeParts(std::span<const geometry::Polygon> parts,
                const SpSolverOptions& options, SpSolution& solution);

}  // namespace nomloc::localization::detail
