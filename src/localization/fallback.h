// Solver fallback chain — graceful degradation for the SP solve.
//
// The relaxed LP of Eq. 19 always has a feasible optimum on healthy
// input, but production traffic is not healthy input: corrupt CSI can
// slip in judgements so contradictory that the relaxation cost explodes,
// degenerate anchor geometry can starve the program of constraints, and
// numerical edge cases can make a part solve fail outright.  Instead of
// surfacing an error (and dropping the query on the floor), the chain
// walks a degradation ladder:
//
//   level 0  kNone                full SolveSp, cost within budget
//   level 1  kRelaxedConstraints  re-solve keeping only the top-confidence
//                                 constraint fractions (0.75 -> 0.5 -> 0.25)
//   level 2  kWeightedCentroid    PDP-weighted centroid of the anchors,
//                                 clamped into the area — no LP at all
//
// Level 3 (kLastKnownGood, the tracker's last estimate) needs state and
// therefore lives in the serving layer; this module is stateless like the
// engine that calls it.
//
// The chain engages ONLY when the full solve fails or exceeds the
// caller's cost budget, so with the default (unlimited) budget the
// healthy path is bit-identical to plain SolveSp.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "common/degradation.h"
#include "common/status.h"
#include "geometry/polygon.h"
#include "localization/constraints.h"
#include "localization/proximity.h"
#include "localization/sp_solver.h"

namespace nomloc::localization {

/// When and how the fallback chain engages.
struct FallbackPolicy {
  /// Master switch.  Off = SolveSpResilient is exactly SolveSp (errors
  /// propagate as errors).
  bool enable = true;
  /// A successful solve whose relaxation cost exceeds this budget counts
  /// as failed and triggers the ladder.  The default (infinity) only
  /// engages the chain on genuine solve errors, which keeps the golden
  /// no-fault path bit-identical; tests and the chaos harness tighten it
  /// to force degradation deterministically.
  double max_relaxation_cost = std::numeric_limits<double>::infinity();
  /// Constraint fractions (of the confidence-ranked list) each level-1
  /// retry keeps, tried in order.  Must be in (0, 1], descending.
  std::vector<double> keep_fractions = {0.75, 0.5, 0.25};

  common::Result<void> Validate() const;
};

/// SolveSp result annotated with how degraded it is.
struct ResilientSolution {
  SpSolution solution;
  common::DegradationLevel level = common::DegradationLevel::kNone;
  /// Level 1: constraints discarded by the winning retry.  Level 2: all
  /// of them.
  std::size_t dropped_constraints = 0;
  /// Retries attempted before the returned level succeeded (0 when the
  /// full solve went through).
  std::size_t fallback_attempts = 0;
};

/// Runs SolveSp with the degradation ladder described above.  `anchors`
/// feeds the level-2 centroid (their PDPs are the weights) and may alias
/// the anchors the constraints were built from.  Fails only when the
/// policy is disabled and the full solve fails, or when even level 2 is
/// impossible (no anchors and no parts).  Every engaged level increments
/// `fallback.engaged{level=...}`; dropped constraints feed
/// `fallback.dropped_constraints`.
common::Result<ResilientSolution> SolveSpResilient(
    std::span<const geometry::Polygon> parts,
    std::span<const Anchor> anchors,
    std::span<const SpConstraint> proximity_constraints,
    const SpSolverOptions& options = {}, const FallbackPolicy& policy = {});

/// The level-2 estimator, exposed for tests: PDP-weighted mean of the
/// anchor positions, clamped to the nearest part centroid when it lands
/// outside every part.  Requires at least one anchor or one part.
common::Result<geometry::Vec2> WeightedAnchorCentroid(
    std::span<const geometry::Polygon> parts, std::span<const Anchor> anchors);

}  // namespace nomloc::localization
