// Solver fallback chain — graceful degradation for the SP solve.
//
// The relaxed LP of Eq. 19 always has a feasible optimum on healthy
// input, but production traffic is not healthy input: corrupt CSI can
// slip in judgements so contradictory that the relaxation cost explodes,
// degenerate anchor geometry can starve the program of constraints, and
// numerical edge cases can make a part solve fail outright.  Instead of
// surfacing an error (and dropping the query on the floor), the chain
// walks a degradation ladder:
//
//   level 0  kNone                full SolveSp, cost within budget
//   level 1  kRelaxedConstraints  re-solve keeping only the top-confidence
//                                 constraint fractions (0.75 -> 0.5 -> 0.25)
//   level 2  kWeightedCentroid    PDP-weighted centroid of the anchors,
//                                 clamped into the area — no LP at all
//
// Level 3 (kLastKnownGood, the tracker's last estimate) needs state and
// therefore lives in the serving layer; this module is stateless like the
// engine that calls it.
//
// The chain engages ONLY when the full solve fails or exceeds the
// caller's cost budget, so with the default (unlimited) budget the
// healthy path is bit-identical to plain SolveSp.
//
// The policy knobs (FallbackPolicy) live in localization/sp_solver.h as
// SpSolverOptions::fallback, so one options struct configures the batch,
// session, and resilient paths alike.
#pragma once

#include <span>
#include <vector>

#include "common/degradation.h"
#include "common/status.h"
#include "geometry/polygon.h"
#include "localization/constraints.h"
#include "localization/proximity.h"
#include "localization/sp_solver.h"

namespace nomloc::localization {

class SpSolverSession;  // localization/sp_session.h

/// SolveSp result annotated with how degraded it is.
struct ResilientSolution {
  SpSolution solution;
  common::DegradationLevel level = common::DegradationLevel::kNone;
  /// Level 1: constraints discarded by the winning retry.  Level 2: all
  /// of them.
  std::size_t dropped_constraints = 0;
  /// Retries attempted before the returned level succeeded (0 when the
  /// full solve went through).
  std::size_t fallback_attempts = 0;
};

/// Runs SolveSp with the degradation ladder described above, configured by
/// `options.fallback`.  `anchors` feeds the level-2 centroid (their PDPs
/// are the weights) and may alias the anchors the constraints were built
/// from.  Fails only when the policy is disabled and the full solve fails,
/// or when even level 2 is impossible (no anchors and no parts).  Every
/// engaged level increments `fallback.engaged{level=...}`; dropped
/// constraints feed `fallback.dropped_constraints`.  The returned
/// solution's lp_iterations also count the ladder's failed re-solve
/// attempts, so degraded responses report their true LP work.
common::Result<ResilientSolution> SolveSpResilient(
    std::span<const geometry::Polygon> parts,
    std::span<const Anchor> anchors,
    std::span<const SpConstraint> proximity_constraints,
    const SpSolverOptions& options = {});

/// Compat overload taking the policy separately (pre-SpSolverOptions
/// collapse).  Thin shim: copies `policy` onto `options.fallback` and
/// delegates.
[[deprecated(
    "fold the policy into SpSolverOptions::fallback and call the "
    "single-options overload")]]
common::Result<ResilientSolution> SolveSpResilient(
    std::span<const geometry::Polygon> parts,
    std::span<const Anchor> anchors,
    std::span<const SpConstraint> proximity_constraints,
    const SpSolverOptions& options, const FallbackPolicy& policy);

/// The same degradation ladder over a stateful session: level 0 is the
/// session's (possibly incremental) Solve(); the retry levels re-solve
/// the session's active constraint subset from scratch, leaving the
/// session's warm state untouched.  Policy and options come from the
/// session (`session.options().fallback`).
common::Result<ResilientSolution> SolveSpResilient(
    SpSolverSession& session, std::span<const Anchor> anchors);

/// The level-2 estimator, exposed for tests: PDP-weighted mean of the
/// anchor positions, clamped to the nearest part centroid when it lands
/// outside every part.  Requires at least one anchor or one part.
common::Result<geometry::Vec2> WeightedAnchorCentroid(
    std::span<const geometry::Polygon> parts, std::span<const Anchor> anchors);

}  // namespace nomloc::localization
