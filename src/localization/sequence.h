// Sequence-based localization (Yedavalli & Krishnamachari, TMC 2008 —
// the paper's reference [2] and the intellectual ancestor of its SP
// method).  The anchors' *ordering* by received power defines a location
// signature; candidate points whose distance ordering best matches the
// measured ordering vote for the estimate.  Like NomLoc it is
// calibration-free (orderings need no propagation model), but it needs an
// explicit candidate grid where SP gets an exact polygonal cell.
#pragma once

#include <span>
#include <vector>

#include "common/status.h"
#include "geometry/polygon.h"
#include "localization/proximity.h"

namespace nomloc::localization {

enum class RankCorrelation { kSpearman, kKendall };

struct SequenceOptions {
  double grid_step_m = 0.25;
  RankCorrelation correlation = RankCorrelation::kSpearman;
  /// Candidates whose correlation is within this of the best all
  /// contribute to the (averaged) estimate.
  double tie_tolerance = 1e-9;
};

/// Average ranks of `values` in *ascending* order; ties share the average
/// of the ranks they span (standard fractional ranking, 1-based).
std::vector<double> FractionalRanks(std::span<const double> values);

/// Spearman's rho between two equal-length rank vectors (uses Pearson on
/// ranks, so fractional ties are handled).  Requires size >= 2 and
/// non-constant vectors.
common::Result<double> SpearmanRho(std::span<const double> ranks_a,
                                   std::span<const double> ranks_b);

/// Kendall's tau-a between two equal-length value vectors.
common::Result<double> KendallTau(std::span<const double> a,
                                  std::span<const double> b);

/// Sequence-based location estimate: scans a grid over `area`, ranks each
/// grid point's anchor distances, and returns the mean of the points whose
/// rank correlation with the measured (inverse-power) ranking is maximal.
/// Requires >= 3 anchors with positive PDP.
common::Result<geometry::Vec2> SequenceLocalize(
    const geometry::Polygon& area, std::span<const Anchor> anchors,
    const SequenceOptions& options = {});

}  // namespace nomloc::localization
