#include "localization/planner.h"

#include <limits>

#include "common/assert.h"
#include "geometry/convex_decomp.h"
#include "geometry/hull.h"

namespace nomloc::localization {

using geometry::Polygon;
using geometry::Vec2;

namespace {

// Ideal pairwise constraints for an object at `truth` among `anchors`.
std::vector<SpConstraint> IdealConstraints(Vec2 truth,
                                           std::span<const Vec2> anchors) {
  std::vector<SpConstraint> out;
  out.reserve(anchors.size() * (anchors.size() - 1) / 2);
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    for (std::size_t j = i + 1; j < anchors.size(); ++j) {
      if (geometry::AlmostEqual(anchors[i], anchors[j], 1e-9)) continue;
      const bool i_closer =
          Distance(truth, anchors[i]) <= Distance(truth, anchors[j]);
      const Vec2 w = i_closer ? anchors[i] : anchors[j];
      const Vec2 l = i_closer ? anchors[j] : anchors[i];
      out.push_back({geometry::HalfPlane::CloserTo(w, l), 0.9, false});
    }
  }
  return out;
}

}  // namespace

common::Result<double> ExpectedCellError(std::span<const Polygon> parts,
                                         std::span<const Vec2> anchors,
                                         std::span<const Vec2> samples,
                                         const SpSolverOptions& solver) {
  if (samples.empty()) return common::InvalidArgument("no sample points");
  if (anchors.size() < 2)
    return common::InvalidArgument("need >= 2 anchors");
  double total = 0.0;
  for (const Vec2 truth : samples) {
    const auto constraints = IdealConstraints(truth, anchors);
    if (constraints.empty())
      return common::InvalidArgument("all anchors coincide");
    NOMLOC_ASSIGN_OR_RETURN(SpSolution sol,
                            SolveSp(parts, constraints, solver));
    total += Distance(sol.estimate, truth);
  }
  return total / double(samples.size());
}

common::Result<PlannerResult> PlanNomadicSites(
    const Polygon& area, std::span<const Vec2> static_aps,
    std::span<const Vec2> candidates, const PlannerConfig& config) {
  if (candidates.empty())
    return common::InvalidArgument("no candidate sites");
  if (static_aps.size() < 2)
    return common::InvalidArgument("need >= 2 static APs");
  if (config.sites_to_select > candidates.size())
    return common::InvalidArgument("cannot select more sites than offered");
  if (config.sample_points == 0)
    return common::InvalidArgument("sample_points must be >= 1");

  NOMLOC_ASSIGN_OR_RETURN(auto parts, geometry::DecomposeConvex(area));

  // Deterministic evaluation set of object positions.
  common::Rng rng(config.seed);
  std::vector<Vec2> samples;
  samples.reserve(config.sample_points);
  for (std::size_t i = 0; i < config.sample_points; ++i)
    samples.push_back(geometry::RandomPointIn(area, rng));

  std::vector<Vec2> anchors(static_aps.begin(), static_aps.end());
  PlannerResult result;
  NOMLOC_ASSIGN_OR_RETURN(
      result.baseline_error_m,
      ExpectedCellError(parts, anchors, samples, config.solver));

  std::vector<bool> used(candidates.size(), false);
  for (std::size_t round = 0; round < config.sites_to_select; ++round) {
    double best_error = std::numeric_limits<double>::infinity();
    std::size_t best_idx = candidates.size();
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (used[c]) continue;
      anchors.push_back(candidates[c]);
      auto err = ExpectedCellError(parts, anchors, samples, config.solver);
      anchors.pop_back();
      if (!err.ok()) continue;
      if (*err < best_error) {
        best_error = *err;
        best_idx = c;
      }
    }
    if (best_idx == candidates.size())
      return common::Internal("no admissible candidate in planning round");
    used[best_idx] = true;
    anchors.push_back(candidates[best_idx]);
    result.selected.push_back(best_idx);
    result.error_after_m.push_back(best_error);
  }
  return result;
}

}  // namespace nomloc::localization
