// Frequency-domain channel state information (CSI).
//
// A CsiFrame is what an 802.11n receiver reports for one received packet:
// the complex channel response H(f_k) sampled at the occupied OFDM
// subcarriers of a 20 MHz channel.  Subcarrier indices follow the 802.11
// convention: k in [-28, -1] ∪ [1, 28] for HT20 (DC and the guard bins are
// unused).  An Intel-5300-style 30-group view is also provided, since the
// paper's hardware reports grouped CSI.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "common/status.h"

namespace nomloc::dsp {

using Cplx = std::complex<double>;

class CsiFrame {
 public:
  /// Builds a frame.  `indices` and `values` must be the same non-zero
  /// length; indices must be distinct, non-zero, strictly increasing, and
  /// within [-fft_size/2, fft_size/2 - 1].
  static common::Result<CsiFrame> Create(std::vector<int> indices,
                                         std::vector<Cplx> values,
                                         int fft_size = 64);

  /// The standard HT20 index set {-28..-1, 1..28}.
  static std::vector<int> Ht20Indices();

  /// The 30 indices the Intel 5300 reports for HT20 (grouping of 56 tones,
  /// per the Linux CSI tool: every other tone, plus the band edges).
  static std::vector<int> Intel5300Indices();

  std::span<const int> Indices() const noexcept { return indices_; }
  std::span<const Cplx> Values() const noexcept { return values_; }
  int FftSize() const noexcept { return fft_size_; }
  std::size_t SubcarrierCount() const noexcept { return values_.size(); }

  /// H at subcarrier index k; requires k present.
  Cplx At(int k) const;

  /// Sum of |H_k|^2 over the reported subcarriers (total channel power).
  double TotalPower() const noexcept;

  /// Downsamples this frame to the Intel-5300 index set.  Requires this
  /// frame to contain all 5300 indices (e.g. a full HT20 frame).
  common::Result<CsiFrame> ToIntel5300() const;

  /// Places the subcarriers onto the full FFT grid (missing bins zero) in
  /// standard FFT order: bin k for k >= 0, bin fft_size + k for k < 0.
  std::vector<Cplx> ToFftGrid() const;

  /// ToFftGrid into a caller-owned buffer (resized to fft_size), so batch
  /// extraction reuses one grid allocation across frames.
  void ToFftGrid(std::vector<Cplx>& grid) const;

 private:
  CsiFrame(std::vector<int> indices, std::vector<Cplx> values, int fft_size)
      : indices_(std::move(indices)),
        values_(std::move(values)),
        fft_size_(fft_size) {}

  std::vector<int> indices_;
  std::vector<Cplx> values_;
  int fft_size_;
};

}  // namespace nomloc::dsp
