// Digital modulation: bit <-> constellation-symbol mapping for the OFDM
// PHY (dsp/ofdm.h).  Gray-coded BPSK, QPSK and 16-QAM, unit average
// symbol energy, hard-decision demapping.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "dsp/csi.h"

namespace nomloc::dsp {

enum class Modulation { kBpsk, kQpsk, kQam16 };

/// Bits carried by one symbol of the scheme (1, 2 or 4).
int BitsPerSymbol(Modulation modulation) noexcept;

/// Maps bits (one byte per bit, 0/1, MSB first within each symbol) to
/// symbols.
/// The bit count must be a multiple of BitsPerSymbol.
common::Result<std::vector<Cplx>> ModulateBits(std::span<const std::uint8_t> bits,
                                               Modulation modulation);

/// Hard-decision demapping (minimum-distance).  Always succeeds; noise
/// shows up as bit errors, not failures.
std::vector<std::uint8_t> DemodulateSymbols(std::span<const Cplx> symbols,
                                    Modulation modulation);

/// Fraction of differing bits; the spans must have equal non-zero length.
double BitErrorRate(std::span<const std::uint8_t> sent,
                    std::span<const std::uint8_t> got);

/// Deterministic pseudo-random payload for tests/benches.
std::vector<std::uint8_t> RandomBits(std::size_t count, std::uint64_t seed);

}  // namespace nomloc::dsp
