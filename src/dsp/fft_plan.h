// FFT plan cache — layer 1 of the hot-path caching subsystem.
//
// Every localization epoch IFFTs a batch of CSI frames into CIRs; the
// transform lengths repeat endlessly (the OFDM FFT size, the Bluestein
// lengths of grouped CSI grids).  An FftPlan precomputes everything that
// depends only on the length: the bit-reversal permutation and per-stage
// twiddle factors for radix-2 lengths, plus the chirp sequences and the
// pre-FFT'd convolution kernel for Bluestein lengths.  Executing a plan
// touches no trigonometry and, for power-of-two lengths, allocates
// nothing; Bluestein scratch lives in thread-local buffers that are
// reused across calls.
//
// FftPlanCache::Global() memoizes one immutable plan per length behind a
// mutex; plans are shared_ptr-owned so a reference obtained before a
// Clear() stays valid.  Hot callers additionally keep a thread-local
// pointer to the last plan used, so the steady-state lookup is a single
// compare.  Cache traffic is exported through common::metrics as
// dsp.fft.plan.hits / dsp.fft.plan.misses / dsp.fft.plan.entries.
#pragma once

#include <atomic>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

namespace nomloc::dsp {

using Cplx = std::complex<double>;

/// Immutable transform plan for one length.  Thread-safe to execute
/// concurrently (scratch is thread-local).
class FftPlan {
 public:
  /// Builds a plan for length n >= 1.
  explicit FftPlan(std::size_t n);

  std::size_t Size() const noexcept { return n_; }

  /// In-place forward DFT of data (data.size() must equal Size()).
  void Forward(std::span<Cplx> data) const;
  /// In-place inverse DFT (includes the 1/N scale).
  void Inverse(std::span<Cplx> data) const;

 private:
  /// Table-driven radix-2 butterflies over the plan's power-of-two grid
  /// (n_ when n_ is a power of two, the Bluestein length m_ otherwise).
  /// Dispatches to Radix2Simd when a SIMD kernel target is active; the
  /// scalar target runs the historical interleaved loop bit-identically.
  void Radix2(std::span<Cplx> data, bool inverse) const;
  /// Split-complex (SoA) butterflies through the simd::FftPass kernel,
  /// using thread-local re/im scratch.  Matches the scalar path to a few
  /// ULP (same mul/add expansion, lane-parallel).
  void Radix2Simd(std::span<Cplx> data, bool inverse) const;
  /// Bluestein's chirp-z evaluation using the precomputed kernels.
  void Chirp(std::span<Cplx> data, bool inverse) const;

  std::size_t n_;
  bool pow2_;

  // Radix-2 machinery for the power-of-two grid (n_ or m_).
  std::vector<std::size_t> bitrev_;  ///< Bit-reversed index of each bin.
  std::vector<Cplx> twiddle_;        ///< Forward twiddles, stages concatenated.
  std::vector<double> twiddle_re_;   ///< Split-complex view of twiddle_,
  std::vector<double> twiddle_im_;   ///< consumed by the SIMD butterflies.

  // Bluestein machinery (pow2_ == false only).
  std::size_t m_ = 0;                ///< Power-of-two convolution length.
  std::vector<Cplx> chirp_fwd_;      ///< c_k = e^{-j pi k^2 / n}.
  std::vector<Cplx> chirp_inv_;      ///< Conjugate chirp for the inverse.
  std::vector<Cplx> kernel_fwd_;     ///< FFT_m of the forward kernel.
  std::vector<Cplx> kernel_inv_;     ///< FFT_m of the inverse kernel.
};

/// Thread-safe memo of one FftPlan per length.
class FftPlanCache {
 public:
  FftPlanCache() = default;
  FftPlanCache(const FftPlanCache&) = delete;
  FftPlanCache& operator=(const FftPlanCache&) = delete;

  /// The process-wide cache used by the in-place Fft/Ifft overloads.
  static FftPlanCache& Global();

  /// Returns the plan for length n, building it on first use.
  std::shared_ptr<const FftPlan> Plan(std::size_t n);

  /// Drops every cached plan (outstanding shared_ptrs stay valid) and
  /// bumps Generation() so thread-local plan memos re-resolve.
  /// Benchmarks use this to measure the cold path.
  void Clear();

  /// Number of distinct lengths currently cached.
  std::size_t Entries() const;

  /// Incremented by every Clear(); lets lock-free memo layers detect that
  /// their cached plan pointer predates the last invalidation.
  std::uint64_t Generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::size_t, std::shared_ptr<const FftPlan>> plans_;
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace nomloc::dsp
