#include "dsp/csi.h"

#include <algorithm>

#include "common/assert.h"

namespace nomloc::dsp {

common::Result<CsiFrame> CsiFrame::Create(std::vector<int> indices,
                                          std::vector<Cplx> values,
                                          int fft_size) {
  if (indices.empty()) return common::InvalidArgument("empty CSI frame");
  if (indices.size() != values.size())
    return common::InvalidArgument("index/value size mismatch");
  if (fft_size < 2) return common::InvalidArgument("fft_size must be >= 2");
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const int k = indices[i];
    if (k == 0)
      return common::InvalidArgument("DC subcarrier (k=0) is not reported");
    if (k < -fft_size / 2 || k >= fft_size / 2)
      return common::InvalidArgument("subcarrier index out of range");
    if (i > 0 && indices[i] <= indices[i - 1])
      return common::InvalidArgument("indices must be strictly increasing");
  }
  return CsiFrame(std::move(indices), std::move(values), fft_size);
}

std::vector<int> CsiFrame::Ht20Indices() {
  std::vector<int> idx;
  idx.reserve(56);
  for (int k = -28; k <= 28; ++k)
    if (k != 0) idx.push_back(k);
  return idx;
}

std::vector<int> CsiFrame::Intel5300Indices() {
  // The Linux 802.11n CSI tool's HT20 grouping (Ng=2): 30 tones.
  return {-28, -26, -24, -22, -20, -18, -16, -14, -12, -10,
          -8,  -6,  -4,  -2,  -1,  1,   3,   5,   7,   9,
          11,  13,  15,  17,  19,  21,  23,  25,  27,  28};
}

Cplx CsiFrame::At(int k) const {
  const auto it = std::lower_bound(indices_.begin(), indices_.end(), k);
  NOMLOC_REQUIRE(it != indices_.end() && *it == k);
  return values_[std::size_t(it - indices_.begin())];
}

double CsiFrame::TotalPower() const noexcept {
  double p = 0.0;
  for (const Cplx& v : values_) p += std::norm(v);
  return p;
}

common::Result<CsiFrame> CsiFrame::ToIntel5300() const {
  std::vector<int> idx = Intel5300Indices();
  std::vector<Cplx> vals;
  vals.reserve(idx.size());
  for (int k : idx) {
    const auto it = std::lower_bound(indices_.begin(), indices_.end(), k);
    if (it == indices_.end() || *it != k)
      return common::FailedPrecondition(
          "frame lacks subcarrier required by 5300 grouping");
    vals.push_back(values_[std::size_t(it - indices_.begin())]);
  }
  return Create(std::move(idx), std::move(vals), fft_size_);
}

std::vector<Cplx> CsiFrame::ToFftGrid() const {
  std::vector<Cplx> grid;
  ToFftGrid(grid);
  return grid;
}

void CsiFrame::ToFftGrid(std::vector<Cplx>& grid) const {
  grid.assign(std::size_t(fft_size_), Cplx(0.0, 0.0));
  for (std::size_t i = 0; i < indices_.size(); ++i) {
    const int k = indices_[i];
    const int bin = k >= 0 ? k : fft_size_ + k;
    grid[std::size_t(bin)] = values_[i];
  }
}

}  // namespace nomloc::dsp
