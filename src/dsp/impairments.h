// Receiver-side CSI impairments and their sanitization.
//
// Real CSI extraction hardware (e.g. the Intel 5300 the paper uses) does
// not report the physical channel H(f) directly: every packet carries
//   * a random common phase offset (carrier phase + packet detection),
//   * a linear-in-frequency phase slope from sampling-time offset (STO)
//     and sampling-frequency offset (SFO),
//   * an automatic-gain-control (AGC) scale that varies packet to packet.
// These corrupt phase-based processing; NomLoc's PDP survives them because
// max|IFFT| is invariant to common phase and (almost) to small linear
// slopes — this module lets tests and benches verify that claim instead of
// assuming it, and provides the standard linear-fit sanitizer used by
// CSI-based systems.
#pragma once

#include "common/rng.h"
#include "dsp/csi.h"

namespace nomloc::dsp {

struct ImpairmentConfig {
  /// Random common phase in [0, 2*pi) per frame.
  bool random_common_phase = true;
  /// Max |slope| of the linear phase ramp across the band
  /// [radians per subcarrier index].  802.11 STO of +-2 samples at 64-FFT
  /// corresponds to ~0.2 rad/subcarrier.
  double max_phase_slope_rad = 0.2;
  /// AGC gain jitter: per-frame amplitude scale drawn log-uniformly from
  /// [1/(1+j), 1+j].
  double agc_jitter = 0.25;
};

/// Applies impairments to a frame (new frame returned; input untouched).
CsiFrame ApplyImpairments(const CsiFrame& frame, const ImpairmentConfig& cfg,
                          common::Rng& rng);

/// Removes the best-fit linear phase (common offset + slope across
/// subcarrier index) by least squares on the unwrapped phase, and
/// normalises total power to `target_power` when it is > 0.  This is the
/// standard CSI sanitization step (SpotFi-style linear fit, simplified).
CsiFrame SanitizePhase(const CsiFrame& frame, double target_power = 0.0);

/// Unwraps a phase sequence (removes 2*pi jumps between neighbours).
std::vector<double> UnwrapPhase(std::span<const double> phase);

}  // namespace nomloc::dsp
