#include "dsp/fft_plan.h"

#include <cmath>
#include <numbers>

#include "common/assert.h"
#include "common/metrics.h"
#include "dsp/fft.h"
#include "simd/kernels.h"

namespace nomloc::dsp {

namespace {

// Bit-reversal permutation of [0, n) for power-of-two n, computed with the
// same incremental carry walk the in-place transform uses.
std::vector<std::size_t> BitReversal(std::size_t n) {
  std::vector<std::size_t> rev(n, 0);
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    rev[i] = j;
  }
  return rev;
}

// Forward twiddles e^{-j 2 pi k / len} for len = 2, 4, …, n, concatenated;
// the stage with half-length h = len/2 starts at offset h - 1.
std::vector<Cplx> ForwardTwiddles(std::size_t n) {
  std::vector<Cplx> tw;
  tw.reserve(n > 0 ? n - 1 : 0);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    for (std::size_t k = 0; k < len / 2; ++k) {
      const double ang = -2.0 * std::numbers::pi * double(k) / double(len);
      tw.emplace_back(std::cos(ang), std::sin(ang));
    }
  }
  return tw;
}

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n), pow2_(IsPowerOfTwo(n)) {
  NOMLOC_REQUIRE(n >= 1);
  const std::size_t grid = pow2_ ? n_ : NextPowerOfTwo(2 * n_ - 1);
  bitrev_ = BitReversal(grid);
  twiddle_ = ForwardTwiddles(grid);
  twiddle_re_.resize(twiddle_.size());
  twiddle_im_.resize(twiddle_.size());
  for (std::size_t k = 0; k < twiddle_.size(); ++k) {
    twiddle_re_[k] = twiddle_[k].real();
    twiddle_im_[k] = twiddle_[k].imag();
  }
  if (pow2_) return;

  m_ = grid;
  // Chirp factors: forward uses c_k = e^{-j pi k^2 / n} so the DFT kernel
  // factors as e^{-j2pi kt/n} = c_k c_t conj(c_{k-t}); the inverse
  // conjugates everything.  k^2 mod 2n keeps the angle argument small.
  chirp_fwd_.resize(n_);
  chirp_inv_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const double kk = double((k * k) % (2 * n_));
    const double ang = std::numbers::pi * kk / double(n_);
    chirp_fwd_[k] = Cplx(std::cos(ang), -std::sin(ang));
    chirp_inv_[k] = std::conj(chirp_fwd_[k]);
  }
  // Convolution kernels b[k] = conj(c_k) (mirrored into the tail),
  // transformed once here instead of once per frame.
  auto make_kernel = [&](const std::vector<Cplx>& chirp) {
    std::vector<Cplx> b(m_, Cplx(0.0, 0.0));
    for (std::size_t k = 0; k < n_; ++k) {
      const Cplx conj = std::conj(chirp[k]);
      b[k] = conj;
      if (k != 0) b[m_ - k] = conj;
    }
    Radix2(b, /*inverse=*/false);
    return b;
  };
  kernel_fwd_ = make_kernel(chirp_fwd_);
  kernel_inv_ = make_kernel(chirp_inv_);
}

void FftPlan::Radix2(std::span<Cplx> data, bool inverse) const {
  const std::size_t n = data.size();
  NOMLOC_ASSERT(n == bitrev_.size());
  if (n == 1) return;

  // The split-complex path only pays off once a butterfly stage spans at
  // least one vector width; tiny transforms stay on the interleaved loop.
  if (simd::ActiveKernels().target != simd::Target::kScalar && n >= 8) {
    Radix2Simd(data, inverse);
    return;
  }

  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }

  const Cplx* stage_tw = twiddle_.data();
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const Cplx w =
            inverse ? std::conj(stage_tw[k]) : stage_tw[k];
        const Cplx u = data[i + k];
        const Cplx v = data[i + k + half] * w;
        data[i + k] = u + v;
        data[i + k + half] = u - v;
      }
    }
    stage_tw += half;
  }
  if (inverse) {
    for (Cplx& x : data) x /= double(n);
  }
}

void FftPlan::Radix2Simd(std::span<Cplx> data, bool inverse) const {
  const std::size_t n = data.size();
  // Split-complex scratch, reused across calls on each thread.  The
  // deinterleave applies the bit-reversal permutation in the same pass
  // (bitrev_ is an involution, so gathering data[bitrev_[i]] produces the
  // exact array the swap loop in Radix2 would).
  thread_local std::vector<double> re_scratch;
  thread_local std::vector<double> im_scratch;
  if (re_scratch.size() < n) {
    re_scratch.resize(n);
    im_scratch.resize(n);
  }
  double* re = re_scratch.data();
  double* im = im_scratch.data();
  simd::Deinterleave(n, data.data(), bitrev_.data(), re, im);

  // The inverse transform conjugates every twiddle; FftPass folds that
  // into wsign so one table serves both directions.
  const double wsign = inverse ? -1.0 : 1.0;
  const double* twr = twiddle_re_.data();
  const double* twi = twiddle_im_.data();
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    simd::FftPass(re, im, n, half, twr, twi, wsign);
    twr += half;
    twi += half;
  }
  if (inverse) {
    simd::InvScale(n, double(n), re);
    simd::InvScale(n, double(n), im);
  }
  simd::Interleave(n, re, im, data.data());
}

void FftPlan::Chirp(std::span<Cplx> data, bool inverse) const {
  // Scratch reused across calls on each thread; zero per-call allocation
  // once the high-water mark is reached.
  thread_local std::vector<Cplx> scratch;
  scratch.assign(m_, Cplx(0.0, 0.0));

  const std::vector<Cplx>& chirp = inverse ? chirp_inv_ : chirp_fwd_;
  const std::vector<Cplx>& kernel = inverse ? kernel_inv_ : kernel_fwd_;

  for (std::size_t k = 0; k < n_; ++k) scratch[k] = data[k] * chirp[k];
  Radix2(scratch, /*inverse=*/false);
  for (std::size_t k = 0; k < m_; ++k) scratch[k] *= kernel[k];
  Radix2(scratch, /*inverse=*/true);
  for (std::size_t k = 0; k < n_; ++k) data[k] = scratch[k] * chirp[k];
  if (inverse) {
    for (std::size_t k = 0; k < n_; ++k) data[k] /= double(n_);
  }
}

void FftPlan::Forward(std::span<Cplx> data) const {
  NOMLOC_REQUIRE(data.size() == n_);
  if (pow2_) {
    Radix2(data, /*inverse=*/false);
  } else {
    Chirp(data, /*inverse=*/false);
  }
}

void FftPlan::Inverse(std::span<Cplx> data) const {
  NOMLOC_REQUIRE(data.size() == n_);
  if (pow2_) {
    Radix2(data, /*inverse=*/true);
  } else {
    Chirp(data, /*inverse=*/true);
  }
}

FftPlanCache& FftPlanCache::Global() {
  static FftPlanCache cache;
  return cache;
}

std::shared_ptr<const FftPlan> FftPlanCache::Plan(std::size_t n) {
  NOMLOC_REQUIRE(n >= 1);
  auto& registry = common::MetricRegistry::Global();
  static auto& hits = registry.Counter("dsp.fft.plan.hits");
  static auto& misses = registry.Counter("dsp.fft.plan.misses");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = plans_.find(n);
    if (it != plans_.end()) {
      hits.Increment();
      return it->second;
    }
  }
  // Build outside the lock: plan construction runs its own FFTs, and two
  // threads racing on the same length build identical plans anyway.
  misses.Increment();
  auto plan = std::make_shared<const FftPlan>(n);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = plans_.emplace(n, std::move(plan));
  (void)inserted;  // The loser adopts the winner's identical plan.
  return it->second;
}

void FftPlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  plans_.clear();
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

std::size_t FftPlanCache::Entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plans_.size();
}

}  // namespace nomloc::dsp
