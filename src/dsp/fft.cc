#include "dsp/fft.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <numbers>

#include "common/assert.h"
#include "common/metrics.h"
#include "dsp/fft_plan.h"
#include "simd/kernels.h"

namespace nomloc::dsp {

std::size_t NextPowerOfTwo(std::size_t n) {
  constexpr std::size_t kLargest =
      std::size_t{1} << (std::numeric_limits<std::size_t>::digits - 1);
  NOMLOC_REQUIRE(n <= kLargest);
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void FftRadix2(std::span<Cplx> data, bool inverse) {
  const std::size_t n = data.size();
  NOMLOC_REQUIRE(IsPowerOfTwo(n));
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * std::numbers::pi / double(len);
    const Cplx wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cplx u = data[i + k];
        const Cplx v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  if (inverse) {
    for (Cplx& x : data) x /= double(n);
  }
}

namespace {

// Plan lookup with a per-thread memo of the last length used: batch
// extraction transforms thousands of same-length frames back to back, so
// the steady state is one compare plus one relaxed load, no lock.
const FftPlan& PlanFor(std::size_t n) {
  thread_local std::shared_ptr<const FftPlan> last;
  thread_local std::uint64_t last_generation = 0;
  FftPlanCache& cache = FftPlanCache::Global();
  const std::uint64_t generation = cache.Generation();
  if (!last || last->Size() != n || last_generation != generation) {
    last = cache.Plan(n);
    last_generation = generation;
  } else {
    // The memo short-circuits the shared cache, so count its hits here —
    // otherwise dsp.fft.plan.hits would read 0 in steady state.
    static auto& memo_hits =
        common::MetricRegistry::Global().Counter("dsp.fft.plan.hits");
    memo_hits.Increment();
  }
  return *last;
}

}  // namespace

void FftInPlace(std::span<Cplx> data) {
  NOMLOC_REQUIRE(!data.empty());
  PlanFor(data.size()).Forward(data);
}

void IfftInPlace(std::span<Cplx> data) {
  NOMLOC_REQUIRE(!data.empty());
  PlanFor(data.size()).Inverse(data);
}

std::vector<Cplx> Fft(std::span<const Cplx> input) {
  std::vector<Cplx> out(input.begin(), input.end());
  FftInPlace(std::span<Cplx>(out));
  return out;
}

std::vector<Cplx> Ifft(std::span<const Cplx> input) {
  std::vector<Cplx> out(input.begin(), input.end());
  IfftInPlace(std::span<Cplx>(out));
  return out;
}

std::vector<Cplx> DftNaive(std::span<const Cplx> input, bool inverse) {
  const std::size_t n = input.size();
  NOMLOC_REQUIRE(n > 0);
  const double sign = inverse ? 1.0 : -1.0;
  std::vector<Cplx> out(n, Cplx(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t t = 0; t < n; ++t) {
      const double ang =
          sign * 2.0 * std::numbers::pi * double(k) * double(t) / double(n);
      out[k] += input[t] * Cplx(std::cos(ang), std::sin(ang));
    }
    if (inverse) out[k] /= double(n);
  }
  return out;
}

std::vector<double> PowerSpectrum(std::span<const Cplx> x) {
  std::vector<double> out;
  PowerSpectrum(x, out);
  return out;
}

void PowerSpectrum(std::span<const Cplx> x, std::vector<double>& out) {
  out.resize(x.size());
  if (!x.empty()) simd::PowerSpectrum(x.size(), x.data(), out.data());
}

std::vector<double> Magnitudes(std::span<const Cplx> x) {
  std::vector<double> out(x.size());
  if (!x.empty()) simd::Magnitudes(x.size(), x.data(), out.data());
  return out;
}

std::vector<double> MovingAverage(std::span<const double> x,
                                  std::size_t half) {
  // O(n) via a prefix-sum: window sum = P[hi+1] - P[lo].  The prefix array
  // accumulates left to right, so each window matches the naive
  // left-to-right summation to rounding.
  std::vector<double> out(x.size(), 0.0);
  const std::ptrdiff_t n = std::ptrdiff_t(x.size());
  const std::ptrdiff_t h = std::ptrdiff_t(half);
  std::vector<double> prefix(x.size() + 1, 0.0);
  for (std::ptrdiff_t i = 0; i < n; ++i)
    prefix[std::size_t(i) + 1] = prefix[std::size_t(i)] + x[std::size_t(i)];
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - h);
    const std::ptrdiff_t hi = std::min(n - 1, i + h);
    const double sum = prefix[std::size_t(hi) + 1] - prefix[std::size_t(lo)];
    out[std::size_t(i)] = sum / double(hi - lo + 1);
  }
  return out;
}

}  // namespace nomloc::dsp
