#include "dsp/fft.h"

#include <cmath>
#include <numbers>

#include "common/assert.h"

namespace nomloc::dsp {

std::size_t NextPowerOfTwo(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void FftRadix2(std::span<Cplx> data, bool inverse) {
  const std::size_t n = data.size();
  NOMLOC_REQUIRE(IsPowerOfTwo(n));
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * std::numbers::pi / double(len);
    const Cplx wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cplx u = data[i + k];
        const Cplx v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  if (inverse) {
    for (Cplx& x : data) x /= double(n);
  }
}

namespace {

// Bluestein's algorithm: DFT of arbitrary N as a convolution, evaluated
// with a power-of-two FFT of length >= 2N-1.
std::vector<Cplx> Bluestein(std::span<const Cplx> input, bool inverse) {
  const std::size_t n = input.size();
  const double sign = inverse ? 1.0 : -1.0;
  const std::size_t m = NextPowerOfTwo(2 * n - 1);

  // Chirp factors: forward uses c_k = e^{-j*pi*k^2/n} so that the kernel
  // e^{-j2pi*kt/n} = c_k c_t conj(c_{k-t}); inverse conjugates everything.
  std::vector<Cplx> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n keeps the angle argument small for large k.
    const double kk = double((k * k) % (2 * n));
    const double ang = sign * std::numbers::pi * kk / double(n);
    chirp[k] = Cplx(std::cos(ang), std::sin(ang));
  }

  std::vector<Cplx> a(m, Cplx(0.0, 0.0));
  std::vector<Cplx> b(m, Cplx(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) a[k] = input[k] * chirp[k];
  for (std::size_t k = 0; k < n; ++k) {
    const Cplx conj = std::conj(chirp[k]);
    b[k] = conj;
    if (k != 0) b[m - k] = conj;
  }

  FftRadix2(a, /*inverse=*/false);
  FftRadix2(b, /*inverse=*/false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  FftRadix2(a, /*inverse=*/true);

  std::vector<Cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * chirp[k];
  if (inverse) {
    for (Cplx& x : out) x /= double(n);
  }
  return out;
}

}  // namespace

std::vector<Cplx> Fft(std::span<const Cplx> input) {
  NOMLOC_REQUIRE(!input.empty());
  if (IsPowerOfTwo(input.size())) {
    std::vector<Cplx> out(input.begin(), input.end());
    FftRadix2(out, /*inverse=*/false);
    return out;
  }
  return Bluestein(input, /*inverse=*/false);
}

std::vector<Cplx> Ifft(std::span<const Cplx> input) {
  NOMLOC_REQUIRE(!input.empty());
  if (IsPowerOfTwo(input.size())) {
    std::vector<Cplx> out(input.begin(), input.end());
    FftRadix2(out, /*inverse=*/true);
    return out;
  }
  return Bluestein(input, /*inverse=*/true);
}

std::vector<Cplx> DftNaive(std::span<const Cplx> input, bool inverse) {
  const std::size_t n = input.size();
  NOMLOC_REQUIRE(n > 0);
  const double sign = inverse ? 1.0 : -1.0;
  std::vector<Cplx> out(n, Cplx(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t t = 0; t < n; ++t) {
      const double ang =
          sign * 2.0 * std::numbers::pi * double(k) * double(t) / double(n);
      out[k] += input[t] * Cplx(std::cos(ang), std::sin(ang));
    }
    if (inverse) out[k] /= double(n);
  }
  return out;
}

std::vector<double> PowerSpectrum(std::span<const Cplx> x) {
  std::vector<double> out;
  out.reserve(x.size());
  for (const Cplx& v : x) out.push_back(std::norm(v));
  return out;
}

std::vector<double> Magnitudes(std::span<const Cplx> x) {
  std::vector<double> out;
  out.reserve(x.size());
  for (const Cplx& v : x) out.push_back(std::abs(v));
  return out;
}

std::vector<double> MovingAverage(std::span<const double> x,
                                  std::size_t half) {
  std::vector<double> out(x.size(), 0.0);
  const std::ptrdiff_t n = std::ptrdiff_t(x.size());
  const std::ptrdiff_t h = std::ptrdiff_t(half);
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - h);
    const std::ptrdiff_t hi = std::min(n - 1, i + h);
    double sum = 0.0;
    for (std::ptrdiff_t j = lo; j <= hi; ++j) sum += x[std::size_t(j)];
    out[std::size_t(i)] = sum / double(hi - lo + 1);
  }
  return out;
}

}  // namespace nomloc::dsp
