// Channel impulse response and power-of-direct-path (PDP) extraction.
//
// Paper §IV-A: frequency-domain CSI is IFFT'd into the time-domain channel
// impulse response; the *power of the direct path* is approximated by the
// maximum tap of the power-delay profile, which is robust to NLOS (the
// attenuated first tap is simply no longer the maximum) and filters
// multipath (all other reflections are ignored).
#pragma once

#include <span>
#include <vector>

#include "common/status.h"
#include "dsp/csi.h"

namespace nomloc::dsp {

/// Time-domain taps obtained from one CSI frame.
struct ChannelImpulseResponse {
  std::vector<Cplx> taps;   ///< h[n], n = 0..fft_size-1.
  double tap_spacing_s = 0; ///< Delay resolution, 1/bandwidth (50 ns @20 MHz).

  /// |h[n]|^2 series (the power-delay profile).
  std::vector<double> PowerProfile() const;
  /// Delay of tap n in seconds.
  double DelayOf(std::size_t n) const noexcept {
    return double(n) * tap_spacing_s;
  }
};

/// IFFT of the frame placed on its full FFT grid.  `bandwidth_hz` sets the
/// tap spacing (fft_size bins span exactly the channel bandwidth).
ChannelImpulseResponse CsiToCir(const CsiFrame& frame, double bandwidth_hz);

/// CsiToCir into a caller-owned CIR: `out.taps` is reused as the FFT grid
/// and transformed in place (plan-cached, see dsp/fft_plan.h), so batch
/// extraction performs zero per-frame allocations in steady state.
/// Bit-identical to the allocating overload.
void CsiToCir(const CsiFrame& frame, double bandwidth_hz,
              ChannelImpulseResponse& out);

/// How PdpEstimate picks the direct-path power from a power profile.
enum class PdpMethod {
  kMaxTap,     ///< Paper's choice: max |h[n]|^2.
  kFirstPath,  ///< First tap within `first_path_threshold_db` of the max.
  kTotalPower, ///< Sum over all taps (RSS-like; ablation baseline).
};

struct PdpOptions {
  PdpMethod method = PdpMethod::kMaxTap;
  /// kFirstPath: a tap counts as the first path when its power is within
  /// this many dB below the profile maximum.
  double first_path_threshold_db = 10.0;
};

/// Direct-path power of one CIR according to `options`.  Requires
/// non-empty taps.
double PdpOfCir(const ChannelImpulseResponse& cir, const PdpOptions& options);

/// The PDP pick applied directly to a |h[n]|^2 power profile (what
/// PdpOfCir computes after squaring the taps).  Requires a non-empty
/// profile.  Exposed so batch loops can reuse one profile buffer.
double PdpOfProfile(std::span<const double> profile,
                    const PdpOptions& options);

/// Averages the PDP over a batch of CSI frames (one per received packet).
/// Frames are converted to CIRs individually so per-packet noise and
/// fading average out, mirroring the paper's thousands-of-PINGs procedure.
/// Requires a non-empty batch.
double PdpOfBatch(std::span<const CsiFrame> frames, double bandwidth_hz,
                  const PdpOptions& options = {});

/// PdpOfBatch with input hardening for untrusted capture data: a batch
/// whose CSI values contain NaN/Inf, or whose frames are entirely zero
/// (no channel energy — the PDP would be 0 and the pairwise ratio
/// w_ij = f(P_i/P_j) downstream would divide by it), yields a typed
/// kDataCorruption error instead of propagating NaN into the judgement
/// weights.  Every rejected batch increments the `pdp.rejected_links`
/// counter.  Bit-identical to PdpOfBatch on healthy input.
common::Result<double> PdpOfBatchChecked(std::span<const CsiFrame> frames,
                                         double bandwidth_hz,
                                         const PdpOptions& options = {});

/// Multi-antenna PDP with non-coherent combining: per packet, the
/// antennas' power-delay profiles are summed tap-by-tap before the pick
/// (so a fade on one antenna is covered by the others), then averaged
/// across packets.  Each element of `packets` is one packet's frames, one
/// per antenna; all packets must have the same non-zero antenna count and
/// identical grids.
double PdpOfMimoBatch(std::span<const std::vector<CsiFrame>> packets,
                      double bandwidth_hz, const PdpOptions& options = {});

}  // namespace nomloc::dsp
