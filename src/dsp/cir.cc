#include "dsp/cir.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/metrics.h"
#include "common/units.h"
#include "dsp/fft.h"

namespace nomloc::dsp {

std::vector<double> ChannelImpulseResponse::PowerProfile() const {
  return PowerSpectrum(taps);
}

ChannelImpulseResponse CsiToCir(const CsiFrame& frame, double bandwidth_hz) {
  NOMLOC_REQUIRE(bandwidth_hz > 0.0);
  ChannelImpulseResponse cir;
  cir.taps = Ifft(frame.ToFftGrid());
  cir.tap_spacing_s = 1.0 / bandwidth_hz;
  return cir;
}

double PdpOfCir(const ChannelImpulseResponse& cir, const PdpOptions& options) {
  NOMLOC_REQUIRE(!cir.taps.empty());
  const std::vector<double> profile = cir.PowerProfile();
  switch (options.method) {
    case PdpMethod::kMaxTap:
      return *std::max_element(profile.begin(), profile.end());
    case PdpMethod::kFirstPath: {
      const double peak = *std::max_element(profile.begin(), profile.end());
      const double floor =
          peak * common::FromDb(-options.first_path_threshold_db);
      for (double p : profile)
        if (p >= floor) return p;
      return peak;  // Unreachable unless profile is all zero.
    }
    case PdpMethod::kTotalPower: {
      double sum = 0.0;
      for (double p : profile) sum += p;
      return sum;
    }
  }
  NOMLOC_ASSERT(false);
  return 0.0;
}

double PdpOfBatch(std::span<const CsiFrame> frames, double bandwidth_hz,
                  const PdpOptions& options) {
  NOMLOC_REQUIRE(!frames.empty());
  auto& registry = common::MetricRegistry::Global();
  static auto& batches = registry.Counter("dsp.pdp.batches", "mode=siso");
  static auto& frame_count = registry.Counter("dsp.pdp.frames");
  static auto& extract_timer = registry.Timer("dsp.pdp.extract");
  common::StageTrace trace(extract_timer);
  batches.Increment();
  frame_count.Increment(frames.size());
  double acc = 0.0;
  for (const CsiFrame& frame : frames)
    acc += PdpOfCir(CsiToCir(frame, bandwidth_hz), options);
  return acc / double(frames.size());
}

double PdpOfMimoBatch(std::span<const std::vector<CsiFrame>> packets,
                      double bandwidth_hz, const PdpOptions& options) {
  NOMLOC_REQUIRE(!packets.empty());
  const std::size_t antennas = packets.front().size();
  NOMLOC_REQUIRE(antennas >= 1);
  auto& registry = common::MetricRegistry::Global();
  static auto& batches = registry.Counter("dsp.pdp.batches", "mode=mimo");
  static auto& frame_count = registry.Counter("dsp.pdp.frames");
  static auto& extract_timer = registry.Timer("dsp.pdp.extract");
  common::StageTrace trace(extract_timer);
  batches.Increment();
  frame_count.Increment(packets.size() * antennas);
  double acc = 0.0;
  for (const std::vector<CsiFrame>& packet : packets) {
    NOMLOC_REQUIRE(packet.size() == antennas);
    // Sum the antennas' power profiles tap-by-tap (non-coherent MRC).
    ChannelImpulseResponse combined = CsiToCir(packet.front(), bandwidth_hz);
    std::vector<double> profile = combined.PowerProfile();
    for (std::size_t a = 1; a < antennas; ++a) {
      const auto cir = CsiToCir(packet[a], bandwidth_hz);
      NOMLOC_REQUIRE(cir.taps.size() == profile.size());
      const auto extra = cir.PowerProfile();
      for (std::size_t n = 0; n < profile.size(); ++n)
        profile[n] += extra[n];
    }
    // Re-run the picker on the combined profile via a synthetic CIR whose
    // tap magnitudes encode the summed powers.
    ChannelImpulseResponse synthetic;
    synthetic.tap_spacing_s = combined.tap_spacing_s;
    synthetic.taps.reserve(profile.size());
    for (double p : profile)
      synthetic.taps.emplace_back(std::sqrt(p), 0.0);
    acc += PdpOfCir(synthetic, options) / double(antennas);
  }
  return acc / double(packets.size());
}

}  // namespace nomloc::dsp
