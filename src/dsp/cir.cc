#include "dsp/cir.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/assert.h"
#include "common/metrics.h"
#include "common/units.h"
#include "dsp/fft.h"
#include "simd/kernels.h"

namespace nomloc::dsp {

namespace {

// Fused tap->PDP extraction: max-tap and total-power reduce straight over
// the complex taps (simd::MaxNorm / simd::SumNorm), skipping the profile
// materialization entirely.  First-path needs the full profile for the
// threshold scan, so it keeps the two-step shape.  Values are identical to
// PowerSpectrum + PdpOfProfile: the reductions visit the same per-tap
// norms in the same order.
double PdpOfTaps(std::span<const Cplx> taps, const PdpOptions& options,
                 std::vector<double>& profile) {
  NOMLOC_REQUIRE(!taps.empty());
  switch (options.method) {
    case PdpMethod::kMaxTap:
      return simd::MaxNorm(taps.size(), taps.data());
    case PdpMethod::kTotalPower:
      return simd::SumNorm(taps.size(), taps.data());
    case PdpMethod::kFirstPath:
      PowerSpectrum(taps, profile);
      return PdpOfProfile(profile, options);
  }
  NOMLOC_ASSERT(false);
  return 0.0;
}

}  // namespace

std::vector<double> ChannelImpulseResponse::PowerProfile() const {
  return PowerSpectrum(taps);
}

ChannelImpulseResponse CsiToCir(const CsiFrame& frame, double bandwidth_hz) {
  ChannelImpulseResponse cir;
  CsiToCir(frame, bandwidth_hz, cir);
  return cir;
}

void CsiToCir(const CsiFrame& frame, double bandwidth_hz,
              ChannelImpulseResponse& out) {
  NOMLOC_REQUIRE(bandwidth_hz > 0.0);
  frame.ToFftGrid(out.taps);
  IfftInPlace(std::span<Cplx>(out.taps));
  out.tap_spacing_s = 1.0 / bandwidth_hz;
}

double PdpOfCir(const ChannelImpulseResponse& cir, const PdpOptions& options) {
  NOMLOC_REQUIRE(!cir.taps.empty());
  std::vector<double> profile;
  return PdpOfTaps(cir.taps, options, profile);
}

double PdpOfProfile(std::span<const double> profile,
                    const PdpOptions& options) {
  NOMLOC_REQUIRE(!profile.empty());
  switch (options.method) {
    case PdpMethod::kMaxTap:
      return *std::max_element(profile.begin(), profile.end());
    case PdpMethod::kFirstPath: {
      const double peak = *std::max_element(profile.begin(), profile.end());
      const double floor =
          peak * common::FromDb(-options.first_path_threshold_db);
      for (double p : profile)
        if (p >= floor) return p;
      return peak;  // Unreachable unless profile is all zero.
    }
    case PdpMethod::kTotalPower: {
      double sum = 0.0;
      for (double p : profile) sum += p;
      return sum;
    }
  }
  NOMLOC_ASSERT(false);
  return 0.0;
}

double PdpOfBatch(std::span<const CsiFrame> frames, double bandwidth_hz,
                  const PdpOptions& options) {
  NOMLOC_REQUIRE(!frames.empty());
  auto& registry = common::MetricRegistry::Global();
  static auto& batches = registry.Counter("dsp.pdp.batches", "mode=siso");
  static auto& frame_count = registry.Counter("dsp.pdp.frames");
  static auto& extract_timer = registry.Timer("dsp.pdp.extract");
  common::StageTrace trace(extract_timer);
  batches.Increment();
  frame_count.Increment(frames.size());
  // Grid, tap, and profile buffers are shared across the whole batch.
  ChannelImpulseResponse cir;
  std::vector<double> profile;
  double acc = 0.0;
  for (const CsiFrame& frame : frames) {
    CsiToCir(frame, bandwidth_hz, cir);
    acc += PdpOfTaps(cir.taps, options, profile);
  }
  return acc / double(frames.size());
}

common::Result<double> PdpOfBatchChecked(std::span<const CsiFrame> frames,
                                         double bandwidth_hz,
                                         const PdpOptions& options) {
  auto& registry = common::MetricRegistry::Global();
  static auto& rejected = registry.Counter("pdp.rejected_links");
  if (frames.empty()) return common::InvalidArgument("empty CSI batch");
  if (bandwidth_hz <= 0.0)
    return common::InvalidArgument("bandwidth must be positive");
  for (std::size_t f = 0; f < frames.size(); ++f) {
    bool any_energy = false;
    for (const Cplx& v : frames[f].Values()) {
      if (!std::isfinite(v.real()) || !std::isfinite(v.imag())) {
        rejected.Increment();
        return common::DataCorruption("non-finite CSI value in frame " +
                                      std::to_string(f));
      }
      if (v != Cplx{0.0, 0.0}) any_energy = true;
    }
    if (!any_energy) {
      rejected.Increment();
      return common::DataCorruption("all-zero CSI frame " +
                                    std::to_string(f) +
                                    " — PDP would be zero");
    }
  }
  // FFT of finite input is finite, so the batch mean needs no re-check;
  // the all-zero guard above already rules out a zero PDP for kMaxTap and
  // kTotalPower (some tap carries the frame's energy).
  return PdpOfBatch(frames, bandwidth_hz, options);
}

double PdpOfMimoBatch(std::span<const std::vector<CsiFrame>> packets,
                      double bandwidth_hz, const PdpOptions& options) {
  NOMLOC_REQUIRE(!packets.empty());
  const std::size_t antennas = packets.front().size();
  NOMLOC_REQUIRE(antennas >= 1);
  auto& registry = common::MetricRegistry::Global();
  static auto& batches = registry.Counter("dsp.pdp.batches", "mode=mimo");
  static auto& frame_count = registry.Counter("dsp.pdp.frames");
  static auto& extract_timer = registry.Timer("dsp.pdp.extract");
  common::StageTrace trace(extract_timer);
  batches.Increment();
  frame_count.Increment(packets.size() * antennas);
  // All buffers shared across packets and antennas.
  ChannelImpulseResponse cir;
  std::vector<double> profile, scratch;
  double acc = 0.0;
  for (const std::vector<CsiFrame>& packet : packets) {
    NOMLOC_REQUIRE(packet.size() == antennas);
    if (antennas == 1) {
      CsiToCir(packet.front(), bandwidth_hz, cir);
      acc += PdpOfTaps(cir.taps, options, scratch);
      continue;
    }
    // Sum the antennas' power profiles tap-by-tap (non-coherent MRC),
    // then run the picker on the combined profile.  The accumulation is
    // fused into the spectrum kernel (no per-antenna scratch profile).
    CsiToCir(packet.front(), bandwidth_hz, cir);
    PowerSpectrum(cir.taps, profile);
    for (std::size_t a = 1; a < antennas; ++a) {
      CsiToCir(packet[a], bandwidth_hz, cir);
      NOMLOC_REQUIRE(cir.taps.size() == profile.size());
      simd::PowerSpectrumAdd(cir.taps.size(), cir.taps.data(),
                             profile.data());
    }
    acc += PdpOfProfile(profile, options) / double(antennas);
  }
  return acc / double(packets.size());
}

}  // namespace nomloc::dsp
