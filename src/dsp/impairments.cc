#include "dsp/impairments.h"

#include <cmath>
#include <numbers>

#include "common/assert.h"

namespace nomloc::dsp {

CsiFrame ApplyImpairments(const CsiFrame& frame, const ImpairmentConfig& cfg,
                          common::Rng& rng) {
  NOMLOC_REQUIRE(cfg.max_phase_slope_rad >= 0.0);
  NOMLOC_REQUIRE(cfg.agc_jitter >= 0.0);

  const double common_phase =
      cfg.random_common_phase ? rng.UniformAngle() : 0.0;
  const double slope =
      rng.Uniform(-cfg.max_phase_slope_rad, cfg.max_phase_slope_rad);
  double gain = 1.0;
  if (cfg.agc_jitter > 0.0) {
    const double hi = std::log(1.0 + cfg.agc_jitter);
    gain = std::exp(rng.Uniform(-hi, hi));
  }

  std::vector<int> indices(frame.Indices().begin(), frame.Indices().end());
  std::vector<Cplx> values(frame.Values().begin(), frame.Values().end());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const double ang = common_phase + slope * double(indices[i]);
    values[i] *= gain * Cplx(std::cos(ang), std::sin(ang));
  }
  auto out = CsiFrame::Create(std::move(indices), std::move(values),
                              frame.FftSize());
  NOMLOC_ASSERT(out.ok());
  return std::move(out).value();
}

std::vector<double> UnwrapPhase(std::span<const double> phase) {
  std::vector<double> out(phase.begin(), phase.end());
  for (std::size_t i = 1; i < out.size(); ++i) {
    double delta = out[i] - out[i - 1];
    while (delta > std::numbers::pi) {
      out[i] -= 2.0 * std::numbers::pi;
      delta = out[i] - out[i - 1];
    }
    while (delta < -std::numbers::pi) {
      out[i] += 2.0 * std::numbers::pi;
      delta = out[i] - out[i - 1];
    }
  }
  return out;
}

CsiFrame SanitizePhase(const CsiFrame& frame, double target_power) {
  const auto idx = frame.Indices();
  const auto vals = frame.Values();
  const std::size_t n = idx.size();
  NOMLOC_REQUIRE(n >= 2);

  std::vector<double> phase(n);
  for (std::size_t i = 0; i < n; ++i) phase[i] = std::arg(vals[i]);
  const std::vector<double> unwrapped = UnwrapPhase(phase);

  // Least-squares fit phase ~ a + b * k over subcarrier index k.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = double(idx[i]);
    sx += x;
    sy += unwrapped[i];
    sxx += x * x;
    sxy += x * unwrapped[i];
  }
  const double denom = double(n) * sxx - sx * sx;
  const double b = denom != 0.0 ? (double(n) * sxy - sx * sy) / denom : 0.0;
  const double a = (sy - b * sx) / double(n);

  double scale = 1.0;
  if (target_power > 0.0) {
    const double power = frame.TotalPower();
    if (power > 0.0) scale = std::sqrt(target_power / power);
  }

  std::vector<int> out_idx(idx.begin(), idx.end());
  std::vector<Cplx> out_vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = -(a + b * double(idx[i]));
    out_vals[i] = vals[i] * scale * Cplx(std::cos(ang), std::sin(ang));
  }
  auto out = CsiFrame::Create(std::move(out_idx), std::move(out_vals),
                              frame.FftSize());
  NOMLOC_ASSERT(out.ok());
  return std::move(out).value();
}

}  // namespace nomloc::dsp
