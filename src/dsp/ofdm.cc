#include "dsp/ofdm.h"

#include <cmath>

#include "common/assert.h"
#include "dsp/fft.h"

namespace nomloc::dsp {

namespace {

common::Status ValidateConfig(const OfdmConfig& config) {
  if (config.fft_size < 2 || !IsPowerOfTwo(std::size_t(config.fft_size)))
    return common::InvalidArgument("fft_size must be a power of two >= 2");
  if (config.cyclic_prefix < 0 || config.cyclic_prefix >= config.fft_size)
    return common::InvalidArgument("cyclic prefix out of range");
  if (config.subcarriers.empty())
    return common::InvalidArgument("no occupied subcarriers");
  for (int k : config.subcarriers)
    if (k == 0 || k < -config.fft_size / 2 || k >= config.fft_size / 2)
      return common::InvalidArgument("bad subcarrier index");
  return common::Status::Ok();
}

// One OFDM symbol: values on the occupied subcarriers -> time samples
// with cyclic prefix appended in front.  `grid` is caller-owned scratch
// reused across symbols (and transformed in place).
void EmitSymbol(std::span<const Cplx> values, const OfdmConfig& config,
                std::vector<Cplx>& grid, std::vector<Cplx>* out) {
  grid.assign(std::size_t(config.fft_size), Cplx(0.0, 0.0));
  for (std::size_t i = 0; i < config.subcarriers.size(); ++i) {
    const int k = config.subcarriers[i];
    const int bin = k >= 0 ? k : config.fft_size + k;
    grid[std::size_t(bin)] = i < values.size() ? values[i] : Cplx(0.0, 0.0);
  }
  IfftInPlace(std::span<Cplx>(grid));
  // Cyclic prefix: the tail of the symbol precedes it.
  for (int n = config.fft_size - config.cyclic_prefix; n < config.fft_size;
       ++n)
    out->push_back(grid[std::size_t(n)]);
  out->insert(out->end(), grid.begin(), grid.end());
}

}  // namespace

std::vector<Cplx> TrainingSequence(const OfdmConfig& config) {
  std::vector<Cplx> training;
  training.reserve(config.subcarriers.size());
  // Deterministic +-1 pattern derived from the subcarrier index — any
  // fixed full-power sequence works for LS estimation.
  for (int k : config.subcarriers) {
    std::uint64_t h = std::uint64_t(std::int64_t(k) + 1000);
    const std::uint64_t bit = common::SplitMix64(h) & 1u;
    training.emplace_back(bit ? 1.0 : -1.0, 0.0);
  }
  return training;
}

common::Result<OfdmBurst> ModulateBurst(std::span<const Cplx> payload,
                                        const OfdmConfig& config) {
  NOMLOC_RETURN_IF_ERROR(ValidateConfig(config));
  if (payload.empty()) return common::InvalidArgument("empty payload");

  const std::size_t per_symbol = config.subcarriers.size();
  const std::size_t data_symbols =
      (payload.size() + per_symbol - 1) / per_symbol;

  OfdmBurst burst;
  burst.data_symbols.assign(payload.begin(), payload.end());
  burst.data_symbol_count = data_symbols;
  burst.waveform.reserve((data_symbols + 1) *
                         std::size_t(config.fft_size + config.cyclic_prefix));

  std::vector<Cplx> grid;
  EmitSymbol(TrainingSequence(config), config, grid, &burst.waveform);
  for (std::size_t s = 0; s < data_symbols; ++s) {
    const std::size_t begin = s * per_symbol;
    const std::size_t count = std::min(per_symbol, payload.size() - begin);
    EmitSymbol(payload.subspan(begin, count), config, grid, &burst.waveform);
  }
  return burst;
}

std::vector<Cplx> ApplyChannel(std::span<const Cplx> waveform,
                               std::span<const Cplx> taps,
                               double noise_variance, common::Rng& rng) {
  NOMLOC_REQUIRE(!taps.empty());
  NOMLOC_REQUIRE(noise_variance >= 0.0);
  std::vector<Cplx> out(waveform.size() + taps.size() - 1, Cplx(0.0, 0.0));
  for (std::size_t n = 0; n < waveform.size(); ++n) {
    const Cplx x = waveform[n];
    if (x == Cplx(0.0, 0.0)) continue;
    for (std::size_t k = 0; k < taps.size(); ++k) out[n + k] += x * taps[k];
  }
  if (noise_variance > 0.0)
    for (Cplx& y : out) y += rng.ComplexGaussian(noise_variance);
  return out;
}

common::Result<DemodResult> DemodulateBurst(std::span<const Cplx> rx,
                                            std::size_t data_symbols,
                                            const OfdmConfig& config) {
  NOMLOC_RETURN_IF_ERROR(ValidateConfig(config));
  const std::size_t symbol_len =
      std::size_t(config.fft_size + config.cyclic_prefix);
  const std::size_t needed = (data_symbols + 1) * symbol_len;
  if (rx.size() < needed)
    return common::InvalidArgument("received waveform too short");

  auto fft_of_symbol = [&](std::size_t index) {
    const std::size_t start =
        index * symbol_len + std::size_t(config.cyclic_prefix);
    std::vector<Cplx> window(rx.begin() + std::ptrdiff_t(start),
                             rx.begin() + std::ptrdiff_t(start) +
                                 config.fft_size);
    FftInPlace(std::span<Cplx>(window));
    return window;
  };
  auto occupied = [&](const std::vector<Cplx>& grid) {
    std::vector<Cplx> vals;
    vals.reserve(config.subcarriers.size());
    for (int k : config.subcarriers) {
      const int bin = k >= 0 ? k : config.fft_size + k;
      vals.push_back(grid[std::size_t(bin)]);
    }
    return vals;
  };

  // LS channel estimate from the training symbol: H = Y / T.
  const std::vector<Cplx> training = TrainingSequence(config);
  const std::vector<Cplx> y_train = occupied(fft_of_symbol(0));
  std::vector<Cplx> h(training.size());
  for (std::size_t i = 0; i < training.size(); ++i)
    h[i] = y_train[i] / training[i];

  NOMLOC_ASSIGN_OR_RETURN(
      CsiFrame csi, CsiFrame::Create(config.subcarriers, h, config.fft_size));

  // Zero-forcing equalisation of the data symbols.
  std::vector<Cplx> symbols;
  symbols.reserve(data_symbols * config.subcarriers.size());
  for (std::size_t s = 0; s < data_symbols; ++s) {
    const std::vector<Cplx> y = occupied(fft_of_symbol(s + 1));
    for (std::size_t i = 0; i < y.size(); ++i) {
      const Cplx hv = h[i];
      symbols.push_back(std::abs(hv) > 1e-12 ? y[i] / hv : Cplx(0.0, 0.0));
    }
  }
  return DemodResult{std::move(csi), std::move(symbols)};
}

}  // namespace nomloc::dsp
