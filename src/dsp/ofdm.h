// OFDM modem + preamble-based channel estimation — the physical origin of
// CSI.
//
// Everywhere else in the library, CSI frames are synthesised directly from
// the channel's frequency response.  Real hardware (the paper's Intel
// 5300) obtains them by transmitting a *known training symbol* (the 802.11
// long training field, LTF) and dividing the received subcarriers by it.
// This module implements that chain —
//
//   TX:  known LTF + data symbols -> subcarrier mapping -> IFFT -> cyclic
//        prefix -> time-domain waveform
//   RX:  CP removal -> FFT -> LS channel estimate from the LTF -> (zero-
//        forcing) equalisation of the data symbols
//
// — so the CSI pipeline can be validated against the full measurement
// path (tests and bench/abl_phy) instead of assuming the oracle shortcut.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"
#include "dsp/csi.h"
#include "dsp/modulation.h"

namespace nomloc::dsp {

struct OfdmConfig {
  int fft_size = common::kOfdmFftSize;
  /// Cyclic-prefix length in samples (802.11: 16 at 64-FFT).
  int cyclic_prefix = 16;
  /// Occupied subcarrier indices (default: the HT20 set).
  std::vector<int> subcarriers = CsiFrame::Ht20Indices();
};

/// A transmitted OFDM burst: the known training symbol followed by data
/// symbols, as one concatenated time-domain waveform.
struct OfdmBurst {
  std::vector<Cplx> waveform;      ///< Time-domain samples.
  std::vector<Cplx> data_symbols;  ///< The modulated payload, for reference.
  std::size_t data_symbol_count = 0;
};

/// The deterministic LTF training values (+-1 BPSK per subcarrier, fixed
/// pseudo-random sign pattern), indexed like config.subcarriers.
std::vector<Cplx> TrainingSequence(const OfdmConfig& config);

/// Modulates one training symbol plus ceil(len/carriers) data symbols.
/// `payload` symbols are laid onto the occupied subcarriers in order,
/// zero-padded in the final symbol.  Fails on empty payload/bad config.
common::Result<OfdmBurst> ModulateBurst(std::span<const Cplx> payload,
                                        const OfdmConfig& config);

/// Applies a multipath channel to a waveform: linear convolution with the
/// given impulse response taps plus AWGN of the given per-sample variance.
std::vector<Cplx> ApplyChannel(std::span<const Cplx> waveform,
                               std::span<const Cplx> taps,
                               double noise_variance, common::Rng& rng);

struct DemodResult {
  /// LS channel estimate at the occupied subcarriers (a CSI frame — this
  /// is exactly what the Intel 5300 driver exports).
  CsiFrame csi;
  /// Zero-forcing equalised data symbols.
  std::vector<Cplx> symbols;
};

/// Demodulates a burst produced by ModulateBurst after channel distortion.
/// `rx` must contain at least the burst's sample count; `data_symbols`
/// tells the receiver how many data symbols follow the training symbol.
common::Result<DemodResult> DemodulateBurst(std::span<const Cplx> rx,
                                            std::size_t data_symbols,
                                            const OfdmConfig& config);

}  // namespace nomloc::dsp
