#include "dsp/modulation.h"

#include <cmath>

#include "common/assert.h"
#include "common/rng.h"

namespace nomloc::dsp {

int BitsPerSymbol(Modulation modulation) noexcept {
  switch (modulation) {
    case Modulation::kBpsk: return 1;
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
  }
  return 1;
}

namespace {

// Gray-coded PAM level for 2 bits: 00 -> -3, 01 -> -1, 11 -> +1, 10 -> +3.
double Pam4Level(bool b0, bool b1) {
  if (!b0) return b1 ? -1.0 : -3.0;
  return b1 ? 1.0 : 3.0;
}

// Inverse: hard decision on a PAM-4 axis, returning the Gray bits.
void Pam4Bits(double v, bool* b0, bool* b1) {
  if (v < -2.0) {
    *b0 = false;
    *b1 = false;
  } else if (v < 0.0) {
    *b0 = false;
    *b1 = true;
  } else if (v < 2.0) {
    *b0 = true;
    *b1 = true;
  } else {
    *b0 = true;
    *b1 = false;
  }
}

// Unit-average-energy scale for 16-QAM (E[|s|^2] = 10 for +-1/+-3 grid).
const double kQam16Scale = 1.0 / std::sqrt(10.0);
const double kQpskScale = 1.0 / std::sqrt(2.0);

}  // namespace

common::Result<std::vector<Cplx>> ModulateBits(std::span<const std::uint8_t> bits,
                                               Modulation modulation) {
  const int bps = BitsPerSymbol(modulation);
  if (bits.empty() || bits.size() % std::size_t(bps) != 0)
    return common::InvalidArgument(
        "bit count must be a positive multiple of bits-per-symbol");

  std::vector<Cplx> symbols;
  symbols.reserve(bits.size() / std::size_t(bps));
  for (std::size_t i = 0; i < bits.size(); i += std::size_t(bps)) {
    switch (modulation) {
      case Modulation::kBpsk:
        symbols.emplace_back(bits[i] ? 1.0 : -1.0, 0.0);
        break;
      case Modulation::kQpsk:
        symbols.emplace_back((bits[i] ? 1.0 : -1.0) * kQpskScale,
                             (bits[i + 1] ? 1.0 : -1.0) * kQpskScale);
        break;
      case Modulation::kQam16:
        symbols.emplace_back(
            Pam4Level(bits[i], bits[i + 1]) * kQam16Scale,
            Pam4Level(bits[i + 2], bits[i + 3]) * kQam16Scale);
        break;
    }
  }
  return symbols;
}

std::vector<std::uint8_t> DemodulateSymbols(std::span<const Cplx> symbols,
                                    Modulation modulation) {
  std::vector<std::uint8_t> bits;
  bits.reserve(symbols.size() * std::size_t(BitsPerSymbol(modulation)));
  for (const Cplx& s : symbols) {
    switch (modulation) {
      case Modulation::kBpsk:
        bits.push_back(s.real() >= 0.0 ? 1 : 0);
        break;
      case Modulation::kQpsk:
        bits.push_back(s.real() >= 0.0 ? 1 : 0);
        bits.push_back(s.imag() >= 0.0 ? 1 : 0);
        break;
      case Modulation::kQam16: {
        bool b0, b1, b2, b3;
        Pam4Bits(s.real() / kQam16Scale, &b0, &b1);
        Pam4Bits(s.imag() / kQam16Scale, &b2, &b3);
        bits.push_back(b0 ? 1 : 0);
        bits.push_back(b1 ? 1 : 0);
        bits.push_back(b2 ? 1 : 0);
        bits.push_back(b3 ? 1 : 0);
        break;
      }
    }
  }
  return bits;
}

double BitErrorRate(std::span<const std::uint8_t> sent,
                    std::span<const std::uint8_t> got) {
  NOMLOC_REQUIRE(!sent.empty());
  NOMLOC_REQUIRE(sent.size() == got.size());
  std::size_t errors = 0;
  for (std::size_t i = 0; i < sent.size(); ++i)
    if (sent[i] != got[i]) ++errors;
  return double(errors) / double(sent.size());
}

std::vector<std::uint8_t> RandomBits(std::size_t count, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::uint8_t> bits(count);
  for (std::size_t i = 0; i < count; ++i)
    bits[i] = rng.Bernoulli(0.5) ? 1 : 0;
  return bits;
}

}  // namespace nomloc::dsp
