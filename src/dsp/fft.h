// Discrete Fourier transforms.
//
// Radix-2 iterative Cooley–Tukey for power-of-two lengths and Bluestein's
// chirp-z algorithm for arbitrary lengths, so callers never need to care
// about N.  Forward transform uses the e^{-j2πkn/N} convention; the inverse
// divides by N (round-trip is the identity).
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace nomloc::dsp {

using Cplx = std::complex<double>;

/// True when n is a power of two (n >= 1).
constexpr bool IsPowerOfTwo(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n.  Requires n to be representable, i.e.
/// n <= 2^(bits-1) — larger n has no power-of-two ceiling in std::size_t
/// (the doubling search would otherwise overflow to 0 and spin forever).
std::size_t NextPowerOfTwo(std::size_t n);

/// In-place radix-2 FFT.  Requires power-of-two size.
/// `inverse` selects the inverse transform (includes the 1/N scale).
void FftRadix2(std::span<Cplx> data, bool inverse);

/// In-place forward DFT of arbitrary length.  Uses the process-wide
/// FftPlanCache (dsp/fft_plan.h): after the first transform of a given
/// length all twiddle/bit-reversal/chirp work is table lookups and, for
/// power-of-two lengths, nothing is allocated.  (Named rather than an
/// Fft overload: a span<Cplx> argument would make calls with non-const
/// vectors ambiguous against the span<const Cplx> version.)
void FftInPlace(std::span<Cplx> data);

/// In-place inverse DFT of arbitrary length (scaled by 1/N).  Plan-cached
/// like FftInPlace.
void IfftInPlace(std::span<Cplx> data);

/// Forward DFT of arbitrary length (radix-2 fast path, Bluestein
/// otherwise).  Allocating convenience wrapper over the in-place overload;
/// both produce bit-identical results for a given length.
std::vector<Cplx> Fft(std::span<const Cplx> input);

/// Inverse DFT of arbitrary length (scaled by 1/N).
std::vector<Cplx> Ifft(std::span<const Cplx> input);

/// Naive O(N^2) DFT — reference implementation for tests.
std::vector<Cplx> DftNaive(std::span<const Cplx> input, bool inverse);

/// Elementwise |x|^2.
std::vector<double> PowerSpectrum(std::span<const Cplx> x);

/// PowerSpectrum into a caller-owned buffer (resized to x.size()), for
/// allocation-free batch loops.
void PowerSpectrum(std::span<const Cplx> x, std::vector<double>& out);

/// Elementwise |x|.
std::vector<double> Magnitudes(std::span<const Cplx> x);

/// Centered moving average with window 2*half+1 (edges shrink the window).
std::vector<double> MovingAverage(std::span<const double> x, std::size_t half);

}  // namespace nomloc::dsp
