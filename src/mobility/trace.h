// Nomadic-AP movement traces over a discrete site set, plus position-error
// injection (paper §V-E evaluates robustness to nomadic-AP position error
// by adding uniform random error of range ER to the reported coordinates).
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "geometry/vec2.h"
#include "mobility/markov.h"

namespace nomloc::mobility {

/// Which movement pattern drives the nomadic AP — the paper evaluates the
/// Markov random walk and names "impact of moving patterns" as future
/// work; the others feed that ablation (bench/abl_mobility_pattern).
enum class MobilityPattern {
  kMarkovWalk,   ///< Paper's model: uniform random walk on the site graph.
  kStayBiased,   ///< Sluggish carrier: high self-loop probability.
  kPatrol,       ///< Deterministic cycle through the sites.
  kStationary,   ///< Never leaves the home site (degenerates to static).
};

/// One dwell of the nomadic AP: where it truly was and where it *said* it
/// was (reported position includes the injected position error).
struct DwellRecord {
  std::size_t site_index = 0;
  geometry::Vec2 true_position;
  geometry::Vec2 reported_position;
};

/// How reported positions deviate from the truth.
enum class PositionErrorModel {
  /// The paper's §V-E model: independent uniform error within a disc of
  /// radius position_error_m at every dwell.
  kUniformDisc,
  /// Dead-reckoning: the carrier's self-localization (IMU/step counting)
  /// drifts as it walks — error accumulates as a Gaussian random walk of
  /// `odometry_drift_per_m` per metre travelled, and resets at the home
  /// site (a known calibration point, paper §III-B's "complementary
  /// technologies like Bluetooth, RFID").
  kDeadReckoning,
};

struct TraceConfig {
  MobilityPattern pattern = MobilityPattern::kMarkovWalk;
  /// Number of dwell segments to simulate (measurements happen per dwell).
  std::size_t dwell_count = 8;
  PositionErrorModel error_model = PositionErrorModel::kUniformDisc;
  /// kUniformDisc: radius of the uniform-disc error added to reported
  /// positions [m] (the paper's ER knob, 0–3 m).
  double position_error_m = 0.0;
  /// kDeadReckoning: per-axis drift standard deviation per metre walked
  /// [m/sqrt(m)-ish; Gaussian increments scaled by sqrt(distance)].
  double odometry_drift_per_m = 0.0;
  /// Self-loop probability for kStayBiased.
  double stay_probability = 0.6;
};

/// Adds a uniform error within a disc of radius `radius_m` to `p`.
geometry::Vec2 AddUniformDiscError(geometry::Vec2 p, double radius_m,
                                   common::Rng& rng);

/// Generates a nomadic trace over `sites` starting from sites[0] (the home
/// site).  Requires a non-empty site list.
common::Result<std::vector<DwellRecord>> GenerateTrace(
    std::span<const geometry::Vec2> sites, const TraceConfig& config,
    common::Rng& rng);

/// Distinct site indices visited by a trace, in first-visit order — the
/// paper's site set L that feeds the A'' constraints.
std::vector<std::size_t> VisitedSites(std::span<const DwellRecord> trace);

}  // namespace nomloc::mobility
