#include "mobility/markov.h"

#include <cmath>

#include "common/assert.h"

namespace nomloc::mobility {

common::Result<MarkovChain> MarkovChain::Create(
    std::vector<std::vector<double>> transition) {
  const std::size_t n = transition.size();
  if (n == 0) return common::InvalidArgument("empty transition matrix");
  for (const auto& row : transition) {
    if (row.size() != n)
      return common::InvalidArgument("transition matrix is not square");
    double sum = 0.0;
    for (double p : row) {
      if (p < 0.0 || !std::isfinite(p))
        return common::InvalidArgument("transition probability out of range");
      sum += p;
    }
    if (std::abs(sum - 1.0) > 1e-9)
      return common::InvalidArgument("transition row does not sum to 1");
  }
  return MarkovChain(std::move(transition));
}

MarkovChain MarkovChain::Uniform(std::size_t n) {
  NOMLOC_REQUIRE(n > 0);
  std::vector<std::vector<double>> t(n, std::vector<double>(n, 1.0 / double(n)));
  return MarkovChain(std::move(t));
}

MarkovChain MarkovChain::StayBiased(std::size_t n, double stay_prob) {
  NOMLOC_REQUIRE(n > 0);
  NOMLOC_REQUIRE(stay_prob >= 0.0 && stay_prob <= 1.0);
  if (n == 1) return Uniform(1);
  std::vector<std::vector<double>> t(n, std::vector<double>(n, 0.0));
  const double move = (1.0 - stay_prob) / double(n - 1);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) t[i][j] = (i == j) ? stay_prob : move;
  return MarkovChain(std::move(t));
}

MarkovChain MarkovChain::Ring(std::size_t n, double forward) {
  NOMLOC_REQUIRE(n > 0);
  NOMLOC_REQUIRE(forward >= 0.0 && forward <= 1.0);
  if (n == 1) return Uniform(1);
  std::vector<std::vector<double>> t(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    t[i][(i + 1) % n] += forward;
    t[i][(i + n - 1) % n] += 1.0 - forward;
  }
  return MarkovChain(std::move(t));
}

double MarkovChain::TransitionProb(std::size_t from, std::size_t to) const {
  NOMLOC_REQUIRE(from < StateCount() && to < StateCount());
  return transition_[from][to];
}

std::size_t MarkovChain::NextState(std::size_t current,
                                   common::Rng& rng) const {
  NOMLOC_REQUIRE(current < StateCount());
  return rng.Categorical(transition_[current]);
}

std::vector<std::size_t> MarkovChain::Walk(std::size_t start,
                                           std::size_t steps,
                                           common::Rng& rng) const {
  NOMLOC_REQUIRE(start < StateCount());
  std::vector<std::size_t> out;
  out.reserve(steps + 1);
  out.push_back(start);
  for (std::size_t i = 0; i < steps; ++i)
    out.push_back(NextState(out.back(), rng));
  return out;
}

common::Result<std::vector<double>> MarkovChain::StationaryDistribution(
    std::size_t max_iterations, double tolerance) const {
  const std::size_t n = StateCount();
  std::vector<double> pi(n, 1.0 / double(n));
  std::vector<double> next(n, 0.0);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    for (double& v : next) v = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) next[j] += pi[i] * transition_[i][j];
    double delta = 0.0;
    for (std::size_t j = 0; j < n; ++j) delta += std::abs(next[j] - pi[j]);
    pi.swap(next);
    if (delta < tolerance) return pi;
  }
  return common::Exhausted("stationary distribution did not converge");
}

}  // namespace nomloc::mobility
