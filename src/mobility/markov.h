// Discrete-state Markov chain.
//
// The paper's nomadic-AP mobility model (§V-A): "random walk built on a
// Markov chain … moving among several discrete sites with a preset
// transition probability."
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace nomloc::mobility {

class MarkovChain {
 public:
  /// Builds a chain from a row-stochastic transition matrix
  /// (square, rows sum to 1 within tolerance, entries >= 0).
  static common::Result<MarkovChain> Create(
      std::vector<std::vector<double>> transition);

  /// n-state chain with uniform transitions (including self-loops).
  static MarkovChain Uniform(std::size_t n);

  /// n-state chain that stays put with probability `stay_prob` and
  /// otherwise moves uniformly to one of the other states.
  static MarkovChain StayBiased(std::size_t n, double stay_prob);

  /// n-state ring: moves to (i+1) mod n with probability `forward`, to
  /// (i-1+n) mod n otherwise.  Used by the patrol mobility pattern.
  static MarkovChain Ring(std::size_t n, double forward = 1.0);

  std::size_t StateCount() const noexcept { return transition_.size(); }
  double TransitionProb(std::size_t from, std::size_t to) const;

  /// Samples the successor state of `current`.
  std::size_t NextState(std::size_t current, common::Rng& rng) const;

  /// Samples a walk of `steps` transitions starting at `start`; the
  /// returned sequence has steps+1 states, the first being `start`.
  std::vector<std::size_t> Walk(std::size_t start, std::size_t steps,
                                common::Rng& rng) const;

  /// Stationary distribution via power iteration.  Fails with
  /// kExhausted when iteration does not converge (periodic chains).
  common::Result<std::vector<double>> StationaryDistribution(
      std::size_t max_iterations = 100'000, double tolerance = 1e-12) const;

 private:
  explicit MarkovChain(std::vector<std::vector<double>> transition)
      : transition_(std::move(transition)) {}
  std::vector<std::vector<double>> transition_;
};

}  // namespace nomloc::mobility
