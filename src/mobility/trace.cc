#include "mobility/trace.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace nomloc::mobility {

using geometry::Vec2;

Vec2 AddUniformDiscError(Vec2 p, double radius_m, common::Rng& rng) {
  NOMLOC_REQUIRE(radius_m >= 0.0);
  if (radius_m == 0.0) return p;
  const auto [dx, dy] = rng.UniformDisc(radius_m);
  return {p.x + dx, p.y + dy};
}

common::Result<std::vector<DwellRecord>> GenerateTrace(
    std::span<const Vec2> sites, const TraceConfig& config,
    common::Rng& rng) {
  if (sites.empty()) return common::InvalidArgument("empty site list");
  if (config.dwell_count == 0)
    return common::InvalidArgument("dwell_count must be >= 1");

  const std::size_t n = sites.size();
  std::vector<std::size_t> states;
  switch (config.pattern) {
    case MobilityPattern::kMarkovWalk: {
      states = MarkovChain::Uniform(n).Walk(0, config.dwell_count - 1, rng);
      break;
    }
    case MobilityPattern::kStayBiased: {
      states = MarkovChain::StayBiased(n, config.stay_probability)
                   .Walk(0, config.dwell_count - 1, rng);
      break;
    }
    case MobilityPattern::kPatrol: {
      states.reserve(config.dwell_count);
      for (std::size_t i = 0; i < config.dwell_count; ++i)
        states.push_back(i % n);
      break;
    }
    case MobilityPattern::kStationary: {
      states.assign(config.dwell_count, 0);
      break;
    }
  }

  std::vector<DwellRecord> trace;
  trace.reserve(states.size());
  if (config.error_model == PositionErrorModel::kUniformDisc) {
    for (std::size_t s : states) {
      DwellRecord rec;
      rec.site_index = s;
      rec.true_position = sites[s];
      rec.reported_position =
          AddUniformDiscError(sites[s], config.position_error_m, rng);
      trace.push_back(rec);
    }
    return trace;
  }

  // Dead-reckoning: drift accumulates with walked distance and resets at
  // the home site (index 0 — the known calibration point).
  NOMLOC_REQUIRE(config.odometry_drift_per_m >= 0.0);
  Vec2 drift{0.0, 0.0};
  std::size_t previous = states.front();
  for (std::size_t s : states) {
    const double walked = Distance(sites[previous], sites[s]);
    if (s == 0) {
      drift = {0.0, 0.0};
    } else if (walked > 0.0 && config.odometry_drift_per_m > 0.0) {
      const double sigma = config.odometry_drift_per_m * std::sqrt(walked);
      drift += {rng.Gaussian(0.0, sigma), rng.Gaussian(0.0, sigma)};
    }
    DwellRecord rec;
    rec.site_index = s;
    rec.true_position = sites[s];
    rec.reported_position = sites[s] + drift;
    trace.push_back(rec);
    previous = s;
  }
  return trace;
}

std::vector<std::size_t> VisitedSites(std::span<const DwellRecord> trace) {
  std::vector<std::size_t> visited;
  for (const DwellRecord& rec : trace) {
    if (std::find(visited.begin(), visited.end(), rec.site_index) ==
        visited.end())
      visited.push_back(rec.site_index);
  }
  return visited;
}

}  // namespace nomloc::mobility
