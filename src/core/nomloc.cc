#include "core/nomloc.h"

#include <algorithm>
#include <string>
#include <thread>

#include "common/assert.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "geometry/convex_decomp.h"

namespace nomloc::core {

common::Result<void> NomLocConfig::Validate() const {
  if (bandwidth_hz <= 0.0)
    return common::InvalidArgument("bandwidth must be positive");
  if (pdp.first_path_threshold_db < 0.0)
    return common::InvalidArgument(
        "pdp.first_path_threshold_db must be >= 0");
  if (solver.boundary_weight <= 0.0)
    return common::InvalidArgument("solver.boundary_weight must be positive");
  if (solver.region_slack < 0.0)
    return common::InvalidArgument("solver.region_slack must be >= 0");
  if (solver.merge_tolerance < 0.0)
    return common::InvalidArgument("solver.merge_tolerance must be >= 0");
  if (auto valid = fallback.Validate(); !valid.ok()) return valid;
  return {};
}

common::Result<NomLocEngine> NomLocEngine::Create(geometry::Polygon area,
                                                  NomLocConfig config) {
  if (auto valid = config.Validate(); !valid.ok()) return valid.status();
  NOMLOC_ASSIGN_OR_RETURN(auto parts, geometry::DecomposeConvex(area));
  return NomLocEngine(std::move(area), std::move(parts), std::move(config));
}

common::Result<LocateResponse> NomLocEngine::Locate(
    const LocateRequest& request) const {
  return Locate(request, nullptr);
}

localization::SpSolverSession NomLocEngine::MakeSolverSession(
    std::optional<localization::SpSessionMode> mode) const {
  localization::SpSolverOptions options = config_.solver;
  options.fallback = config_.fallback;
  if (mode) options.session_mode = *mode;
  return localization::SpSolverSession(parts_, options);
}

common::Result<LocateResponse> NomLocEngine::Locate(
    const LocateRequest& request,
    localization::SpSolverSession* session) const {
  auto& registry = common::MetricRegistry::Global();
  static auto& locate_counter = registry.Counter("engine.locates");
  static auto& extract_timer = registry.Timer("engine.extract");
  static auto& judge_timer = registry.Timer("engine.judge");
  static auto& solve_timer = registry.Timer("engine.solve");
  static auto& total_timer = registry.Timer("engine.locate");
  static auto& quarantine_counter =
      registry.Counter("engine.quarantined_observations");

  if (!request.observations.empty() && !request.anchors.empty())
    return common::InvalidArgument(
        "request carries both observations and anchors — set exactly one");

  common::StageTrace total_trace(total_timer);
  LocateResponse out;

  // Stage 1 — PDP extraction (skipped when the caller pre-extracted).
  // Extraction is hardened: corrupt observations either fail the request
  // with a typed kDataCorruption error or — under the default
  // quarantine-and-continue policy — are dropped and counted, so one bad
  // capture cannot poison the epoch's remaining links.
  std::vector<localization::Anchor> extracted;
  std::span<const localization::Anchor> anchors = request.anchors;
  if (anchors.empty()) {
    common::StageTrace extract_trace(extract_timer);
    if (request.observations.size() < 2)
      return common::InvalidArgument("need at least two AP observations");
    extracted.reserve(request.observations.size());
    for (const ApObservation& obs : request.observations) {
      if (obs.frames.empty())
        return common::InvalidArgument("observation without CSI frames");
      auto anchor = localization::MakeAnchorChecked(
          obs.reported_position, obs.frames, config_.bandwidth_hz,
          config_.pdp, obs.is_nomadic_site);
      if (!anchor.ok()) {
        if (!config_.quarantine_corrupt_observations ||
            anchor.status().code() != common::StatusCode::kDataCorruption)
          return anchor.status();
        ++out.quarantined_observations;
        continue;
      }
      extracted.push_back(std::move(anchor).value());
    }
    anchors = extracted;
    out.timings.extract_s = extract_trace.Stop();
  } else {
    // Pre-extracted anchors get the same screen; copying only happens on
    // the (rare) corrupt path, so the healthy path stays allocation-free.
    bool any_corrupt = false;
    for (const localization::Anchor& a : anchors)
      if (!localization::ValidateAnchor(a).ok()) {
        any_corrupt = true;
        break;
      }
    if (any_corrupt) {
      for (const localization::Anchor& a : anchors) {
        auto valid = localization::ValidateAnchor(a);
        if (valid.ok()) {
          extracted.push_back(a);
        } else if (config_.quarantine_corrupt_observations) {
          ++out.quarantined_observations;
        } else {
          return valid.status();
        }
      }
      anchors = extracted;
    }
  }
  if (out.quarantined_observations > 0)
    quarantine_counter.Increment(out.quarantined_observations);
  if (anchors.size() < 2) {
    if (out.quarantined_observations > 0)
      return common::DataCorruption(
          "fewer than two healthy anchors remain after quarantining " +
          std::to_string(out.quarantined_observations) + " corrupt input(s)");
    return common::InvalidArgument("need at least two anchors");
  }

  // Stage 2 — pairwise proximity judgement + half-plane constraints.
  common::StageTrace judge_trace(judge_timer);
  const auto judgements = localization::JudgeProximity(
      anchors, request.pair_policy.value_or(config_.pair_policy));
  const auto constraints =
      localization::ProximityConstraints(anchors, judgements);
  out.timings.judge_s = judge_trace.Stop();
  if (constraints.empty())
    return common::FailedPrecondition(
        "all anchor positions coincide — no spatial information");

  // Stage 3 — relaxed LP + region center, behind the degradation ladder
  // (fallback only engages when the full solve fails or busts the
  // policy's cost budget, so healthy-path results are bit-identical to
  // plain SolveSp).
  common::StageTrace solve_trace(solve_timer);
  auto resilient_result = [&]() -> common::Result<localization::ResilientSolution> {
    if (session != nullptr) {
      if (request.solver.has_value() || request.fallback.has_value())
        return common::InvalidArgument(
            "per-request solver/fallback overrides cannot apply to a "
            "session — its options are fixed at MakeSolverSession time");
      NOMLOC_RETURN_IF_ERROR(
          session->ReplaceConstraints(constraints).status());
      return localization::SolveSpResilient(*session, anchors);
    }
    // SpSolverOptions is the one options struct across batch, session,
    // and resilient solving; the engine-level fallback policy (and any
    // per-request override) folds into it here.
    localization::SpSolverOptions solver_options =
        request.solver ? *request.solver : config_.solver;
    solver_options.fallback =
        request.fallback ? *request.fallback : config_.fallback;
    return localization::SolveSpResilient(parts_, anchors, constraints,
                                          solver_options);
  }();
  if (!resilient_result.ok()) return resilient_result.status();
  localization::ResilientSolution& resilient = resilient_result.value();
  localization::SpSolution& sol = resilient.solution;
  out.timings.solve_s = solve_trace.Stop();
  out.degradation = resilient.level;
  out.dropped_constraints = resilient.dropped_constraints;

  out.estimate.position = sol.estimate;
  out.estimate.relaxation_cost = sol.relaxation_cost;
  out.estimate.feasible_area_m2 = sol.feasible_area_m2;
  out.estimate.violated_constraints = sol.parts[sol.best_part].violated;
  out.estimate.part_index = sol.best_part;
  out.estimate.anchors.assign(anchors.begin(), anchors.end());
  out.anchor_count = anchors.size();
  out.judgement_count = judgements.size();
  out.constraint_count = constraints.size();
  out.lp_iterations = sol.lp_iterations;
  out.timings.total_s = total_trace.Stop();
  locate_counter.Increment();
  return out;
}

common::Result<std::vector<LocateResponse>> NomLocEngine::LocateBatch(
    std::span<const LocateRequest> requests, std::size_t threads) const {
  auto& registry = common::MetricRegistry::Global();
  static auto& batch_timer = registry.Timer("engine.batch");
  static auto& batch_requests = registry.Counter("engine.batch.requests");

  common::StageTrace batch_trace(batch_timer);
  batch_requests.Increment(requests.size());
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  threads = std::min(threads, std::max<std::size_t>(1, requests.size()));

  // Each request is independent and the pipeline is RNG-free, so slots can
  // be filled in any order; the result only depends on the request.
  std::vector<std::optional<common::Result<LocateResponse>>> slots(
      requests.size());
  auto run_one = [&](std::size_t i) { slots[i] = Locate(requests[i]); };
  if (threads <= 1 || requests.size() <= 1) {
    for (std::size_t i = 0; i < requests.size(); ++i) run_one(i);
  } else {
    common::ThreadPool pool(threads);
    pool.ParallelFor(requests.size(), run_one);
  }

  // Deterministic error policy: the lowest-index failure wins — exactly
  // the error a serial early-exit loop would have returned.
  std::vector<LocateResponse> out;
  out.reserve(requests.size());
  for (auto& slot : slots) {
    if (!slot->ok()) return slot->status();
    out.push_back(std::move(*slot).value());
  }
  return out;
}

}  // namespace nomloc::core
