#include "core/nomloc.h"

#include "common/assert.h"
#include "geometry/convex_decomp.h"

namespace nomloc::core {

common::Result<NomLocEngine> NomLocEngine::Create(geometry::Polygon area,
                                                  NomLocConfig config) {
  if (config.bandwidth_hz <= 0.0)
    return common::InvalidArgument("bandwidth must be positive");
  NOMLOC_ASSIGN_OR_RETURN(auto parts, geometry::DecomposeConvex(area));
  return NomLocEngine(std::move(area), std::move(parts), std::move(config));
}

common::Result<LocationEstimate> NomLocEngine::Locate(
    std::span<const ApObservation> observations) const {
  if (observations.size() < 2)
    return common::InvalidArgument("need at least two AP observations");
  std::vector<localization::Anchor> anchors;
  anchors.reserve(observations.size());
  for (const ApObservation& obs : observations) {
    if (obs.frames.empty())
      return common::InvalidArgument("observation without CSI frames");
    anchors.push_back(localization::MakeAnchor(
        obs.reported_position, obs.frames, config_.bandwidth_hz, config_.pdp,
        obs.is_nomadic_site));
  }
  return LocateFromAnchors(anchors);
}

common::Result<LocationEstimate> NomLocEngine::LocateFromAnchors(
    std::span<const localization::Anchor> anchors) const {
  if (anchors.size() < 2)
    return common::InvalidArgument("need at least two anchors");

  const auto judgements =
      localization::JudgeProximity(anchors, config_.pair_policy);
  const auto constraints =
      localization::ProximityConstraints(anchors, judgements);
  if (constraints.empty())
    return common::FailedPrecondition(
        "all anchor positions coincide — no spatial information");

  NOMLOC_ASSIGN_OR_RETURN(
      localization::SpSolution sol,
      localization::SolveSp(parts_, constraints, config_.solver));

  LocationEstimate out;
  out.position = sol.estimate;
  out.relaxation_cost = sol.relaxation_cost;
  out.violated_constraints = sol.parts[sol.best_part].violated;
  out.part_index = sol.best_part;
  out.anchors.assign(anchors.begin(), anchors.end());
  return out;
}

}  // namespace nomloc::core
