// Multi-epoch tracking on top of per-epoch NomLoc fixes.
//
// The paper localizes a stationary object per measurement epoch; a
// deployed ILBS tracks moving users.  This is the standard constant-
// velocity Kalman filter over the 2-D state [x, y, vx, vy], fed with the
// engine's per-epoch position estimates, plus an area clamp so tracks
// never leave the floor polygon.  Process noise is parameterised as a
// white acceleration density, so the filter tightens automatically when
// epochs come fast.
#pragma once

#include <optional>

#include "common/status.h"
#include "geometry/polygon.h"
#include "geometry/vec2.h"

namespace nomloc::core {

struct TrackerOptions {
  /// White-acceleration standard deviation [m/s^2] driving process noise.
  double acceleration_sigma = 1.0;
  /// Measurement noise standard deviation [m] of per-epoch fixes.
  double measurement_sigma = 1.5;
  /// Initial position uncertainty [m].
  double initial_position_sigma = 5.0;
  /// Initial velocity uncertainty [m/s].
  double initial_velocity_sigma = 2.0;
};

class Tracker {
 public:
  explicit Tracker(TrackerOptions options = {});

  /// True once the first measurement has been consumed.
  bool Initialized() const noexcept { return initialized_; }

  /// Advances the state by `dt` seconds (> 0).  No-op before the first
  /// measurement.
  void Predict(double dt);

  /// Fuses one position fix (e.g. LocationEstimate::position).
  /// The first call initialises the track at the measurement.
  void Update(geometry::Vec2 measurement);

  /// Convenience: Predict(dt) then Update(measurement).
  void Step(double dt, geometry::Vec2 measurement);

  /// Current position estimate.  Requires Initialized().
  geometry::Vec2 Position() const;
  /// Current velocity estimate [m/s].  Requires Initialized().
  geometry::Vec2 Velocity() const;
  /// Trace of the position covariance block [m^2] — track confidence.
  double PositionVariance() const;

  /// Clamps the position state into `area` (projects onto the nearest
  /// boundary point when outside).  Call after Update when a floor
  /// polygon is known.
  void ClampTo(const geometry::Polygon& area);

 private:
  TrackerOptions options_;
  bool initialized_ = false;
  // State [x, y, vx, vy] and covariance, row-major 4x4.
  double state_[4] = {0, 0, 0, 0};
  double cov_[16] = {0};
};

}  // namespace nomloc::core
