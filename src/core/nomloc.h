// NomLocEngine — the public façade of the library.
//
// A calibration-free indoor localization engine (Xiao et al., ICDCS 2014):
// give it the floor area and one batch of CSI per AP (static APs plus
// every dwell site of the nomadic APs), and it returns the object's
// estimated position.  No fingerprint database, no propagation-model
// fitting: the only inputs besides CSI are AP coordinates and the room
// polygon.
//
// Pipeline: CSI -> IFFT -> power-of-direct-path (dsp/cir.h)
//        -> pairwise proximity + confidence (localization/proximity.h)
//        -> weighted half-plane program, relaxed LP (localization/sp_solver.h)
//        -> center of the feasible region.
//
// Typical use:
//   auto engine = core::NomLocEngine::Create(area_polygon, config);
//   core::LocateRequest request;
//   request.observations = obs;            // one per AP / dwell site
//   auto response = engine->Locate(request);
//   // response->estimate.position, response->timings.solve_s, …
//
// Batches of independent epochs fan out over a thread pool with
// bit-identical results:
//   auto responses = engine->LocateBatch(requests, /*threads=*/8);
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "channel/csi_model.h"
#include "common/degradation.h"
#include "common/status.h"
#include "dsp/cir.h"
#include "geometry/polygon.h"
#include "localization/fallback.h"
#include "localization/proximity.h"
#include "localization/sp_session.h"
#include "localization/sp_solver.h"

namespace nomloc::core {

/// One AP's contribution to a localization epoch: where the server
/// believes the AP is (for nomadic APs this may carry position error) and
/// the CSI frames it captured from the object's packets.
struct ApObservation {
  geometry::Vec2 reported_position;
  std::vector<dsp::CsiFrame> frames;
  bool is_nomadic_site = false;
};

struct NomLocConfig {
  /// Bandwidth the CSI was captured at (sets CIR tap spacing).
  double bandwidth_hz = common::kBandwidth20MHz;
  dsp::PdpOptions pdp;
  localization::SpSolverOptions solver;
  localization::PairPolicy pair_policy = localization::PairPolicy::kPaper;
  /// Degradation ladder for the SP solve (localization/fallback.h).  The
  /// default engages only on genuine solve failure, so healthy-input
  /// results stay bit-identical to the pre-fallback engine.  At solve
  /// time this is folded into `solver.fallback` (and wins over it) —
  /// SpSolverOptions is the single options struct the solver layer sees.
  localization::FallbackPolicy fallback;
  /// Corrupt observations (NaN/Inf CSI, all-zero frames, non-finite
  /// positions): quarantine-and-continue drops them (counted in
  /// LocateResponse::quarantined_observations and the
  /// `engine.quarantined_observations` counter) as long as >= 2 healthy
  /// observations remain; off = the first corrupt observation fails the
  /// whole request with its typed kDataCorruption error.
  bool quarantine_corrupt_observations = true;

  /// Typed rejection of nonsense values (non-positive bandwidth, negative
  /// thresholds/weights).  Called by NomLocEngine::Create.
  common::Result<void> Validate() const;
};

struct LocationEstimate {
  geometry::Vec2 position;
  /// Total relaxation cost w^T t of the winning convex part — a rough
  /// self-reported consistency score (0 = all judgements compatible).
  double relaxation_cost = 0.0;
  /// Area of the merged relaxed feasible cell [m^2].  Fewer constraints
  /// (e.g. under AP dropout) leave a larger cell; the serving layer turns
  /// this into a per-response confidence.
  double feasible_area_m2 = 0.0;
  std::size_t violated_constraints = 0;
  /// Index of the convex part the estimate fell in.
  std::size_t part_index = 0;
  /// The anchors (position + measured PDP) the estimate was derived from.
  std::vector<localization::Anchor> anchors;
};

/// One localization epoch for the unified Locate entry point.  Provide
/// EITHER raw per-AP observations (the engine extracts PDPs) OR
/// pre-extracted anchors — setting both is an error.  The optional fields
/// override the engine config for this call only.
struct LocateRequest {
  std::span<const ApObservation> observations;
  std::span<const localization::Anchor> anchors;
  std::optional<localization::PairPolicy> pair_policy;
  std::optional<localization::SpSolverOptions> solver;
  std::optional<localization::FallbackPolicy> fallback;
};

/// Wall-clock cost of each pipeline stage of one Locate call [s].
struct StageTimings {
  double extract_s = 0.0;  ///< CSI -> CIR -> PDP anchor extraction.
  double judge_s = 0.0;    ///< Pairwise proximity + constraint assembly.
  double solve_s = 0.0;    ///< Relaxed LP + region reconstruction.
  double total_s = 0.0;
};

/// Estimate plus per-stage diagnostics for one LocateRequest.
struct LocateResponse {
  LocationEstimate estimate;
  StageTimings timings;
  std::size_t anchor_count = 0;
  std::size_t judgement_count = 0;
  std::size_t constraint_count = 0;  ///< Proximity constraints (no VAPs).
  std::size_t lp_iterations = 0;     ///< Summed over all convex parts.
  /// How far down the degradation ladder this response came from
  /// (kNone on the healthy path; the engine itself never reports
  /// kLastKnownGood — that level needs state and lives in serving).
  common::DegradationLevel degradation = common::DegradationLevel::kNone;
  /// Corrupt observations dropped before extraction (see
  /// NomLocConfig::quarantine_corrupt_observations).
  std::size_t quarantined_observations = 0;
  /// Constraints the fallback chain discarded (level >= 1 only).
  std::size_t dropped_constraints = 0;
};

class NomLocEngine {
 public:
  /// Builds an engine for the given floor area (convex or not — non-convex
  /// areas are decomposed once, here).  Validates `config`.
  static common::Result<NomLocEngine> Create(geometry::Polygon area,
                                             NomLocConfig config = {});

  /// Unified entry point: runs the full pipeline on one request and
  /// returns the estimate with per-stage timings and diagnostics.
  /// Requires >= 2 observations (each with >= 1 frame) or >= 2 anchors.
  common::Result<LocateResponse> Locate(const LocateRequest& request) const;

  /// Streaming entry point: the same pipeline, but the SP solve runs
  /// through a stateful solver session (MakeSolverSession) instead of from
  /// scratch.  The request's derived constraints replace the session's
  /// active set (ReplaceConstraints keeps unchanged ones on their warm
  /// solver rows), then the degradation ladder runs over the session.
  /// Per-request solver/fallback overrides are rejected here — a session's
  /// options are fixed at construction.  `session` may be null, in which
  /// case this is exactly Locate(request).
  common::Result<LocateResponse> Locate(
      const LocateRequest& request,
      localization::SpSolverSession* session) const;

  /// Builds a stateful solver session over this engine's convex parts,
  /// configured from the engine config (solver options, with the
  /// engine-level fallback policy folded in).  `mode` overrides
  /// config.solver.session_mode: kColdEachSolve keeps every Solve()
  /// bit-identical to the batch path, kIncremental enables the warm
  /// fast-path/dual-simplex machinery (equivalent to solver tolerance).
  localization::SpSolverSession MakeSolverSession(
      std::optional<localization::SpSessionMode> mode = std::nullopt) const;

  /// Fans independent requests out over a common::ThreadPool.  The engine
  /// is const and the pipeline is RNG-free, so the responses are
  /// bit-identical to a serial Locate loop for any thread count.
  /// `threads` = 0 picks the hardware concurrency.  If any request fails,
  /// the error of the lowest-index failing request is returned (the same
  /// error a serial loop would hit first).
  common::Result<std::vector<LocateResponse>> LocateBatch(
      std::span<const LocateRequest> requests, std::size_t threads = 0) const;

  /// Deprecated wrapper (pre-LocateRequest API): estimates the object
  /// position from one epoch of raw observations.
  common::Result<LocationEstimate> Locate(
      std::span<const ApObservation> observations) const;

  /// Deprecated wrapper (pre-LocateRequest API): lower-level entry point
  /// when PDPs are already extracted.
  common::Result<LocationEstimate> LocateFromAnchors(
      std::span<const localization::Anchor> anchors) const;

  const geometry::Polygon& Area() const noexcept { return area_; }
  std::span<const geometry::Polygon> Parts() const noexcept { return parts_; }
  const NomLocConfig& Config() const noexcept { return config_; }

 private:
  NomLocEngine(geometry::Polygon area, std::vector<geometry::Polygon> parts,
               NomLocConfig config)
      : area_(std::move(area)),
        parts_(std::move(parts)),
        config_(std::move(config)) {}

  geometry::Polygon area_;
  std::vector<geometry::Polygon> parts_;
  NomLocConfig config_;
};

inline common::Result<LocationEstimate> NomLocEngine::Locate(
    std::span<const ApObservation> observations) const {
  LocateRequest request;
  request.observations = observations;
  NOMLOC_ASSIGN_OR_RETURN(LocateResponse response, Locate(request));
  return std::move(response.estimate);
}

inline common::Result<LocationEstimate> NomLocEngine::LocateFromAnchors(
    std::span<const localization::Anchor> anchors) const {
  LocateRequest request;
  request.anchors = anchors;
  NOMLOC_ASSIGN_OR_RETURN(LocateResponse response, Locate(request));
  return std::move(response.estimate);
}

}  // namespace nomloc::core
