// NomLocEngine — the public façade of the library.
//
// A calibration-free indoor localization engine (Xiao et al., ICDCS 2014):
// give it the floor area and one batch of CSI per AP (static APs plus
// every dwell site of the nomadic APs), and it returns the object's
// estimated position.  No fingerprint database, no propagation-model
// fitting: the only inputs besides CSI are AP coordinates and the room
// polygon.
//
// Pipeline: CSI -> IFFT -> power-of-direct-path (dsp/cir.h)
//        -> pairwise proximity + confidence (localization/proximity.h)
//        -> weighted half-plane program, relaxed LP (localization/sp_solver.h)
//        -> center of the feasible region.
//
// Typical use:
//   auto engine = core::NomLocEngine::Create(area_polygon, config);
//   std::vector<core::ApObservation> obs = …;  // one per AP / dwell site
//   auto estimate = engine->Locate(obs);
#pragma once

#include <span>
#include <vector>

#include "channel/csi_model.h"
#include "common/status.h"
#include "dsp/cir.h"
#include "geometry/polygon.h"
#include "localization/proximity.h"
#include "localization/sp_solver.h"

namespace nomloc::core {

/// One AP's contribution to a localization epoch: where the server
/// believes the AP is (for nomadic APs this may carry position error) and
/// the CSI frames it captured from the object's packets.
struct ApObservation {
  geometry::Vec2 reported_position;
  std::vector<dsp::CsiFrame> frames;
  bool is_nomadic_site = false;
};

struct NomLocConfig {
  /// Bandwidth the CSI was captured at (sets CIR tap spacing).
  double bandwidth_hz = common::kBandwidth20MHz;
  dsp::PdpOptions pdp;
  localization::SpSolverOptions solver;
  localization::PairPolicy pair_policy = localization::PairPolicy::kPaper;
};

struct LocationEstimate {
  geometry::Vec2 position;
  /// Total relaxation cost w^T t of the winning convex part — a rough
  /// self-reported consistency score (0 = all judgements compatible).
  double relaxation_cost = 0.0;
  std::size_t violated_constraints = 0;
  /// Index of the convex part the estimate fell in.
  std::size_t part_index = 0;
  /// The anchors (position + measured PDP) the estimate was derived from.
  std::vector<localization::Anchor> anchors;
};

class NomLocEngine {
 public:
  /// Builds an engine for the given floor area (convex or not — non-convex
  /// areas are decomposed once, here).
  static common::Result<NomLocEngine> Create(geometry::Polygon area,
                                             NomLocConfig config = {});

  /// Estimates the object position from one epoch of observations.
  /// Requires >= 2 observations, each with >= 1 frame.
  common::Result<LocationEstimate> Locate(
      std::span<const ApObservation> observations) const;

  /// Lower-level entry point when PDPs are already extracted.
  common::Result<LocationEstimate> LocateFromAnchors(
      std::span<const localization::Anchor> anchors) const;

  const geometry::Polygon& Area() const noexcept { return area_; }
  std::span<const geometry::Polygon> Parts() const noexcept { return parts_; }
  const NomLocConfig& Config() const noexcept { return config_; }

 private:
  NomLocEngine(geometry::Polygon area, std::vector<geometry::Polygon> parts,
               NomLocConfig config)
      : area_(std::move(area)),
        parts_(std::move(parts)),
        config_(std::move(config)) {}

  geometry::Polygon area_;
  std::vector<geometry::Polygon> parts_;
  NomLocConfig config_;
};

}  // namespace nomloc::core
