#include "core/tracker.h"

#include <cmath>
#include <limits>

#include "common/assert.h"

namespace nomloc::core {

using geometry::Vec2;

namespace {

// cov is row-major 4x4; helpers keep indexing readable.
inline double& At(double* m, int r, int c) { return m[r * 4 + c]; }
inline double At(const double* m, int r, int c) { return m[r * 4 + c]; }

}  // namespace

Tracker::Tracker(TrackerOptions options) : options_(options) {
  NOMLOC_REQUIRE(options_.acceleration_sigma > 0.0);
  NOMLOC_REQUIRE(options_.measurement_sigma > 0.0);
}

void Tracker::Predict(double dt) {
  NOMLOC_REQUIRE(dt > 0.0);
  if (!initialized_) return;

  // State transition F = [I, dt*I; 0, I].
  state_[0] += dt * state_[2];
  state_[1] += dt * state_[3];

  // P <- F P F^T + Q.  Expand blockwise with P = [Ppp Ppv; Pvp Pvv]
  // (2x2 blocks, x and y decoupled in F but P may correlate them; do the
  // full 4x4 product).
  double f[16] = {1, 0, dt, 0,
                  0, 1, 0, dt,
                  0, 0, 1, 0,
                  0, 0, 0, 1};
  double fp[16] = {0};
  for (int r = 0; r < 4; ++r)
    for (int k = 0; k < 4; ++k) {
      const double frk = At(f, r, k);
      if (frk == 0.0) continue;
      for (int c = 0; c < 4; ++c) fp[r * 4 + c] += frk * At(cov_, k, c);
    }
  double fpf[16] = {0};
  for (int r = 0; r < 4; ++r)
    for (int k = 0; k < 4; ++k) {
      const double v = fp[r * 4 + k];
      if (v == 0.0) continue;
      for (int c = 0; c < 4; ++c) fpf[r * 4 + c] += v * At(f, c, k);
    }

  // Discrete white-acceleration noise (per axis):
  //   Q = sigma^2 [dt^4/4, dt^3/2; dt^3/2, dt^2].
  const double s2 = options_.acceleration_sigma * options_.acceleration_sigma;
  const double q11 = s2 * dt * dt * dt * dt / 4.0;
  const double q12 = s2 * dt * dt * dt / 2.0;
  const double q22 = s2 * dt * dt;
  for (int i = 0; i < 16; ++i) cov_[i] = fpf[i];
  At(cov_, 0, 0) += q11;
  At(cov_, 1, 1) += q11;
  At(cov_, 0, 2) += q12;
  At(cov_, 2, 0) += q12;
  At(cov_, 1, 3) += q12;
  At(cov_, 3, 1) += q12;
  At(cov_, 2, 2) += q22;
  At(cov_, 3, 3) += q22;
}

void Tracker::Update(Vec2 measurement) {
  if (!initialized_) {
    state_[0] = measurement.x;
    state_[1] = measurement.y;
    state_[2] = state_[3] = 0.0;
    for (int i = 0; i < 16; ++i) cov_[i] = 0.0;
    const double p2 =
        options_.initial_position_sigma * options_.initial_position_sigma;
    const double v2 =
        options_.initial_velocity_sigma * options_.initial_velocity_sigma;
    At(cov_, 0, 0) = At(cov_, 1, 1) = p2;
    At(cov_, 2, 2) = At(cov_, 3, 3) = v2;
    initialized_ = true;
    return;
  }

  // Measurement model H = [I2 0]: innovation on position only.
  const double r = options_.measurement_sigma * options_.measurement_sigma;
  // S = H P H^T + R  (2x2).
  const double s00 = At(cov_, 0, 0) + r;
  const double s01 = At(cov_, 0, 1);
  const double s10 = At(cov_, 1, 0);
  const double s11 = At(cov_, 1, 1) + r;
  const double det = s00 * s11 - s01 * s10;
  NOMLOC_ASSERT(std::abs(det) > 0.0);
  const double i00 = s11 / det, i01 = -s01 / det;
  const double i10 = -s10 / det, i11 = s00 / det;

  // Kalman gain K = P H^T S^{-1}  (4x2).
  double k[8];
  for (int row = 0; row < 4; ++row) {
    const double p0 = At(cov_, row, 0);
    const double p1 = At(cov_, row, 1);
    k[row * 2 + 0] = p0 * i00 + p1 * i10;
    k[row * 2 + 1] = p0 * i01 + p1 * i11;
  }

  const double inn0 = measurement.x - state_[0];
  const double inn1 = measurement.y - state_[1];
  for (int row = 0; row < 4; ++row)
    state_[row] += k[row * 2 + 0] * inn0 + k[row * 2 + 1] * inn1;

  // P <- (I - K H) P.
  double new_cov[16];
  for (int row = 0; row < 4; ++row) {
    for (int col = 0; col < 4; ++col) {
      new_cov[row * 4 + col] = At(cov_, row, col) -
                               k[row * 2 + 0] * At(cov_, 0, col) -
                               k[row * 2 + 1] * At(cov_, 1, col);
    }
  }
  for (int i = 0; i < 16; ++i) cov_[i] = new_cov[i];
}

void Tracker::Step(double dt, Vec2 measurement) {
  Predict(dt);
  Update(measurement);
}

Vec2 Tracker::Position() const {
  NOMLOC_REQUIRE(initialized_);
  return {state_[0], state_[1]};
}

Vec2 Tracker::Velocity() const {
  NOMLOC_REQUIRE(initialized_);
  return {state_[2], state_[3]};
}

double Tracker::PositionVariance() const {
  NOMLOC_REQUIRE(initialized_);
  return At(cov_, 0, 0) + At(cov_, 1, 1);
}

void Tracker::ClampTo(const geometry::Polygon& area) {
  NOMLOC_REQUIRE(initialized_);
  const Vec2 p = Position();
  if (area.Contains(p)) return;
  // Project onto the nearest boundary point.
  double best = std::numeric_limits<double>::infinity();
  Vec2 proj = p;
  for (std::size_t i = 0; i < area.EdgeCount(); ++i) {
    const Vec2 cand = area.Edge(i).ClosestPointTo(p);
    const double d = Distance(cand, p);
    if (d < best) {
      best = d;
      proj = cand;
    }
  }
  state_[0] = proj.x;
  state_[1] = proj.y;
}

}  // namespace nomloc::core
