// Rendezvous-hash placement of object ids onto shard slots.
//
// Every object id is owned by exactly one of N shard slots: the slot
// whose keyed hash of (slot salt, object id) is largest — highest random
// weight / rendezvous hashing.  Two properties make this the right
// placement for a serving cluster:
//
//   1. No coordination state.  Ownership is a pure function of
//      (seed, slot count, object id); every router instance computes the
//      same table with no directory service.
//   2. Minimal remap on resize.  Growing N to N+1 moves exactly the ids
//      whose argmax is the new slot (≈ 1/(N+1) of them); every other id
//      keeps its owner.  A consistent-hash ring gives the same bound with
//      more machinery.
//
// PreferenceOrder() ranks all slots by descending weight.  The router
// walks that order when routing around an unhealthy shard: the first
// healthy slot wins, so each object has a deterministic fallback chain
// and a recovered shard automatically reclaims its objects.
//
// Live migration does not change the table: a migrated shard keeps its
// slot (and therefore its id range) — only the host process behind the
// slot is replaced and the router's endpoint array is flipped atomically
// (see cluster.h).
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace nomloc::cluster {

/// Default placement seed (arbitrary odd constant; routers and tools must
/// agree on it for a shared table).
inline constexpr std::uint64_t kDefaultPlacementSeed = 0x9e3779b97f4a7c15ull;

class PlacementTable {
 public:
  /// `shards` must be >= 1.
  static common::Result<PlacementTable> Create(
      std::size_t shards, std::uint64_t seed = kDefaultPlacementSeed);

  std::size_t ShardCount() const noexcept { return salts_.size(); }

  /// The slot that owns `object_id` (the rendezvous winner).
  std::size_t ShardOf(std::uint64_t object_id) const noexcept;

  /// All slots ranked by descending rendezvous weight for `object_id`;
  /// out[0] == ShardOf(object_id).  `out` is overwritten.
  void PreferenceOrder(std::uint64_t object_id,
                       std::vector<std::size_t>& out) const;

  /// The weight the rendezvous argmax compares (exposed for tests).
  std::uint64_t Weight(std::size_t slot,
                       std::uint64_t object_id) const noexcept;

 private:
  explicit PlacementTable(std::vector<std::uint64_t> salts)
      : salts_(std::move(salts)) {}

  std::vector<std::uint64_t> salts_;  ///< One keyed salt per slot.
};

}  // namespace nomloc::cluster
