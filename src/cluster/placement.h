// Rendezvous-hash placement of object ids onto shard slots.
//
// Every object id is owned by exactly one of N shard slots: the slot
// whose keyed hash of (slot salt, object id) is largest — highest random
// weight / rendezvous hashing.  Two properties make this the right
// placement for a serving cluster:
//
//   1. No coordination state.  Ownership is a pure function of
//      (seed, slot count, object id); every router instance computes the
//      same table with no directory service.
//   2. Minimal remap on resize.  Growing N to N+1 moves exactly the ids
//      whose argmax is the new slot (≈ 1/(N+1) of them); every other id
//      keeps its owner.  A consistent-hash ring gives the same bound with
//      more machinery.
//
// PreferenceOrder() ranks all slots by descending weight.  The router
// walks that order when routing around an unhealthy shard: the first
// healthy slot wins, so each object has a deterministic fallback chain
// and a recovered shard automatically reclaims its objects.
//
// Live migration does not change the table: a migrated shard keeps its
// slot (and therefore its id range) — only the host process behind the
// slot is replaced and the router's endpoint array is flipped atomically
// (see cluster.h).
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace nomloc::cluster {

/// Default placement seed (arbitrary odd constant; routers and tools must
/// agree on it for a shared table).
inline constexpr std::uint64_t kDefaultPlacementSeed = 0x9e3779b97f4a7c15ull;

class PlacementTable {
 public:
  /// `shards` must be >= 1.  A fresh table starts at epoch 0.
  static common::Result<PlacementTable> Create(
      std::size_t shards, std::uint64_t seed = kDefaultPlacementSeed);

  std::size_t ShardCount() const noexcept { return salts_.size(); }

  /// Placement version.  Routers stamp it into replicate and control
  /// frames; a host that has adopted a newer epoch rejects older-stamped
  /// frames as kRejectedStaleEpoch (`cluster.placement.stale_epoch`).
  /// Bumped by failover promotion, recovery, and resharding.
  std::uint64_t Epoch() const noexcept { return epoch_; }
  void SetEpoch(std::uint64_t epoch) noexcept { epoch_ = epoch; }
  std::uint64_t BumpEpoch() noexcept { return ++epoch_; }

  /// The N+1-slot table of the online-resharding path: same seed, so
  /// slots 0..N-1 keep their salts (minimal remap — only the new slot's
  /// rendezvous winners move), and the epoch is bumped so frames stamped
  /// with the old table are typed stale rejections, never a split brain.
  common::Result<PlacementTable> Grown() const;

  /// The slot that owns `object_id` (the rendezvous winner).
  std::size_t ShardOf(std::uint64_t object_id) const noexcept;

  /// All slots ranked by descending rendezvous weight for `object_id`;
  /// out[0] == ShardOf(object_id).  `out` is overwritten.
  void PreferenceOrder(std::uint64_t object_id,
                       std::vector<std::size_t>& out) const;

  /// The weight the rendezvous argmax compares (exposed for tests).
  std::uint64_t Weight(std::size_t slot,
                       std::uint64_t object_id) const noexcept;

 private:
  PlacementTable(std::vector<std::uint64_t> salts, std::uint64_t seed)
      : salts_(std::move(salts)), seed_(seed) {}

  std::vector<std::uint64_t> salts_;  ///< One keyed salt per slot.
  std::uint64_t seed_ = kDefaultPlacementSeed;
  std::uint64_t epoch_ = 0;
};

}  // namespace nomloc::cluster
