// The shard router and the Cluster that owns it.
//
// A Cluster is N shard hosts (each a StreamingLocalizer behind a wire
// transport — see shard_host.h) plus the router: every IngestPacket is
// encoded once and written to the shard the rendezvous placement table
// owns its object id to.  The router is the cluster's admission boundary
// and reuses the serving layer's typed verdicts:
//
//   kRejectedShutdown   after Shutdown()
//   kRejectedDeadline   deadline already passed on the router clock
//   kRejectedQueueFull  transport backpressure (loopback reject-not-block)
//   kRejectedBreakerOpen no healthy candidate shard remained
//
// Per-shard health is a CircuitBreaker (PR 5 idiom): a transport write
// failure is RecordFailure — `failure_threshold` consecutive ones trip
// the breaker open (`cluster.shard_trips`), a restarted shard is probed
// half-open after the backoff, and a successful write re-closes it.
// While a shard is unhealthy the router walks the object's rendezvous
// preference order and delivers to the best healthy shard instead
// (`cluster.rerouted`) — sessions re-form there from subsequent traffic.
// Backpressure deliberately does NOT reroute: scattering an object's
// session over a transient full queue would split its anchor history.
//
// Responses flow back asynchronously: one router-side reader thread per
// shard reassembles response frames (WireDecoder) into TakeResponses().
// Flush() is a token round-trip — every live shard gets kFlush(token) and
// the call blocks until each kFlushAck(token) arrives, so after Flush()
// every accepted query's response is in TakeResponses().
//
// Live migration (Migrate): flush, checkpoint the shard's SessionStore
// *filtered to the ids its placement slot owns*, build a replacement host
// on a fresh link, restore the checkpoint, then atomically swap the slot
// (ingest holds the slot mutex for the swap only).  The placement table
// itself never changes — a slot keeps its id range; only the host behind
// it is replaced, which is why a migrated cluster stays bit-identical to
// an unsharded golden run.
//
// All cluster metrics are namespaced `cluster.*`; AllMetricNames() is the
// canonical list (tested against --metrics output).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "cluster/placement.h"
#include "cluster/shard_host.h"
#include "cluster/transport.h"
#include "core/nomloc.h"
#include "serving/clock.h"
#include "serving/service.h"
#include "serving/wire.h"

namespace nomloc::cluster {

struct ClusterConfig {
  std::size_t shards = 4;
  TransportConfig transport;
  /// Per-host serving config (workers, queue bounds, store, faults...).
  serving::ServingConfig serving;
  /// Per-shard transport health breakers.
  serving::CircuitBreakerConfig shard_breaker;
  /// Walk the rendezvous preference order around unhealthy shards.  Off,
  /// an unhealthy owner rejects with kRejectedBreakerOpen instead.
  bool route_around = true;
  /// Hosts advance their logical clock from packet timestamps.  Turn off
  /// when the driver steers time via SetLogicalTime (chaos clock jumps).
  bool clock_from_packets = true;
  std::uint64_t placement_seed = kDefaultPlacementSeed;

  common::Result<void> Validate() const;
};

/// One response received from a shard, stamped on arrival for
/// coordinated-omission-free latency measurement (the scheduled send wall
/// time cannot cross the wire, so the *router* closes the loop).
struct ClusterResponse {
  serving::WireResponse response;
  std::size_t shard = 0;
  std::chrono::steady_clock::time_point received_wall{};
};

class Cluster {
 public:
  /// `engine` and `clock` must outlive the cluster.  `clock` may be null
  /// (router admission then runs on wall time).
  static common::Result<std::unique_ptr<Cluster>> Create(
      const core::NomLocEngine& engine, ClusterConfig config,
      const serving::Clock* clock = nullptr);

  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Routes one packet (see the admission table above).
  serving::AdmitStatus Ingest(const serving::IngestPacket& packet);

  /// Broadcasts kClockSet(now_s) to every live shard, in-band (ordered
  /// with respect to later Ingest calls on each stream).
  void SetLogicalTime(double now_s);

  /// Token round-trip on every live shard; on return all responses to
  /// previously accepted packets are available via TakeResponses().
  void Flush();

  std::vector<ClusterResponse> TakeResponses();

  /// Flush + filtered checkpoint of `shard`'s store (only ids its
  /// placement slot owns); the dump is kept for Restart(restore=true).
  common::Result<void> Checkpoint(std::size_t shard);

  /// Live migration: drain, checkpoint (filtered), restore into a fresh
  /// host on a fresh link, swap atomically.  Bit-identity is preserved —
  /// the replacement answers exactly as the original would have.
  common::Result<void> Migrate(std::size_t shard);

  /// Chaos: abrupt shard death.  The host and both link ends die; later
  /// writes fail and trip the shard's breaker.
  void Kill(std::size_t shard);

  /// Brings a killed shard back on a fresh host + link.  With `restore`,
  /// the last Checkpoint()/Migrate() dump is loaded first (sessions since
  /// that dump are lost — they age out via TTL).  The shard's breaker is
  /// kept: the router re-admits it through the half-open probe path.
  common::Result<void> Restart(std::size_t shard, bool restore);

  /// Chaos: stall `shard`'s ingest direction (bytes queue up to the
  /// loopback capacity, then writes see backpressure).  Returns false on
  /// transports that cannot stall.
  bool SetStalled(std::size_t shard, bool stalled);

  std::size_t ShardCount() const noexcept;
  std::size_t ShardOf(std::uint64_t object_id) const noexcept;
  bool ShardLive(std::size_t shard) const;
  const PlacementTable& Placement() const noexcept { return table_; }
  /// Test/tool introspection; null while the shard is killed.
  serving::SessionStore* StoreOf(std::size_t shard);

  /// Closes every link and joins every thread.  Idempotent; Ingest
  /// afterwards returns kRejectedShutdown.
  void Shutdown();

 private:
  struct Slot;

  Cluster(const core::NomLocEngine& engine, ClusterConfig config,
          const serving::Clock* clock, PlacementTable table);

  /// Builds a connected host (+ its router-side reader) for `slot`.
  common::Result<void> AttachHost(std::size_t shard, const std::string* dump);
  void DetachHost(std::size_t shard);
  void ReaderLoop(std::size_t shard);
  /// Write under the slot mutex, stream header included on first use.
  LinkWrite WriteToSlot(Slot& slot, std::string_view bytes);

  const core::NomLocEngine& engine_;
  ClusterConfig config_;
  std::unique_ptr<serving::SteadyClock> owned_clock_;
  const serving::Clock* clock_;  ///< Never null.
  PlacementTable table_;

  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> flush_token_{0};

  std::mutex ack_mutex_;
  std::condition_variable ack_cv_;

  std::mutex responses_mutex_;
  std::vector<ClusterResponse> responses_;
};

/// Canonical names of every cluster metric, for drift tests and tooling.
std::span<const std::string_view> AllMetricNames();

/// Registers every cluster metric in the global registry so a --metrics
/// dump lists the full cluster surface even before traffic.
void TouchMetrics();

}  // namespace nomloc::cluster
