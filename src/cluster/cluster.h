// The shard router and the Cluster that owns it.
//
// A Cluster is N shard hosts (each a StreamingLocalizer behind a wire
// transport — see shard_host.h) plus the router: every IngestPacket is
// encoded once and written to the shard the rendezvous placement table
// owns its object id to.  The router is the cluster's admission boundary
// and reuses the serving layer's typed verdicts:
//
//   kRejectedShutdown   after Shutdown()
//   kRejectedDeadline   deadline already passed on the router clock
//   kRejectedQueueFull  transport backpressure (loopback reject-not-block)
//   kRejectedBreakerOpen no healthy candidate shard remained
//
// Per-shard health is a CircuitBreaker (PR 5 idiom): a transport write
// failure is RecordFailure — `failure_threshold` consecutive ones trip
// the breaker open (`cluster.shard_trips`), a restarted shard is probed
// half-open after the backoff, and a successful write re-closes it.
// While a shard is unhealthy the router walks the object's rendezvous
// preference order and delivers to the best healthy shard instead
// (`cluster.rerouted`) — sessions re-form there from subsequent traffic.
// Backpressure deliberately does NOT reroute: scattering an object's
// session over a transient full queue would split its anchor history.
//
// Responses flow back asynchronously: one router-side reader thread per
// shard reassembles response frames (WireDecoder) into TakeResponses().
// Flush() is a token round-trip — every live shard gets kFlush(token) and
// the call blocks until each kFlushAck(token) arrives, so after Flush()
// every accepted query's response is in TakeResponses().
//
// Live migration (Migrate): flush, checkpoint the shard's SessionStore
// *filtered to the ids its placement slot owns*, build a replacement host
// on a fresh link, restore the checkpoint, then atomically swap the slot
// (ingest holds the slot mutex for the swap only).  The placement table
// itself never changes — a slot keeps its id range; only the host behind
// it is replaced, which is why a migrated cluster stays bit-identical to
// an unsharded golden run.
//
// Replication (ClusterConfig::replicate): every accepted observation is
// dual-written as a replicate frame to the object's standby shard — the
// first live slot in its preference order after the one that took the
// primary write — where it lands in a warm-standby SessionStore.  When a
// primary dies, the first packet that finds it dead triggers automatic
// failover: a flush fence, a placement-epoch bump (broadcast in-band as
// kEpochSet; older-stamped replicate frames become typed
// kRejectedStaleEpoch — the split-brain fence), and an anti-entropy
// repair that promotes the dead shard's standby copies into their new
// primaries.  Recover() reverses it: the shard comes back (from its WAL
// + checkpoint files when durable_dir is set), promoted sessions are
// handed back, and standby copies are re-seeded.  See DESIGN.md
// "Replication & failover".
//
// All cluster metrics are namespaced `cluster.*`; AllMetricNames() is the
// canonical list (tested against --metrics output).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "cluster/placement.h"
#include "cluster/shard_host.h"
#include "cluster/transport.h"
#include "core/nomloc.h"
#include "serving/clock.h"
#include "serving/service.h"
#include "serving/wire.h"

namespace nomloc::cluster {

struct ClusterConfig {
  std::size_t shards = 4;
  TransportConfig transport;
  /// Per-host serving config (workers, queue bounds, store, faults...).
  serving::ServingConfig serving;
  /// Per-shard transport health breakers.
  serving::CircuitBreakerConfig shard_breaker;
  /// Walk the rendezvous preference order around unhealthy shards.  Off,
  /// an unhealthy owner rejects with kRejectedBreakerOpen instead.
  bool route_around = true;
  /// Hosts advance their logical clock from packet timestamps.  Turn off
  /// when the driver steers time via SetLogicalTime (chaos clock jumps).
  bool clock_from_packets = true;
  std::uint64_t placement_seed = kDefaultPlacementSeed;
  /// Dual-write every accepted observation to the object's standby shard
  /// (the first live slot in its preference order after the one that took
  /// the primary write), and promote standbys automatically when a
  /// primary dies (see "Replication & failover" in DESIGN.md).  Requires
  /// >= 2 shards.
  bool replicate = false;
  /// Durable state root (empty = in-memory cluster).  Each shard gets
  /// `<durable_dir>/shard-N` holding its WAL segments + checkpoint files;
  /// Recover() brings a killed shard back from them.
  std::string durable_dir;
  std::size_t wal_segment_bytes = 1 << 20;
  bool wal_fsync = true;
  /// Router-side reconnect/retry policy: a transport write that reports
  /// backpressure is retried up to this many times with exponential
  /// backoff + deterministic jitter before the typed kRejectedQueueFull
  /// is surfaced (0 = reject immediately, the pre-replication behavior).
  /// An exhausted budget also feeds the shard's breaker, so persistent
  /// pressure trips it and re-admission flows through the half-open
  /// probe.  True re-dialing does not exist for in-process link pairs —
  /// Restart()/Recover() is the reconnect; the budget covers the
  /// transient window.
  std::size_t write_retry_budget = 0;
  double write_retry_base_ms = 1.0;
  double write_retry_max_ms = 50.0;
  std::uint64_t write_retry_jitter_seed = 0x2545f4914f6cdd1dull;

  common::Result<void> Validate() const;
};

/// One response received from a shard, stamped on arrival for
/// coordinated-omission-free latency measurement (the scheduled send wall
/// time cannot cross the wire, so the *router* closes the loop).
struct ClusterResponse {
  serving::WireResponse response;
  std::size_t shard = 0;
  std::chrono::steady_clock::time_point received_wall{};
};

class Cluster {
 public:
  /// `engine` and `clock` must outlive the cluster.  `clock` may be null
  /// (router admission then runs on wall time).
  static common::Result<std::unique_ptr<Cluster>> Create(
      const core::NomLocEngine& engine, ClusterConfig config,
      const serving::Clock* clock = nullptr);

  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Routes one packet (see the admission table above).
  serving::AdmitStatus Ingest(const serving::IngestPacket& packet);

  /// Broadcasts kClockSet(now_s) to every live shard, in-band (ordered
  /// with respect to later Ingest calls on each stream).
  void SetLogicalTime(double now_s);

  /// Token round-trip on every live shard; on return all responses to
  /// previously accepted packets are available via TakeResponses().
  void Flush();

  std::vector<ClusterResponse> TakeResponses();

  /// Flush + filtered checkpoint of `shard`'s store (only ids its
  /// placement slot owns); the dump is kept for Restart(restore=true).
  common::Result<void> Checkpoint(std::size_t shard);

  /// Live migration: drain, checkpoint (filtered), restore into a fresh
  /// host on a fresh link, swap atomically.  Bit-identity is preserved —
  /// the replacement answers exactly as the original would have.
  common::Result<void> Migrate(std::size_t shard);

  /// Chaos: abrupt shard death.  The host and both link ends die; later
  /// writes fail and trip the shard's breaker.  `unclean` is the crash
  /// end of the spectrum: the host aborts mid-stream (decoded-but-
  /// unapplied bytes die with it) instead of draining — state then comes
  /// back only through Recover()'s WAL replay, never a graceful drain.
  void Kill(std::size_t shard, bool unclean = false);

  /// Brings a killed shard back on a fresh host + link.  With `restore`,
  /// the last Checkpoint()/Migrate() dump is loaded first (sessions since
  /// that dump are lost — they age out via TTL).  The shard's breaker is
  /// kept: the router re-admits it through the half-open probe path.
  common::Result<void> Restart(std::size_t shard, bool restore);

  /// Full recovery of a killed shard: reattach a host (which, with a
  /// durable_dir, self-restores from its checkpoint files + WAL replay),
  /// bump the placement epoch, and run anti-entropy repair — promoted
  /// sessions are handed back to the recovered owner (its replayed copy
  /// is superseded by the promoted one, which kept absorbing writes
  /// while it was down) and every session's standby copy is re-seeded on
  /// the proper host.  The shard's breaker is reset: after Recover() the
  /// cluster serves exactly as if the failure never happened.
  common::Result<void> Recover(std::size_t shard);

  /// Chaos: stall `shard`'s ingest direction (bytes queue up to the
  /// loopback capacity, then writes see backpressure).  Returns false on
  /// transports that cannot stall.
  bool SetStalled(std::size_t shard, bool stalled);

  std::size_t ShardCount() const noexcept;
  std::size_t ShardOf(std::uint64_t object_id) const noexcept;
  bool ShardLive(std::size_t shard) const;
  const PlacementTable& Placement() const noexcept { return table_; }
  /// The current placement epoch (bumped by failover and recovery;
  /// stamped into every control and replicate frame).
  std::uint64_t PlacementEpoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }
  /// Test/tool introspection; null while the shard is killed.
  serving::SessionStore* StoreOf(std::size_t shard);
  /// The shard's warm-standby store (replica copies of other shards'
  /// sessions); null while the shard is killed.
  serving::SessionStore* StandbyStoreOf(std::size_t shard);

  /// Closes every link and joins every thread.  Idempotent; Ingest
  /// afterwards returns kRejectedShutdown.
  void Shutdown();

 private:
  struct Slot;

  Cluster(const core::NomLocEngine& engine, ClusterConfig config,
          const serving::Clock* clock, PlacementTable table);

  /// Builds a connected host (+ its router-side reader) for `slot`.
  common::Result<void> AttachHost(std::size_t shard, const std::string* dump);
  void DetachHost(std::size_t shard);
  void ReaderLoop(std::size_t shard);
  /// Write under the slot mutex, stream header included on first use.
  LinkWrite WriteToSlot(Slot& slot, std::string_view bytes);
  /// `<durable_dir>/shard-N` (empty when the cluster is in-memory).
  std::string ShardDurableDir(std::size_t shard) const;
  /// Dual-writes one accepted observation to the object's standby shard
  /// (first live preference-order slot != `delivered`).
  void ReplicateWrite(const serving::IngestPacket& packet,
                      std::size_t delivered);
  /// Promotes the dead shard's standbys exactly once (flush fence, epoch
  /// bump + broadcast, anti-entropy repair).  Races resolve to a single
  /// promotion via the slot's failed_over latch.
  void MaybeFailover(std::size_t shard);
  /// In-band kEpochSet to every live shard.
  void BroadcastEpoch(std::uint64_t epoch);
  /// Global 4-pass convergence sweep (caller holds failover_mutex_ and
  /// has flushed): promote owed standbys, hand sessions back to their
  /// effective primary, drop misplaced standby copies, reseed missing
  /// ones.  Shared by failover promotion and Recover().
  void AntiEntropyRepair();

  const core::NomLocEngine& engine_;
  ClusterConfig config_;
  std::unique_ptr<serving::SteadyClock> owned_clock_;
  const serving::Clock* clock_;  ///< Never null.
  PlacementTable table_;

  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> flush_token_{0};
  /// Authoritative placement epoch (mirrored into table_ under
  /// failover_mutex_).
  std::atomic<std::uint64_t> epoch_{0};
  /// Serializes failover promotion, recovery, and anti-entropy repair.
  std::mutex failover_mutex_;
  /// Deterministic stream for retry-backoff jitter.
  std::atomic<std::uint64_t> retry_jitter_state_{0};

  std::mutex ack_mutex_;
  std::condition_variable ack_cv_;

  std::mutex responses_mutex_;
  std::vector<ClusterResponse> responses_;
};

/// Canonical names of every cluster metric, for drift tests and tooling.
std::span<const std::string_view> AllMetricNames();

/// Registers every cluster metric in the global registry so a --metrics
/// dump lists the full cluster surface even before traffic.
void TouchMetrics();

}  // namespace nomloc::cluster
