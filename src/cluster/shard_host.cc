#include "cluster/shard_host.h"

#include <algorithm>
#include <chrono>
#include <string_view>

#include "common/metrics.h"
#include "serving/wire.h"

namespace nomloc::cluster {

namespace {

common::MetricCounter& HostRejected() {
  static auto& counter =
      common::MetricRegistry::Global().Counter("cluster.host.rejected");
  return counter;
}

serving::WireResponse ToWire(const serving::ServeResponse& response) {
  serving::WireResponse wire;
  wire.object_id = response.object_id;
  wire.timestamp_s = response.timestamp_s;
  wire.status = static_cast<std::uint8_t>(response.status);
  wire.degradation = static_cast<std::uint8_t>(response.degradation);
  wire.degraded = response.degraded;
  wire.anchor_count = static_cast<std::uint32_t>(response.anchor_count);
  wire.position = response.estimate.position;
  wire.relaxation_cost = response.estimate.relaxation_cost;
  wire.feasible_area_m2 = response.estimate.feasible_area_m2;
  wire.confidence = response.confidence;
  return wire;
}

}  // namespace

common::Result<std::unique_ptr<ShardHost>> ShardHost::Create(
    const core::NomLocEngine& engine, serving::ServingConfig serving_config,
    std::unique_ptr<Link> link, bool clock_from_packets) {
  if (link == nullptr)
    return common::InvalidArgument("shard host needs a transport link");
  auto host = std::unique_ptr<ShardHost>(
      new ShardHost(engine, std::move(link), clock_from_packets));
  NOMLOC_ASSIGN_OR_RETURN(
      host->localizer_,
      serving::StreamingLocalizer::Create(engine, std::move(serving_config),
                                          &host->clock_));
  host->reader_ = std::thread([raw = host.get()] { raw->ReaderLoop(); });
  return host;
}

ShardHost::ShardHost(const core::NomLocEngine& /*engine*/,
                     std::unique_ptr<Link> link, bool clock_from_packets)
    : link_(std::move(link)), clock_from_packets_(clock_from_packets) {}

ShardHost::~ShardHost() { Stop(); }

void ShardHost::Stop() {
  if (stopped_.exchange(true)) {
    if (reader_.joinable()) reader_.join();
    return;
  }
  link_->Close();
  if (reader_.joinable()) reader_.join();
  if (localizer_) localizer_->Shutdown();  // Null if Create failed early.
}

void ShardHost::WriteOut(std::string& outbound) {
  if (outbound.empty()) return;
  // The router's per-shard reader drains continuously, so backpressure on
  // the response direction is transient — but a flush batch (responses +
  // ack) can exceed the pipe's *total* capacity, in which case a whole-
  // buffer write would never fit.  Halve the chunk size on every reject:
  // the decoder is incremental, so byte-level splits mid-frame are fine,
  // and a 1-byte chunk always makes progress against a draining reader.
  // A closed link means the router is gone and the bytes have nowhere to
  // go.
  std::size_t offset = 0;
  std::size_t chunk = outbound.size();
  for (int stalls = 0; offset < outbound.size() && stalls < 10000;) {
    const std::size_t n = std::min(chunk, outbound.size() - offset);
    const LinkWrite verdict =
        link_->Write(std::string_view(outbound).substr(offset, n));
    if (verdict == LinkWrite::kClosed) break;
    if (verdict == LinkWrite::kOk) {
      offset += n;
      continue;
    }
    ++stalls;
    chunk = std::max<std::size_t>(1, chunk / 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  outbound.clear();
}

void ShardHost::HandleFlush(std::uint64_t token, std::string& outbound) {
  localizer_->Flush();
  std::vector<serving::ServeResponse> responses = localizer_->TakeResponses();
  std::sort(responses.begin(), responses.end(),
            [](const serving::ServeResponse& a,
               const serving::ServeResponse& b) { return a.seq < b.seq; });
  if (!header_sent_) {
    outbound += serving::WireHeader();
    header_sent_ = true;
  }
  for (const serving::ServeResponse& response : responses)
    serving::AppendWireResponseFrame(ToWire(response), outbound);
  serving::WireControl ack;
  ack.op = serving::WireControlOp::kFlushAck;
  ack.token = token;
  serving::AppendWireControlFrame(ack, outbound);
  WriteOut(outbound);
}

void ShardHost::ReaderLoop() {
  serving::WireDecoder decoder(serving::WireDecoderAccept{
      .packets = true, .responses = false, .controls = true, .ordered = true});
  std::string incoming;
  std::string outbound;
  while (true) {
    incoming.clear();
    if (link_->Read(incoming) == 0) break;
    if (!decoder.Feed(incoming).ok()) break;  // Poisoned stream: tear down.
    for (const serving::WireEvent& event : decoder.TakeEvents()) {
      switch (event.kind) {
        case serving::kWireObservationFrame:
        case serving::kWireQueryFrame: {
          if (clock_from_packets_)
            clock_.Set(std::max(clock_.NowSeconds(),
                                event.packet.timestamp_s));
          const serving::AdmitStatus admit =
              localizer_->Ingest(event.packet);
          if (admit != serving::AdmitStatus::kAccepted &&
              admit != serving::AdmitStatus::kDroppedByFault)
            HostRejected().Increment();
          break;
        }
        case serving::kWireControlFrame:
          switch (event.control.op) {
            case serving::WireControlOp::kClockSet:
              clock_.Set(event.control.value);
              break;
            case serving::WireControlOp::kFlush:
              HandleFlush(event.control.token, outbound);
              break;
            case serving::WireControlOp::kFlushAck:
              break;  // Router-direction verb; ignore.
          }
          break;
        default:
          break;  // Response frames are rejected by the decoder already.
      }
    }
  }
}

}  // namespace nomloc::cluster
