#include "cluster/shard_host.h"

#include <algorithm>
#include <chrono>
#include <string_view>
#include <vector>

#include "common/metrics.h"

namespace nomloc::cluster {

namespace {

common::MetricCounter& HostRejected() {
  static auto& counter =
      common::MetricRegistry::Global().Counter("cluster.host.rejected");
  return counter;
}

common::MetricCounter& StaleEpoch() {
  static auto& counter = common::MetricRegistry::Global().Counter(
      "cluster.placement.stale_epoch");
  return counter;
}

serving::WireResponse ToWire(const serving::ServeResponse& response) {
  serving::WireResponse wire;
  wire.object_id = response.object_id;
  wire.timestamp_s = response.timestamp_s;
  wire.status = static_cast<std::uint8_t>(response.status);
  wire.degradation = static_cast<std::uint8_t>(response.degradation);
  wire.degraded = response.degraded;
  wire.anchor_count = static_cast<std::uint32_t>(response.anchor_count);
  wire.position = response.estimate.position;
  wire.relaxation_cost = response.estimate.relaxation_cost;
  wire.feasible_area_m2 = response.estimate.feasible_area_m2;
  wire.confidence = response.confidence;
  return wire;
}

/// Loads one checkpoint file into `store` (Restore semantics).  A missing
/// file is simply an empty state, not an error.
common::Result<void> RestoreCheckpointFile(const std::string& path,
                                           serving::SessionStore& store) {
  auto payload = serving::LoadCheckpointFile(path);
  if (!payload.ok()) {
    if (payload.status().code() == common::StatusCode::kNotFound) return {};
    return payload.status();
  }
  NOMLOC_ASSIGN_OR_RETURN(common::Json checkpoint,
                          common::Json::Parse(payload.value()));
  NOMLOC_RETURN_IF_ERROR(store.RestoreFromJson(checkpoint).status());
  return {};
}

}  // namespace

common::Result<std::unique_ptr<ShardHost>> ShardHost::Create(
    const core::NomLocEngine& engine, serving::ServingConfig serving_config,
    std::unique_ptr<Link> link, ShardHostOptions options) {
  if (link == nullptr)
    return common::InvalidArgument("shard host needs a transport link");
  auto host = std::unique_ptr<ShardHost>(
      new ShardHost(engine, std::move(link), std::move(options)));
  host->standby_ =
      std::make_unique<serving::SessionStore>(serving_config.store);
  NOMLOC_ASSIGN_OR_RETURN(
      host->localizer_,
      serving::StreamingLocalizer::Create(engine, std::move(serving_config),
                                          &host->clock_));
  NOMLOC_RETURN_IF_ERROR(host->Recover().status());
  host->reader_ = std::thread([raw = host.get()] { raw->ReaderLoop(); });
  return host;
}

ShardHost::ShardHost(const core::NomLocEngine& /*engine*/,
                     std::unique_ptr<Link> link, ShardHostOptions options)
    : link_(std::move(link)), options_(std::move(options)),
      epoch_(options_.placement_epoch) {}

ShardHost::~ShardHost() { Stop(); }

void ShardHost::Stop() {
  if (stopped_.exchange(true)) {
    if (reader_.joinable()) reader_.join();
    return;
  }
  link_->Close();
  if (reader_.joinable()) reader_.join();
  if (localizer_) localizer_->Shutdown();  // Null if Create failed early.
}

void ShardHost::Abort() {
  // The reader checks this flag before applying each decoded batch, so
  // bytes the transport already delivered die unapplied — the in-process
  // equivalent of SIGKILL mid-stream.  Stop() still joins and shuts the
  // localizer down afterwards; recovery happens in the next Create().
  aborted_.store(true, std::memory_order_release);
  link_->Close();
}

common::Result<void> ShardHost::Recover() {
  if (options_.durable_dir.empty()) return {};
  NOMLOC_RETURN_IF_ERROR(
      RestoreCheckpointFile(ShardCheckpointPath(options_.durable_dir),
                            localizer_->Store()).status());
  NOMLOC_RETURN_IF_ERROR(
      RestoreCheckpointFile(ShardStandbyPath(options_.durable_dir), *standby_)
          .status());
  serving::WalConfig wal_config;
  wal_config.directory = options_.durable_dir;
  wal_config.segment_bytes = options_.wal_segment_bytes;
  wal_config.fsync = options_.wal_fsync;
  NOMLOC_ASSIGN_OR_RETURN(
      serving::WalOpenResult opened,
      serving::WriteAheadLog::Open(
          wal_config,
          serving::WireDecoderAccept{.packets = true, .responses = false,
                                     .controls = true, .replicates = true,
                                     .ordered = true}));
  for (const serving::WireEvent& event : opened.events)
    ApplyEvent(event, nullptr);
  if (!opened.events.empty()) {
    // Replayed queries re-solve; their responses were already delivered
    // before the crash (or die with it) — either way they must not leak
    // into the post-recovery response stream.
    localizer_->Flush();
    localizer_->TakeResponses();
  }
  std::lock_guard<std::mutex> lock(wal_mutex_);
  wal_ = std::move(opened.wal);
  return {};
}

common::Result<void> ShardHost::ResetWal() {
  std::lock_guard<std::mutex> lock(wal_mutex_);
  if (wal_ == nullptr) return {};
  return wal_->Reset();
}

serving::AdmitStatus ShardHost::ApplyReplicate(
    const serving::WireReplicate& replicate) {
  if (replicate.epoch < epoch_.load(std::memory_order_acquire)) {
    StaleEpoch().Increment();
    return serving::AdmitStatus::kRejectedStaleEpoch;
  }
  const serving::IngestPacket& packet = replicate.packet;
  // Mirror of the worker's observation apply (service.cc Serve): in
  // cluster mode the stream is globally timestamp-sorted, so the packet
  // timestamp IS the logical now the primary applied it at.
  const double now_s = packet.timestamp_s;
  if (now_s > packet.deadline_s) return serving::AdmitStatus::kAccepted;
  serving::PdpObservation obs;
  obs.pdp = packet.pdp;
  obs.weight = packet.weight;
  obs.timestamp_s = packet.timestamp_s;
  standby_->Upsert(packet.object_id,
                   serving::AnchorKey{packet.ap_id, packet.site_index},
                   packet.reported_position, packet.is_nomadic, obs, now_s);
  return serving::AdmitStatus::kAccepted;
}

void ShardHost::WriteOut(std::string& outbound) {
  if (outbound.empty()) return;
  // The router's per-shard reader drains continuously, so backpressure on
  // the response direction is transient — but a flush batch (responses +
  // ack) can exceed the pipe's *total* capacity, in which case a whole-
  // buffer write would never fit.  Halve the chunk size on every reject:
  // the decoder is incremental, so byte-level splits mid-frame are fine,
  // and a 1-byte chunk always makes progress against a draining reader.
  // A closed link means the router is gone and the bytes have nowhere to
  // go.
  std::size_t offset = 0;
  std::size_t chunk = outbound.size();
  for (int stalls = 0; offset < outbound.size() && stalls < 10000;) {
    const std::size_t n = std::min(chunk, outbound.size() - offset);
    const LinkWrite verdict =
        link_->Write(std::string_view(outbound).substr(offset, n));
    if (verdict == LinkWrite::kClosed) break;
    if (verdict == LinkWrite::kOk) {
      offset += n;
      continue;
    }
    ++stalls;
    chunk = std::max<std::size_t>(1, chunk / 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  outbound.clear();
}

void ShardHost::HandleFlush(std::uint64_t token, std::string& outbound) {
  localizer_->Flush();
  std::vector<serving::ServeResponse> responses = localizer_->TakeResponses();
  std::sort(responses.begin(), responses.end(),
            [](const serving::ServeResponse& a,
               const serving::ServeResponse& b) { return a.seq < b.seq; });
  if (!header_sent_) {
    outbound += serving::WireHeader();
    header_sent_ = true;
  }
  for (const serving::ServeResponse& response : responses)
    serving::AppendWireResponseFrame(ToWire(response), outbound);
  serving::WireControl ack;
  ack.op = serving::WireControlOp::kFlushAck;
  ack.token = token;
  serving::AppendWireControlFrame(ack, outbound);
  WriteOut(outbound);
}

void ShardHost::ApplyEvent(const serving::WireEvent& event,
                           std::string* outbound) {
  switch (event.kind) {
    case serving::kWireObservationFrame:
    case serving::kWireQueryFrame: {
      if (options_.clock_from_packets)
        clock_.Set(std::max(clock_.NowSeconds(), event.packet.timestamp_s));
      const serving::AdmitStatus admit = localizer_->Ingest(event.packet);
      if (admit != serving::AdmitStatus::kAccepted &&
          admit != serving::AdmitStatus::kDroppedByFault)
        HostRejected().Increment();
      break;
    }
    case serving::kWireReplicateFrame:
      // Deliberately no clock advance: the standby applies at the packet
      // timestamp, and the host clock should track only its *own*
      // shard's stream, exactly as in an unreplicated cluster.
      ApplyReplicate(event.replicate);
      break;
    case serving::kWireControlFrame:
      switch (event.control.op) {
        case serving::WireControlOp::kClockSet:
          clock_.Set(event.control.value);
          break;
        case serving::WireControlOp::kEpochSet: {
          // Monotone adoption; an old epoch on the wire never rolls the
          // fence back.
          const std::uint64_t current =
              epoch_.load(std::memory_order_acquire);
          if (event.control.epoch > current)
            epoch_.store(event.control.epoch, std::memory_order_release);
          break;
        }
        case serving::WireControlOp::kFlush:
          if (outbound != nullptr) HandleFlush(event.control.token, *outbound);
          break;
        case serving::WireControlOp::kFlushAck:
          break;  // Router-direction verb; ignore.
      }
      break;
    default:
      break;  // Response frames are rejected by the decoder already.
  }
}

void ShardHost::EncodeForWal(const serving::WireEvent& event,
                             std::string& out) {
  switch (event.kind) {
    case serving::kWireObservationFrame:
    case serving::kWireQueryFrame:
      serving::AppendWireFrame(event.packet, out);
      break;
    case serving::kWireReplicateFrame:
      serving::AppendWireReplicateFrame(event.replicate, out);
      break;
    case serving::kWireControlFrame:
      // kFlush/kFlushAck are barriers, not state: replaying a flush would
      // emit responses nobody is listening for.
      if (event.control.op == serving::WireControlOp::kClockSet ||
          event.control.op == serving::WireControlOp::kEpochSet)
        serving::AppendWireControlFrame(event.control, out);
      break;
    default:
      break;
  }
}

void ShardHost::ReaderLoop() {
  serving::WireDecoder decoder(serving::WireDecoderAccept{
      .packets = true, .responses = false, .controls = true,
      .replicates = true, .ordered = true});
  std::string incoming;
  std::string outbound;
  std::string wal_batch;
  while (true) {
    incoming.clear();
    if (link_->Read(incoming) == 0) break;
    // An aborted host dies mid-stream: bytes the transport already
    // handed over are abandoned, decoded or not.
    if (aborted_.load(std::memory_order_acquire)) break;
    if (!decoder.Feed(incoming).ok()) break;  // Poisoned stream: tear down.
    const std::vector<serving::WireEvent> events = decoder.TakeEvents();
    if (wal_ != nullptr) {
      // Append-before-apply: every frame that can touch state hits disk
      // before it does, so the WAL is always a superset of applied state.
      wal_batch.clear();
      for (const serving::WireEvent& event : events)
        EncodeForWal(event, wal_batch);
      if (!wal_batch.empty()) {
        std::lock_guard<std::mutex> lock(wal_mutex_);
        if (!wal_->Append(wal_batch).ok()) break;  // Disk gone: stop clean.
      }
    }
    if (aborted_.load(std::memory_order_acquire)) break;
    for (const serving::WireEvent& event : events) ApplyEvent(event, &outbound);
  }
}

}  // namespace nomloc::cluster
