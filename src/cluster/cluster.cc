#include "cluster/cluster.h"

#include <algorithm>
#include <optional>

#include "common/metrics.h"
#include "serving/wal.h"

namespace nomloc::cluster {

namespace {

constexpr std::string_view kCounterNames[] = {
    "cluster.routed",
    "cluster.rerouted",
    "cluster.rejected.backpressure",
    "cluster.rejected.breaker",
    "cluster.rejected.deadline",
    "cluster.rejected.shutting_down",
    "cluster.shard_trips",
    "cluster.migrations",
    "cluster.checkpoints",
    "cluster.restarts",
    "cluster.kills",
    "cluster.flushes",
    "cluster.responses",
    "cluster.host.rejected",
    "cluster.replicated",
    "cluster.replicate.failed",
    "cluster.failovers",
    "cluster.promoted_sessions",
    "cluster.repair.sessions",
    "cluster.recoveries",
    "cluster.placement.stale_epoch",
    "cluster.write_retries",
};

common::MetricCounter& Metric(std::string_view name) {
  return common::MetricRegistry::Global().Counter(name);
}

/// splitmix64 step, for deterministic retry-backoff jitter.
std::uint64_t JitterMix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

}  // namespace

std::span<const std::string_view> AllMetricNames() { return kCounterNames; }

void TouchMetrics() {
  for (std::string_view name : kCounterNames) Metric(name);
}

common::Result<void> ClusterConfig::Validate() const {
  if (shards == 0)
    return common::InvalidArgument("cluster needs at least one shard");
  if (replicate && shards < 2)
    return common::InvalidArgument(
        "replication needs at least two shards (a standby must live "
        "somewhere else)");
  if (write_retry_base_ms <= 0.0 || write_retry_max_ms < write_retry_base_ms)
    return common::InvalidArgument(
        "retry backoff needs 0 < base_ms <= max_ms");
  NOMLOC_RETURN_IF_ERROR(transport.Validate().status());
  NOMLOC_RETURN_IF_ERROR(serving.Validate().status());
  NOMLOC_RETURN_IF_ERROR(shard_breaker.Validate().status());
  return {};
}

/// Everything the router knows about one shard slot.  `mutex` guards the
/// write side (link, header, breaker, live flag, failed_over latch); the
/// read side is the slot's dedicated reader thread, which owns the raw
/// Link pointer it was spawned with and never touches these fields.
struct Cluster::Slot {
  explicit Slot(const serving::CircuitBreakerConfig& breaker_config)
      : breaker(breaker_config) {}

  std::mutex mutex;
  std::unique_ptr<ShardHost> host;
  std::unique_ptr<Link> link;  ///< Router end.
  bool header_sent = false;
  bool live = false;
  /// Set by the one failover that promoted this slot's standbys; cleared
  /// on reattach.  The exactly-once latch for MaybeFailover races.
  bool failed_over = false;
  serving::CircuitBreaker breaker;
  std::thread reader;
  /// Guarded by Cluster::ack_mutex_.
  std::uint64_t acked_token = 0;
  bool reader_done = true;
  /// Last Checkpoint()/Migrate() dump, for Restart(restore=true).
  std::string checkpoint;
  /// Last full standby-store dump (replicate mode), saved alongside.
  std::string standby_checkpoint;
};

common::Result<std::unique_ptr<Cluster>> Cluster::Create(
    const core::NomLocEngine& engine, ClusterConfig config,
    const serving::Clock* clock) {
  NOMLOC_RETURN_IF_ERROR(config.Validate().status());
  NOMLOC_ASSIGN_OR_RETURN(
      PlacementTable table,
      PlacementTable::Create(config.shards, config.placement_seed));
  auto cluster = std::unique_ptr<Cluster>(
      new Cluster(engine, std::move(config), clock, std::move(table)));
  for (std::size_t shard = 0; shard < cluster->config_.shards; ++shard) {
    auto status = cluster->AttachHost(shard, nullptr);
    if (!status.ok()) {
      cluster->Shutdown();
      return status.status();
    }
  }
  return cluster;
}

Cluster::Cluster(const core::NomLocEngine& engine, ClusterConfig config,
                 const serving::Clock* clock, PlacementTable table)
    : engine_(engine), config_(std::move(config)), clock_(clock),
      table_(std::move(table)) {
  if (clock_ == nullptr) {
    owned_clock_ = std::make_unique<serving::SteadyClock>();
    clock_ = owned_clock_.get();
  }
  retry_jitter_state_.store(config_.write_retry_jitter_seed,
                            std::memory_order_relaxed);
  slots_.reserve(config_.shards);
  for (std::size_t shard = 0; shard < config_.shards; ++shard)
    slots_.push_back(std::make_unique<Slot>(config_.shard_breaker));
}

Cluster::~Cluster() { Shutdown(); }

std::string Cluster::ShardDurableDir(std::size_t shard) const {
  if (config_.durable_dir.empty()) return {};
  return config_.durable_dir + "/shard-" + std::to_string(shard);
}

common::Result<void> Cluster::AttachHost(std::size_t shard,
                                         const std::string* dump) {
  NOMLOC_ASSIGN_OR_RETURN(LinkPair pair, ConnectLinkPair(config_.transport));
  ShardHostOptions options;
  options.clock_from_packets = config_.clock_from_packets;
  options.placement_epoch = epoch_.load(std::memory_order_acquire);
  options.durable_dir = ShardDurableDir(shard);
  options.wal_segment_bytes = config_.wal_segment_bytes;
  options.wal_fsync = config_.wal_fsync;
  NOMLOC_ASSIGN_OR_RETURN(
      std::unique_ptr<ShardHost> host,
      ShardHost::Create(engine_, config_.serving, std::move(pair.host_end),
                        std::move(options)));
  if (dump != nullptr && !dump->empty()) {
    NOMLOC_ASSIGN_OR_RETURN(common::Json checkpoint,
                            common::Json::Parse(*dump));
    auto restored = host->Store().RestoreFromJson(checkpoint);
    if (!restored.ok()) {
      host->Stop();
      return restored.status();
    }
  }
  Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mutex);
  slot.host = std::move(host);
  slot.link = std::move(pair.router_end);
  slot.header_sent = false;
  slot.live = true;
  slot.failed_over = false;
  {
    std::lock_guard<std::mutex> ack_lock(ack_mutex_);
    slot.reader_done = false;
  }
  slot.reader = std::thread([this, shard] { ReaderLoop(shard); });
  return {};
}

void Cluster::DetachHost(std::size_t shard) {
  Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mutex);
  if (!slot.live && slot.host == nullptr) return;
  slot.live = false;
  if (slot.link) slot.link->Close();
  if (slot.reader.joinable()) slot.reader.join();
  if (slot.host) slot.host->Stop();
  slot.host.reset();
  slot.link.reset();
  ack_cv_.notify_all();
}

void Cluster::ReaderLoop(std::size_t shard) {
  Slot& slot = *slots_[shard];
  // The attach that spawned this thread set the link before the spawn
  // (thread creation synchronizes), and DetachHost joins us before
  // resetting it — a plain read is race-free for the thread's lifetime.
  Link* const link = slot.link.get();
  serving::WireDecoder decoder(serving::WireDecoderAccept{
      .packets = false, .responses = true, .controls = true, .ordered = true});
  std::string incoming;
  static auto& responses_counter = Metric("cluster.responses");
  while (true) {
    incoming.clear();
    if (link->Read(incoming) == 0) break;
    if (!decoder.Feed(incoming).ok()) break;
    for (const serving::WireEvent& event : decoder.TakeEvents()) {
      if (event.kind == serving::kWireResponseFrame) {
        ClusterResponse response;
        response.response = event.response;
        response.shard = shard;
        response.received_wall = std::chrono::steady_clock::now();
        responses_counter.Increment();
        std::lock_guard<std::mutex> lock(responses_mutex_);
        responses_.push_back(response);
      } else if (event.kind == serving::kWireControlFrame &&
                 event.control.op == serving::WireControlOp::kFlushAck) {
        std::lock_guard<std::mutex> lock(ack_mutex_);
        if (event.control.token > slot.acked_token)
          slot.acked_token = event.control.token;
        ack_cv_.notify_all();
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(ack_mutex_);
    slot.reader_done = true;
  }
  ack_cv_.notify_all();
}

LinkWrite Cluster::WriteToSlot(Slot& slot, std::string_view bytes) {
  if (!slot.header_sent) {
    std::string first = serving::WireHeader();
    first.append(bytes.data(), bytes.size());
    const LinkWrite verdict = slot.link->Write(first);
    if (verdict == LinkWrite::kOk) slot.header_sent = true;
    return verdict;
  }
  return slot.link->Write(bytes);
}

serving::AdmitStatus Cluster::Ingest(const serving::IngestPacket& packet) {
  static auto& routed = Metric("cluster.routed");
  static auto& rerouted = Metric("cluster.rerouted");
  static auto& rejected_backpressure = Metric("cluster.rejected.backpressure");
  static auto& rejected_breaker = Metric("cluster.rejected.breaker");
  static auto& rejected_deadline = Metric("cluster.rejected.deadline");
  static auto& rejected_shutting_down =
      Metric("cluster.rejected.shutting_down");
  static auto& trips = Metric("cluster.shard_trips");
  static auto& write_retries = Metric("cluster.write_retries");

  if (shutdown_.load(std::memory_order_acquire))
    return serving::AdmitStatus::kRejectedShutdown;
  const double now_s = clock_->NowSeconds();
  // Same admission comparison as StreamingLocalizer::Ingest, so a
  // router-side rejection is exactly the rejection the unsharded run
  // would have issued (neither produces a response).
  if (now_s > packet.deadline_s) {
    rejected_deadline.Increment();
    return serving::AdmitStatus::kRejectedDeadline;
  }

  std::string frame;
  serving::AppendWireFrame(packet, frame);

  const auto record_failure = [&](Slot& slot) {
    const bool was_open = slot.breaker.State() == serving::BreakerState::kOpen;
    slot.breaker.RecordFailure(now_s);
    if (!was_open && slot.breaker.State() == serving::BreakerState::kOpen)
      trips.Increment();
  };

  // nullopt = this candidate cannot take the packet (dead / breaker
  // open / transport closed); a definite verdict stops the walk.
  auto try_slot =
      [&](std::size_t index) -> std::optional<serving::AdmitStatus> {
    Slot& slot = *slots_[index];
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (!slot.breaker.Allow(now_s)) return std::nullopt;
    if (!slot.live || slot.link == nullptr) {
      if (shutdown_.load(std::memory_order_acquire)) {
        // The teardown race, not a shard fault: typed as shutting-down
        // (definite, no breaker count — nothing will probe back).
        rejected_shutting_down.Increment();
        return serving::AdmitStatus::kRejectedShuttingDown;
      }
      // A dead shard fails its candidates like a broken transport: the
      // breaker counts toward a trip, then Allow() short-circuits.
      record_failure(slot);
      return std::nullopt;
    }
    const LinkWrite verdict = WriteToSlot(slot, frame);
    if (verdict == LinkWrite::kOk) {
      slot.breaker.RecordSuccess(now_s);
      return serving::AdmitStatus::kAccepted;
    }
    if (verdict == LinkWrite::kBackpressure) {
      // Typed backpressure, no reroute: scattering an object's session
      // across shards over a transient full pipe would split its anchor
      // history.  The sender retries; the owner keeps the session.
      return serving::AdmitStatus::kRejectedQueueFull;
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      rejected_shutting_down.Increment();
      return serving::AdmitStatus::kRejectedShuttingDown;
    }
    record_failure(slot);
    return std::nullopt;
  };

  // The reconnect/retry policy: transient backpressure is waited out with
  // exponential backoff + jitter before the typed rejection escapes.  An
  // exhausted budget feeds the breaker so persistent pressure trips it
  // and re-admission runs through the half-open probe.
  auto try_slot_with_retry =
      [&](std::size_t index) -> std::optional<serving::AdmitStatus> {
    auto verdict = try_slot(index);
    if (config_.write_retry_budget == 0) return verdict;
    double backoff_ms = config_.write_retry_base_ms;
    for (std::size_t attempt = 0;
         verdict.has_value() &&
         *verdict == serving::AdmitStatus::kRejectedQueueFull &&
         attempt < config_.write_retry_budget;
         ++attempt) {
      write_retries.Increment();
      const std::uint64_t draw = JitterMix(
          retry_jitter_state_.fetch_add(1, std::memory_order_relaxed));
      const double frac = double(draw >> 11) * 0x1.0p-53;  // [0, 1)
      const double sleep_ms = backoff_ms * (0.5 + 0.5 * frac);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(sleep_ms));
      backoff_ms = std::min(backoff_ms * 2.0, config_.write_retry_max_ms);
      verdict = try_slot(index);
    }
    if (verdict.has_value() &&
        *verdict == serving::AdmitStatus::kRejectedQueueFull) {
      Slot& slot = *slots_[index];
      std::lock_guard<std::mutex> lock(slot.mutex);
      record_failure(slot);
    }
    return verdict;
  };

  const std::size_t primary = table_.ShardOf(packet.object_id);
  if (auto verdict = try_slot_with_retry(primary)) {
    if (*verdict == serving::AdmitStatus::kAccepted) {
      routed.Increment();
      if (config_.replicate &&
          packet.kind == serving::PacketKind::kObservation)
        ReplicateWrite(packet, primary);
    } else if (*verdict == serving::AdmitStatus::kRejectedQueueFull) {
      rejected_backpressure.Increment();
    }
    return *verdict;
  }
  // The owner is definitively unreachable.  In replicate mode promote its
  // standbys *before* the route-around walk, so the shard that takes this
  // packet already holds the object's full history.
  if (config_.replicate) MaybeFailover(primary);
  if (config_.route_around) {
    std::vector<std::size_t> order;
    table_.PreferenceOrder(packet.object_id, order);
    for (std::size_t index : order) {
      if (index == primary) continue;
      if (auto verdict = try_slot_with_retry(index)) {
        if (*verdict == serving::AdmitStatus::kAccepted) {
          rerouted.Increment();
          if (config_.replicate &&
              packet.kind == serving::PacketKind::kObservation)
            ReplicateWrite(packet, index);
        } else if (*verdict == serving::AdmitStatus::kRejectedQueueFull) {
          rejected_backpressure.Increment();
        }
        return *verdict;
      }
    }
  }
  rejected_breaker.Increment();
  return serving::AdmitStatus::kRejectedBreakerOpen;
}

void Cluster::ReplicateWrite(const serving::IngestPacket& packet,
                             std::size_t delivered) {
  static auto& replicated = Metric("cluster.replicated");
  static auto& failed = Metric("cluster.replicate.failed");
  serving::WireReplicate replicate;
  replicate.slot = static_cast<std::uint32_t>(delivered);
  replicate.epoch = epoch_.load(std::memory_order_acquire);
  replicate.packet = packet;
  std::string frame;
  serving::AppendWireReplicateFrame(replicate, frame);
  std::vector<std::size_t> order;
  table_.PreferenceOrder(packet.object_id, order);
  for (std::size_t index : order) {
    if (index == delivered) continue;
    Slot& slot = *slots_[index];
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (!slot.live || slot.link == nullptr) continue;
    // Replicate frames ride the same ordered stream as packets; a brief
    // backpressure window is waited out like SetLogicalTime's.
    LinkWrite verdict = LinkWrite::kClosed;
    for (int attempt = 0; attempt < 1000; ++attempt) {
      verdict = WriteToSlot(slot, frame);
      if (verdict != LinkWrite::kBackpressure) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (verdict == LinkWrite::kOk) {
      replicated.Increment();
      return;
    }
  }
  // No live standby candidate took the copy: the write stays accepted
  // (the primary has it) but unprotected until the next repair sweep.
  failed.Increment();
}

void Cluster::MaybeFailover(std::size_t shard) {
  if (!config_.replicate || shutdown_.load(std::memory_order_acquire)) return;
  {
    Slot& slot = *slots_[shard];
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.live || slot.failed_over) return;
  }
  std::lock_guard<std::mutex> failover_lock(failover_mutex_);
  if (shutdown_.load(std::memory_order_acquire)) return;
  {
    // Exactly-once: the first thread through here latches the slot; a
    // racing half-open probe (or second ingest) re-checks under the slot
    // mutex and finds the promotion already claimed.
    Slot& slot = *slots_[shard];
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.live || slot.failed_over) return;
    slot.failed_over = true;
  }
  Metric("cluster.failovers").Increment();
  // Fence: every frame written before now — including the dead primary's
  // dual-written replicate frames — is applied on its standby host before
  // the repair reads the standby stores.
  Flush();
  const std::uint64_t epoch =
      epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  table_.SetEpoch(epoch);
  // Hosts adopt the new epoch in stream order, so any replicate frame a
  // lagging router stamped with the old epoch and enqueued *after* this
  // broadcast is rejected as stale — a promoted standby can never be
  // silently written into (the split-brain fence).
  BroadcastEpoch(epoch);
  AntiEntropyRepair();
}

void Cluster::BroadcastEpoch(std::uint64_t epoch) {
  serving::WireControl control;
  control.op = serving::WireControlOp::kEpochSet;
  control.epoch = epoch;
  std::string frame;
  serving::AppendWireControlFrame(control, frame);
  for (const auto& slot_ptr : slots_) {
    Slot& slot = *slot_ptr;
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (!slot.live || slot.link == nullptr) continue;
    for (int attempt = 0; attempt < 1000; ++attempt) {
      const LinkWrite verdict = WriteToSlot(slot, frame);
      if (verdict != LinkWrite::kBackpressure) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

void Cluster::AntiEntropyRepair() {
  static auto& promoted = Metric("cluster.promoted_sessions");
  static auto& repaired = Metric("cluster.repair.sessions");

  // Snapshot the live hosts.  The caller holds failover_mutex_ and the
  // cluster is flushed; Kill/Restart/Migrate must not run concurrently
  // (the same single-driver contract Migrate already has).
  std::vector<ShardHost*> hosts(slots_.size(), nullptr);
  for (std::size_t index = 0; index < slots_.size(); ++index) {
    Slot& slot = *slots_[index];
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.live && slot.host != nullptr) hosts[index] = slot.host.get();
  }

  std::vector<std::size_t> order;
  const auto effective_primary = [&](std::uint64_t object_id) {
    table_.PreferenceOrder(object_id, order);
    for (std::size_t index : order)
      if (hosts[index] != nullptr) return index;
    return kNoShard;
  };
  const auto proper_standby = [&](std::uint64_t object_id) {
    table_.PreferenceOrder(object_id, order);
    std::size_t primary = kNoShard;
    for (std::size_t index : order) {
      if (hosts[index] == nullptr) continue;
      if (primary == kNoShard) {
        primary = index;
        continue;
      }
      return index;
    }
    return kNoShard;
  };
  // One session crosses stores as a filtered checkpoint: byte-exact
  // anchors/observations/LKG, all-or-nothing on the receiving side.
  const auto copy_session = [](serving::SessionStore& from,
                               serving::SessionStore& to,
                               std::uint64_t object_id) {
    const common::Json dump = from.CheckpointJson(
        [object_id](std::uint64_t id) { return id == object_id; });
    return to.MergeFromJson(dump).ok();
  };

  // Pass 1: promote standby copies whose effective primary is this host.
  for (std::size_t h = 0; h < hosts.size(); ++h) {
    if (hosts[h] == nullptr) continue;
    for (std::uint64_t id : hosts[h]->StandbyStore().ObjectIds(nullptr)) {
      if (effective_primary(id) != h) continue;
      // A live primary session supersedes the standby copy (it formed
      // from traffic after this host already became the owner).
      if (!hosts[h]->Store().Contains(id) &&
          copy_session(hosts[h]->StandbyStore(), hosts[h]->Store(), id))
        promoted.Increment();
      hosts[h]->StandbyStore().Erase(id);
    }
  }
  // Pass 2: hand sessions back to their effective primary.  The donor's
  // copy is authoritative — it kept absorbing writes while the owner was
  // down — so the owner's (checkpoint+WAL-replayed, pre-death) copy is
  // erased first.
  for (std::size_t h = 0; h < hosts.size(); ++h) {
    if (hosts[h] == nullptr) continue;
    for (std::uint64_t id : hosts[h]->Store().ObjectIds(nullptr)) {
      const std::size_t owner = effective_primary(id);
      if (owner == h || owner == kNoShard) continue;
      hosts[owner]->Store().Erase(id);
      if (copy_session(hosts[h]->Store(), hosts[owner]->Store(), id))
        repaired.Increment();
      hosts[h]->Store().Erase(id);
    }
  }
  // Pass 3: drop standby copies sitting on the wrong host (stale after a
  // promotion or recovery changed the live set).
  for (std::size_t h = 0; h < hosts.size(); ++h) {
    if (hosts[h] == nullptr) continue;
    for (std::uint64_t id : hosts[h]->StandbyStore().ObjectIds(nullptr))
      if (proper_standby(id) != h) hosts[h]->StandbyStore().Erase(id);
  }
  // Pass 4: reseed missing standby copies from their primary, so the
  // next failure is covered too.
  for (std::size_t h = 0; h < hosts.size(); ++h) {
    if (hosts[h] == nullptr) continue;
    for (std::uint64_t id : hosts[h]->Store().ObjectIds(nullptr)) {
      if (effective_primary(id) != h) continue;
      const std::size_t standby = proper_standby(id);
      if (standby == kNoShard ||
          hosts[standby]->StandbyStore().Contains(id))
        continue;
      if (copy_session(hosts[h]->Store(), hosts[standby]->StandbyStore(), id))
        repaired.Increment();
    }
  }
}

void Cluster::SetLogicalTime(double now_s) {
  serving::WireControl control;
  control.op = serving::WireControlOp::kClockSet;
  control.value = now_s;
  control.epoch = epoch_.load(std::memory_order_acquire);
  std::string frame;
  serving::AppendWireControlFrame(control, frame);
  for (const auto& slot_ptr : slots_) {
    Slot& slot = *slot_ptr;
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (!slot.live || slot.link == nullptr) continue;
    // Clock frames ride the same stream as packets (ordering matters);
    // a brief backpressure window is waited out, a dead link is skipped
    // (the restarted host gets a fresh clock from the next broadcast).
    for (int attempt = 0; attempt < 1000; ++attempt) {
      const LinkWrite verdict = WriteToSlot(slot, frame);
      if (verdict != LinkWrite::kBackpressure) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

void Cluster::Flush() {
  static auto& flushes = Metric("cluster.flushes");
  flushes.Increment();
  std::vector<std::pair<std::size_t, std::uint64_t>> waits;
  for (std::size_t shard = 0; shard < slots_.size(); ++shard) {
    Slot& slot = *slots_[shard];
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (!slot.live || slot.link == nullptr) continue;
    const std::uint64_t token =
        flush_token_.fetch_add(1, std::memory_order_relaxed) + 1;
    serving::WireControl control;
    control.op = serving::WireControlOp::kFlush;
    control.token = token;
    control.epoch = epoch_.load(std::memory_order_acquire);
    std::string frame;
    serving::AppendWireControlFrame(control, frame);
    LinkWrite verdict = LinkWrite::kClosed;
    for (int attempt = 0; attempt < 1000; ++attempt) {
      verdict = WriteToSlot(slot, frame);
      if (verdict != LinkWrite::kBackpressure) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (verdict == LinkWrite::kOk) waits.emplace_back(shard, token);
  }
  std::unique_lock<std::mutex> lock(ack_mutex_);
  for (const auto& [shard, token] : waits) {
    Slot& slot = *slots_[shard];
    ack_cv_.wait(lock, [&] {
      return slot.acked_token >= token || slot.reader_done;
    });
  }
}

std::vector<ClusterResponse> Cluster::TakeResponses() {
  std::lock_guard<std::mutex> lock(responses_mutex_);
  std::vector<ClusterResponse> out;
  out.swap(responses_);
  return out;
}

common::Result<void> Cluster::Checkpoint(std::size_t shard) {
  if (shard >= slots_.size())
    return common::InvalidArgument("no such shard");
  Flush();
  Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mutex);
  if (!slot.live || slot.host == nullptr)
    return common::FailedPrecondition("shard is not live");
  // Filtered to the ids this placement slot owns: sessions that landed
  // here via route-around belong to (and will re-form on) other shards.
  const common::Json checkpoint = slot.host->Store().CheckpointJson(
      [this, shard](std::uint64_t object_id) {
        return table_.ShardOf(object_id) == shard;
      });
  slot.checkpoint = checkpoint.Dump();
  if (config_.replicate)
    slot.standby_checkpoint =
        slot.host->StandbyStore().CheckpointJson(nullptr).Dump();
  if (!config_.durable_dir.empty()) {
    // Durable checkpoint + WAL reset are one logical step, taken while
    // the shard is quiesced: the files reflect exactly the state whose
    // WAL prefix is being discarded.
    const std::string dir = slot.host->DurableDir();
    NOMLOC_RETURN_IF_ERROR(
        serving::SaveCheckpointFile(ShardCheckpointPath(dir),
                                    slot.checkpoint).status());
    if (config_.replicate)
      NOMLOC_RETURN_IF_ERROR(
          serving::SaveCheckpointFile(ShardStandbyPath(dir),
                                      slot.standby_checkpoint).status());
    NOMLOC_RETURN_IF_ERROR(slot.host->ResetWal().status());
  }
  Metric("cluster.checkpoints").Increment();
  return {};
}

common::Result<void> Cluster::Migrate(std::size_t shard) {
  NOMLOC_RETURN_IF_ERROR(Checkpoint(shard).status());
  // The flush above drained every in-flight frame, so between here and
  // the swap the slot only has to hold new ingest off (AttachHost takes
  // the slot mutex for the flip itself).
  DetachHost(shard);
  std::string dump;
  {
    Slot& slot = *slots_[shard];
    std::lock_guard<std::mutex> lock(slot.mutex);
    dump = slot.checkpoint;
  }
  NOMLOC_RETURN_IF_ERROR(AttachHost(shard, &dump).status());
  Metric("cluster.migrations").Increment();
  return {};
}

void Cluster::Kill(std::size_t shard, bool unclean) {
  if (shard >= slots_.size()) return;
  if (unclean) {
    // Crash semantics: the host abandons decoded-but-unapplied bytes
    // instead of draining them — DetachHost below then joins a reader
    // that died mid-stream, exactly like a SIGKILLed process.
    Slot& slot = *slots_[shard];
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.host) slot.host->Abort();
  }
  DetachHost(shard);
  Metric("cluster.kills").Increment();
}

common::Result<void> Cluster::Restart(std::size_t shard, bool restore) {
  if (shard >= slots_.size())
    return common::InvalidArgument("no such shard");
  {
    Slot& slot = *slots_[shard];
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.live) return common::FailedPrecondition("shard is still live");
  }
  std::string dump;
  if (restore) {
    Slot& slot = *slots_[shard];
    std::lock_guard<std::mutex> lock(slot.mutex);
    dump = slot.checkpoint;
  }
  NOMLOC_RETURN_IF_ERROR(AttachHost(shard, restore ? &dump : nullptr)
                             .status());
  Metric("cluster.restarts").Increment();
  return {};
}

common::Result<void> Cluster::Recover(std::size_t shard) {
  if (shard >= slots_.size())
    return common::InvalidArgument("no such shard");
  {
    Slot& slot = *slots_[shard];
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.live) return common::FailedPrecondition("shard is still live");
  }
  // The fresh host self-restores from its checkpoint files + WAL replay
  // when the cluster is durable (ShardHost::Recover).
  NOMLOC_RETURN_IF_ERROR(AttachHost(shard, nullptr).status());
  {
    std::lock_guard<std::mutex> failover_lock(failover_mutex_);
    {
      Slot& slot = *slots_[shard];
      std::lock_guard<std::mutex> lock(slot.mutex);
      // A recovered shard serves immediately; re-admission must not wait
      // out a breaker backoff the failure already paid for.
      slot.breaker = serving::CircuitBreaker(config_.shard_breaker);
    }
    Flush();
    const std::uint64_t epoch =
        epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
    table_.SetEpoch(epoch);
    BroadcastEpoch(epoch);
    if (config_.replicate) AntiEntropyRepair();
  }
  Metric("cluster.recoveries").Increment();
  return {};
}

bool Cluster::SetStalled(std::size_t shard, bool stalled) {
  if (shard >= slots_.size()) return false;
  Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mutex);
  if (!slot.live || slot.link == nullptr) return false;
  return slot.link->SetStalled(stalled);
}

std::size_t Cluster::ShardCount() const noexcept { return slots_.size(); }

std::size_t Cluster::ShardOf(std::uint64_t object_id) const noexcept {
  return table_.ShardOf(object_id);
}

bool Cluster::ShardLive(std::size_t shard) const {
  if (shard >= slots_.size()) return false;
  Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mutex);
  return slot.live;
}

serving::SessionStore* Cluster::StoreOf(std::size_t shard) {
  if (shard >= slots_.size()) return nullptr;
  Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mutex);
  return slot.host ? &slot.host->Store() : nullptr;
}

serving::SessionStore* Cluster::StandbyStoreOf(std::size_t shard) {
  if (shard >= slots_.size()) return nullptr;
  Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mutex);
  return slot.host ? &slot.host->StandbyStore() : nullptr;
}

void Cluster::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  for (std::size_t shard = 0; shard < slots_.size(); ++shard)
    DetachHost(shard);
}

}  // namespace nomloc::cluster
