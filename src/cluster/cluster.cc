#include "cluster/cluster.h"

#include <optional>

#include "common/metrics.h"

namespace nomloc::cluster {

namespace {

constexpr std::string_view kCounterNames[] = {
    "cluster.routed",
    "cluster.rerouted",
    "cluster.rejected.backpressure",
    "cluster.rejected.breaker",
    "cluster.rejected.deadline",
    "cluster.shard_trips",
    "cluster.migrations",
    "cluster.checkpoints",
    "cluster.restarts",
    "cluster.kills",
    "cluster.flushes",
    "cluster.responses",
    "cluster.host.rejected",
};

common::MetricCounter& Metric(std::string_view name) {
  return common::MetricRegistry::Global().Counter(name);
}

}  // namespace

std::span<const std::string_view> AllMetricNames() { return kCounterNames; }

void TouchMetrics() {
  for (std::string_view name : kCounterNames) Metric(name);
}

common::Result<void> ClusterConfig::Validate() const {
  if (shards == 0)
    return common::InvalidArgument("cluster needs at least one shard");
  NOMLOC_RETURN_IF_ERROR(transport.Validate().status());
  NOMLOC_RETURN_IF_ERROR(serving.Validate().status());
  NOMLOC_RETURN_IF_ERROR(shard_breaker.Validate().status());
  return {};
}

/// Everything the router knows about one shard slot.  `mutex` guards the
/// write side (link, header, breaker, live flag); the read side is the
/// slot's dedicated reader thread, which owns the raw Link pointer it was
/// spawned with and never touches these fields.
struct Cluster::Slot {
  explicit Slot(const serving::CircuitBreakerConfig& breaker_config)
      : breaker(breaker_config) {}

  std::mutex mutex;
  std::unique_ptr<ShardHost> host;
  std::unique_ptr<Link> link;  ///< Router end.
  bool header_sent = false;
  bool live = false;
  serving::CircuitBreaker breaker;
  std::thread reader;
  /// Guarded by Cluster::ack_mutex_.
  std::uint64_t acked_token = 0;
  bool reader_done = true;
  /// Last Checkpoint()/Migrate() dump, for Restart(restore=true).
  std::string checkpoint;
};

common::Result<std::unique_ptr<Cluster>> Cluster::Create(
    const core::NomLocEngine& engine, ClusterConfig config,
    const serving::Clock* clock) {
  NOMLOC_RETURN_IF_ERROR(config.Validate().status());
  NOMLOC_ASSIGN_OR_RETURN(
      PlacementTable table,
      PlacementTable::Create(config.shards, config.placement_seed));
  auto cluster = std::unique_ptr<Cluster>(
      new Cluster(engine, std::move(config), clock, std::move(table)));
  for (std::size_t shard = 0; shard < cluster->config_.shards; ++shard) {
    auto status = cluster->AttachHost(shard, nullptr);
    if (!status.ok()) {
      cluster->Shutdown();
      return status.status();
    }
  }
  return cluster;
}

Cluster::Cluster(const core::NomLocEngine& engine, ClusterConfig config,
                 const serving::Clock* clock, PlacementTable table)
    : engine_(engine), config_(std::move(config)), clock_(clock),
      table_(std::move(table)) {
  if (clock_ == nullptr) {
    owned_clock_ = std::make_unique<serving::SteadyClock>();
    clock_ = owned_clock_.get();
  }
  slots_.reserve(config_.shards);
  for (std::size_t shard = 0; shard < config_.shards; ++shard)
    slots_.push_back(std::make_unique<Slot>(config_.shard_breaker));
}

Cluster::~Cluster() { Shutdown(); }

common::Result<void> Cluster::AttachHost(std::size_t shard,
                                         const std::string* dump) {
  NOMLOC_ASSIGN_OR_RETURN(LinkPair pair, ConnectLinkPair(config_.transport));
  NOMLOC_ASSIGN_OR_RETURN(
      std::unique_ptr<ShardHost> host,
      ShardHost::Create(engine_, config_.serving, std::move(pair.host_end),
                        config_.clock_from_packets));
  if (dump != nullptr && !dump->empty()) {
    NOMLOC_ASSIGN_OR_RETURN(common::Json checkpoint,
                            common::Json::Parse(*dump));
    auto restored = host->Store().RestoreFromJson(checkpoint);
    if (!restored.ok()) {
      host->Stop();
      return restored.status();
    }
  }
  Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mutex);
  slot.host = std::move(host);
  slot.link = std::move(pair.router_end);
  slot.header_sent = false;
  slot.live = true;
  {
    std::lock_guard<std::mutex> ack_lock(ack_mutex_);
    slot.reader_done = false;
  }
  slot.reader = std::thread([this, shard] { ReaderLoop(shard); });
  return {};
}

void Cluster::DetachHost(std::size_t shard) {
  Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mutex);
  if (!slot.live && slot.host == nullptr) return;
  slot.live = false;
  if (slot.link) slot.link->Close();
  if (slot.reader.joinable()) slot.reader.join();
  if (slot.host) slot.host->Stop();
  slot.host.reset();
  slot.link.reset();
  ack_cv_.notify_all();
}

void Cluster::ReaderLoop(std::size_t shard) {
  Slot& slot = *slots_[shard];
  // The attach that spawned this thread set the link before the spawn
  // (thread creation synchronizes), and DetachHost joins us before
  // resetting it — a plain read is race-free for the thread's lifetime.
  Link* const link = slot.link.get();
  serving::WireDecoder decoder(serving::WireDecoderAccept{
      .packets = false, .responses = true, .controls = true, .ordered = true});
  std::string incoming;
  static auto& responses_counter = Metric("cluster.responses");
  while (true) {
    incoming.clear();
    if (link->Read(incoming) == 0) break;
    if (!decoder.Feed(incoming).ok()) break;
    for (const serving::WireEvent& event : decoder.TakeEvents()) {
      if (event.kind == serving::kWireResponseFrame) {
        ClusterResponse response;
        response.response = event.response;
        response.shard = shard;
        response.received_wall = std::chrono::steady_clock::now();
        responses_counter.Increment();
        std::lock_guard<std::mutex> lock(responses_mutex_);
        responses_.push_back(response);
      } else if (event.kind == serving::kWireControlFrame &&
                 event.control.op == serving::WireControlOp::kFlushAck) {
        std::lock_guard<std::mutex> lock(ack_mutex_);
        if (event.control.token > slot.acked_token)
          slot.acked_token = event.control.token;
        ack_cv_.notify_all();
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(ack_mutex_);
    slot.reader_done = true;
  }
  ack_cv_.notify_all();
}

LinkWrite Cluster::WriteToSlot(Slot& slot, std::string_view bytes) {
  if (!slot.header_sent) {
    std::string first = serving::WireHeader();
    first.append(bytes.data(), bytes.size());
    const LinkWrite verdict = slot.link->Write(first);
    if (verdict == LinkWrite::kOk) slot.header_sent = true;
    return verdict;
  }
  return slot.link->Write(bytes);
}

serving::AdmitStatus Cluster::Ingest(const serving::IngestPacket& packet) {
  static auto& routed = Metric("cluster.routed");
  static auto& rerouted = Metric("cluster.rerouted");
  static auto& rejected_backpressure = Metric("cluster.rejected.backpressure");
  static auto& rejected_breaker = Metric("cluster.rejected.breaker");
  static auto& rejected_deadline = Metric("cluster.rejected.deadline");
  static auto& trips = Metric("cluster.shard_trips");

  if (shutdown_.load(std::memory_order_acquire))
    return serving::AdmitStatus::kRejectedShutdown;
  const double now_s = clock_->NowSeconds();
  // Same admission comparison as StreamingLocalizer::Ingest, so a
  // router-side rejection is exactly the rejection the unsharded run
  // would have issued (neither produces a response).
  if (now_s > packet.deadline_s) {
    rejected_deadline.Increment();
    return serving::AdmitStatus::kRejectedDeadline;
  }

  std::string frame;
  serving::AppendWireFrame(packet, frame);

  // nullopt = this candidate cannot take the packet (dead / breaker
  // open / transport closed); a definite verdict stops the walk.
  auto try_slot =
      [&](std::size_t index) -> std::optional<serving::AdmitStatus> {
    Slot& slot = *slots_[index];
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (!slot.breaker.Allow(now_s)) return std::nullopt;
    if (!slot.live || slot.link == nullptr) {
      // A dead shard fails its candidates like a broken transport: the
      // breaker counts toward a trip, then Allow() short-circuits.
      const bool was_open =
          slot.breaker.State() == serving::BreakerState::kOpen;
      slot.breaker.RecordFailure(now_s);
      if (!was_open && slot.breaker.State() == serving::BreakerState::kOpen)
        trips.Increment();
      return std::nullopt;
    }
    const LinkWrite verdict = WriteToSlot(slot, frame);
    if (verdict == LinkWrite::kOk) {
      slot.breaker.RecordSuccess(now_s);
      return serving::AdmitStatus::kAccepted;
    }
    if (verdict == LinkWrite::kBackpressure) {
      // Typed backpressure, no reroute: scattering an object's session
      // across shards over a transient full pipe would split its anchor
      // history.  The sender retries; the owner keeps the session.
      return serving::AdmitStatus::kRejectedQueueFull;
    }
    const bool was_open = slot.breaker.State() == serving::BreakerState::kOpen;
    slot.breaker.RecordFailure(now_s);
    if (!was_open && slot.breaker.State() == serving::BreakerState::kOpen)
      trips.Increment();
    return std::nullopt;
  };

  const std::size_t primary = table_.ShardOf(packet.object_id);
  if (auto verdict = try_slot(primary)) {
    if (*verdict == serving::AdmitStatus::kAccepted)
      routed.Increment();
    else if (*verdict == serving::AdmitStatus::kRejectedQueueFull)
      rejected_backpressure.Increment();
    return *verdict;
  }
  if (config_.route_around) {
    std::vector<std::size_t> order;
    table_.PreferenceOrder(packet.object_id, order);
    for (std::size_t index : order) {
      if (index == primary) continue;
      if (auto verdict = try_slot(index)) {
        if (*verdict == serving::AdmitStatus::kAccepted)
          rerouted.Increment();
        else if (*verdict == serving::AdmitStatus::kRejectedQueueFull)
          rejected_backpressure.Increment();
        return *verdict;
      }
    }
  }
  rejected_breaker.Increment();
  return serving::AdmitStatus::kRejectedBreakerOpen;
}

void Cluster::SetLogicalTime(double now_s) {
  serving::WireControl control;
  control.op = serving::WireControlOp::kClockSet;
  control.value = now_s;
  std::string frame;
  serving::AppendWireControlFrame(control, frame);
  for (const auto& slot_ptr : slots_) {
    Slot& slot = *slot_ptr;
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (!slot.live || slot.link == nullptr) continue;
    // Clock frames ride the same stream as packets (ordering matters);
    // a brief backpressure window is waited out, a dead link is skipped
    // (the restarted host gets a fresh clock from the next broadcast).
    for (int attempt = 0; attempt < 1000; ++attempt) {
      const LinkWrite verdict = WriteToSlot(slot, frame);
      if (verdict != LinkWrite::kBackpressure) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

void Cluster::Flush() {
  static auto& flushes = Metric("cluster.flushes");
  flushes.Increment();
  std::vector<std::pair<std::size_t, std::uint64_t>> waits;
  for (std::size_t shard = 0; shard < slots_.size(); ++shard) {
    Slot& slot = *slots_[shard];
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (!slot.live || slot.link == nullptr) continue;
    const std::uint64_t token =
        flush_token_.fetch_add(1, std::memory_order_relaxed) + 1;
    serving::WireControl control;
    control.op = serving::WireControlOp::kFlush;
    control.token = token;
    std::string frame;
    serving::AppendWireControlFrame(control, frame);
    LinkWrite verdict = LinkWrite::kClosed;
    for (int attempt = 0; attempt < 1000; ++attempt) {
      verdict = WriteToSlot(slot, frame);
      if (verdict != LinkWrite::kBackpressure) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (verdict == LinkWrite::kOk) waits.emplace_back(shard, token);
  }
  std::unique_lock<std::mutex> lock(ack_mutex_);
  for (const auto& [shard, token] : waits) {
    Slot& slot = *slots_[shard];
    ack_cv_.wait(lock, [&] {
      return slot.acked_token >= token || slot.reader_done;
    });
  }
}

std::vector<ClusterResponse> Cluster::TakeResponses() {
  std::lock_guard<std::mutex> lock(responses_mutex_);
  std::vector<ClusterResponse> out;
  out.swap(responses_);
  return out;
}

common::Result<void> Cluster::Checkpoint(std::size_t shard) {
  if (shard >= slots_.size())
    return common::InvalidArgument("no such shard");
  Flush();
  Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mutex);
  if (!slot.live || slot.host == nullptr)
    return common::FailedPrecondition("shard is not live");
  // Filtered to the ids this placement slot owns: sessions that landed
  // here via route-around belong to (and will re-form on) other shards.
  const common::Json checkpoint = slot.host->Store().CheckpointJson(
      [this, shard](std::uint64_t object_id) {
        return table_.ShardOf(object_id) == shard;
      });
  slot.checkpoint = checkpoint.Dump();
  Metric("cluster.checkpoints").Increment();
  return {};
}

common::Result<void> Cluster::Migrate(std::size_t shard) {
  NOMLOC_RETURN_IF_ERROR(Checkpoint(shard).status());
  // The flush above drained every in-flight frame, so between here and
  // the swap the slot only has to hold new ingest off (AttachHost takes
  // the slot mutex for the flip itself).
  DetachHost(shard);
  std::string dump;
  {
    Slot& slot = *slots_[shard];
    std::lock_guard<std::mutex> lock(slot.mutex);
    dump = slot.checkpoint;
  }
  NOMLOC_RETURN_IF_ERROR(AttachHost(shard, &dump).status());
  Metric("cluster.migrations").Increment();
  return {};
}

void Cluster::Kill(std::size_t shard) {
  if (shard >= slots_.size()) return;
  DetachHost(shard);
  Metric("cluster.kills").Increment();
}

common::Result<void> Cluster::Restart(std::size_t shard, bool restore) {
  if (shard >= slots_.size())
    return common::InvalidArgument("no such shard");
  {
    Slot& slot = *slots_[shard];
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.live) return common::FailedPrecondition("shard is still live");
  }
  std::string dump;
  if (restore) {
    Slot& slot = *slots_[shard];
    std::lock_guard<std::mutex> lock(slot.mutex);
    dump = slot.checkpoint;
  }
  NOMLOC_RETURN_IF_ERROR(AttachHost(shard, restore ? &dump : nullptr)
                             .status());
  Metric("cluster.restarts").Increment();
  return {};
}

bool Cluster::SetStalled(std::size_t shard, bool stalled) {
  if (shard >= slots_.size()) return false;
  Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mutex);
  if (!slot.live || slot.link == nullptr) return false;
  return slot.link->SetStalled(stalled);
}

std::size_t Cluster::ShardCount() const noexcept { return slots_.size(); }

std::size_t Cluster::ShardOf(std::uint64_t object_id) const noexcept {
  return table_.ShardOf(object_id);
}

bool Cluster::ShardLive(std::size_t shard) const {
  if (shard >= slots_.size()) return false;
  Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mutex);
  return slot.live;
}

serving::SessionStore* Cluster::StoreOf(std::size_t shard) {
  if (shard >= slots_.size()) return nullptr;
  Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mutex);
  return slot.host ? &slot.host->Store() : nullptr;
}

void Cluster::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  for (std::size_t shard = 0; shard < slots_.size(); ++shard)
    DetachHost(shard);
}

}  // namespace nomloc::cluster
